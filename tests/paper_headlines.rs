//! End-to-end assertions of the paper's headline claims, exercised through
//! the public facade exactly as a downstream user would.

use xferopt::prelude::*;
use xferopt::scenarios::experiments::{fig1, fig11, fig5, summarize, FIG1_NC_VALUES};

/// Section III-A, observation 1: throughput rises monotonically with stream
/// count up to a critical point, then falls.
#[test]
fn fig1_rise_then_fall() {
    let cells = fig1(2, 120.0, 1);
    let no_load: Vec<_> = cells
        .iter()
        .filter(|c| c.load == ExternalLoad::NONE)
        .collect();
    let medians: Vec<f64> = FIG1_NC_VALUES
        .iter()
        .map(|&nc| no_load.iter().find(|c| c.nc == nc).unwrap().stats.median)
        .collect();
    let peak_idx = medians
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    // Interior peak, rising before, falling after.
    assert!(
        peak_idx > 0 && peak_idx < medians.len() - 1,
        "peak at edge: {medians:?}"
    );
    assert!(medians[0] < medians[peak_idx] * 0.5, "rise too shallow");
    assert!(
        *medians.last().unwrap() < medians[peak_idx] * 0.95,
        "no decline after the critical point: {medians:?}"
    );
}

/// Section III-A, observations 2 & 3: external load moves the critical point
/// right and pulls the peak down.
#[test]
fn fig1_load_shifts_and_lowers_peak() {
    let cells = fig1(2, 120.0, 2);
    let peak = |load: ExternalLoad| {
        cells
            .iter()
            .filter(|c| c.load == load)
            .max_by(|a, b| a.stats.median.partial_cmp(&b.stats.median).unwrap())
            .unwrap()
    };
    let idle = peak(ExternalLoad::NONE);
    let loaded = peak(ExternalLoad::new(16, 16));
    assert!(loaded.nc > idle.nc, "critical point must shift right");
    assert!(
        loaded.stats.median < idle.stats.median,
        "peak throughput must drop under load"
    );
}

/// Section IV-A: adaptive concurrency beats the Globus default, dramatically
/// so under source compute load; the adopted nc grows with the load.
#[test]
fn tuners_beat_default_across_loads() {
    let runs = fig5(Route::UChicago, 1200.0, 3);
    let summaries = summarize(&runs);
    let get = |t: TunerKind, l: ExternalLoad| {
        summaries
            .iter()
            .find(|s| s.tuner == t && s.load == l)
            .unwrap()
    };
    // No load: modest improvement (paper: 1.4x).
    for t in [TunerKind::Cs, TunerKind::Nm] {
        let s = get(t, ExternalLoad::NONE);
        assert!(
            s.improvement > 1.1,
            "{}: no-load improvement {:.2}",
            t.name(),
            s.improvement
        );
    }
    // Compute load: large improvement (paper: 7-10x).
    for (l, min_gain) in [
        (ExternalLoad::new(0, 16), 3.0),
        (ExternalLoad::new(0, 64), 2.5),
    ] {
        for t in [TunerKind::Cs, TunerKind::Nm] {
            let s = get(t, l);
            assert!(
                s.improvement > min_gain,
                "{} under {}: improvement {:.2}",
                t.name(),
                l.label(),
                s.improvement
            );
        }
    }
    // The adopted concurrency grows with compute load (Fig. 6).
    let nc_idle = get(TunerKind::Nm, ExternalLoad::NONE).final_nc;
    let nc_cmp = get(TunerKind::Nm, ExternalLoad::new(0, 16)).final_nc;
    assert!(
        nc_cmp > nc_idle,
        "nm must adopt more streams under load: {nc_idle} -> {nc_cmp}"
    );
}

/// Section IV-A: the restart overhead separates observed (Fig. 5) from
/// best-case (Fig. 7) and grows with compute load (17% → ~50%).
#[test]
fn restart_overhead_matches_paper_shape() {
    let runs = fig5(Route::UChicago, 900.0, 4);
    let overhead = |load: ExternalLoad| {
        runs.iter()
            .find(|r| r.tuner == TunerKind::Cs && r.load == load)
            .unwrap()
            .log
            .mean_overhead_fraction()
    };
    let idle = overhead(ExternalLoad::NONE);
    let heavy = overhead(ExternalLoad::new(0, 64));
    assert!((0.10..0.30).contains(&idle), "paper ~17%, got {idle:.2}");
    assert!((0.35..0.70).contains(&heavy), "paper ~50%, got {heavy:.2}");
    assert!(heavy > idle);
    // Network load does not inflate the overhead much (paper: ~15%); it
    // must stay clearly below the heavy-compute level. The simulator sits a
    // hair above the paper's figure (restart startup competes with 64
    // external streams for the NIC), so allow up to 35%.
    let tfr = overhead(ExternalLoad::new(64, 0));
    assert!(tfr < 0.35, "tfr overhead should stay small: {tfr:.2}");
    assert!(
        tfr < heavy,
        "network load must inflate overhead less than compute load"
    );
}

/// Section IV-D: two tuned transfers sharing the source NIC interact; their
/// combined throughput respects the NIC and the UChicago transfer claims at
/// least half.
#[test]
fn simultaneous_tuning_shares_the_nic() {
    let (uc, tacc) = fig11(TunerKind::Nm, 1200.0, 5);
    let a = uc.mean_observed_between(800.0, 1201.0).unwrap();
    let b = tacc.mean_observed_between(800.0, 1201.0).unwrap();
    assert!(a + b <= 5100.0, "NIC capacity violated: {a} + {b}");
    assert!(
        a >= b,
        "paper: the UChicago transfer gets the larger fraction ({a} vs {b})"
    );
}

/// Section IV-A: "cd-tuner is sensitive to the starting point, but cs-tuner
/// and nm-tuner are robust" — from the Globus default (close to the no-load
/// optimum) cd reaches steady state quickly (paper: ~100 s vs ~500 s),
/// while under compute load (optimum far from the start) cd lags the
/// large-step searchers.
#[test]
fn cd_fast_near_start_slow_far_away() {
    let run = |tuner: TunerKind, load: ExternalLoad| {
        DriveConfig::paper(
            Route::UChicago,
            tuner,
            TuneDims::NcOnly { np: 8 },
            LoadSchedule::constant(load),
        )
        .with_duration_s(1500.0)
        .with_noise_sigma(0.0)
    };
    // Epochs until within 15% of the run's own steady level.
    let settle_epochs = |cfg: &DriveConfig| {
        let log = drive_transfer(cfg);
        let steady = log.mean_observed_between(1000.0, 1501.0).unwrap();
        log.epochs
            .iter()
            .position(|e| e.observed_mbs >= 0.85 * steady)
            .map(|i| i + 1)
            .unwrap_or(usize::MAX)
    };
    // No load: the default start (nc=2) is near the optimum — cd is quick.
    let cd_idle = settle_epochs(&run(TunerKind::Cd, ExternalLoad::NONE));
    assert!(
        cd_idle <= 8,
        "paper: cd reaches steady state in ~3 epochs idle, got {cd_idle}"
    );
    // Heavy compute load: the optimum (nc ≈ 30-60) is far from nc=2; the
    // ±1 walk needs many more epochs than nm's reflect/expand jumps.
    let load = ExternalLoad::new(0, 16);
    let log_cd = drive_transfer(&run(TunerKind::Cd, load));
    let log_nm = drive_transfer(&run(TunerKind::Nm, load));
    let mid = |log: &TransferLog| log.mean_observed_between(200.0, 600.0).unwrap();
    assert!(
        mid(&log_nm) > mid(&log_cd),
        "nm's large steps must win the early phase under load: {} vs {}",
        mid(&log_nm),
        mid(&log_cd)
    );
}

/// The 10x worst-case claim of the abstract: under some load condition, the
/// best direct-search tuner reaches at least ~4x the default (the paper's
/// testbed saw up to 10x; the simulated substrate reproduces the direction
/// and a conservative fraction of the magnitude).
#[test]
fn headline_improvement_is_large() {
    let runs = fig5(Route::UChicago, 1500.0, 6);
    let best = summarize(&runs)
        .into_iter()
        .filter(|s| s.tuner != TunerKind::Default)
        .map(|s| s.improvement)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(best > 4.0, "max improvement {best:.1}x");
}
