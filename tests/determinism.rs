//! Reproducibility guarantees: every experiment is a pure function of its
//! seed, and different seeds genuinely vary.

use xferopt::prelude::*;
use xferopt::scenarios::experiments::{fig1, fig11, fig5};

#[test]
fn fig1_is_seed_deterministic() {
    let a = fig1(2, 60.0, 7);
    let b = fig1(2, 60.0, 7);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.nc, y.nc);
        assert_eq!(x.stats.median, y.stats.median);
        assert_eq!(x.stats.mean, y.stats.mean);
    }
    let c = fig1(2, 60.0, 8);
    let differs = a
        .iter()
        .zip(&c)
        .any(|(x, y)| x.stats.median != y.stats.median);
    assert!(differs, "different seeds must perturb the noise");
}

#[test]
fn driven_runs_are_seed_deterministic() {
    let cfg = DriveConfig::paper(
        Route::Tacc,
        TunerKind::Nm,
        TuneDims::NcNp,
        LoadSchedule::paper_varying(),
    )
    .with_duration_s(600.0)
    .with_seed(11);
    let a = drive_transfer(&cfg);
    let b = drive_transfer(&cfg);
    assert_eq!(a.total_mb(), b.total_mb());
    let params_a: Vec<_> = a.epochs.iter().map(|e| e.params).collect();
    let params_b: Vec<_> = b.epochs.iter().map(|e| e.params).collect();
    assert_eq!(params_a, params_b, "tuner trajectories must replay exactly");
}

#[test]
fn parallel_repeats_equal_serial_repeats() {
    // The crossbeam fan-out must not change results (no shared state).
    let parallel = fig5(Route::UChicago, 300.0, 13);
    let serial = fig5(Route::UChicago, 300.0, 13);
    for (p, s) in parallel.iter().zip(&serial) {
        assert_eq!(p.tuner, s.tuner);
        assert_eq!(p.load, s.load);
        assert_eq!(p.log.total_mb(), s.log.total_mb());
    }
}

#[test]
fn multidriver_is_deterministic() {
    let run = || {
        let (uc, tacc) = fig11(TunerKind::Cs, 600.0, 17);
        (uc.total_mb(), tacc.total_mb())
    };
    assert_eq!(run(), run());
}

/// Build the canonical faulty world used for the golden-trace snapshot: a
/// finite transfer on the paper topology under a scripted + seeded fault mix
/// covering every [`FaultKind`].
fn golden_fault_world() -> (PaperWorld, xferopt::transfer::TransferId) {
    let mut pw = PaperWorld::new(0x60 ^ 0x42);
    pw.world.enable_trace(512);
    let cfg = TransferConfig::memory_to_memory(pw.source, pw.path_uchicago)
        .with_params(StreamParams::globus_default())
        .with_noise(0.0, 1.0)
        .with_size_mb(400_000.0);
    let tid = pw.world.add_transfer(cfg);
    let plan = FaultPlan::new()
        .with(FaultEvent::window(
            SimTime::from_secs(20),
            SimDuration::from_secs(15),
            FaultKind::LinkDegrade {
                link: 1,
                factor: 0.25,
            },
        ))
        .with(FaultEvent::window(
            SimTime::from_secs(50),
            SimDuration::from_secs(5),
            FaultKind::LinkFlap { link: 1 },
        ))
        .with(FaultEvent::window(
            SimTime::from_secs(70),
            SimDuration::from_secs(10),
            FaultKind::RttSpike {
                path: 0,
                factor: 4.0,
            },
        ))
        .with(FaultEvent::window(
            SimTime::from_secs(90),
            SimDuration::from_secs(10),
            FaultKind::FlowStall { transfer: tid.0 },
        ))
        .with(FaultEvent::instant(
            SimTime::from_secs(110),
            FaultKind::TransferAbort { transfer: tid.0 },
        ))
        .merge(FaultPlan::aborts(7, tid.0, 240.0, 90.0));
    pw.world.enable_faults(plan);
    (pw, tid)
}

#[test]
fn golden_fault_trace_matches_snapshot() {
    // Same root seed + same fault plan => byte-identical trace, both across
    // in-process runs and against the committed golden file. Re-bless with:
    //   UPDATE_GOLDEN=1 cargo test --test determinism golden_fault_trace
    let run = || {
        let (mut pw, _tid) = golden_fault_world();
        pw.world.step(SimDuration::from_secs(300));
        pw.world.tracer().format()
    };
    let trace = run();
    assert_eq!(trace, run(), "two in-process runs must be byte-identical");
    assert!(
        trace.contains("[fault]"),
        "trace must record fault events:\n{trace}"
    );
    assert!(
        trace.contains("abort"),
        "trace must record the abort:\n{trace}"
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fault_trace.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &trace).expect("write golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden snapshot missing; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        trace, golden,
        "fault trace drifted from tests/golden/fault_trace.txt; \
         if the change is intentional, re-bless with UPDATE_GOLDEN=1"
    );
}

#[test]
fn fault_plans_replay_across_seeds_but_differ_between_them() {
    let a = FaultProfile::DegradedWan.plan(Route::UChicago, 31, 1800.0);
    let b = FaultProfile::DegradedWan.plan(Route::UChicago, 31, 1800.0);
    assert_eq!(a, b);
    let c = FaultProfile::DegradedWan.plan(Route::UChicago, 32, 1800.0);
    assert_ne!(a, c);
}

#[test]
fn seed_changes_propagate_to_every_layer() {
    let run = |seed| {
        let cfg = DriveConfig::paper(
            Route::UChicago,
            TunerKind::Cs,
            TuneDims::NcOnly { np: 8 },
            LoadSchedule::constant(ExternalLoad::new(16, 0)),
        )
        .with_duration_s(600.0)
        .with_seed(seed);
        drive_transfer(&cfg).total_mb()
    };
    assert_ne!(run(1), run(2), "seeds must actually matter");
}
