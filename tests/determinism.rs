//! Reproducibility guarantees: every experiment is a pure function of its
//! seed, and different seeds genuinely vary.

use xferopt::prelude::*;
use xferopt::scenarios::experiments::{fig1, fig11, fig5};

#[test]
fn fig1_is_seed_deterministic() {
    let a = fig1(2, 60.0, 7);
    let b = fig1(2, 60.0, 7);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.nc, y.nc);
        assert_eq!(x.stats.median, y.stats.median);
        assert_eq!(x.stats.mean, y.stats.mean);
    }
    let c = fig1(2, 60.0, 8);
    let differs = a
        .iter()
        .zip(&c)
        .any(|(x, y)| x.stats.median != y.stats.median);
    assert!(differs, "different seeds must perturb the noise");
}

#[test]
fn driven_runs_are_seed_deterministic() {
    let cfg = DriveConfig::paper(
        Route::Tacc,
        TunerKind::Nm,
        TuneDims::NcNp,
        LoadSchedule::paper_varying(),
    )
    .with_duration_s(600.0)
    .with_seed(11);
    let a = drive_transfer(&cfg);
    let b = drive_transfer(&cfg);
    assert_eq!(a.total_mb(), b.total_mb());
    let params_a: Vec<_> = a.epochs.iter().map(|e| e.params).collect();
    let params_b: Vec<_> = b.epochs.iter().map(|e| e.params).collect();
    assert_eq!(params_a, params_b, "tuner trajectories must replay exactly");
}

#[test]
fn parallel_repeats_equal_serial_repeats() {
    // The crossbeam fan-out must not change results (no shared state).
    let parallel = fig5(Route::UChicago, 300.0, 13);
    let serial = fig5(Route::UChicago, 300.0, 13);
    for (p, s) in parallel.iter().zip(&serial) {
        assert_eq!(p.tuner, s.tuner);
        assert_eq!(p.load, s.load);
        assert_eq!(p.log.total_mb(), s.log.total_mb());
    }
}

#[test]
fn multidriver_is_deterministic() {
    let run = || {
        let (uc, tacc) = fig11(TunerKind::Cs, 600.0, 17);
        (uc.total_mb(), tacc.total_mb())
    };
    assert_eq!(run(), run());
}

#[test]
fn seed_changes_propagate_to_every_layer() {
    let run = |seed| {
        let cfg = DriveConfig::paper(
            Route::UChicago,
            TunerKind::Cs,
            TuneDims::NcOnly { np: 8 },
            LoadSchedule::constant(ExternalLoad::new(16, 0)),
        )
        .with_duration_s(600.0)
        .with_seed(seed);
        drive_transfer(&cfg).total_mb()
    };
    assert_ne!(run(1), run(2), "seeds must actually matter");
}
