//! Integration tests for the future-work extensions, exercised through the
//! facade: GridFTP protocol + tuners, disk-to-disk datasets, destination
//! modelling, persistent sessions, topology-built networks.

use std::sync::Arc;
use xferopt::dataset::{climate_dataset, DiskModel, DiskTransfer, DiskTransferObjective};
use xferopt::gridftp::{client, GridFtpServer, Session};
use xferopt::loopback::{ShaperConfig, TokenBucket};
use xferopt::net::TopologyBuilder;
use xferopt::prelude::*;
use xferopt::tuners::offline::maximize;

/// The full real-socket loop: a tuner choosing parallelism for striped
/// GridFTP puts through a shared bottleneck.
#[test]
fn tuner_drives_gridftp_parallelism() {
    let server = GridFtpServer::start().unwrap();
    let bucket = Arc::new(TokenBucket::new(ShaperConfig::rate_mbs(150.0)));
    let mut tuner = CdTuner::new(Domain::new(&[(1, 6)]), vec![1], 5.0);
    let mut x = tuner.initial();
    for epoch in 0..4 {
        let report = client::put(
            server.control_addr(),
            client::PutConfig::new(format!("epoch{epoch}"), 2 * 1024 * 1024)
                .with_parallelism(x[0] as u32)
                .with_block_bytes(128 * 1024)
                .with_bucket(Arc::clone(&bucket)),
        )
        .unwrap();
        assert!(report.complete && report.verified, "epoch {epoch}");
        x = tuner.observe(&x.clone(), report.throughput_mbs);
        assert!((1..=6).contains(&x[0]));
    }
}

/// Persistent sessions are the "no restart" primitive: many puts, one
/// control connection, verified end to end.
#[test]
fn persistent_session_many_epochs() {
    let server = GridFtpServer::start().unwrap();
    let mut session = Session::connect(server.control_addr()).unwrap();
    for np in [1u32, 2, 4] {
        let r = session
            .put(&format!("s{np}"), 512 * 1024, np, 64 * 1024)
            .unwrap();
        assert!(r.complete && r.verified);
    }
    assert_eq!(session.puts(), 3);
    session.quit().unwrap();
}

/// Disk-to-disk: the tuners must discover that a small-file archive wants
/// pipelining while a huge-file set wants per-file parallelism (through the
/// facade, as a user would write it).
#[test]
fn disk_objective_optimum_depends_on_dataset() {
    let climate = DiskTransfer::new(
        climate_dataset(9),
        DiskModel::parallel_fs(),
        DiskModel::parallel_fs(),
    );
    let mut obj = DiskTransferObjective::new(climate, 1, 0.0);
    let mut tuner = NelderMeadTuner::new(DiskTransferObjective::domain(), vec![2, 8, 1], 2.0);
    let r = maximize(&mut tuner, 300, |x| obj.evaluate(x));
    // 2000 × ~50 MB files: the optimizer must turn pipelining well above 1.
    assert!(
        r.best[2] > 2,
        "small-file archive needs pipelining: best={:?}",
        r.best
    );
}

/// A user-built topology (ESnet-like triangle) plugged into a full World:
/// transfers over builder-derived paths behave like hand-built ones.
#[test]
fn topology_builder_feeds_a_world() {
    let mut b = TopologyBuilder::new().with_half_streams(16.0);
    for s in ["anl", "hub", "lab"] {
        b.add_site(s);
    }
    b.connect("anl", "hub", 5000.0, 1.0, 1e-6);
    b.connect("hub", "lab", 1250.0, 20.0, 1e-5);
    let (net, paths) = b.build(&[("anl", "lab")]).unwrap();

    let mut world = World::new(net, 5);
    let src = world.add_host(xferopt::host::nehalem());
    let cfg = TransferConfig::memory_to_memory(src, paths[0])
        .with_params(StreamParams::new(8, 8))
        .with_noise(0.0, 1.0);
    let tid = world.add_transfer(cfg);
    world.step(SimDuration::from_secs(60));
    let rate = world.goodput_mbs(tid);
    assert!(rate > 0.0 && rate <= 1250.0, "bottleneck bound: {rate}");
}

/// Destination modelling through the scenario presets: a loaded receiver
/// degrades throughput, and more streams claim it back.
#[test]
fn destination_extension_through_presets() {
    let mut pw = PaperWorld::new(21);
    pw.world.set_compute_jobs(pw.dst_uchicago, 32);
    let tid = pw.start_transfer_with_dst(Route::UChicago, StreamParams::globus_default());
    pw.world.step(SimDuration::from_secs(30));
    let es = pw
        .world
        .begin_epoch(tid, StreamParams::globus_default(), false);
    pw.world.step(SimDuration::from_secs(60));
    let degraded = pw.world.end_epoch(es).observed_mbs;
    let es = pw.world.begin_epoch(tid, StreamParams::new(48, 8), false);
    pw.world.step(SimDuration::from_secs(60));
    let recovered = pw.world.end_epoch(es).observed_mbs;
    assert!(
        recovered > 2.0 * degraded,
        "receiver fair-share recovery: {degraded} -> {recovered}"
    );
}

/// The extra optimizers slot into the same experiments as the paper's.
#[test]
fn extra_tuners_are_drop_in() {
    use xferopt::tuners::{GoldenSectionTuner, RandomSearchTuner, RecordingTuner};
    let f = |x: &Point| 4000.0 - ((x[0] - 33) as f64).powi(2);
    let mut golden = GoldenSectionTuner::new(Domain::new(&[(1, 256)]), vec![2], 5.0);
    let r = maximize(&mut golden, 100, f);
    assert!((r.best[0] - 33).abs() <= 6, "golden: {:?}", r.best);

    let mut random = RecordingTuner::new(RandomSearchTuner::new(
        Domain::new(&[(1, 256)]),
        vec![2],
        25,
        5.0,
    ));
    let r = maximize(&mut random, 100, f);
    assert!(
        r.best_value > f(&vec![2]),
        "random must improve on the start"
    );
    assert!(!random.history().is_empty());
}

/// Modern hardware still wants tuning: on a 64-core DTN behind a 100 Gb/s
/// NIC, restarts are cheap and CPU rarely binds, but the Globus default's
/// 16 streams still cannot saturate an AIMD-derated long path — adaptive
/// concurrency keeps paying.
#[test]
fn tuning_still_pays_on_a_modern_dtn() {
    use xferopt::net::{Link, Network, Path};
    let mut net = Network::new();
    let nic = net.add_link(Link::from_gbps("dtn-nic", 100.0).with_half_streams(24.0));
    let path = net.add_path(
        Path::new("dtn->remote", vec![nic])
            .with_rtt_ms(40.0)
            .with_loss(1e-5)
            .with_wmax_bytes(16.0 * 1024.0 * 1024.0),
    );
    let mut world = World::new(net, 13);
    let src = world.add_host(xferopt::host::modern_dtn());
    let tid = world.add_transfer(
        TransferConfig::memory_to_memory(src, path)
            .with_params(StreamParams::globus_default())
            .with_noise(0.0, 1.0),
    );
    world.step(SimDuration::from_secs(10));
    let measure = |world: &mut World, p: StreamParams| {
        let es = world.begin_epoch(tid, p, false);
        world.step(SimDuration::from_secs(60));
        world.end_epoch(es).observed_mbs
    };
    let default = measure(&mut world, StreamParams::globus_default());
    let tuned = measure(&mut world, StreamParams::new(16, 8));
    assert!(
        tuned > 1.4 * default,
        "100G NIC still underfilled by 16 streams: {default:.0} -> {tuned:.0}"
    );
    // And restarts barely cost anything on this hardware.
    let startup = world.set_params(tid, StreamParams::new(16, 8), true);
    assert!(
        startup < 2.5,
        "modern restart should be cheap: {startup:.2}s"
    );
}

/// Loopback CPU hogs + shaped GridFTP puts: throughput under hogs is not
/// higher than without (the qualitative `ext.cmp` effect on real sockets).
#[test]
fn gridftp_under_cpu_hogs() {
    use xferopt::loopback::CpuHogs;
    let server = GridFtpServer::start().unwrap();
    let size = 4 * 1024 * 1024u64;
    let quiet = client::put(
        server.control_addr(),
        client::PutConfig::new("quiet", size).with_parallelism(2),
    )
    .unwrap();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let hogs = CpuHogs::spawn((cores * 2) as u32);
    let loaded = client::put(
        server.control_addr(),
        client::PutConfig::new("loaded", size).with_parallelism(2),
    )
    .unwrap();
    drop(hogs);
    assert!(quiet.complete && loaded.complete);
    // Scheduling noise makes a strict inequality flaky; allow 30% slack.
    assert!(
        loaded.throughput_mbs < quiet.throughput_mbs * 1.3,
        "hogs should not make transfers faster: {:.0} vs {:.0}",
        loaded.throughput_mbs,
        quiet.throughput_mbs
    );
}
