//! Workspace-level fleet orchestrator tests: golden report snapshot,
//! byte-determinism under every policy, shared-link contention at scale, and
//! the warm-start convergence claim.
//!
//! The golden files live in `tests/golden/fleet/`; re-bless intentional
//! format changes with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test fleet
//! ```

use xferopt::orchestrator::{run_fleet, FleetConfig, HistoryStore, JobState, Policy, Workload};

/// The fixed scenario behind the golden snapshot: 12 synthetic jobs under
/// shortest-job-first, seed 7, one hour horizon.
fn golden_cfg() -> FleetConfig {
    FleetConfig {
        policy: Policy::Sjf,
        seed: 7,
        horizon_s: 3600.0,
        ..FleetConfig::default()
    }
}

fn golden_workload() -> Workload {
    Workload::synthetic(12, 7)
}

fn check_golden(path: &str, actual: &str, what: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap())
            .expect("create golden dir");
        std::fs::write(path, actual).expect("write golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden snapshot missing; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        actual, golden,
        "{what} drifted from {path}; if the change is intentional, \
         re-bless with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_fleet_report_matches_snapshot() {
    let mut h = HistoryStore::in_memory();
    let out = run_fleet(&golden_workload(), &golden_cfg(), &mut h);
    check_golden(
        "tests/golden/fleet/report.txt",
        &out.report.render(),
        "fleet report",
    );
}

#[test]
fn fleet_runs_are_byte_deterministic_under_every_policy() {
    for policy in Policy::all() {
        let cfg = FleetConfig {
            policy,
            ..golden_cfg()
        };
        let a = run_fleet(&golden_workload(), &cfg, &mut HistoryStore::in_memory());
        let b = run_fleet(&golden_workload(), &cfg, &mut HistoryStore::in_memory());
        assert_eq!(
            a.report.render(),
            b.report.render(),
            "policy {policy}: report must be byte-identical"
        );
        assert_eq!(a.decisions_jsonl, b.decisions_jsonl, "policy {policy}");
        assert_eq!(a.telemetry_jsonl, b.telemetry_jsonl, "policy {policy}");
        assert_eq!(a.report.to_csv(), b.report.to_csv(), "policy {policy}");
    }
}

#[test]
fn ten_concurrent_jobs_share_a_link_under_every_policy() {
    // Ten identical jobs, all arriving at t=0 on the shared UChicago route.
    // The 512-stream budget holds four 128-stream reservations plus partial
    // grants, so the link is genuinely contended; every policy must still
    // finish all ten deterministically.
    let w = Workload::new(
        (0..10)
            .map(|i| {
                xferopt::orchestrator::JobSpec::new(i, 0.0, 120_000.0)
                    .with_priority(1 + (i % 4) as u32)
            })
            .collect(),
    );
    for policy in Policy::all() {
        let cfg = FleetConfig {
            policy,
            horizon_s: 7200.0,
            ..FleetConfig::default()
        };
        let out = run_fleet(&w, &cfg, &mut HistoryStore::in_memory());
        assert_eq!(
            out.report.count(JobState::Completed),
            10,
            "policy {policy}:\n{}",
            out.report.render()
        );
        // The fleet actually overlapped: total busy time far exceeds the
        // makespan a serial schedule would need.
        let makespan = out.report.makespan_s().expect("jobs completed");
        assert!(
            makespan < 7200.0,
            "policy {policy}: makespan {makespan} too close to horizon"
        );
        // Per-job audit logs are namespaced and present.
        assert!(out.decisions_jsonl.contains("\"ns\":\"job0\""), "{policy}");
        assert!(!out.telemetry_jsonl.is_empty(), "{policy}");
    }
}

#[test]
fn warm_start_converges_faster_than_cold_in_the_golden_scenario() {
    // Build history with a cold pass over the contended scenario, then rerun
    // warm: the warm jobs must reach 90 % of their best throughput sooner on
    // average (the history store's raison d'être).
    let mut h = HistoryStore::in_memory();
    let cold_cfg = FleetConfig {
        warm_start: false,
        horizon_s: 7200.0,
        ..FleetConfig::default()
    };
    let cold = run_fleet(&Workload::contended(4), &cold_cfg, &mut h);
    assert!(h.len() >= 4, "cold pass must seed the history store");
    let cold_t90 = cold
        .report
        .mean_time_to_90_s(false)
        .expect("cold jobs converged");

    let warm_cfg = FleetConfig {
        warm_start: true,
        ..cold_cfg
    };
    let warm = run_fleet(&Workload::contended(4), &warm_cfg, &mut h);
    let warmed: Vec<_> = warm
        .report
        .outcomes
        .iter()
        .filter(|o| o.warm_distance.is_some())
        .collect();
    assert!(
        !warmed.is_empty(),
        "warm pass must match history:\n{}",
        warm.report.render()
    );
    let warm_t90 = warm
        .report
        .mean_time_to_90_s(true)
        .expect("warm jobs converged");
    assert!(
        warm_t90 < cold_t90,
        "warm start must cut time-to-90%: warm {warm_t90} vs cold {cold_t90}\n\
         cold:\n{}\nwarm:\n{}",
        cold.report.render(),
        warm.report.render()
    );
}

#[test]
fn history_store_round_trips_through_disk() {
    let dir = std::env::temp_dir().join(format!("xferopt-fleet-hist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = FleetConfig {
        horizon_s: 7200.0,
        ..FleetConfig::default()
    };
    let appended = {
        let mut h = HistoryStore::open(&dir).expect("open history dir");
        let out = run_fleet(&Workload::contended(2), &cfg, &mut h);
        out.history_appended
    };
    assert!(appended >= 2);
    let h = HistoryStore::open(&dir).expect("reopen history dir");
    assert_eq!(h.len(), appended, "records persist across open()");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
