//! Workspace-level supervision tests (DESIGN.md §12): chaos determinism,
//! the no-job-lost guarantee under every fleet fault preset, kill/resume
//! byte-equivalence, the golden chaos snapshot, and the history store's
//! malformed-line accounting.
//!
//! Golden files live in `tests/golden/fleet/`; re-bless intentional format
//! changes with `UPDATE_GOLDEN=1 cargo test --test supervision`.

use xferopt::orchestrator::{
    resume_fleet, run_fleet, Checkpoint, FleetConfig, FleetSim, HistoryStore, JobSpec, JobState,
    Policy, Workload,
};
use xferopt::scenarios::FaultProfile;

fn check_golden(path: &str, actual: &str, what: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap())
            .expect("create golden dir");
        std::fs::write(path, actual).expect("write golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden snapshot missing; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        actual, golden,
        "{what} drifted from {path}; if the change is intentional, \
         re-bless with UPDATE_GOLDEN=1"
    );
}

/// The fixed chaos scenario behind the golden snapshot: four long transfers
/// on the shared UChicago route under the flaky-link fleet preset, long
/// enough that the plan's multi-epoch outages land mid-run.
fn chaos_cfg() -> FleetConfig {
    FleetConfig {
        policy: Policy::Fifo,
        seed: 7,
        horizon_s: 7200.0,
        faults: Some(FaultProfile::FlakyLink),
        ..FleetConfig::default()
    }
}

fn chaos_workload() -> Workload {
    Workload::new(
        (0..4)
            .map(|i| JobSpec::new(i, i as f64 * 60.0, 2_000_000.0))
            .collect(),
    )
}

#[test]
fn golden_chaos_report_matches_snapshot() {
    let out = run_fleet(
        &chaos_workload(),
        &chaos_cfg(),
        &mut HistoryStore::in_memory(),
    );
    assert!(
        out.report.supervision.quarantines > 0,
        "golden chaos scenario must exercise the watchdog:\n{}",
        out.report.render()
    );
    check_golden(
        "tests/golden/fleet/chaos_report.txt",
        &out.report.render(),
        "chaos fleet report",
    );
}

#[test]
fn ten_job_chaos_runs_are_byte_deterministic() {
    // Same seed + same fault plan ⇒ byte-identical everything, for every
    // preset (the fleet is a pure function of its inputs even under chaos).
    let w = Workload::synthetic(10, 7);
    for profile in FaultProfile::ALL {
        let cfg = FleetConfig {
            faults: Some(profile),
            ..chaos_cfg()
        };
        let a = run_fleet(&w, &cfg, &mut HistoryStore::in_memory());
        let b = run_fleet(&w, &cfg, &mut HistoryStore::in_memory());
        assert_eq!(a.report.render(), b.report.render(), "{profile}");
        assert_eq!(a.report.to_csv(), b.report.to_csv(), "{profile}");
        assert_eq!(a.decisions_jsonl, b.decisions_jsonl, "{profile}");
        assert_eq!(a.telemetry_jsonl, b.telemetry_jsonl, "{profile}");
        assert_eq!(a.supervision_jsonl, b.supervision_jsonl, "{profile}");
        assert_eq!(a.metrics_jsonl, b.metrics_jsonl, "{profile}");
    }
}

#[test]
fn no_job_is_lost_under_any_fleet_fault_preset() {
    // Every admitted job must end terminal — Completed, or Failed with its
    // attempt budget exhausted. Nothing may stay stuck in quarantine or in
    // the queue once the run drains (generous horizon).
    for profile in FaultProfile::ALL {
        let cfg = FleetConfig {
            horizon_s: 4.0 * 3600.0,
            faults: Some(profile),
            ..chaos_cfg()
        };
        let out = run_fleet(&chaos_workload(), &cfg, &mut HistoryStore::in_memory());
        for o in &out.report.outcomes {
            assert!(
                matches!(o.state, JobState::Completed | JobState::Failed),
                "{profile}: {} ended {} — job lost:\n{}",
                o.id,
                o.state.name(),
                out.report.render()
            );
        }
        // Supervision bookkeeping is coherent: every quarantine is matched
        // by a requeue or a terminal failure.
        let s = out.report.supervision;
        assert!(
            s.quarantines >= s.requeues,
            "{profile}: {} requeues but only {} quarantines",
            s.requeues,
            s.quarantines
        );
        assert_eq!(
            s.failed,
            out.report.count(JobState::Failed) as u64,
            "{profile}: failed counter must match failed outcomes"
        );
    }
}

#[test]
fn kill_at_any_tick_then_resume_is_byte_identical() {
    // The crash/resume contract: for several kill points k, serializing a
    // checkpoint at tick k and resuming from it reproduces the uninterrupted
    // run byte for byte — reports, audit logs, telemetry, supervision.
    let cfg = chaos_cfg();
    let w = chaos_workload();
    let full = run_fleet(&w, &cfg, &mut HistoryStore::in_memory());
    for k in [1u64, 17, 60, 240] {
        let text = {
            let mut h = HistoryStore::in_memory();
            let mut sim = FleetSim::new(&w, &cfg, &mut h);
            while sim.tick_index() < k {
                assert!(sim.tick(), "run ended before kill tick {k}");
            }
            sim.checkpoint()
        };
        let ck = Checkpoint::parse(&text).unwrap_or_else(|e| panic!("tick {k}: {e}"));
        assert_eq!(ck.tick, k);
        let resumed = resume_fleet(&ck, &mut HistoryStore::in_memory())
            .unwrap_or_else(|e| panic!("tick {k}: {e}"));
        assert_eq!(full.report.render(), resumed.report.render(), "tick {k}");
        assert_eq!(full.decisions_jsonl, resumed.decisions_jsonl, "tick {k}");
        assert_eq!(full.telemetry_jsonl, resumed.telemetry_jsonl, "tick {k}");
        assert_eq!(
            full.supervision_jsonl, resumed.supervision_jsonl,
            "tick {k}"
        );
        assert_eq!(full.metrics_jsonl, resumed.metrics_jsonl, "tick {k}");
    }
}

#[test]
fn resume_refuses_a_checkpoint_from_a_different_run() {
    // Checkpoint from the chaos run, but doctored to claim a different seed:
    // the replay's digest cannot match and resume must refuse.
    let mut h = HistoryStore::in_memory();
    let mut sim = FleetSim::new(&chaos_workload(), &chaos_cfg(), &mut h);
    for _ in 0..40 {
        assert!(sim.tick());
    }
    let text = sim.checkpoint().replace("\"seed\":7", "\"seed\":8");
    // First line of defense: the content hash over the serialized inputs
    // catches the edit at parse time.
    let err = Checkpoint::parse(&text).expect_err("content hash must catch the edit");
    assert!(err.contains("text corrupted"), "{err}");
    // A doctored pre-journal checkpoint (no content hash) parses, but the
    // replay digest still refuses it.
    let stripped = text
        .lines()
        .map(|l| match l.find(",\"text_fnv\"") {
            Some(cut) => format!("{}}}", &l[..cut]),
            None => l.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n");
    let ck = Checkpoint::parse(&stripped).expect("still parses without the hash");
    let err = resume_fleet(&ck, &mut HistoryStore::in_memory())
        .expect_err("digest must not match a different seed");
    assert!(err.contains("digest mismatch"), "{err}");
}

#[test]
fn supervision_is_observational_by_default() {
    // With supervision compiled in but no fault plan, a fleet run reports
    // exactly what it did before supervision existed: no supervision line,
    // no events, no metrics (the golden fleet snapshot enforces the bytes).
    let cfg = FleetConfig {
        policy: Policy::Sjf,
        seed: 7,
        horizon_s: 3600.0,
        ..FleetConfig::default()
    };
    let out = run_fleet(
        &Workload::synthetic(12, 7),
        &cfg,
        &mut HistoryStore::in_memory(),
    );
    assert!(out.report.supervision.is_quiet());
    assert!(out.supervision_jsonl.is_empty());
    assert!(out.metrics_jsonl.is_empty());
    assert!(!out.report.render().contains("supervision"));
}

#[test]
fn history_store_counts_malformed_lines_and_surfaces_a_metric() {
    let dir = std::env::temp_dir().join(format!("xferopt-sup-hist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dir");
    std::fs::write(
        dir.join("history.jsonl"),
        "{\"kind\":\"history\",\"route\":\"anl->uchicago\",\"tuner\":\"cs-tuner\",\
         \"ext_streams\":0,\"cmp_jobs\":0,\"best\":[8],\"achieved_mbs\":3000}\n\
         this line is garbage\n\
         {\"kind\":\"history\",\"route\":\"mars\"}\n",
    )
    .expect("seed history file");
    let mut h = HistoryStore::open(&dir).expect("open");
    assert_eq!(h.len(), 1, "one valid record");
    assert_eq!(h.skipped(), 2, "two malformed lines counted");
    let cfg = FleetConfig {
        horizon_s: 1800.0,
        ..FleetConfig::default()
    };
    let out = run_fleet(&Workload::contended(1), &cfg, &mut h);
    assert!(
        out.metrics_jsonl
            .contains("\"name\":\"history_lines_skipped\""),
        "metric must surface the skipped count:\n{}",
        out.metrics_jsonl
    );
    assert!(out.metrics_jsonl.contains("\"value\":2"));
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Component partitioning under supervision (DESIGN.md §15): fault-plan link
/// outages, breaker trips, and quarantine requeues all happen *inside* a
/// job's link-sharing component, so a multi-site chaos run must (a) keep
/// every job accounted for, (b) conserve moved bytes across shard counts,
/// and (c) produce byte-identical reports however many workers tick it.
#[test]
fn multi_site_chaos_conserves_jobs_and_bytes_across_shard_counts() {
    use xferopt::orchestrator::{run_fleet_sharded, ShardPlan};

    // Three sites, long transfers, flaky-link chaos: the fault plan fires
    // independently per site world, so breaker trips and quarantines land in
    // several components.
    let workload = Workload::new(
        (0..9)
            .map(|i| JobSpec::new(i, (i / 3) as f64 * 60.0, 1_200_000.0).with_site(i as u32 % 3))
            .collect(),
    );
    let cfg = FleetConfig {
        horizon_s: 4.0 * 3600.0,
        ..chaos_cfg()
    };

    let plan = ShardPlan::compute(&workload);
    assert_eq!(plan.len(), 3, "three sites give three components");

    let mut h = HistoryStore::in_memory();
    let reference = run_fleet_sharded(&workload, &cfg, &mut h, 1);

    // (a) no job lost: every submitted job has exactly one terminal outcome.
    assert_eq!(reference.report.outcomes.len(), 9);
    let mut ids: Vec<u64> = reference.report.outcomes.iter().map(|o| o.id.0).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..9).collect::<Vec<_>>(), "job ids must be complete");
    for o in &reference.report.outcomes {
        assert!(
            matches!(o.state, JobState::Completed | JobState::Failed),
            "{} ended {} — job lost:\n{}",
            o.id,
            o.state.name(),
            reference.report.render()
        );
    }
    // The chaos actually exercised supervision (else this test is vacuous).
    assert!(
        !reference.report.supervision.is_quiet(),
        "flaky-link chaos must trip supervision:\n{}",
        reference.report.render()
    );

    // (b)+(c) byte conservation and report identity for every shard count.
    for shards in [2usize, 4, 8] {
        let mut h = HistoryStore::in_memory();
        let out = run_fleet_sharded(&workload, &cfg, &mut h, shards);
        assert_eq!(
            reference.report.render(),
            out.report.render(),
            "shards={shards}: chaos report diverged"
        );
        assert_eq!(
            reference.report.total_moved_mb(),
            out.report.total_moved_mb(),
            "shards={shards}: moved bytes diverged"
        );
        assert_eq!(
            reference.supervision_jsonl, out.supervision_jsonl,
            "shards={shards}: supervision events diverged"
        );
    }
}

/// A breaker trip or quarantine must never move a job *between* components:
/// the shard plan is a pure function of the workload (routes and sites), so
/// the same job set maps to the same component before and after any
/// supervision event — requeues re-enter their own component's queue.
#[test]
fn shard_plan_is_stable_under_supervision_events() {
    use xferopt::orchestrator::ShardPlan;

    let workload = Workload::new(
        (0..6)
            .map(|i| JobSpec::new(i, 0.0, 800_000.0).with_site(i as u32 % 2))
            .collect(),
    );
    let before = ShardPlan::compute(&workload);
    // Recompute after a chaos run: membership depends only on the workload.
    let cfg = FleetConfig {
        horizon_s: 2.0 * 3600.0,
        ..chaos_cfg()
    };
    let _ = xferopt::orchestrator::run_fleet_sharded(
        &workload,
        &cfg,
        &mut HistoryStore::in_memory(),
        4,
    );
    let after = ShardPlan::compute(&workload);
    assert_eq!(before.len(), after.len());
    for (a, b) in before.components().iter().zip(after.components()) {
        let aj: Vec<u64> = a.jobs().iter().map(|j| j.id.0).collect();
        let bj: Vec<u64> = b.jobs().iter().map(|j| j.id.0).collect();
        assert_eq!(aj, bj, "component membership drifted");
    }
}
