//! Cross-crate integration: tuners driving objectives built from the other
//! substrates (fluid world, dynamic window sim, loopback sockets).

use xferopt::net::dynamic::DynamicSim;
use xferopt::net::{CongestionControl, Link, Network, Path};
use xferopt::prelude::*;
use xferopt::tuners::offline::maximize;

/// Use the *world* as a static objective: freeze time dependence by
/// measuring a fresh world per evaluation, and let the offline optimizer
/// find the critical concurrency — it must approximately agree with a brute
/// force sweep.
#[test]
fn offline_optimizer_agrees_with_brute_force_on_world_objective() {
    let measure = |nc: u32| {
        let mut pw = PaperWorld::new(99);
        pw.world.set_compute_jobs(pw.source, 16);
        let tid = pw.start_quiet_transfer(Route::UChicago, StreamParams::new(nc, 8));
        pw.world.step(SimDuration::from_secs(40));
        let es = pw.world.begin_epoch(tid, StreamParams::new(nc, 8), false);
        pw.world.step(SimDuration::from_secs(60));
        pw.world.end_epoch(es).observed_mbs
    };
    // Brute force over a coarse grid.
    let brute = (1..=96)
        .step_by(5)
        .max_by(|&a, &b| measure(a).partial_cmp(&measure(b)).unwrap())
        .unwrap();
    // Compass search on the same objective.
    let mut tuner = CompassTuner::new(Domain::new(&[(1, 128)]), vec![2], 8.0, 2.0);
    let r = maximize(&mut tuner, 200, |x| measure(x[0] as u32));
    let found = r.best[0] as u32;
    let best_val = measure(brute);
    let found_val = measure(found);
    assert!(
        found_val >= 0.93 * best_val,
        "compass found nc={found} ({found_val:.0} MB/s) vs brute nc={brute} ({best_val:.0} MB/s)"
    );
}

/// Drive a tuner with throughput measured by the *dynamic* AIMD window
/// simulation instead of the quasi-static allocator: more streams must win
/// on a lossy path, and the tuner must discover that.
#[test]
fn tuner_over_dynamic_window_simulation() {
    let measure = |streams: u32| {
        let mut net = Network::new();
        let l = net.add_link(Link::new("wan", 2500.0));
        let p = net.add_path(Path::new("p", vec![l]).with_rtt_ms(33.0).with_loss(3e-5));
        let f = net.add_flow(p, streams, CongestionControl::HTcp);
        let mut sim = DynamicSim::new(5);
        sim.sync_streams(&net);
        let mut total = 0.0;
        let steps = 600; // 30 simulated seconds at 50 ms
        for _ in 0..steps {
            total += sim.step(&net, 0.05)[&f].rate_mbs;
        }
        total / steps as f64
    };
    let mut tuner = NelderMeadTuner::new(Domain::new(&[(1, 64)]), vec![1], 5.0);
    let r = maximize(&mut tuner, 60, |x| measure(x[0] as u32));
    assert!(
        r.best[0] >= 4,
        "dynamic sim must reward parallel streams: settled at {:?}",
        r.best
    );
    assert!(r.best_value > measure(1) * 1.5);
}

/// The full stack, sockets included: a cd-tuner steps concurrency against
/// the loopback harness and every proposed point stays valid.
#[test]
fn cd_tuner_over_loopback_sockets() {
    use std::time::Duration;
    use xferopt::loopback::{LoopbackHarness, ShaperConfig};
    let harness = LoopbackHarness::start(ShaperConfig::rate_mbs(200.0)).unwrap();
    let domain = Domain::new(&[(1, 6)]);
    let mut tuner = CdTuner::new(domain.clone(), vec![1], 5.0);
    let mut x = tuner.initial();
    for _ in 0..5 {
        let mbs = harness
            .measure(x[0] as u32, 1, Duration::from_millis(120))
            .unwrap();
        assert!(mbs >= 0.0);
        x = tuner.observe(&x.clone(), mbs);
        assert!(domain.contains(&x));
    }
    assert!(harness.sink_bytes() > 0);
}

/// Tune against the *dynamic-window* world: per-stream AIMD slow start and
/// loss are simulated rather than assumed, and the nm-tuner must still beat
/// the static default on a lossy long-RTT path where parallelism pays.
#[test]
fn nm_tuner_beats_default_under_dynamic_fidelity() {
    use xferopt::net::{Link, Network, Path};
    let run = |tuner_kind: TunerKind| {
        let mut net = Network::new();
        let l = net.add_link(Link::new("wan", 2000.0));
        let path = net.add_path(
            Path::new("p", vec![l])
                .with_rtt_ms(60.0)
                .with_loss(4e-5)
                .with_wmax_bytes(2.0 * 1024.0 * 1024.0), // 2 MiB ⇒ ~35 MB/s/stream
        );
        let mut world = World::new(net, 31);
        let src = world.add_host(xferopt::host::nehalem());
        let tid = world.add_transfer(
            TransferConfig::memory_to_memory(src, path)
                .with_params(StreamParams::new(2, 2))
                .with_noise(0.0, 1.0),
        );
        world.enable_dynamic_network(0.1);
        let dims = TuneDims::NcOnly { np: 2 };
        let mut tuner = tuner_kind.build(dims.domain(), vec![2]);
        let restarts = tuner_kind != TunerKind::Default;
        let mut x = tuner.initial();
        let mut total = 0.0;
        for epoch in 0..30 {
            let es = world.begin_epoch(tid, dims.to_params(&x), restarts);
            world.step(SimDuration::from_secs(30));
            let r = world.end_epoch(es);
            if epoch >= 20 {
                total += r.observed_mbs;
            }
            x = tuner.observe(&x, r.observed_mbs);
        }
        total / 10.0
    };
    let default = run(TunerKind::Default);
    let nm = run(TunerKind::Nm);
    assert!(
        nm > 1.5 * default,
        "nm must exploit parallelism under simulated AIMD: {nm:.0} vs {default:.0}"
    );
}

/// Tuning changes propagate through every layer: a mid-run parameter change
/// through the public API must show up in the network allocation, the host
/// registry, and the byte accounting.
#[test]
fn world_layers_stay_consistent() {
    let mut pw = PaperWorld::new(1);
    let tid = pw.start_quiet_transfer(Route::Tacc, StreamParams::new(2, 8));
    pw.world.step(SimDuration::from_secs(20));
    let before = pw.world.goodput_mbs(tid);
    let moved_before = pw.world.moved_mb(tid);
    assert!(before > 0.0 && moved_before > 0.0);

    // Seamless change to a much larger configuration.
    pw.world.set_params(tid, StreamParams::new(20, 8), false);
    pw.world.step(SimDuration::from_secs(20));
    let after = pw.world.goodput_mbs(tid);
    assert!(
        after > before,
        "bigger nc must raise TACC goodput: {before} -> {after}"
    );
    assert!(pw.world.moved_mb(tid) > moved_before);
    assert_eq!(pw.world.params(tid), StreamParams::new(20, 8));
}
