//! Shard-equivalence harness (DESIGN.md §15): the component-sharded fleet
//! runner must be a *byte-level* no-op relative to the single-threaded
//! reference, for every shard count, across every output surface.
//!
//! Layers of defence:
//!
//! 1. property tests — random workloads × policies × fault tapes × site
//!    counts, asserting `--shards {2,4,8}` reproduce the `--shards 1`
//!    reference byte-for-byte on the report, CSV, decision audit JSONL,
//!    telemetry JSONL, supervision JSONL, and metrics snapshot, plus the
//!    mid-run checkpoint (whose digest is shard-count independent);
//! 2. single-component workloads must also match the plain `run_fleet`
//!    path bit-for-bit (the structural theorem that keeps every existing
//!    golden valid with any shard count);
//! 3. kill-and-resume across shard counts — checkpoint under `--shards 4`,
//!    resume under a different count, byte-identical final outputs;
//! 4. the on-disk history file must be byte-stable across shard counts
//!    (appends buffered per tick and flushed in job-id order).

use proptest::prelude::*;
use xferopt::orchestrator::{
    resume_fleet_sharded, run_fleet, run_fleet_sharded, Checkpoint, FleetConfig, FleetOutcome,
    HistoryStore, Policy, ShardedFleetSim, Workload,
};
use xferopt::scenarios::FaultProfile;

fn cfg(policy: Policy, seed: u64, faults: Option<FaultProfile>) -> FleetConfig {
    FleetConfig {
        policy,
        seed,
        horizon_s: 3600.0,
        faults,
        audit: true,
        ..FleetConfig::default()
    }
}

/// Every output surface of a fleet run, byte for byte.
fn assert_identical(a: &FleetOutcome, b: &FleetOutcome, what: &str) {
    assert_eq!(a.report.render(), b.report.render(), "{what}: report");
    assert_eq!(a.report.to_csv(), b.report.to_csv(), "{what}: csv");
    assert_eq!(
        a.decisions_jsonl, b.decisions_jsonl,
        "{what}: decision audit"
    );
    assert_eq!(a.telemetry_jsonl, b.telemetry_jsonl, "{what}: telemetry");
    assert_eq!(
        a.supervision_jsonl, b.supervision_jsonl,
        "{what}: supervision events"
    );
    assert_eq!(a.metrics_jsonl, b.metrics_jsonl, "{what}: metrics");
    assert_eq!(
        a.history_appended, b.history_appended,
        "{what}: history appends"
    );
}

fn policy_strategy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Fifo),
        Just(Policy::Sjf),
        Just(Policy::WeightedFair),
    ]
}

fn fault_strategy() -> impl Strategy<Value = Option<FaultProfile>> {
    prop_oneof![
        Just(None),
        Just(Some(FaultProfile::FlakyLink)),
        Just(Some(FaultProfile::DegradedWan)),
        Just(Some(FaultProfile::LossyTacc)),
    ]
}

proptest! {
    /// The headline harness: random workload + policy + fault tape + site
    /// count; every shard count must reproduce the reference bytes on every
    /// output, and the mid-run checkpoint must be shard-count independent.
    #[test]
    fn sharded_run_is_byte_identical_to_reference(
        jobs in 4usize..12,
        seed in 0u64..1000,
        sites in 1u32..5,
        policy in policy_strategy(),
        faults in fault_strategy(),
    ) {
        let wl = Workload::synthetic_sites(jobs, seed, sites);
        let config = cfg(policy, seed, faults);

        let mut h_ref = HistoryStore::in_memory();
        let reference = run_fleet_sharded(&wl, &config, &mut h_ref, 1);

        // Mid-run checkpoint under the reference execution.
        let ck_ref = {
            let mut h = HistoryStore::in_memory();
            let mut sim = ShardedFleetSim::new(&wl, &config, &mut h, 1);
            for _ in 0..25 { if !sim.tick() { break; } }
            sim.checkpoint()
        };

        for shards in [2usize, 4, 8] {
            let mut h = HistoryStore::in_memory();
            let out = run_fleet_sharded(&wl, &config, &mut h, shards);
            assert_identical(&reference, &out, &format!("shards={shards}"));
            prop_assert_eq!(
                h_ref.records().iter().map(|r| r.to_json()).collect::<Vec<_>>(),
                h.records().iter().map(|r| r.to_json()).collect::<Vec<_>>(),
                "shards={}: history record order", shards
            );

            let ck = {
                let mut h = HistoryStore::in_memory();
                let mut sim = ShardedFleetSim::new(&wl, &config, &mut h, shards);
                for _ in 0..25 { if !sim.tick() { break; } }
                sim.checkpoint()
            };
            prop_assert_eq!(&ck_ref, &ck, "shards={}: checkpoint bytes", shards);
        }
    }

    /// Single-component workloads must match the *plain* single-threaded
    /// `run_fleet` bit-for-bit — the invariant that keeps every existing
    /// golden snapshot valid under any `--shards` value.
    #[test]
    fn single_site_sharded_matches_plain_run_fleet(
        jobs in 3usize..10,
        seed in 0u64..1000,
        policy in policy_strategy(),
        faults in fault_strategy(),
        shards in 1usize..9,
    ) {
        let wl = Workload::synthetic(jobs, seed);
        let config = cfg(policy, seed, faults);
        let mut h_plain = HistoryStore::in_memory();
        let plain = run_fleet(&wl, &config, &mut h_plain);
        let mut h_shard = HistoryStore::in_memory();
        let sharded = run_fleet_sharded(&wl, &config, &mut h_shard, shards);
        assert_identical(&plain, &sharded, &format!("plain vs shards={shards}"));
    }
}

/// Kill a sharded run mid-flight, checkpoint, and resume with a *different*
/// shard count: the checkpoint digest is taken over per-component state (in
/// workload order, not execution order), so the final outputs must be
/// byte-identical to the uninterrupted reference.
#[test]
fn kill_under_shards_4_resume_under_other_counts() {
    let wl = Workload::synthetic_sites(12, 9, 3);
    let config = cfg(Policy::Sjf, 9, Some(FaultProfile::FlakyLink));

    let mut h_full = HistoryStore::in_memory();
    let full = run_fleet_sharded(&wl, &config, &mut h_full, 1);

    for resume_shards in [1usize, 2, 8] {
        // Simulated crash at tick 37 under --shards 4.
        let mut h = HistoryStore::in_memory();
        let ck_text = {
            let mut sim = ShardedFleetSim::new(&wl, &config, &mut h, 4);
            while sim.tick_index() < 37 {
                assert!(sim.tick(), "run ended before the kill point");
            }
            sim.checkpoint()
        };
        let ck = Checkpoint::parse(&ck_text).expect("checkpoint parses");
        assert_eq!(ck.tick, 37);
        let resumed = resume_fleet_sharded(&ck, &mut h, resume_shards)
            .expect("digest verifies under a different shard count");
        assert_identical(&full, &resumed, &format!("resume shards={resume_shards}"));
        assert_eq!(
            h_full
                .records()
                .iter()
                .map(|r| r.to_json())
                .collect::<Vec<_>>(),
            h.records().iter().map(|r| r.to_json()).collect::<Vec<_>>(),
            "resume shards={resume_shards}: history records"
        );
    }
}

/// Regression for the concurrent-shard history ordering fix: with a
/// file-backed store, the on-disk `history.jsonl` must be byte-identical
/// whether the fleet ran monolithic or sharded — appends are buffered per
/// tick and flushed in job-id order by the runner, never interleaved by
/// worker-thread timing.
#[test]
fn on_disk_history_file_is_byte_stable_across_shard_counts() {
    let wl = Workload::synthetic_sites(12, 7, 4);
    let config = cfg(Policy::Sjf, 7, None);
    let base = std::env::temp_dir().join(format!("xferopt-shard-hist-{}", std::process::id()));

    let mut files = Vec::new();
    for shards in [1usize, 8] {
        let dir = base.join(format!("s{shards}"));
        std::fs::create_dir_all(&dir).expect("create history dir");
        let mut store = HistoryStore::open(&dir).expect("open history store");
        let out = run_fleet_sharded(&wl, &config, &mut store, shards);
        assert!(out.history_appended > 0, "scenario must append history");
        files.push(
            std::fs::read_to_string(dir.join("history.jsonl")).expect("history file written"),
        );
    }
    assert_eq!(files[0], files[1], "on-disk history bytes diverged");
    std::fs::remove_dir_all(&base).ok();
}
