//! Planet-scale route search + topo fleet tests (DESIGN.md §16): golden
//! leaderboard/placement snapshots, byte-determinism of the offline search,
//! placement-validity properties, breaker-aware re-routing under a regional
//! outage, byte conservation across route hops, and crash/resume identity
//! for a planet fleet.
//!
//! The golden files live in `tests/golden/routes/`; re-bless intentional
//! format changes with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test routes
//! ```

use proptest::prelude::*;
use xferopt::orchestrator::{
    resume_fleet, run_fleet, topo_workload, Checkpoint, FleetConfig, FleetSim, HistoryStore,
    JobState, TopoFleetConfig, Workload,
};
use xferopt::topo::{search_routes, PlacementTable, Planet, RouteCatalog, SearchConfig};

const PRESETS: [&str; 3] = ["mesh", "hub-spoke", "asymmetric"];

fn check_golden(path: &str, actual: &str, what: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap())
            .expect("create golden dir");
        std::fs::write(path, actual).expect("write golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden snapshot missing; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        actual, golden,
        "{what} drifted from {path}; if the change is intentional, \
         re-bless with UPDATE_GOLDEN=1"
    );
}

fn mesh_placement() -> PlacementTable {
    let planet = Planet::preset("mesh").expect("mesh preset");
    search_routes(&planet, &SearchConfig::default()).expect("search succeeds")
}

/// Planet fleet config over the mesh preset; the workload is the searched
/// placement's round-robin (same construction as `xferopt fleet run --topo`).
fn topo_cfg(outage_region: Option<usize>, reroute: bool) -> FleetConfig {
    let mut tc = TopoFleetConfig::preset("mesh");
    tc.outage_regions = outage_region.into_iter().collect();
    tc.reroute = reroute;
    FleetConfig {
        seed: 7,
        horizon_s: 3600.0,
        topo: Some(tc),
        ..FleetConfig::default()
    }
}

fn topo_wl(jobs: usize) -> Workload {
    let planet = Planet::preset("mesh").expect("mesh preset");
    let placement = mesh_placement();
    let catalog = RouteCatalog::enumerate(&planet, 3).expect("catalog");
    topo_workload(&placement, &catalog, jobs)
}

#[test]
fn golden_routes_leaderboard_and_placement_match_snapshots() {
    let table = mesh_placement();
    check_golden(
        "tests/golden/routes/leaderboard.txt",
        &table.render(),
        "route-search leaderboard",
    );
    check_golden(
        "tests/golden/routes/placement.jsonl",
        &table.to_jsonl(),
        "placement table",
    );
}

#[test]
fn route_search_is_byte_deterministic_on_every_preset() {
    for preset in PRESETS {
        let planet = Planet::preset(preset).expect("preset");
        let a = search_routes(&planet, &SearchConfig::default()).expect("search");
        let b = search_routes(&planet, &SearchConfig::default()).expect("search");
        assert_eq!(a.render(), b.render(), "{preset}: leaderboard bytes");
        assert_eq!(a.to_jsonl(), b.to_jsonl(), "{preset}: placement bytes");
        let round =
            PlacementTable::from_jsonl(&a.to_jsonl()).unwrap_or_else(|e| panic!("{preset}: {e}"));
        assert_eq!(round, a, "{preset}: JSONL round trip");
    }
}

proptest! {
    /// Placement validity: whatever the planet/k/grid, every entry places an
    /// ordered region pair on routes that exist in the enumerated catalog
    /// for that pair (rank order preserved, link lists aligned), with a
    /// concurrency drawn from the searched grid.
    #[test]
    fn searched_placements_only_use_valid_catalog_routes(
        preset_idx in 0usize..3,
        k in 1usize..4,
        np in prop_oneof![Just(4u32), Just(8u32)],
    ) {
        let planet = Planet::preset(PRESETS[preset_idx]).expect("preset");
        let cfg = SearchConfig { k, np, ..SearchConfig::default() };
        let table = search_routes(&planet, &cfg).expect("search");
        let catalog = RouteCatalog::enumerate(&planet, k).expect("catalog");

        let n = planet.regions.len();
        prop_assert_eq!(table.entries.len(), n * (n - 1), "one entry per ordered pair");
        for e in &table.entries {
            prop_assert!(!e.routes.is_empty(), "{}: entry has routes", e.pair);
            prop_assert_eq!(e.routes.len(), e.links.len(), "{}: links aligned", &e.pair);
            prop_assert!(cfg.nc_grid.contains(&e.nc), "{}: nc {} from grid", e.pair, e.nc);
            prop_assert_eq!(e.np, np, "{}: np fixed", &e.pair);
            let candidates = catalog.candidates(e.src, e.dst);
            for (name, links) in e.routes.iter().zip(&e.links) {
                let idx = catalog
                    .route_by_name(name)
                    .unwrap_or_else(|| panic!("{}: route {name} not in catalog", e.pair));
                let built = &catalog.routes[idx];
                prop_assert_eq!((built.src, built.dst), (e.src, e.dst), "route on its pair");
                prop_assert_eq!(&built.links, links, "{}: link list from catalog", name);
                prop_assert!(candidates.contains(&idx), "{}: candidate of the pair", name);
            }
        }
    }
}

#[test]
fn golden_topo_chaos_report_matches_snapshot() {
    // Regional outage on the mesh with breaker-aware re-routing enabled:
    // the fixed report (including the reroutes counter) is the golden.
    let out = run_fleet(
        &topo_wl(20),
        &topo_cfg(Some(1), true),
        &mut HistoryStore::in_memory(),
    );
    check_golden(
        "tests/golden/routes/chaos_report.txt",
        &out.report.render(),
        "topo chaos report",
    );
}

#[test]
fn topo_fleet_is_byte_deterministic() {
    for outage in [None, Some(1)] {
        let cfg = topo_cfg(outage, true);
        let a = run_fleet(&topo_wl(20), &cfg, &mut HistoryStore::in_memory());
        let b = run_fleet(&topo_wl(20), &cfg, &mut HistoryStore::in_memory());
        assert_eq!(a.report.render(), b.report.render(), "outage {outage:?}");
        assert_eq!(a.decisions_jsonl, b.decisions_jsonl, "outage {outage:?}");
        assert_eq!(
            a.supervision_jsonl, b.supervision_jsonl,
            "outage {outage:?}"
        );
        assert_eq!(a.metrics_jsonl, b.metrics_jsonl, "outage {outage:?}");
    }
}

#[test]
fn rerouting_beats_fixed_routes_under_a_regional_outage() {
    // The acceptance claim: under a regional-outage fault plan, re-routing
    // quarantined jobs onto the placement's next-ranked candidate moves more
    // bytes than pinning every job to its original route, actually re-routes
    // at least one job, and never loses bytes across the hop.
    let wl = topo_wl(20);
    let rerouted = run_fleet(
        &wl,
        &topo_cfg(Some(1), true),
        &mut HistoryStore::in_memory(),
    );
    let fixed = run_fleet(
        &wl,
        &topo_cfg(Some(1), false),
        &mut HistoryStore::in_memory(),
    );

    assert!(
        rerouted.report.supervision.reroutes > 0,
        "outage must force at least one re-route:\n{}",
        rerouted.report.render()
    );
    assert_eq!(fixed.report.supervision.reroutes, 0, "reroute disabled");
    assert!(
        rerouted.report.total_moved_mb() > fixed.report.total_moved_mb(),
        "re-routing must beat fixed routes on moved_mb: {} vs {}\n{}\n{}",
        rerouted.report.total_moved_mb(),
        fixed.report.total_moved_mb(),
        rerouted.report.render(),
        fixed.report.render()
    );
    // Byte conservation: every completed job moved its full size (within
    // the final-tick rounding the classic fleet also allows), re-routed or
    // not, and nobody moved more than it was asked to.
    for o in &rerouted.report.outcomes {
        if o.state == JobState::Completed {
            assert!(
                o.moved_mb >= o.spec.size_mb - 1.0,
                "job{} completed but lost bytes: {} of {}",
                o.id,
                o.moved_mb,
                o.spec.size_mb
            );
        }
        assert!(
            o.moved_mb <= o.spec.size_mb + 1.0,
            "job{} moved more than its size: {} of {}",
            o.id,
            o.moved_mb,
            o.spec.size_mb
        );
    }
}

#[test]
fn topo_kill_and_resume_is_byte_identical() {
    // Crash/resume contract extends to planet fleets: checkpoint a chaos run
    // at tick k (topo header fields round-trip), resume, and reproduce the
    // uninterrupted run byte for byte.
    let cfg = topo_cfg(Some(1), true);
    let wl = topo_wl(12);
    let full = run_fleet(&wl, &cfg, &mut HistoryStore::in_memory());
    let total_ticks = {
        let mut h = HistoryStore::in_memory();
        let mut sim = FleetSim::new(&wl, &cfg, &mut h);
        while sim.tick() {}
        sim.tick_index()
    };
    assert!(total_ticks > 3, "probe run too short: {total_ticks} ticks");
    for k in [1, total_ticks / 3, 2 * total_ticks / 3] {
        let text = {
            let mut h = HistoryStore::in_memory();
            let mut sim = FleetSim::new(&wl, &cfg, &mut h);
            while sim.tick_index() < k {
                assert!(sim.tick(), "run ended before kill tick {k}");
            }
            sim.checkpoint()
        };
        let ck = Checkpoint::parse(&text).unwrap_or_else(|e| panic!("tick {k}: {e}"));
        let tc = ck.config.topo.as_ref().expect("topo header round-trips");
        assert_eq!(tc.preset, "mesh", "tick {k}");
        assert_eq!(tc.outage_regions, vec![1], "tick {k}");
        let resumed = resume_fleet(&ck, &mut HistoryStore::in_memory())
            .unwrap_or_else(|e| panic!("tick {k}: {e}"));
        assert_eq!(full.report.render(), resumed.report.render(), "tick {k}");
        assert_eq!(full.decisions_jsonl, resumed.decisions_jsonl, "tick {k}");
        assert_eq!(
            full.supervision_jsonl, resumed.supervision_jsonl,
            "tick {k}"
        );
        assert_eq!(full.metrics_jsonl, resumed.metrics_jsonl, "tick {k}");
    }
}

#[test]
fn multipath_splits_streams_and_still_conserves_bytes() {
    // Multi-path placement: with --multipath 2 each fresh admission splits
    // its slice across the top-2 placement routes. All jobs must still
    // complete with their full sizes accounted for.
    let mut tc = TopoFleetConfig::preset("mesh");
    tc.multipath = 2;
    let cfg = FleetConfig {
        seed: 7,
        horizon_s: 3600.0,
        topo: Some(tc),
        ..FleetConfig::default()
    };
    let out = run_fleet(&topo_wl(10), &cfg, &mut HistoryStore::in_memory());
    assert_eq!(
        out.report.count(JobState::Completed),
        10,
        "{}",
        out.report.render()
    );
    for o in &out.report.outcomes {
        assert!(
            (o.moved_mb - o.spec.size_mb).abs() <= 1.0,
            "job{}: moved {} of {}",
            o.id,
            o.moved_mb,
            o.spec.size_mb
        );
    }
}
