//! Event-step equivalence harness (DESIGN.md §18): the quiet-tick
//! skip-ahead fast path must be a *byte-level* no-op relative to dense
//! stepping, across every output surface.
//!
//! Layers of defence:
//!
//! 1. property tests — random workloads × policies × fault tapes × site
//!    counts: `dense_stepping: true` and `false` must produce identical
//!    bytes on the report, CSV, decision audit, telemetry, supervision
//!    events, and metrics snapshot;
//! 2. a lockstep run on a sparse (mostly-quiet) workload comparing
//!    `state_digest` and checkpoint bytes *every tick*, and asserting the
//!    fast path actually fires (`fast_ticks > 0`) so the suite cannot rot
//!    into vacuity;
//! 3. kill/resume mid-skip — a checkpoint taken inside a quiet span must
//!    resume to the same bytes as the uninterrupted dense reference;
//! 4. the `--shards 4` cross-check: sharded fast vs monolithic dense.

use proptest::prelude::*;
use xferopt::orchestrator::{
    resume_fleet, run_fleet, run_fleet_sharded, Checkpoint, FleetConfig, FleetOutcome, FleetSim,
    HistoryStore, JobSpec, Policy, ShardedFleetSim, Workload,
};
use xferopt::scenarios::FaultProfile;

fn cfg(policy: Policy, seed: u64, faults: Option<FaultProfile>, dense: bool) -> FleetConfig {
    FleetConfig {
        policy,
        seed,
        horizon_s: 3600.0,
        faults,
        audit: true,
        dense_stepping: dense,
        ..FleetConfig::default()
    }
}

/// Every output surface of a fleet run, byte for byte.
fn assert_identical(a: &FleetOutcome, b: &FleetOutcome, what: &str) {
    assert_eq!(a.report.render(), b.report.render(), "{what}: report");
    assert_eq!(a.report.to_csv(), b.report.to_csv(), "{what}: csv");
    assert_eq!(
        a.decisions_jsonl, b.decisions_jsonl,
        "{what}: decision audit"
    );
    assert_eq!(a.telemetry_jsonl, b.telemetry_jsonl, "{what}: telemetry");
    assert_eq!(
        a.supervision_jsonl, b.supervision_jsonl,
        "{what}: supervision events"
    );
    assert_eq!(a.metrics_jsonl, b.metrics_jsonl, "{what}: metrics");
    assert_eq!(
        a.history_appended, b.history_appended,
        "{what}: history appends"
    );
}

/// A workload whose arrivals are separated by long idle gaps — most ticks
/// are quiet, so the skip-ahead path dominates the run.
fn sparse_workload(jobs: usize, gap_s: f64) -> Workload {
    Workload::new(
        (0..jobs)
            .map(|i| JobSpec::new(i as u64, i as f64 * gap_s, 3000.0))
            .collect(),
    )
}

fn policy_strategy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Fifo),
        Just(Policy::Sjf),
        Just(Policy::WeightedFair),
    ]
}

fn fault_strategy() -> impl Strategy<Value = Option<FaultProfile>> {
    prop_oneof![
        Just(None),
        Just(Some(FaultProfile::FlakyLink)),
        Just(Some(FaultProfile::DegradedWan)),
        Just(Some(FaultProfile::LossyTacc)),
    ]
}

proptest! {
    /// The headline harness: random workload + policy + fault tape + site
    /// count; skip-ahead and dense stepping must produce the same bytes on
    /// every output surface.
    #[test]
    fn event_step_is_byte_identical_to_dense(
        jobs in 4usize..10,
        seed in 0u64..1000,
        sites in 1u32..4,
        policy in policy_strategy(),
        faults in fault_strategy(),
    ) {
        let wl = Workload::synthetic_sites(jobs, seed, sites);
        let mut h_dense = HistoryStore::in_memory();
        let dense = run_fleet_sharded(&wl, &cfg(policy, seed, faults, true), &mut h_dense, 1);
        let mut h_fast = HistoryStore::in_memory();
        let fast = run_fleet_sharded(&wl, &cfg(policy, seed, faults, false), &mut h_fast, 1);
        assert_identical(&dense, &fast, "dense vs fast");
        prop_assert_eq!(
            h_dense.records().iter().map(|r| r.to_json()).collect::<Vec<_>>(),
            h_fast.records().iter().map(|r| r.to_json()).collect::<Vec<_>>(),
            "history record order"
        );
    }
}

/// Lockstep dense-vs-fast on a mostly-quiet workload: state digests and
/// checkpoint bytes must match at *every* tick, the two runs must end on
/// the same tick, and the fast path must actually have collapsed ticks.
#[test]
fn lockstep_digests_match_every_tick_and_fast_path_fires() {
    let wl = sparse_workload(4, 400.0);
    let mut h_dense = HistoryStore::in_memory();
    let mut h_fast = HistoryStore::in_memory();
    let cfg_d = cfg(Policy::Fifo, 11, None, true);
    let cfg_f = cfg(Policy::Fifo, 11, None, false);
    let mut dense = FleetSim::new(&wl, &cfg_d, &mut h_dense);
    let mut fast = FleetSim::new(&wl, &cfg_f, &mut h_fast);
    loop {
        let a = dense.tick();
        let b = fast.tick();
        assert_eq!(
            a,
            b,
            "runs diverged in length at tick {}",
            dense.tick_index()
        );
        assert_eq!(
            dense.state_digest(),
            fast.state_digest(),
            "state digest diverged at tick {}",
            dense.tick_index()
        );
        if !a {
            break;
        }
        if dense.tick_index().is_multiple_of(16) {
            // Checkpoints (which embed the config) must not leak the
            // stepping mode: a fast checkpoint is a dense checkpoint.
            assert_eq!(
                dense.checkpoint(),
                fast.checkpoint(),
                "checkpoint bytes diverged at tick {}",
                dense.tick_index()
            );
        }
    }
    assert_eq!(
        dense.fast_ticks(),
        0,
        "dense_stepping must disable the skip"
    );
    assert!(
        fast.fast_ticks() > 0,
        "sparse workload must exercise the skip-ahead path"
    );
    let (d, f) = (dense.finish(), fast.finish());
    assert_identical(&d, &f, "lockstep finish");
}

/// The skip-ahead path must also fire (and stay byte-identical) under a
/// fleet-scoped chaos plan, where fault boundaries interleave quiet spans.
#[test]
fn fast_path_fires_under_faults_and_matches_dense() {
    let wl = sparse_workload(3, 500.0);
    let mut h_dense = HistoryStore::in_memory();
    let mut h_fast = HistoryStore::in_memory();
    let cfg_d = cfg(Policy::Fifo, 5, Some(FaultProfile::FlakyLink), true);
    let cfg_f = cfg(Policy::Fifo, 5, Some(FaultProfile::FlakyLink), false);
    let dense = run_fleet(&wl, &cfg_d, &mut h_dense);
    let mut fast = FleetSim::new(&wl, &cfg_f, &mut h_fast);
    while fast.tick() {}
    assert!(fast.fast_ticks() > 0, "quiet spans exist between faults");
    assert_identical(&dense, &fast.finish(), "faulted dense vs fast");
}

/// Kill the fast run mid-skip (a checkpoint tick deep inside an idle gap),
/// resume it, and compare against the uninterrupted dense reference.
#[test]
fn kill_and_resume_mid_skip_is_byte_identical() {
    let wl = sparse_workload(4, 400.0);
    let mut h_full = HistoryStore::in_memory();
    let full = run_fleet(&wl, &cfg(Policy::Sjf, 9, None, true), &mut h_full);

    // Tick 40 is t = 200 s: job 0 (arrival 0) is long done, job 1 arrives
    // at 400 s — the checkpoint lands inside a pure skip-ahead span.
    let mut h = HistoryStore::in_memory();
    let ck_text = {
        let mut sim = FleetSim::new(&wl, &cfg(Policy::Sjf, 9, None, false), &mut h);
        while sim.tick_index() < 40 {
            assert!(sim.tick(), "run ended before the kill point");
        }
        assert!(sim.fast_ticks() > 0, "kill point must follow skipped ticks");
        sim.checkpoint()
    };
    let ck = Checkpoint::parse(&ck_text).expect("checkpoint parses");
    assert_eq!(ck.tick, 40);
    let resumed = resume_fleet(&ck, &mut h).expect("digest verifies");
    assert_identical(&full, &resumed, "resume mid-skip");
}

/// Cross-check with the component-sharded runner: sharded fast execution
/// must reproduce the monolithic dense reference byte-for-byte (the same
/// invariant CI asserts through the CLI with `--shards 4`).
#[test]
fn sharded_fast_matches_monolithic_dense() {
    let wl = Workload::synthetic_sites(10, 3, 4);
    let mut h_dense = HistoryStore::in_memory();
    let dense = run_fleet_sharded(&wl, &cfg(Policy::Fifo, 3, None, true), &mut h_dense, 1);
    let mut h_fast = HistoryStore::in_memory();
    let cfg_f = cfg(Policy::Fifo, 3, None, false);
    let mut sim = ShardedFleetSim::new(&wl, &cfg_f, &mut h_fast, 4);
    while sim.run_ticks(64) > 0 {}
    assert_identical(&dense, &sim.finish(), "shards=4 fast vs shards=1 dense");
}
