//! Named regression tests for bugs found (and fixed) while building this
//! reproduction. Each test documents the failure mode so it cannot return.

use xferopt::net::{max_min_allocate, FlowDemand};
use xferopt::prelude::*;

/// REGRESSION: the cd-tuner's relative-change quotient used a signed
/// denominator, so a *negative* baseline value flipped the improvement sign
/// and the tuner walked away from the optimum. All relative-change code now
/// divides by `|f|`.
#[test]
fn negative_baseline_does_not_flip_cd_direction() {
    let mut t = CdTuner::new(Domain::new(&[(1, 100)]), vec![40], 0.01);
    // Objective negative everywhere except near the peak at 8.
    let f = |x: &Point| 100.0 - ((x[0] - 8) as f64).powi(2) * 10.0;
    let mut x = t.initial();
    for _ in 0..50 {
        let fx = f(&x);
        x = t.observe(&x.clone(), fx);
    }
    assert!(
        (x[0] - 8).abs() <= 2,
        "cd must walk down from 40 to the peak at 8 despite negative values: {x:?}"
    );
}

/// REGRESSION: the ε%-monitor had the same signed-denominator hazard.
#[test]
fn monitor_significance_with_negative_values() {
    use xferopt::tuners::SignificanceMonitor;
    let mut m = SignificanceMonitor::new(5.0);
    m.observe(-1000.0);
    // -1000 → -900 is a 10% move; must trigger regardless of sign.
    assert!(m.observe(-900.0));
}

/// REGRESSION: `LoadSchedule::changes_between` was exclusive at the window
/// start, so a load change landing exactly on a 30 s control-epoch boundary
/// was silently never applied (epochs start exactly at those boundaries).
/// The window is now half-open `[from, to)`.
#[test]
fn boundary_aligned_load_change_applies() {
    let schedule = LoadSchedule::piecewise(vec![
        (0.0, ExternalLoad::new(0, 64)),
        (300.0, ExternalLoad::NONE), // multiple of the 30 s epoch
    ]);
    assert_eq!(schedule.changes_between(300.0, 330.0), vec![300.0]);
    let cfg = DriveConfig::paper(
        Route::UChicago,
        TunerKind::Default,
        TuneDims::NcOnly { np: 8 },
        schedule,
    )
    .with_duration_s(600.0)
    .with_noise_sigma(0.0);
    let log = drive_transfer(&cfg);
    let before = log.mean_observed_between(100.0, 290.0).unwrap();
    let after = log.mean_observed_between(400.0, 600.0).unwrap();
    assert!(
        after > 5.0 * before,
        "change at t=300 never applied: {before} -> {after}"
    );
}

/// REGRESSION: progressive filling could stall (and fire a debug assertion)
/// when float error left a flow a hair under its cap with a zero step — the
/// freeze tolerance was absolute, which large weights overwhelm. Tolerances
/// are now relative and a pinned level terminates cleanly.
#[test]
fn fairness_solver_handles_awkward_float_inputs() {
    let caps = [
        6509.155271642728,
        508.403174199464,
        6407.267008329971,
        3056.8859753365055,
        2493.034299241861,
    ];
    let flows = vec![
        FlowDemand {
            weight: 101.41454406201493,
            demand_cap: 3906.4934283636953,
            links: vec![0, 1, 2, 3, 4],
        },
        FlowDemand {
            weight: 57.25,
            demand_cap: f64::INFINITY,
            links: vec![1, 3],
        },
    ];
    // Must terminate and respect all bounds (debug assertions included).
    let alloc = max_min_allocate(&caps, &flows);
    assert!(alloc.iter().all(|a| a.is_finite() && *a >= 0.0));
    assert!(alloc[0] <= flows[0].demand_cap * (1.0 + 1e-9));
    // Doubling everything must also terminate (the original failure mode).
    let caps2: Vec<f64> = caps.iter().map(|c| c * 2.0).collect();
    let flows2: Vec<FlowDemand> = flows
        .iter()
        .map(|f| FlowDemand {
            weight: f.weight,
            demand_cap: f.demand_cap * 2.0,
            links: f.links.clone(),
        })
        .collect();
    let alloc2 = max_min_allocate(&caps2, &flows2);
    assert!(alloc2.iter().all(|a| a.is_finite()));
}

/// REGRESSION: multi-parameter cd-tuner rotated to the next axis by holding
/// still, so on a quiet link the new axis was never probed and 2-D tuning
/// deadlocked at the starting parallelism. Rotation now probes immediately.
#[test]
fn cd_two_dim_never_deadlocks_on_quiet_objective() {
    let f = |x: &Point| {
        4000.0 - ((x[0] - 6) as f64).powi(2) * 30.0 - ((x[1] - 12) as f64).powi(2) * 30.0
    };
    let mut t = CdTuner::new(Domain::paper_nc_np(), vec![2, 8], 1.0);
    let mut x = t.initial();
    let mut np_values = std::collections::HashSet::new();
    for _ in 0..80 {
        np_values.insert(x[1]);
        let fx = f(&x);
        x = t.observe(&x.clone(), fx);
    }
    assert!(np_values.len() > 1, "np axis never explored: {np_values:?}");
}

/// REGRESSION: compass probes at a domain bound could project back onto the
/// incumbent and be evaluated as "new" points forever. Degenerate probes are
/// skipped now — from a corner, the search must still terminate and hold.
#[test]
fn compass_from_domain_corner_terminates() {
    let domain = Domain::new(&[(1, 8), (1, 4)]);
    let mut t = CompassTuner::new(domain.clone(), vec![8, 4], 8.0, 5.0);
    let mut x = t.initial();
    let mut repeats_at_corner = 0;
    for _ in 0..60 {
        x = t.observe(&x.clone(), 1000.0);
        assert!(domain.contains(&x));
        if x == vec![8, 4] {
            repeats_at_corner += 1;
        }
    }
    // After convergence it holds (monitor), which is fine — the bug was
    // endless *probing* of the same corner during search. Holding implies
    // the search finished: λ must have collapsed.
    assert!(t.lambda() < 0.5, "search never terminated from the corner");
    assert!(
        repeats_at_corner > 10,
        "should settle and hold at the corner"
    );
}
