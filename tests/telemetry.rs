//! Workspace-level telemetry tests: golden JSONL/Prometheus snapshots,
//! byte-determinism across runs, and observer non-perturbation.
//!
//! The golden files live in `tests/golden/`; re-bless intentional schema
//! changes with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test telemetry
//! ```

use xferopt::prelude::*;

/// The fixed scenario behind the golden snapshots: the cs-tuner under heavy
/// compute load on the UChicago route, 10 control epochs, seed 7. Chosen so
/// the bundle exercises epochs, compass decisions, restarts, and the full
/// metrics registry in a sub-second run.
fn golden_cfg() -> DriveConfig {
    DriveConfig::paper(
        Route::UChicago,
        TunerKind::Cs,
        TuneDims::NcOnly { np: 8 },
        LoadSchedule::constant(ExternalLoad::new(0, 16)),
    )
    .with_duration_s(300.0)
    .with_seed(7)
}

/// A fault-laced variant used by the perturbation tests: retries, stalls,
/// and fault-factor changes must all flow through telemetry without changing
/// the transfer.
fn faulty_cfg(tuner: TunerKind) -> DriveConfig {
    let plan = FaultProfile::FlakyLink.plan(Route::UChicago, 3, 600.0);
    DriveConfig::paper(
        Route::UChicago,
        tuner,
        TuneDims::NcOnly { np: 8 },
        LoadSchedule::constant(ExternalLoad::NONE),
    )
    .with_duration_s(600.0)
    .with_seed(4)
    .with_faults(plan)
}

fn check_golden(path: &str, actual: &str, what: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, actual).expect("write golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden snapshot missing; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        actual, golden,
        "{what} drifted from {path}; if the change is intentional, \
         re-bless with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_telemetry_jsonl_matches_snapshot() {
    let (_log, tel) = drive_transfer_with_telemetry(&golden_cfg());
    let doc = tel.to_jsonl();
    // Structural sanity before comparing bytes.
    assert!(doc.starts_with("{\"kind\":\"run\","));
    assert!(doc.contains("\"kind\":\"epoch\""));
    assert!(doc.contains("\"kind\":\"decision\""));
    assert!(doc.contains("\"kind\":\"histogram\""));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/telemetry.jsonl");
    check_golden(path, &doc, "telemetry JSONL");
}

#[test]
fn golden_telemetry_prometheus_matches_snapshot() {
    let (_log, tel) = drive_transfer_with_telemetry(&golden_cfg());
    let prom = tel.to_prometheus();
    assert!(prom.contains("# TYPE transfer_epochs_total counter"));
    assert!(prom.contains("_bucket{"), "histograms expand to buckets");
    assert!(
        prom.contains("le=\"+Inf\""),
        "cumulative +Inf bucket present"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/telemetry.prom");
    check_golden(path, &prom, "Prometheus exposition");
}

#[test]
fn telemetry_is_byte_deterministic_across_runs() {
    // Two in-process seeded runs: identical JSONL and Prometheus text, byte
    // for byte (the snapshot-merge layer and JSON float formatting must not
    // depend on iteration order or allocation).
    let run = || drive_transfer_with_telemetry(&golden_cfg()).1;
    let (a, b) = (run(), run());
    assert_eq!(a.to_jsonl(), b.to_jsonl(), "JSONL must be deterministic");
    assert_eq!(
        a.to_prometheus(),
        b.to_prometheus(),
        "Prometheus text must be deterministic"
    );
}

#[test]
fn telemetry_does_not_perturb_any_tuner_run() {
    // The flight recorder is an observer: for every tuner kind, the epoch
    // reports of an instrumented run equal the plain run exactly.
    for kind in TunerKind::ALL {
        let cfg = golden_cfg();
        let cfg = DriveConfig { tuner: kind, ..cfg };
        let plain = drive_transfer(&cfg);
        let (instrumented, _tel) = drive_transfer_with_telemetry(&cfg);
        assert_eq!(
            plain.epochs,
            instrumented.epochs,
            "{}: telemetry perturbed the transfer",
            kind.name()
        );
    }
}

#[test]
fn telemetry_does_not_perturb_faulty_runs() {
    // Retry/backoff paths draw from the world's seed stream; the recorder
    // must not shift those draws either.
    for kind in [TunerKind::Nm, TunerKind::Cs, TunerKind::Default] {
        let cfg = faulty_cfg(kind);
        let plain = drive_transfer(&cfg);
        let (instrumented, tel) = drive_transfer_with_telemetry(&cfg);
        assert_eq!(
            plain.epochs,
            instrumented.epochs,
            "{}: telemetry perturbed the faulty run",
            kind.name()
        );
        // The fault machinery must actually have been exercised & recorded.
        let doc = tel.to_jsonl();
        assert!(
            doc.contains("transfer_fault_factor_changes_total")
                || doc.contains("transfer_retries_total")
                || doc.contains("transfer_restarts_total"),
            "{}: fault-era counters missing from telemetry",
            kind.name()
        );
    }
}

#[test]
fn decision_records_align_with_epochs() {
    // One tuner decision per control epoch, sequence numbers dense from 0.
    let (log, tel) = drive_transfer_with_telemetry(&golden_cfg());
    let decisions: Vec<&str> = tel
        .decisions_jsonl
        .lines()
        .filter(|l| !l.is_empty())
        .collect();
    assert_eq!(decisions.len(), log.epochs.len());
    for (i, line) in decisions.iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"kind\":\"decision\",\"seq\":{i},")),
            "dense sequence numbers: {line}"
        );
    }
}

#[test]
fn snapshots_merge_across_runs_conserving_counts() {
    // Fleet-style aggregation: merging the snapshots of two seeded runs sums
    // counters and histogram mass exactly.
    let (log_a, tel_a) = drive_transfer_with_telemetry(&golden_cfg());
    let (log_b, tel_b) = drive_transfer_with_telemetry(&golden_cfg().with_seed(8));
    // The tuned transfer is the second one added to the world (id 1).
    let get_epochs =
        |s: &MetricsSnapshot| match s.get("transfer_epochs_total", &[("transfer", "1")]) {
            Some(xferopt::simcore::SampleValue::Counter(v)) => *v,
            other => panic!("transfer_epochs_total missing: {other:?}"),
        };
    let mut merged = tel_a.snapshot.clone();
    merged.merge(&tel_b.snapshot);
    assert_eq!(
        get_epochs(&merged),
        (log_a.epochs.len() + log_b.epochs.len()) as u64,
        "merged epoch counter must equal the sum of both runs"
    );
}

#[test]
fn summarizer_round_trips_the_bundle() {
    let (log, tel) = drive_transfer_with_telemetry(&golden_cfg());
    let s = summarize_telemetry(&tel.to_jsonl());
    assert_eq!(s.runs, 1);
    assert_eq!(s.epochs, log.epochs.len());
    assert_eq!(s.decisions, log.epochs.len());
    assert_eq!(s.unknown_lines, 0, "every emitted line must be understood");
    // Concatenated bundles add up (multi-run files from repeated --telemetry-out).
    let twice = format!("{}{}", tel.to_jsonl(), tel.to_jsonl());
    let s2 = summarize_telemetry(&twice);
    assert_eq!(s2.runs, 2);
    assert_eq!(s2.epochs, 2 * s.epochs);
}
