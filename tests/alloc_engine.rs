//! Incremental allocation engine: old-vs-new solver equivalence, dirty-flag
//! cache correctness, and the fleet-scale one-solve-per-tick perf gate.
//!
//! The engine caches one max–min solve per allocation epoch (generation);
//! [`Network::allocate_uncached`] keeps the pre-cache code path alive as the
//! reference implementation. Three layers of defence here:
//!
//! 1. property tests — random topologies, weights, caps, and mutation
//!    sequences (including remove/re-add through the slot free-list) must
//!    agree with the reference within 1e-9 after *every* mutation;
//! 2. a deterministic byte-identity check — on the paper topology the cached
//!    and uncached paths must agree **bitwise**, which is what keeps every
//!    golden snapshot valid without re-blessing;
//! 3. the fleet perf gate — `Workload::contended(10)` must run on one
//!    amortized solve per tick (previously one per job per read), asserted
//!    through the `net_alloc_solves_total` counter in the metrics registry.

use proptest::prelude::*;
use xferopt::net::{
    export_alloc_stats, CongestionControl, FlowId, Link, LinkId, Network, Path, PathId,
};
use xferopt::orchestrator::{FleetConfig, FleetSim, HistoryStore, Workload};
use xferopt::simcore::{MetricsRegistry, SampleValue};

/// The paper's ANL source topology (shared NIC, two WANs) with derating.
fn anl_net() -> (Network, Vec<PathId>) {
    let mut net = Network::new();
    let nic = net.add_link(Link::from_gbps("anl-nic", 40.0).with_half_streams(16.0));
    let wan_uc = net.add_link(Link::from_gbps("wan-uc", 40.0).with_half_streams(16.0));
    let wan_tacc = net.add_link(Link::from_gbps("wan-tacc", 20.0));
    let p_uc = net.add_path(
        Path::new("anl->uc", vec![nic, wan_uc])
            .with_rtt_ms(2.0)
            .with_loss(1e-5),
    );
    let p_tacc = net.add_path(
        Path::new("anl->tacc", vec![nic, wan_tacc])
            .with_rtt_ms(33.0)
            .with_loss(1e-5),
    );
    (net, vec![p_uc, p_tacc])
}

/// Assert the cached engine agrees with the uncached reference within
/// `tol` (relative) for the whole allocation, plus the single-flow and
/// per-tag readouts.
fn assert_matches_reference(net: &Network, tol: f64) {
    let cached = net.allocate();
    let reference = net.allocate_uncached();
    assert_eq!(
        cached.keys().collect::<Vec<_>>(),
        reference.keys().collect::<Vec<_>>(),
        "flow id sets diverged"
    );
    for (id, want) in &reference {
        let got = cached[id];
        assert!(
            (got - want).abs() <= tol * (1.0 + want.abs()),
            "flow {id:?}: cached {got} vs reference {want}"
        );
        let single = net.flow_rate(*id);
        assert!(
            (single - want).abs() <= tol * (1.0 + want.abs()),
            "flow_rate({id:?}) {single} vs reference {want}"
        );
    }
}

// ---------------------------------------------------------------------------
// Property tests: random topologies + mutation sequences.
// ---------------------------------------------------------------------------

/// One mutation against a live network. Indices are taken modulo the current
/// live-flow/link/path counts at application time, so every op is valid.
#[derive(Debug, Clone)]
enum Op {
    AddFlow { path: usize, streams: u32 },
    RemoveFlow(usize),
    SetStreams { flow: usize, streams: u32 },
    SetLinkFactor { link: usize, factor: f64 },
    SetRttFactor { path: usize, factor: f64 },
    SetTag { flow: usize, tag: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..8, 0u32..256).prop_map(|(path, streams)| Op::AddFlow { path, streams }),
        (0usize..16).prop_map(Op::RemoveFlow),
        (0usize..16, 0u32..256).prop_map(|(flow, streams)| Op::SetStreams { flow, streams }),
        (0usize..8, prop_oneof![Just(1.0f64), 0.0f64..1.0])
            .prop_map(|(link, factor)| Op::SetLinkFactor { link, factor }),
        (0usize..8, 1.0f64..8.0).prop_map(|(path, factor)| Op::SetRttFactor { path, factor }),
        (0usize..16, 0u64..4).prop_map(|(flow, tag)| Op::SetTag { flow, tag }),
    ]
}

/// Raw generator output: link capacities (+ optional AIMD half-streams),
/// per-path link subsets with RTT/loss, initial flows, and a mutation tape.
#[allow(clippy::type_complexity)]
fn arb_scenario() -> impl Strategy<
    Value = (
        Vec<(f64, Option<f64>)>,
        Vec<(Vec<usize>, f64, f64)>,
        Vec<(usize, u32)>,
        Vec<Op>,
    ),
> {
    let half = prop_oneof![Just(None), (1.0f64..64.0).prop_map(Some)];
    let links = prop::collection::vec((50.0f64..5000.0, half), 1..4);
    links.prop_flat_map(|links| {
        let nlinks = links.len();
        let path = (
            prop::collection::btree_set(0..nlinks, 1..=nlinks),
            1.0f64..100.0,
            1e-6f64..1e-3,
        )
            .prop_map(|(ls, rtt, loss)| (ls.into_iter().collect::<Vec<_>>(), rtt, loss));
        (
            Just(links),
            prop::collection::vec(path, 1..4),
            prop::collection::vec((0usize..8, 0u32..256), 0..6),
            prop::collection::vec(arb_op(), 1..32),
        )
    })
}

fn build_net(links: &[(f64, Option<f64>)], paths: &[(Vec<usize>, f64, f64)]) -> Network {
    let mut net = Network::new();
    let mut link_ids = Vec::new();
    for (i, (cap, half)) in links.iter().enumerate() {
        let mut l = Link::new(format!("l{i}"), *cap);
        if let Some(h) = half {
            l = l.with_half_streams(*h);
        }
        link_ids.push(net.add_link(l));
    }
    for (i, (ls, rtt_ms, loss)) in paths.iter().enumerate() {
        let lv: Vec<LinkId> = ls.iter().map(|&l| link_ids[l]).collect();
        net.add_path(
            Path::new(format!("p{i}"), lv)
                .with_rtt_ms(*rtt_ms)
                .with_loss(*loss),
        );
    }
    net
}

proptest! {
    /// After every mutation in a random sequence — including removals that
    /// exercise the slot free-list and re-adds that recycle it — the cached
    /// allocation matches the uncached reference within 1e-9.
    #[test]
    fn cached_engine_matches_reference_under_mutations(
        (links, paths, seeds, ops) in arb_scenario()
    ) {
        let mut net = build_net(&links, &paths);
        let npaths = paths.len();
        let mut live: Vec<FlowId> = Vec::new();
        for (p, s) in &seeds {
            live.push(net.add_flow(PathId(p % npaths), *s, CongestionControl::HTcp));
        }
        assert_matches_reference(&net, 1e-9);
        for op in &ops {
            match op {
                Op::AddFlow { path, streams } => {
                    live.push(net.add_flow(
                        PathId(path % npaths),
                        *streams,
                        CongestionControl::HTcp,
                    ));
                }
                Op::RemoveFlow(i) if !live.is_empty() => {
                    let id = live.remove(i % live.len());
                    net.remove_flow(id);
                    net.remove_flow(id); // idempotent teardown stays a no-op
                }
                Op::SetStreams { flow, streams } if !live.is_empty() => {
                    net.set_streams(live[flow % live.len()], *streams);
                }
                Op::SetLinkFactor { link, factor } => {
                    net.set_link_factor(LinkId(link % links.len()), *factor);
                }
                Op::SetRttFactor { path, factor } => {
                    net.set_rtt_factor(PathId(path % npaths), *factor);
                }
                Op::SetTag { flow, tag } if !live.is_empty() => {
                    net.set_flow_tag(live[flow % live.len()], Some(*tag));
                }
                _ => {}
            }
            assert_matches_reference(&net, 1e-9);
        }
        // Per-tag readout agrees with an id-ordered sum over the reference.
        let reference = net.allocate_uncached();
        for tag in 0..4u64 {
            let want: f64 = net
                .flows_with_tag(tag)
                .into_iter()
                .map(|id| reference[&id])
                .sum();
            let got = net.tag_allocation_mbs(tag);
            prop_assert!((got - want).abs() <= 1e-9 * (1.0 + want.abs()),
                "tag {tag}: {got} vs {want}");
        }
    }

    /// The incremental per-link stream sums never drift from a full rebuild.
    #[test]
    fn incremental_link_weights_stay_exact(
        (links, paths, seeds, ops) in arb_scenario()
    ) {
        let mut net = build_net(&links, &paths);
        let npaths = paths.len();
        let mut live: Vec<FlowId> = Vec::new();
        for (p, s) in &seeds {
            live.push(net.add_flow(PathId(p % npaths), *s, CongestionControl::HTcp));
        }
        for op in &ops {
            match op {
                Op::AddFlow { path, streams } => {
                    live.push(net.add_flow(
                        PathId(path % npaths),
                        *streams,
                        CongestionControl::HTcp,
                    ));
                }
                Op::RemoveFlow(i) if !live.is_empty() => {
                    net.remove_flow(live.remove(i % live.len()));
                }
                Op::SetStreams { flow, streams } if !live.is_empty() => {
                    net.set_streams(live[flow % live.len()], *streams);
                }
                _ => {}
            }
            // Reference rebuild, in id order (exactly the old code path).
            let mut want = vec![0.0f64; links.len()];
            for (_, f) in net.flows() {
                for l in &net.path(f.path).links {
                    want[l.0] += f.streams as f64;
                }
            }
            let got = net.streams_per_link();
            prop_assert_eq!(got.clone(), want, "incremental weights drifted");
            for (l, w) in got.iter().enumerate() {
                prop_assert_eq!(*w, net.link_streams(LinkId(l)));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic dirty-flag / staleness checks.
// ---------------------------------------------------------------------------

/// On the paper topology, cached and uncached paths agree **bitwise** — the
/// property the golden-snapshot suite rides on.
#[test]
fn cached_allocation_is_bit_identical_to_reference() {
    let (mut net, paths) = anl_net();
    let a = net.add_flow(paths[0], 16, CongestionControl::HTcp);
    let b = net.add_flow(paths[1], 64, CongestionControl::HTcp);
    let c = net.add_flow(paths[0], 128, CongestionControl::HTcp);
    net.remove_flow(b); // free-list hole
    let d = net.add_flow(paths[1], 32, CongestionControl::HTcp); // recycles slot
    net.set_streams(a, 48);
    net.set_link_factor(LinkId(0), 0.7);
    net.set_rtt_factor(paths[1], 2.5);
    let cached = net.allocate();
    let reference = net.allocate_uncached();
    assert_eq!(cached.len(), reference.len());
    for (id, want) in &reference {
        assert_eq!(
            cached[id].to_bits(),
            want.to_bits(),
            "flow {id:?} not bit-identical"
        );
        assert_eq!(net.flow_rate(*id).to_bits(), want.to_bits());
    }
    let _ = (c, d);
}

/// Assert cached and uncached agree **bitwise** on every flow — the
/// component-scoped engine's contract (both sides solve per bottleneck
/// component, so this holds on any topology, not just single-component).
fn assert_bits_match(net: &Network, what: &str) {
    let cached = net.allocate();
    let reference = net.allocate_uncached();
    assert_eq!(cached.len(), reference.len(), "{what}: flow sets");
    for (id, want) in &reference {
        assert_eq!(
            cached[id].to_bits(),
            want.to_bits(),
            "{what}: flow {id:?} not bit-identical"
        );
    }
}

/// A topology of `clusters` disjoint 2-link islands, each with a 2-link
/// path and a single-link path — multiple bottleneck components by
/// construction.
fn cluster_net(clusters: usize) -> (Network, Vec<LinkId>, Vec<PathId>) {
    let mut net = Network::new();
    let mut links = Vec::new();
    let mut paths = Vec::new();
    for c in 0..clusters {
        let a = net.add_link(Link::from_gbps(format!("c{c}-nic"), 40.0).with_half_streams(16.0));
        let b = net.add_link(Link::from_gbps(format!("c{c}-wan"), 20.0));
        links.extend([a, b]);
        paths.push(
            net.add_path(
                Path::new(format!("c{c}-long"), vec![a, b])
                    .with_rtt_ms(2.0 + c as f64)
                    .with_loss(1e-5),
            ),
        );
        paths.push(
            net.add_path(
                Path::new(format!("c{c}-short"), vec![a])
                    .with_rtt_ms(1.0)
                    .with_loss(1e-5),
            ),
        );
    }
    (net, links, paths)
}

/// Link-factor flaps and flow add/remove across *multiple* components:
/// every read stays bitwise-identical to the from-scratch reference, a
/// mutation re-solves only the component it touches, and untouched
/// components keep their cached rate bits.
#[test]
fn multi_component_dirty_solves_are_bit_identical() {
    let (mut net, links, paths) = cluster_net(3);
    let mut flows = Vec::new();
    for c in 0..3 {
        flows.push(net.add_flow(paths[2 * c], 16, CongestionControl::HTcp));
        flows.push(net.add_flow(paths[2 * c + 1], 64, CongestionControl::HTcp));
    }
    assert_bits_match(&net, "seeded");
    assert_eq!(net.component_count(), 3, "three disjoint islands");

    // Link-factor flap confined to cluster 0: exactly one component
    // re-solve per invalidating mutation, other clusters' bits untouched.
    let before = net.allocate();
    let comp0 = net.component_solves();
    for i in 0..10 {
        net.set_link_factor(links[0], if i % 2 == 0 { 0.5 } else { 1.0 });
        assert_bits_match(&net, "flap");
    }
    assert_eq!(
        net.component_solves() - comp0,
        10,
        "one component solve per flap, not one per component"
    );
    let after = net.allocate();
    for &f in &flows[2..] {
        assert_eq!(
            after[&f].to_bits(),
            before[&f].to_bits(),
            "untouched component rate drifted"
        );
    }

    // Flow add/remove in cluster 1 (membership rebuild + free-list recycle):
    // bits stay reference-identical and cluster 2 keeps its rates.
    let extra = net.add_flow(paths[2], 32, CongestionControl::HTcp);
    assert_bits_match(&net, "add");
    net.remove_flow(flows[2]);
    assert_bits_match(&net, "remove");
    net.remove_flow(extra);
    let recycled = net.add_flow(paths[3], 8, CongestionControl::HTcp);
    assert_bits_match(&net, "recycle");
    let now = net.allocate();
    for &f in &flows[4..] {
        assert_eq!(
            now[&f].to_bits(),
            before[&f].to_bits(),
            "cluster 2 rate changed by cluster 1 churn"
        );
    }

    // RTT flap in cluster 2, then a full invalidation: still bit-identical.
    net.set_rtt_factor(paths[4], 3.0);
    assert_bits_match(&net, "rtt");
    net.invalidate_all();
    assert_bits_match(&net, "invalidate_all");
    let _ = recycled;
}

proptest! {
    /// Random mutation tapes over a random number of disjoint clusters:
    /// the component-scoped cached engine must stay **bitwise** identical
    /// to the from-scratch reference after every op (strictly stronger
    /// than the 1e-9 tolerance of the general scenario test above).
    #[test]
    fn clustered_mutation_tape_stays_bitwise_identical(
        clusters in 2usize..5,
        seeds in prop::collection::vec((0usize..64, 1u32..128), 1..12),
        ops in prop::collection::vec(arb_op(), 1..40),
    ) {
        let (mut net, links, paths) = cluster_net(clusters);
        let npaths = paths.len();
        let mut live: Vec<FlowId> = Vec::new();
        for (p, s) in &seeds {
            live.push(net.add_flow(paths[p % npaths], *s, CongestionControl::HTcp));
        }
        assert_bits_match(&net, "seeded");
        for op in &ops {
            match op {
                Op::AddFlow { path, streams } => {
                    live.push(net.add_flow(
                        paths[path % npaths],
                        *streams,
                        CongestionControl::HTcp,
                    ));
                }
                Op::RemoveFlow(i) if !live.is_empty() => {
                    net.remove_flow(live.remove(i % live.len()));
                }
                Op::SetStreams { flow, streams } if !live.is_empty() => {
                    net.set_streams(live[flow % live.len()], *streams);
                }
                Op::SetLinkFactor { link, factor } => {
                    net.set_link_factor(links[link % links.len()], *factor);
                }
                Op::SetRttFactor { path, factor } => {
                    net.set_rtt_factor(paths[path % npaths], *factor);
                }
                Op::SetTag { flow, tag } if !live.is_empty() => {
                    net.set_flow_tag(live[flow % live.len()], Some(*tag));
                }
                _ => {}
            }
            assert_bits_match(&net, "after op");
        }
    }
}

/// Interleave reads and every kind of mutation: a read immediately after a
/// mutation must reflect it (the dirty flag never serves a stale solve), and
/// a read with no intervening mutation must not re-solve.
#[test]
fn dirty_flag_cache_never_serves_stale_allocations() {
    let (mut net, paths) = anl_net();
    let a = net.add_flow(paths[0], 16, CongestionControl::HTcp);
    let b = net.add_flow(paths[0], 16, CongestionControl::HTcp);

    // Repeated reads reuse one solve.
    let r1 = net.flow_rate(a);
    let solves_after_first = net.allocation_solves();
    for _ in 0..100 {
        assert_eq!(net.flow_rate(a).to_bits(), r1.to_bits());
        let _ = net.allocate();
        let _ = net.tag_allocation_mbs(0);
    }
    assert_eq!(
        net.allocation_solves(),
        solves_after_first,
        "cached reads must not re-solve"
    );

    // set_streams with a *changed* value invalidates...
    let epoch = net.allocation_epoch();
    net.set_streams(b, 64);
    assert_ne!(
        net.allocation_epoch(),
        epoch,
        "mutation must bump the epoch"
    );
    let r2 = net.flow_rate(a);
    assert!(
        r2 < r1,
        "competitor grew, our share must shrink: {r1} -> {r2}"
    );
    // ...while a same-value write is a no-op that keeps the cache warm.
    let (epoch, solves) = (net.allocation_epoch(), net.allocation_solves());
    net.set_streams(b, 64);
    assert_eq!(
        net.allocation_epoch(),
        epoch,
        "same-value set_streams must not invalidate"
    );
    assert_eq!(net.allocation_solves(), solves);

    // Tags never affect the allocation, so they never invalidate.
    net.set_flow_tag(a, Some(7));
    assert_eq!(net.allocation_epoch(), epoch, "tagging must not invalidate");
    assert_eq!(net.flow_rate(a).to_bits(), r2.to_bits());

    // Fault factors invalidate; clearing them restores the original rates.
    net.set_link_factor(LinkId(0), 0.5);
    let degraded = net.flow_rate(a);
    assert!(degraded < r2, "derated link must shrink the share");
    net.set_link_factor(LinkId(0), 1.0);
    assert_eq!(net.flow_rate(a).to_bits(), r2.to_bits());
    net.set_rtt_factor(paths[0], 3.0);
    assert_eq!(
        net.flow_rate(a).to_bits(),
        net.allocate_uncached()[&a].to_bits(),
        "read after an RTT mutation must reflect it"
    );
    net.set_rtt_factor(paths[0], 1.0);
    assert_eq!(net.flow_rate(a).to_bits(), r2.to_bits());

    // Remove/re-add through the free-list: reads stay fresh at every step.
    net.remove_flow(b);
    let solo = net.flow_rate(a);
    assert!(solo > r2, "removing the competitor must restore bandwidth");
    let b2 = net.add_flow(paths[0], 64, CongestionControl::HTcp);
    assert_eq!(net.flow_rate(a).to_bits(), r2.to_bits());
    assert!(net.flow_rate(b2) > 0.0);
    assert_eq!(net.flow_count(), 2);
}

/// Borrow-based iterators agree with the legacy collecting wrappers.
#[test]
fn iterators_match_collecting_wrappers() {
    let (mut net, paths) = anl_net();
    let a = net.add_flow(paths[0], 8, CongestionControl::HTcp);
    let b = net.add_flow(paths[1], 16, CongestionControl::HTcp);
    net.remove_flow(a);
    let c = net.add_flow(paths[0], 4, CongestionControl::HTcp);
    assert_eq!(net.iter_flow_ids().collect::<Vec<_>>(), net.flow_ids());
    assert_eq!(net.flow_ids(), vec![b, c]);
    assert_eq!(
        net.iter_link_capacities().collect::<Vec<_>>(),
        net.link_capacities()
    );
    let via_flows: Vec<(FlowId, u32)> = net.flows().map(|(id, f)| (id, f.streams)).collect();
    assert_eq!(via_flows, vec![(b, 16), (c, 4)]);
}

// ---------------------------------------------------------------------------
// Fleet perf gate: one amortized solve per tick.
// ---------------------------------------------------------------------------

/// Ten contended jobs on one shared route: the whole fleet tick must read
/// one shared cached allocation (one solve for N jobs instead of N solves).
/// Admission startup boundaries split a handful of ticks into two pieces, so
/// the hard bound is `ticks + jobs`; the old per-read engine performed
/// several solves *per job per tick* and blows this bound by an order of
/// magnitude.
#[test]
fn fleet_contended_run_solves_at_most_once_per_tick() {
    let workload = Workload::contended(10);
    let cfg = FleetConfig::default();
    let mut history = HistoryStore::in_memory();
    let mut sim = FleetSim::new(&workload, &cfg, &mut history);
    let solves0 = sim.world().net().allocation_solves();
    while sim.tick() {}
    let ticks = sim.tick_index();
    let solves = sim.world().net().allocation_solves() - solves0;
    assert!(ticks > 0, "fleet must run at least one tick");
    assert!(solves > 0, "fleet must have solved at least once");
    assert!(
        solves <= ticks + workload.jobs().len() as u64,
        "expected at most one amortized solve per tick (+1 per admission \
         boundary), got {solves} solves over {ticks} ticks"
    );

    // The counter is exposed through the metrics registry (opt-in export,
    // so quiet fleet telemetry stays byte-identical).
    let mut reg = MetricsRegistry::new();
    export_alloc_stats(&mut reg, sim.world().net());
    let snap = reg.snapshot();
    match snap.get("net_alloc_solves_total", &[]) {
        Some(SampleValue::Counter(n)) => {
            assert_eq!(*n, sim.world().net().allocation_solves());
        }
        other => panic!("missing net_alloc_solves_total: {other:?}"),
    }
    match snap.get("net_alloc_epoch", &[]) {
        Some(SampleValue::Gauge(v)) => assert!(*v > 0.0),
        other => panic!("missing net_alloc_epoch: {other:?}"),
    }
}
