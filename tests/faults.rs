//! Integration tests for the deterministic fault-injection layer: aborted
//! transfers retry with backoff and conserve their bytes, tuners survive
//! fault windows and recover, and fault-free runs are unaffected by the
//! existence of the layer.

use xferopt::prelude::*;

fn finite_transfer(pw: &mut PaperWorld, size_mb: f64) -> xferopt::transfer::TransferId {
    let cfg = TransferConfig::memory_to_memory(pw.source, pw.path_uchicago)
        .with_params(StreamParams::globus_default())
        .with_noise(0.0, 1.0)
        .with_size_mb(size_mb);
    pw.world.add_transfer(cfg)
}

#[test]
fn finite_transfer_completes_through_aborts_with_retries() {
    let mut pw = PaperWorld::new(11);
    // ~120 s of payload at the ~2500 MB/s default rate.
    let tid = finite_transfer(&mut pw, 300_000.0);
    let plan = FaultPlan::new()
        .with(FaultEvent::instant(
            SimTime::from_secs(30),
            FaultKind::TransferAbort { transfer: tid.0 },
        ))
        .with(FaultEvent::instant(
            SimTime::from_secs(70),
            FaultKind::TransferAbort { transfer: tid.0 },
        ));
    pw.world.enable_faults(plan);
    pw.world.step(SimDuration::from_secs(600));
    assert!(
        pw.world.is_done(tid),
        "transfer must complete despite aborts"
    );
    assert_eq!(pw.world.retries(tid), 2);
    assert!(
        (pw.world.moved_mb(tid) - 300_000.0).abs() < 1e-6,
        "every byte accounted for: {}",
        pw.world.moved_mb(tid)
    );
}

#[test]
fn moved_mb_is_conserved_across_aborts() {
    // moved_mb must never decrease, and while a transfer is down after an
    // abort it must not move (or lose) anything.
    let mut pw = PaperWorld::new(3);
    let tid = finite_transfer(&mut pw, f64::INFINITY.min(1e12));
    let plan = FaultPlan::new().with(FaultEvent::instant(
        SimTime::from_secs(60),
        FaultKind::TransferAbort { transfer: tid.0 },
    ));
    pw.world
        .enable_faults_with_policy(plan, RetryPolicy::fixed(20.0));
    let mut last = 0.0;
    let mut frozen_steps = 0;
    for _ in 0..120 {
        pw.world.step(SimDuration::from_secs(2));
        let m = pw.world.moved_mb(tid);
        assert!(m >= last, "moved_mb decreased: {last} -> {m}");
        if m == last {
            frozen_steps += 1;
        }
        last = m;
    }
    assert_eq!(pw.world.retries(tid), 1);
    // Backoff (20 s) + restart startup: a solid run of frozen 2 s steps.
    assert!(
        frozen_steps >= 10,
        "expected a visible outage, got {frozen_steps} frozen steps"
    );
}

#[test]
fn flaky_link_profile_run_completes_and_retries() {
    let plan = FaultProfile::FlakyLink.plan(Route::UChicago, 7, 1800.0);
    let cfg = DriveConfig::paper(
        Route::UChicago,
        TunerKind::Nm,
        TuneDims::NcOnly { np: 8 },
        LoadSchedule::constant(ExternalLoad::NONE),
    )
    .with_noise_sigma(0.0)
    .with_duration_s(1800.0)
    .with_seed(7)
    .with_faults(plan);
    let log = drive_transfer(&cfg);
    assert_eq!(
        log.epochs.len(),
        60,
        "driver must not lose epochs to faults"
    );
    assert!(log.total_mb() > 0.0);
    // The flap windows show up as depressed epochs, not as missing data.
    let min_epoch = log
        .epochs
        .iter()
        .map(|e| e.observed_mbs)
        .fold(f64::INFINITY, f64::min);
    let max_epoch = log
        .epochs
        .iter()
        .map(|e| e.observed_mbs)
        .fold(0.0, f64::max);
    assert!(
        min_epoch < 0.5 * max_epoch,
        "faults should dent some epochs: min {min_epoch} max {max_epoch}"
    );
}

/// Each adaptive tuner must recover to within 20% of its own no-fault
/// steady state after a hard mid-run degradation window ends.
#[test]
fn tuners_recover_after_fault_window() {
    // WAN link to UChicago at 15% capacity for t in [600, 900).
    let window = FaultPlan::new().with(FaultEvent::window(
        SimTime::from_secs(600),
        SimDuration::from_secs(300),
        FaultKind::LinkDegrade {
            link: Route::UChicago.wan_link_index(),
            factor: 0.15,
        },
    ));
    for tuner in [TunerKind::Cd, TunerKind::Cs, TunerKind::Nm] {
        let base = DriveConfig::paper(
            Route::UChicago,
            tuner,
            TuneDims::NcOnly { np: 8 },
            LoadSchedule::constant(ExternalLoad::NONE),
        )
        .with_noise_sigma(0.0)
        .with_duration_s(1800.0)
        .with_seed(5);
        let clean = drive_transfer(&base);
        let faulty = drive_transfer(&base.clone().with_faults(window.clone()));
        let clean_steady = clean.mean_observed_between(1300.0, 1800.0).unwrap();
        let faulty_steady = faulty.mean_observed_between(1300.0, 1800.0).unwrap();
        assert!(
            faulty_steady >= 0.8 * clean_steady,
            "{}: post-fault steady {faulty_steady:.0} must be within 20% of clean {clean_steady:.0}",
            tuner.name()
        );
        // And the window itself must have hurt (the fault was real).
        let clean_mid = clean.mean_observed_between(630.0, 900.0).unwrap();
        let faulty_mid = faulty.mean_observed_between(630.0, 900.0).unwrap();
        assert!(
            faulty_mid < 0.7 * clean_mid,
            "{}: degradation should bite mid-window: {faulty_mid:.0} vs {clean_mid:.0}",
            tuner.name()
        );
    }
}

#[test]
fn empty_plan_is_equivalent_to_no_plan() {
    let base = DriveConfig::paper(
        Route::UChicago,
        TunerKind::Cs,
        TuneDims::NcOnly { np: 8 },
        LoadSchedule::constant(ExternalLoad::new(8, 4)),
    )
    .with_duration_s(600.0)
    .with_seed(13);
    let without = drive_transfer(&base);
    let with_empty = drive_transfer(&base.clone().with_faults(FaultPlan::new()));
    assert_eq!(
        without.total_mb(),
        with_empty.total_mb(),
        "an empty fault plan must be bit-identical to no plan"
    );
    for (a, b) in without.epochs.iter().zip(&with_empty.epochs) {
        assert_eq!(a.observed_mbs, b.observed_mbs);
        assert_eq!(a.params, b.params);
    }
}

#[test]
fn stall_profile_shows_holes_not_crashes() {
    let plan = FaultPlan::stalls(21, 1, 900.0, 120.0, 30.0);
    assert!(!plan.is_empty());
    let cfg = DriveConfig::paper(
        Route::UChicago,
        TunerKind::Cs,
        TuneDims::NcOnly { np: 8 },
        LoadSchedule::constant(ExternalLoad::NONE),
    )
    .with_noise_sigma(0.0)
    .with_duration_s(900.0)
    .with_seed(21)
    .with_faults(plan);
    let log = drive_transfer(&cfg);
    assert_eq!(log.epochs.len(), 30);
    // Stalls depress epochs but the driver never sees an error.
    assert!(log.total_mb() > 0.0);
}

#[test]
fn faulty_runs_replay_exactly_across_profiles() {
    for profile in [
        FaultProfile::FlakyLink,
        FaultProfile::DegradedWan,
        FaultProfile::LossyTacc,
    ] {
        let route = match profile {
            FaultProfile::LossyTacc => Route::Tacc,
            _ => Route::UChicago,
        };
        let cfg = DriveConfig::paper(
            route,
            TunerKind::Nm,
            TuneDims::NcOnly { np: 8 },
            LoadSchedule::constant(ExternalLoad::NONE),
        )
        .with_duration_s(900.0)
        .with_seed(2)
        .with_faults(profile.plan(route, 2, 900.0));
        let a = drive_transfer(&cfg);
        let b = drive_transfer(&cfg);
        assert_eq!(a.total_mb(), b.total_mb(), "{profile}");
        for (x, y) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(x.observed_mbs, y.observed_mbs, "{profile}");
        }
    }
}
