//! Ablations of the design choices DESIGN.md calls out: control-epoch
//! length, compass step size λ, tolerance ε, and TCP variant.

use xferopt::net::{CongestionControl, Link, Network, Path};
use xferopt::prelude::*;
use xferopt::tuners::offline::maximize;

/// Shorter control epochs pay the restart cost more often: with the paper's
/// ~5 s idle restart, e = 10 s loses roughly half the epoch while e = 60 s
/// loses under a tenth.
#[test]
fn epoch_length_trades_overhead_for_agility() {
    let run = |epoch_s: f64| {
        let mut cfg = DriveConfig::paper(
            Route::UChicago,
            TunerKind::Cs,
            TuneDims::NcOnly { np: 8 },
            LoadSchedule::constant(ExternalLoad::NONE),
        )
        .with_duration_s(1200.0)
        .with_noise_sigma(0.0);
        cfg.epoch_s = epoch_s;
        drive_transfer(&cfg)
    };
    let short = run(10.0);
    let paper = run(30.0);
    let long = run(60.0);
    assert!(
        short.mean_overhead_fraction() > paper.mean_overhead_fraction(),
        "10 s epochs must pay more overhead"
    );
    assert!(
        paper.mean_overhead_fraction() > long.mean_overhead_fraction(),
        "60 s epochs must pay less overhead"
    );
    // Observed throughput (steady) should be ordered the same way on a
    // *static* load, where agility buys nothing.
    let steady = |log: &TransferLog| log.mean_observed_between(800.0, 1201.0).unwrap();
    assert!(
        steady(&short) < steady(&long),
        "static load favours long epochs"
    );
}

/// λ controls how fast compass search covers ground: with a distant optimum,
/// λ = 8 needs far fewer evaluations than λ = 1 (the paper's argument for
/// large steps), while a huge λ overshoots but still converges via halving.
#[test]
fn lambda_governs_search_speed() {
    let evals = |lambda: f64| {
        let mut t = CompassTuner::new(Domain::new(&[(1, 256)]), vec![2], lambda, 5.0);
        let r = maximize(&mut t, 400, |x| -((x[0] - 100) as f64).abs());
        assert!(
            (r.best[0] - 100).abs() <= 2,
            "λ={lambda}: best={:?}",
            r.best
        );
        r.evaluations.len()
    };
    let slow = evals(1.0);
    let paper = evals(8.0);
    let huge = evals(64.0);
    assert!(
        paper < slow,
        "λ=8 must need fewer evaluations than λ=1 ({paper} vs {slow})"
    );
    assert!(huge < slow, "even λ=64 beats unit steps ({huge} vs {slow})");
}

/// ε controls re-trigger sensitivity: with ε = 0.1 % the monitor fires on
/// noise alone; with ε = 5 % (paper) a quiet run converges once and holds.
#[test]
fn tolerance_controls_retriggering() {
    let searches = |eps: f64| {
        let mut t = CompassTuner::new(Domain::new(&[(1, 64)]), vec![2], 8.0, eps).with_seed(3);
        let mut x = t.initial();
        // Noisy but stationary objective: ±2% multiplicative wobble.
        let mut k = 0u64;
        for _ in 0..120 {
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let wobble = 1.0 + 0.02 * (((k >> 33) as f64 / 2e9) * 2.0 - 1.0);
            let f = (4000.0 - ((x[0] - 20) as f64).powi(2)) * wobble;
            x = t.observe(&x.clone(), f);
        }
        t.searches_started()
    };
    let jumpy = searches(0.1);
    let calm = searches(5.0);
    assert!(
        jumpy > calm,
        "tight tolerance must re-trigger more ({jumpy} vs {calm})"
    );
    assert_eq!(calm, 1, "5% tolerance should ignore 2% noise");
}

/// TCP variant ablation: on a long-RTT lossy path the high-speed variants
/// sustain more per-stream throughput than Reno, in the documented order.
#[test]
fn tcp_variant_ordering_on_wan_path() {
    let rate = |cc: CongestionControl| {
        let mut net = Network::new();
        let l = net.add_link(Link::new("wan", 10_000.0));
        let p = net.add_path(
            Path::new("p", vec![l])
                .with_rtt_ms(33.0)
                .with_loss(1e-4)
                .with_wmax_bytes(64.0 * 1024.0 * 1024.0),
        );
        let f = net.add_flow(p, 1, cc);
        net.allocation_of(f)
    };
    let reno = rate(CongestionControl::Reno);
    let htcp = rate(CongestionControl::HTcp);
    let scalable = rate(CongestionControl::Scalable);
    assert!(
        htcp > reno,
        "H-TCP must beat Reno at 1e-4 loss: {htcp} vs {reno}"
    );
    assert!(scalable > htcp, "Scalable is the most aggressive");
}

/// Under stochastic bursty load — external hogs arriving and leaving at
/// Poisson times — the adaptive tuner still beats the static default, and
/// its monitor re-triggers the search at the load edges.
#[test]
fn bursty_load_favours_adaptation() {
    let schedule = LoadSchedule::poisson_bursts(1800.0, 400.0, 300.0, ExternalLoad::new(0, 32), 3);
    assert!(schedule.segments().len() >= 3, "want real bursts");
    let run = |tuner: TunerKind| {
        let cfg = DriveConfig::paper(
            Route::UChicago,
            tuner,
            TuneDims::NcOnly { np: 8 },
            schedule.clone(),
        )
        .with_duration_s(1800.0)
        .with_noise_sigma(0.0);
        drive_transfer(&cfg)
    };
    let default = run(TunerKind::Default);
    let nm = run(TunerKind::Nm);
    assert!(
        nm.total_mb() > default.total_mb(),
        "adaptive must move more data under bursts: {:.0} vs {:.0} MB",
        nm.total_mb(),
        default.total_mb()
    );
    // The tuner actually changed its concurrency over time (re-triggered).
    let ncs: std::collections::HashSet<u32> = nm.epochs.iter().map(|e| e.params.nc).collect();
    assert!(ncs.len() >= 3, "nc should move with the bursts: {ncs:?}");
}

/// With more streams, the *dynamic* window simulation ramps to steady state
/// faster — the paper's "scale more rapidly to peak bandwidth" argument,
/// which the quasi-static model assumes and the dynamic model demonstrates.
#[test]
fn dynamic_ramp_up_favours_parallelism() {
    use xferopt::net::dynamic::DynamicSim;
    let ramp_time = |streams: u32| {
        let mut net = Network::new();
        let l = net.add_link(Link::new("wan", 2500.0));
        let p = net.add_path(Path::new("p", vec![l]).with_rtt_ms(33.0).with_loss(1e-5));
        net.add_flow(p, streams, CongestionControl::HTcp);
        let mut sim = DynamicSim::new(9);
        sim.sync_streams(&net);
        let mut t = 0.0;
        while t < 60.0 {
            let stats = sim.step(&net, 0.033);
            t += 0.033;
            let rate: f64 = stats.values().map(|s| s.rate_mbs).sum();
            if rate > 1250.0 {
                return t;
            }
        }
        t
    };
    let one = ramp_time(1);
    let sixteen = ramp_time(16);
    assert!(
        sixteen < one,
        "16 streams must reach half capacity sooner: {sixteen:.1}s vs {one:.1}s"
    );
}
