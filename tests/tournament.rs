//! Workspace-level tournament tests: golden leaderboard snapshot, full-matrix
//! double-run byte determinism (leaderboard + per-tuner audit JSONL), and the
//! warm-vs-cold convergence claim for the history tuner.
//!
//! The golden files live in `tests/golden/tournament/`; re-bless intentional
//! format changes with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test tournament
//! ```

use xferopt::orchestrator::{
    run_tournament, HistoryRecord, HistoryStore, Leaderboard, ScenarioPreset, TournamentConfig,
};
use xferopt::scenarios::Route;
use xferopt::tuners::TunerKind;

/// The fixed matrix behind the golden snapshot — MUST stay identical to what
/// `xferopt tournament run --quick --seed 7` builds, because the ci.sh smoke
/// gate diffs the CLI's output against the same golden file.
fn golden_cfg() -> TournamentConfig {
    TournamentConfig {
        seed: 7,
        ..TournamentConfig::quick()
    }
}

fn check_golden(path: &str, actual: &str, what: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap())
            .expect("create golden dir");
        std::fs::write(path, actual).expect("write golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden snapshot missing; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        actual, golden,
        "{what} drifted from {path}; if the change is intentional, \
         re-bless with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_leaderboard_matches_snapshot() {
    let mut h = HistoryStore::in_memory();
    let out = run_tournament(&golden_cfg(), &mut h);
    check_golden(
        "tests/golden/tournament/leaderboard.txt",
        &out.leaderboard.render(),
        "tournament leaderboard",
    );
    check_golden(
        "tests/golden/tournament/leaderboard.csv",
        &out.leaderboard.to_csv(),
        "tournament CSV",
    );
    check_golden(
        "tests/golden/tournament/leaderboard.jsonl",
        &out.leaderboard.to_jsonl(),
        "tournament JSONL",
    );
}

#[test]
fn golden_matrix_covers_the_required_axes() {
    let cfg = golden_cfg();
    // ≥3 tuner kinds including both new learners, ≥3 scenarios, ≥2 fault
    // slots — the acceptance floor for the tournament matrix.
    assert!(cfg.tuners.len() >= 3);
    assert!(cfg.tuners.contains(&TunerKind::History));
    assert!(cfg.tuners.contains(&TunerKind::Bandit));
    assert!(cfg.scenarios.len() >= 3);
    assert!(cfg.faults.len() >= 2);

    let mut h = HistoryStore::in_memory();
    let out = run_tournament(&cfg, &mut h);
    assert_eq!(
        out.leaderboard.cells.len(),
        cfg.tuners.len() * cfg.scenarios.len() * cfg.faults.len()
    );
    // Every tuner got ranked, and the ranking is sorted by mean regret.
    assert_eq!(out.leaderboard.ranks.len(), cfg.tuners.len());
    for w in out.leaderboard.ranks.windows(2) {
        assert!(w[0].mean_regret_mb <= w[1].mean_regret_mb);
    }
}

#[test]
fn full_matrix_double_run_is_byte_identical() {
    let run = || {
        let mut h = HistoryStore::in_memory();
        run_tournament(&golden_cfg(), &mut h)
    };
    let (a, b) = (run(), run());
    assert_eq!(
        a.leaderboard.render(),
        b.leaderboard.render(),
        "leaderboard text must be byte-deterministic"
    );
    assert_eq!(a.leaderboard.to_csv(), b.leaderboard.to_csv());
    assert_eq!(a.leaderboard.to_jsonl(), b.leaderboard.to_jsonl());
    assert_eq!(
        a.decisions_jsonl, b.decisions_jsonl,
        "per-tuner audit JSONL must be byte-deterministic"
    );
    assert_eq!(a.history_appended, b.history_appended);
}

#[test]
fn report_round_trips_through_jsonl() {
    let mut h = HistoryStore::in_memory();
    let out = run_tournament(&golden_cfg(), &mut h);
    let doc = out.leaderboard.to_jsonl();
    let back = Leaderboard::from_jsonl(&doc).expect("round trip");
    assert_eq!(back, out.leaderboard);
}

/// The headline warm-start claim: after ≥20 stored runs of the contended
/// preset, the history tuner's t90 beats a cold cd tuner's on that preset.
#[test]
fn warm_history_beats_cold_cd_on_the_contended_preset() {
    let cfg = TournamentConfig {
        tuners: vec![TunerKind::Cd, TunerKind::History],
        scenarios: vec![ScenarioPreset::UcContended],
        faults: vec![None],
        epochs: 12,
        oracle_secs: 60.0,
        ..TournamentConfig::default()
    };

    // Seed the store with ≥20 prior contended runs: vary the seed so the
    // stored observations cluster around (not exactly on) the optimum, as a
    // real history file would.
    let mut store = HistoryStore::in_memory();
    for s in 0..20u64 {
        let out = run_tournament(
            &TournamentConfig {
                tuners: vec![TunerKind::Cs],
                seed: 11 + s,
                epochs: 10,
                ..cfg.clone()
            },
            &mut store,
        );
        assert_eq!(out.history_appended, 1);
    }
    assert!(
        store.len() >= 20,
        "need ≥20 stored runs, got {}",
        store.len()
    );
    assert!(
        store
            .records()
            .iter()
            .all(|r: &HistoryRecord| r.route == Route::UChicago.name()
                && r.scenario == "uc-contended")
    );

    let out = run_tournament(&cfg, &mut store);
    let cell = |name: &str| {
        out.leaderboard
            .cells
            .iter()
            .find(|c| c.tuner == name)
            .unwrap_or_else(|| panic!("missing {name} cell"))
            .clone()
    };
    let (cd, hist) = (cell("cd-tuner"), cell("history"));
    let horizon = cfg.epochs as f64 * cfg.epoch_s;
    let warm_t90 = hist
        .t90_s
        .expect("warm history tuner must reach 90% of oracle");
    assert!(
        warm_t90 < cd.t90_s.unwrap_or(horizon),
        "warm history t90 {warm_t90} must beat cold cd t90 {:?}",
        cd.t90_s
    );
}
