//! Self-healing control plane + chaos-campaign tests (DESIGN.md §17):
//! golden resilience scorecard, selfheal-beats-baselines acceptance, the
//! retry-budget invariant at every tick, shard-count equivalence, and
//! fuzzed checkpoint-journal corruption (truncations and byte flips must
//! salvage a digest-valid prefix or refuse — never silently resume corrupt
//! state).
//!
//! The golden files live in `tests/golden/chaos/`; re-bless intentional
//! format changes with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test chaos
//! ```

use proptest::prelude::*;
use xferopt::orchestrator::{
    parse_journal, resume_fleet, run_campaign, run_fleet, CampaignConfig, FleetConfig, FleetSim,
    GovernConfig, HistoryStore, TopoFleetConfig, Workload,
};

fn check_golden(path: &str, actual: &str, what: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap())
            .expect("create golden dir");
        std::fs::write(path, actual).expect("write golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden snapshot missing; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        actual, golden,
        "{what} drifted from {path}; if the change is intentional, \
         re-bless with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_rolling_outage_scorecard_matches_snapshot() {
    let out = run_campaign(&CampaignConfig::default()).expect("campaign runs");
    check_golden(
        "tests/golden/chaos/rolling_outage_scorecard.txt",
        &out.scorecard,
        "rolling-outage scorecard",
    );
}

#[test]
fn selfheal_beats_both_baselines_and_loses_no_bytes() {
    // The PR's acceptance claim: on the rolling-outage campaign the
    // self-healing fleet moves strictly more MB than both the pinned-routes
    // fleet and the static next-ranked-reroute fleet, completes without
    // losing bytes, and stays within its retry budget.
    let cfg = CampaignConfig::default();
    let out = run_campaign(&cfg).expect("campaign runs");
    let noreroute = out.variant("no-reroute");
    let fixed = out.variant("static");
    let heal = out.variant("selfheal");
    assert!(
        heal.moved_mb > noreroute.moved_mb,
        "selfheal must beat no-reroute: {} vs {}\n{}",
        heal.moved_mb,
        noreroute.moved_mb,
        out.scorecard
    );
    assert!(
        heal.moved_mb > fixed.moved_mb,
        "selfheal must beat static reroute: {} vs {}\n{}",
        heal.moved_mb,
        fixed.moved_mb,
        out.scorecard
    );
    assert!(
        heal.replans > 0,
        "control plane never re-planned:\n{}",
        out.scorecard
    );
    assert!(
        heal.slo_degrades > 0,
        "SLO monitor never fired:\n{}",
        out.scorecard
    );
    let budget = GovernConfig::default().budget_cap * cfg.seeds.len() as u64;
    for t in &out.totals {
        assert_eq!(
            t.bytes_lost, 0.0,
            "{}: completed jobs lost bytes",
            t.variant
        );
        assert_eq!(
            t.retries_used,
            t.requeues + t.reroutes + t.replans,
            "{}: token economy out of step",
            t.variant
        );
        assert!(
            t.retries_used <= budget,
            "{}: consumed {} retries against a {budget} budget",
            t.variant,
            t.retries_used
        );
    }
}

#[test]
fn campaign_scorecard_is_identical_across_reruns_and_shard_counts() {
    let base = CampaignConfig {
        jobs: 10,
        horizon_s: 2400.0,
        ..CampaignConfig::default()
    };
    let a = run_campaign(&base).expect("campaign runs");
    let b = run_campaign(&base).expect("campaign runs");
    assert_eq!(a.scorecard, b.scorecard, "rerun bytes");
    let sharded = CampaignConfig { shards: 4, ..base };
    let c = run_campaign(&sharded).expect("campaign runs");
    // Only the header's shards= field may differ between shard counts.
    let strip = |s: &str| {
        s.replace(" shards=4 ", " shards= ")
            .replace(" shards=1 ", " shards= ")
    };
    assert_eq!(
        strip(&a.scorecard),
        strip(&c.scorecard),
        "shard-count equivalence"
    );
}

/// Selfheal fleet config on the rolling-outage campaign (the direct FleetSim
/// mirror of the harness's `selfheal` variant).
fn selfheal_cfg() -> FleetConfig {
    let mut tc = TopoFleetConfig::preset("mesh");
    tc.campaign = Some("rolling-outage".to_string());
    tc.selfheal = true;
    FleetConfig {
        seed: 7,
        horizon_s: 3600.0,
        topo: Some(tc),
        ..FleetConfig::default()
    }
}

fn mesh_campaign_wl(jobs: usize) -> Workload {
    use xferopt::orchestrator::topo_workload;
    use xferopt::topo::{search_routes, Planet, RouteCatalog, SearchConfig};
    let planet = Planet::preset("mesh").expect("mesh preset");
    let placement = search_routes(&planet, &SearchConfig::default()).expect("search");
    let catalog = RouteCatalog::enumerate(&planet, 3).expect("catalog");
    topo_workload(&placement, &catalog, jobs)
}

#[test]
fn retry_budget_invariant_holds_at_every_tick() {
    // At every tick: tokens never exceed the cap, and consumed tokens never
    // exceed issued ones (every requeue/reroute/migration paid for). At the
    // end, the consumed count equals the supervision counters it funds.
    let cfg = selfheal_cfg();
    let wl = mesh_campaign_wl(20);
    let cap = cfg.govern.budget_cap;
    let mut h = HistoryStore::in_memory();
    let mut sim = FleetSim::new(&wl, &cfg, &mut h);
    let mut last_consumed = 0;
    while sim.tick() {
        let (tokens, consumed, issued) = sim.governor_snapshot().expect("selfheal governor");
        assert!(tokens <= cap, "tokens {tokens} exceed cap {cap}");
        assert!(
            consumed <= issued,
            "consumed {consumed} tokens but only {issued} were issued"
        );
        assert!(consumed >= last_consumed, "consumed count went backwards");
        last_consumed = consumed;
    }
    let (_, consumed, _) = sim.governor_snapshot().expect("selfheal governor");
    let out = sim.finish();
    let s = &out.report.supervision;
    assert_eq!(
        consumed,
        s.requeues + s.reroutes + s.replans,
        "token economy out of step with supervision counters:\n{}",
        out.report.render()
    );
}

#[test]
fn selfheal_run_is_byte_deterministic_and_checkpoint_resumable() {
    // The control plane lives inside the replay boundary: a selfheal chaos
    // run checkpoints mid-campaign and resumes byte-identically.
    let cfg = selfheal_cfg();
    let wl = mesh_campaign_wl(12);
    let full = run_fleet(&wl, &cfg, &mut HistoryStore::in_memory());
    let again = run_fleet(&wl, &cfg, &mut HistoryStore::in_memory());
    assert_eq!(full.report.render(), again.report.render());
    assert_eq!(full.supervision_jsonl, again.supervision_jsonl);
    let total_ticks = {
        let mut h = HistoryStore::in_memory();
        let mut sim = FleetSim::new(&wl, &cfg, &mut h);
        while sim.tick() {}
        sim.tick_index()
    };
    assert!(total_ticks > 3, "probe run too short: {total_ticks} ticks");
    let text = {
        let mut h = HistoryStore::in_memory();
        let mut sim = FleetSim::new(&wl, &cfg, &mut h);
        while sim.tick_index() < 2 * total_ticks / 3 {
            assert!(sim.tick());
        }
        sim.checkpoint()
    };
    let read = parse_journal(&text).expect("single block parses");
    assert!(!read.salvaged());
    let tc = read
        .checkpoint
        .config
        .topo
        .as_ref()
        .expect("topo round-trips");
    assert!(tc.selfheal, "selfheal flag round-trips");
    assert_eq!(tc.campaign.as_deref(), Some("rolling-outage"));
    let resumed = resume_fleet(&read.checkpoint, &mut HistoryStore::in_memory()).unwrap();
    assert_eq!(full.report.render(), resumed.report.render());
    assert_eq!(full.supervision_jsonl, resumed.supervision_jsonl);
}

#[test]
fn multi_region_outage_round_trips_and_stays_deterministic() {
    let mut tc = TopoFleetConfig::preset("mesh");
    tc.outage_regions = vec![0, 2];
    let cfg = FleetConfig {
        seed: 7,
        horizon_s: 2400.0,
        topo: Some(tc),
        ..FleetConfig::default()
    };
    let wl = mesh_campaign_wl(10);
    let a = run_fleet(&wl, &cfg, &mut HistoryStore::in_memory());
    let b = run_fleet(&wl, &cfg, &mut HistoryStore::in_memory());
    assert_eq!(a.report.render(), b.report.render());
    assert!(a.report.render().contains(" outage_regions=0,2"));
    let text = {
        let mut h = HistoryStore::in_memory();
        let mut sim = FleetSim::new(&wl, &cfg, &mut h);
        for _ in 0..50 {
            assert!(sim.tick());
        }
        sim.checkpoint()
    };
    let ck = parse_journal(&text).expect("parses").checkpoint;
    let tc = ck.config.topo.as_ref().expect("topo round-trips");
    assert_eq!(tc.outage_regions, vec![0, 2], "multi-region round trip");
    let resumed = resume_fleet(&ck, &mut HistoryStore::in_memory()).unwrap();
    assert_eq!(a.report.render(), resumed.report.render());
}

/// Reference journal for the corruption fuzzers: a classic fleet
/// checkpointed at two ticks, plus the uninterrupted run's report.
fn journal_fixture() -> (String, String) {
    let cfg = FleetConfig {
        horizon_s: 1800.0,
        ..FleetConfig::default()
    };
    let w = Workload::synthetic(4, 5);
    let full = run_fleet(&w, &cfg, &mut HistoryStore::in_memory());
    let mut h = HistoryStore::in_memory();
    let mut sim = FleetSim::new(&w, &cfg, &mut h);
    let mut journal = String::new();
    for _ in 0..10 {
        assert!(sim.tick());
    }
    journal.push_str(&sim.checkpoint());
    for _ in 0..10 {
        assert!(sim.tick());
    }
    journal.push_str(&sim.checkpoint());
    (journal, full.report.render())
}

proptest! {
    /// Truncating the journal anywhere must either salvage a checkpoint
    /// that resumes byte-identically to the uninterrupted run, or refuse —
    /// never resume into divergent state.
    #[test]
    fn truncated_journals_salvage_or_refuse(frac in 0.0f64..1.0) {
        let (journal, full_render) = journal_fixture();
        let cut = (journal.len() as f64 * frac) as usize;
        let cut = (0..=cut).rev().find(|&i| journal.is_char_boundary(i)).unwrap_or(0);
        let torn = &journal[..cut];
        if let Ok(read) = parse_journal(torn) {
            let resumed = resume_fleet(&read.checkpoint, &mut HistoryStore::in_memory())
                .expect("a parseable salvaged block must replay cleanly");
            prop_assert_eq!(resumed.report.render(), full_render);
        }
    }

    /// Flipping one byte anywhere in the journal must either be caught
    /// (parse or digest refusal, possibly salvaging the older block) or be
    /// provably harmless: whatever resumes must match the uninterrupted run.
    #[test]
    fn bitflipped_journals_salvage_or_refuse(pos in 0.0f64..1.0, bit in 0u8..7) {
        let (journal, full_render) = journal_fixture();
        let idx = ((journal.len() - 1) as f64 * pos) as usize;
        let mut bytes = journal.into_bytes();
        bytes[idx] ^= 1 << bit;
        let Ok(text) = String::from_utf8(bytes) else {
            return; // non-UTF8 file: read_to_string refuses upstream
        };
        if let Ok(read) = parse_journal(&text) {
            if let Ok(resumed) = resume_fleet(&read.checkpoint, &mut HistoryStore::in_memory()) {
                prop_assert_eq!(resumed.report.render(), full_render);
            }
        }
    }
}
