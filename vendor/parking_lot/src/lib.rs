//! Minimal offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the small subset of the `parking_lot` API the workspace uses
//! (`Mutex`, `RwLock` with panic-free, non-poisoning guards), implemented on
//! top of `std::sync`. Poisoned std locks are transparently recovered, which
//! matches `parking_lot`'s no-poisoning semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader–writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
