//! Offline no-op replacements for serde's derive macros.
//!
//! The workspace derives `Serialize`/`Deserialize` on model types for
//! forward compatibility but never serializes through serde at runtime (all
//! report emission is hand-rolled CSV/JSON). With crates.io unreachable in
//! the build environment, these derives expand to nothing, which compiles
//! every `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` attribute
//! without pulling in syn/quote.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts (and ignores) `#[serde(...)]` attrs.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts (and ignores) `#[serde(...)]` attrs.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
