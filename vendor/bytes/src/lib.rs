//! Minimal offline shim for the `bytes` crate.
//!
//! Implements the subset the workspace uses: [`Bytes`] (a cheaply clonable,
//! reference-counted immutable byte buffer), [`BytesMut`] (a growable buffer
//! supporting `split_to`/`freeze`), and the [`Buf`]/[`BufMut`] trait methods
//! the GridFTP framing code calls (`advance`, `get_u64`, `put_u8`,
//! `put_u64`). Zero-copy clone semantics are preserved via `Arc` windows.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer (shared `Arc` window).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static byte slice (copied once; the real crate borrows, but
    /// semantics are equivalent for all users here).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A zero-copy sub-window of this buffer.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// View as a plain byte slice.
    pub fn as_ref_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref_slice() == other.as_ref_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref_slice().hash(state);
    }
}

/// A growable byte buffer that can yield frozen [`Bytes`] windows.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Split off and return the first `at` bytes, keeping the rest.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.data.len(), "split_to out of bounds");
        let rest = self.data.split_off(at);
        let head = std::mem::replace(&mut self.data, rest);
        BytesMut { data: head }
    }

    /// Freeze into an immutable, cheaply clonable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-side cursor operations (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// Discard the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// Read a big-endian `u64` and advance past it.
    fn get_u64(&mut self) -> u64;
    /// Read one byte and advance past it.
    fn get_u8(&mut self) -> u8;
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.data.len(), "advance out of bounds");
        self.data.drain(..cnt);
    }

    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.data[..8].try_into().expect("buffer underflow"));
        self.advance(8);
        v
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.data[0];
        self.advance(1);
        v
    }
}

/// Write-side append operations (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Append a slice.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_window_semantics() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let c = s.clone();
        assert_eq!(c, s);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn bytesmut_split_freeze() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(0xAB);
        m.put_u64(7);
        m.extend_from_slice(b"xy");
        assert_eq!(m.len(), 11);
        let mut head = m.split_to(9);
        assert_eq!(m.len(), 2);
        assert_eq!(head.get_u8(), 0xAB);
        assert_eq!(head.get_u64(), 7);
        assert_eq!(&m.freeze()[..], b"xy");
    }

    #[test]
    fn advance_and_remaining() {
        let mut m = BytesMut::new();
        m.extend_from_slice(&[0, 1, 2, 3]);
        m.advance(2);
        assert_eq!(m.remaining(), 2);
        assert_eq!(&m[..], &[2, 3]);
    }
}
