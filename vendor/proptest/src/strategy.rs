//! Strategies: composable random-value generators.
//!
//! A [`Strategy`] produces values of an associated type from a deterministic
//! RNG. Combinators mirror proptest's: [`Strategy::prop_map`],
//! [`Strategy::prop_flat_map`], [`Strategy::boxed`], plus range, tuple,
//! `Vec<Strategy>`, [`Just`], [`any`], and [`Union`] (for `prop_oneof!`).

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of test values. Unlike real proptest there is no shrinking:
/// `new_value` directly samples a value.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Sample one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then use it to build and sample a second strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Filter generated values (bounded retries, then panics — avoid
    /// low-acceptance filters).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Equal-weight choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].new_value(rng)
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $ty
            }
        }
    )+};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite full-range floats (proptest's any::<f64>() includes
        // specials; nothing here relies on NaN/Inf generation).
        let v: f64 = rng.gen_range(-1.0f64..1.0);
        let exp: i32 = rng.gen_range(-300i32..300);
        v * 10f64.powi(exp)
    }
}

/// Full-domain strategy for `T` (see [`Arbitrary`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---- Range strategies -------------------------------------------------

macro_rules! impl_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )+};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

// ---- Structural strategies --------------------------------------------

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.new_value(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
