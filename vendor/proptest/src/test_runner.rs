//! Deterministic RNG for property-test case generation.

pub use rand::rngs::SmallRng as InnerRng;
use rand::{RngCore, SeedableRng};

/// The RNG handed to strategies. Thin wrapper over the vendored `SmallRng`
/// (xoshiro256++), seeded deterministically per (test, case).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: InnerRng,
}

impl TestRng {
    /// RNG for case `case` of the test whose name hashed to `test_hash`.
    pub fn for_case(test_hash: u64, case: u64) -> Self {
        TestRng {
            inner: InnerRng::seed_from_u64(test_hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// RNG from an explicit seed (for standalone strategy sampling).
    pub fn from_seed_u64(seed: u64) -> Self {
        TestRng {
            inner: InnerRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}
