//! Offline mini property-testing harness.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the slice of the `proptest` API the workspace uses: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, range/tuple/`Just`
//! strategies with `prop_map`/`prop_flat_map`/`boxed`, `any::<T>()`,
//! [`prop_oneof!`], and `prop::collection::{vec, btree_set}`.
//!
//! Differences from real proptest: no shrinking (a failing case reports its
//! inputs via the panic message from `prop_assert!` context but is not
//! minimized), and cases are generated from a fixed deterministic seed so
//! test runs are reproducible. Case count defaults to 64 and can be raised
//! with `PROPTEST_CASES`.

pub mod strategy;
pub mod test_runner;

/// Standard import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Admissible collection-size specifications.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.lo >= self.hi {
                self.lo
            } else {
                rng.gen_range(self.lo..=self.hi)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and a size range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<T>`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Bounded retry loop: duplicate draws do not count, so a small
            // element domain may not reach `target`; that matches proptest's
            // best-effort behaviour.
            let mut budget = target * 16 + 64;
            while out.len() < target && budget > 0 {
                out.insert(self.element.new_value(rng));
                budget -= 1;
            }
            out
        }
    }

    /// `prop::collection::btree_set(element, size)`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Deterministic per-test case loop used by [`proptest!`]-generated tests.
///
/// Not public API of real proptest; the macro expands to calls into here.
pub fn run_cases(test_name: &str, mut case: impl FnMut(&mut test_runner::TestRng)) {
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    // Stable per-test seed: FNV-1a over the test name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for i in 0..cases {
        let mut rng = test_runner::TestRng::for_case(h, i);
        case(&mut rng);
    }
}

/// Define property tests. Mirrors `proptest::proptest!` syntax:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn my_prop(x in 0u32..64, v in prop::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 64);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::strategy::Strategy::new_value(&($strat), __proptest_rng);)+
                    $body
                });
            }
        )+
    };
}

/// Assert inside a property test (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Choose among strategies with equal weight: `prop_oneof![s1, s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(
            x in 1i64..10,
            y in 0.5f64..1.5,
            v in prop::collection::vec(any::<u8>(), 2..5),
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.5..1.5).contains(&y));
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn flat_map_and_boxed(
            (n, v) in (1usize..4).prop_flat_map(|n| {
                (Just(n), prop::collection::vec((0i64..5).boxed(), n..=n))
            }),
        ) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }

        #[test]
        fn oneof_union(x in prop_oneof![Just(f64::INFINITY), 0.0f64..10.0]) {
            prop_assert!(x.is_infinite() || (0.0..10.0).contains(&x));
        }

        #[test]
        fn btree_sets(s in prop::collection::btree_set(0usize..6, 1..=6)) {
            prop_assert!(!s.is_empty() && s.len() <= 6);
            prop_assert!(s.iter().all(|&x| x < 6));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        crate::run_cases("det", |rng| a.push(Strategy::new_value(&(0u64..1000), rng)));
        crate::run_cases("det", |rng| b.push(Strategy::new_value(&(0u64..1000), rng)));
        assert_eq!(a, b);
        assert!(a.iter().collect::<std::collections::HashSet<_>>().len() > 10);
    }
}
