//! Minimal offline shim for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of `crossbeam` the workspace uses — scoped threads
//! with the `crossbeam::scope(|s| { s.spawn(|_| ..) })` calling convention —
//! on top of `std::thread::scope` (stable since Rust 1.63).

use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Result of a scope or a joined scoped thread: `Err` carries the panic
/// payload, exactly like `std::thread::Result`.
pub type ThreadResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

/// A handle into a running scope, passed to [`scope`]'s closure and to every
/// spawned thread's closure (crossbeam's spawn closures take `|scope| ..`;
/// virtually all callers ignore it as `|_| ..`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    _marker: PhantomData<&'env ()>,
}

// `&std::thread::Scope` is Send + Sync, so sharing the wrapper is fine.
impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope handle (ignored
    /// by most callers) and may borrow from the enclosing stack frame.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        let handle = self.inner.spawn(move || {
            let scope = Scope {
                inner,
                _marker: PhantomData,
            };
            f(&scope)
        });
        ScopedJoinHandle { inner: handle }
    }
}

/// Handle for joining one scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish; `Err` carries its panic payload.
    pub fn join(self) -> ThreadResult<T> {
        self.inner.join()
    }
}

/// Create a scope for spawning borrowing threads. Returns `Ok(closure
/// result)` once every spawned thread has finished, or `Err(payload)` if the
/// closure or an unjoined child panicked (crossbeam's contract).
pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let wrapper = Scope {
                inner: s,
                _marker: PhantomData,
            };
            f(&wrapper)
        })
    }))
}

/// `crossbeam::thread` module alias, for callers that spell it out.
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let mut data = vec![1, 2, 3];
        let sum = crate::scope(|s| {
            let h = s.spawn(|_| 40);
            data.push(4);
            h.join().unwrap() + data.len() as i32 - 2
        })
        .unwrap();
        assert_eq!(sum, 42);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::scope(|s| {
            let h = s.spawn(|inner| inner.spawn(|_| 7).join().unwrap());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }

    #[test]
    fn child_panic_is_reported() {
        let r = crate::scope(|s| {
            let h = s.spawn(|_| -> i32 { panic!("boom") });
            h.join()
        })
        .unwrap();
        assert!(r.is_err());
    }
}
