//! Offline facade for the `serde` crate.
//!
//! Provides marker `Serialize`/`Deserialize` traits and re-exports the no-op
//! derive macros from the vendored `serde_derive`, so types annotated with
//! `#[derive(Serialize, Deserialize)]` compile without crates.io access.
//! Nothing in the workspace serializes through serde at runtime.

/// Marker trait standing in for `serde::Serialize` (no methods; the
/// workspace never serializes through serde).
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize` (no methods).
pub trait Deserialize<'de> {}

// The no-op derives (they expand to nothing, so the traits above are never
// implemented — which is fine, since no code requires the bounds).
pub use serde_derive::{Deserialize, Serialize};
