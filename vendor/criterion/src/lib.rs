//! Offline minimal stand-in for the `criterion` benchmarking crate.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `BenchmarkGroup` (`sample_size`, `throughput`, `bench_with_input`),
//! `bench_function`, `BenchmarkId`, `Throughput`, `Bencher::iter` /
//! `iter_batched`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple best-of-samples
//! wall-clock timer printed as `ns/iter`; there is no statistical analysis
//! or HTML reporting.

use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a value (wraps `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Strategy for batched iteration (subset; all variants behave alike here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per batch of iterations.
    PerIteration,
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Iterations per measured sample.
    iters: u64,
    /// Best observed per-iteration time.
    best_ns: f64,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            best_ns: f64::INFINITY,
        }
    }

    /// Measure `routine` over the sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
        self.best_ns = self.best_ns.min(ns);
    }

    /// Measure `routine` with per-iteration `setup` excluded from timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        let ns = total.as_nanos() as f64 / self.iters as f64;
        self.best_ns = self.best_ns.min(ns);
    }
}

fn run_samples(name: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: one iteration first, then size samples to ~20 ms each.
    let mut cal = Bencher::new(1);
    f(&mut cal);
    let per_iter_ns = cal.best_ns.max(1.0);
    let iters = ((20_000_000.0 / per_iter_ns) as u64).clamp(1, 1_000_000);
    let mut best = cal.best_ns;
    for _ in 0..3 {
        let mut b = Bencher::new(iters);
        f(&mut b);
        best = best.min(b.best_ns);
    }
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.1} MB/s", n as f64 / best * 1000.0 / 1.048_576)
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.1} Kelem/s", n as f64 / best * 1e6 / 1000.0)
        }
        None => String::new(),
    };
    println!("bench {name:<48} {best:>12.1} ns/iter{rate}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the target sample count (accepted, unused by this shim).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement time (accepted, unused by this shim).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` against `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_samples(&format!("{}/{}", self.name, id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Benchmark `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId2>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_samples(
            &format!("{}/{}", self.name, id.into().0),
            self.throughput,
            &mut f,
        );
        self
    }

    /// Finish the group (prints nothing extra in this shim).
    pub fn finish(self) {}
}

/// Internal: accepts both `&str` and `BenchmarkId` for `bench_function`.
pub struct BenchmarkId2(String);

impl From<&str> for BenchmarkId2 {
    fn from(s: &str) -> Self {
        BenchmarkId2(s.to_string())
    }
}
impl From<String> for BenchmarkId2 {
    fn from(s: String) -> Self {
        BenchmarkId2(s)
    }
}
impl From<BenchmarkId> for BenchmarkId2 {
    fn from(id: BenchmarkId) -> Self {
        BenchmarkId2(id.id)
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Benchmark a single function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId2>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_samples(&id.into().0, None, &mut f);
        self
    }

    /// Configuration hook (accepted, unused).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Run registered groups (no-op; groups run eagerly in this shim).
    pub fn final_summary(&mut self) {}
}

/// Declare a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
