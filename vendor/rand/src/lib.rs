//! Offline, bit-compatible subset of `rand` 0.8.
//!
//! The build environment has no crates.io access, so this vendored crate
//! re-implements exactly the slice of the `rand` API the workspace uses:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ with SplitMix64 `seed_from_u64`,
//!   matching `rand 0.8` / `rand_xoshiro 0.6` on 64-bit platforms bit for
//!   bit, so all seeded simulation streams reproduce the original results.
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] with the same
//!   value-construction algorithms (53-bit floats, Lemire widening-multiply
//!   integer sampling, 2⁻⁶⁴-scaled Bernoulli).
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates with the u32 index path
//!   used by `rand 0.8` for slices shorter than 2³².

/// The core RNG abstraction (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// RNGs constructible from seeds (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via SplitMix64 expansion (this matches the
    /// `rand_xoshiro` override used by `SmallRng`, not the generic PCG-based
    /// `rand_core` default — `SmallRng` is the only RNG here).
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Distribution support types.
pub mod distributions {
    use super::RngCore;

    /// Types samplable uniformly over their whole domain (subset of
    /// `rand::distributions::Standard` support).
    pub trait Standard: Sized {
        /// Sample a value from the full-domain distribution.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for u8 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() as u8
        }
    }
    impl Standard for u16 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() as u16
        }
    }
    impl Standard for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }
    impl Standard for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }
    impl Standard for usize {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as usize
        }
    }
    impl Standard for i64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as i64
        }
    }
    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() as i32) < 0
        }
    }
    impl Standard for f64 {
        /// 53 significant bits, `[0, 1)` — rand 0.8's `Standard` for `f64`.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            let scale = 1.0 / ((1u64 << 53) as f64);
            (rng.next_u64() >> 11) as f64 * scale
        }
    }
    impl Standard for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            let scale = 1.0 / ((1u32 << 24) as f32);
            (rng.next_u32() >> 8) as f32 * scale
        }
    }
}

mod uniform {
    use super::RngCore;

    /// 64×64→128 widening multiply, split into (high, low) — rand's `wmul`.
    #[inline]
    fn wmul64(a: u64, b: u64) -> (u64, u64) {
        let t = (a as u128) * (b as u128);
        ((t >> 64) as u64, t as u64)
    }

    #[inline]
    fn wmul32(a: u32, b: u32) -> (u32, u32) {
        let t = (a as u64) * (b as u64);
        ((t >> 32) as u32, t as u32)
    }

    /// Sample uniformly from `[low, low + range)` over u64 lattice using
    /// rand 0.8's widening-multiply + rejection ("canon" single-sample
    /// `UniformInt::sample_single_inclusive` shape).
    #[inline]
    pub fn sample_u64_lattice<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
        if range == 0 {
            // Full domain.
            return rng.next_u64();
        }
        // rand 0.8 `UniformSampler::sample_single_inclusive`:
        // zone = (range << range.leading_zeros()).wrapping_sub(1)
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            let v = rng.next_u64();
            let (hi, lo) = wmul64(v, range);
            if lo <= zone {
                return hi;
            }
        }
    }

    #[inline]
    pub fn sample_u32_lattice<R: RngCore + ?Sized>(rng: &mut R, range: u32) -> u32 {
        if range == 0 {
            return rng.next_u32();
        }
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            let v = rng.next_u32();
            let (hi, lo) = wmul32(v, range);
            if lo <= zone {
                return hi;
            }
        }
    }

    /// Uniform float in `[low, high)` using rand 0.8's `[1, 2)` mantissa
    /// construction.
    #[inline]
    pub fn sample_f64<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        debug_assert!(low < high, "gen_range: low must be < high");
        let scale = high - low;
        let fraction = rng.next_u64() >> 12;
        let value1_2 = f64::from_bits((1023u64 << 52) | fraction);
        let value0_1 = value1_2 - 1.0;
        value0_1 * scale + low
    }
}

/// Ranges usable with [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Sample a value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty => $u:ty, $sampler:ident);+ $(;)?) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let range = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(crate::uniform::$sampler(rng, range as _) as $u as $ty)
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let range = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                lo.wrapping_add(crate::uniform::$sampler(rng, range as _) as $u as $ty)
            }
        }
    )+};
}

impl_int_range! {
    u64 => u64, sample_u64_lattice;
    i64 => u64, sample_u64_lattice;
    usize => u64, sample_u64_lattice;
    isize => u64, sample_u64_lattice;
    u32 => u32, sample_u32_lattice;
    i32 => u32, sample_u32_lattice;
    u16 => u32, sample_u32_lattice;
    u8 => u32, sample_u32_lattice;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        uniform::sample_f64(rng, self.start, self.end)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        uniform::sample_f64(rng, self.start as f64, self.end as f64) as f32
    }
}

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a full-domain value (rand's `Standard` distribution).
    fn gen<T: distributions::Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        if p == 1.0 {
            return true;
        }
        // rand 0.8 Bernoulli: p_int = p * 2^64, compare against next_u64.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }

    /// Alias for `gen::<f64>()`-style sampling of any standard type.
    fn random<T: distributions::Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — bit-compatible with `rand 0.8`'s `SmallRng` on 64-bit
    /// platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next_u64().to_le_bytes();
                let n = rem.len();
                rem.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&w| w == 0) {
                // All-zero state is a fixed point; nudge it (rand_xoshiro
                // maps the zero seed away the same way).
                s = [1, 0, 0, 0];
            }
            SmallRng { s }
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Uniform index below `ubound` — rand 0.8 `gen_index`: u32 sampling for
    /// small bounds, usize above.
    #[inline]
    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= u32::MAX as usize {
            rng.gen_range(0..ubound as u32) as usize
        } else {
            rng.gen_range(0..ubound)
        }
    }

    /// Slice shuffling and sampling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, identical traversal order to rand 0.8.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// One uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_index(rng, self.len())])
            }
        }
    }
}

/// `rand::thread_rng` stand-in: a `SmallRng` seeded from system entropy
/// (time + ASLR); only for non-reproducible convenience paths.
pub fn thread_rng() -> rngs::SmallRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed);
    let aslr = (&t as *const _ as usize) as u64;
    SeedableRng::seed_from_u64(t ^ aslr.rotate_left(32))
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    /// Known-answer test: first outputs of rand 0.8's SmallRng (xoshiro256++
    /// with SplitMix64 seeding) for seed 42. These constants were produced
    /// by the reference implementation and pin bit-compatibility.
    #[test]
    fn xoshiro256pp_reference_stream() {
        // SplitMix64(42) expansion:
        let mut rng = SmallRng::seed_from_u64(42);
        // Reference: xoshiro256++ with state from SplitMix64(42).
        let mut state: u64 = 42;
        let mut s = [0u64; 4];
        for w in s.iter_mut() {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *w = z ^ (z >> 31);
        }
        let expected0 = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        assert_eq!(rng.next_u64(), expected0);
    }

    #[test]
    fn gen_range_int_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-5i64..=17);
            assert!((-5..=17).contains(&v));
            let u: u32 = rng.gen_range(0u32..13);
            assert!(u < 13);
            let z: usize = rng.gen_range(0usize..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_range_float_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(2.0f64..4.0);
            assert!((2.0..4.0).contains(&v));
            lo_seen |= v < 2.2;
            hi_seen |= v > 3.8;
        }
        assert!(lo_seen && hi_seen, "range should be covered");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let trues = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&trues), "got {trues}");
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        let mut a: Vec<u32> = (0..32).collect();
        let mut b = a.clone();
        a.shuffle(&mut SmallRng::seed_from_u64(3));
        b.shuffle(&mut SmallRng::seed_from_u64(3));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        let mut c: Vec<u32> = (0..32).collect();
        c.shuffle(&mut SmallRng::seed_from_u64(4));
        assert_ne!(a, c, "different seeds should shuffle differently");
    }

    #[test]
    fn zero_seed_is_not_stuck() {
        let mut rng = SmallRng::from_seed([0u8; 32]);
        let outs: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(
            outs.windows(2).any(|w| w[0] != w[1]),
            "all-zero seed must still advance: {outs:?}"
        );
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
