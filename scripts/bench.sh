#!/usr/bin/env bash
# Microbenchmark runner: builds the bench binaries in release mode and
# runs the allocation-engine benchmark in full mode from the repo root,
# so BENCH_alloc.json lands next to the other BENCH_* artifacts.
#
# Usage: scripts/bench.sh [--quick]
#
#   --quick   shrink epoch counts (the CI smoke gate uses this mode)
#
# The alloc benchmark itself asserts the 100-flow repeated-read speedup
# is >= 5x, so a perf regression makes this script fail.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release -p xferopt-bench"
cargo build --release -p xferopt-bench

echo "==> alloc benchmark (cached vs uncached max-min solves)"
./target/release/alloc "$@"

echo "==> BENCH_alloc.json"
grep -E '"(repeated_read_100_flow_speedup|solves_per_tick)"' BENCH_alloc.json
