#!/usr/bin/env bash
# Microbenchmark runner: builds the bench binaries in release mode and
# runs all three benchmarks (alloc, fleet, routes) in full mode from
# the repo root, so the BENCH_*.json artifacts land next to each other.
#
# Usage: scripts/bench.sh [--quick]
#
#   --quick   shrink sizes and windows (the CI smoke gate uses this mode)
#
# Each benchmark asserts its own headline gates (alloc: repeated-read
# speedup >= 5x, churn speedup >= 5x with < 1 component solve per
# mutation; fleet: 10k-job sharded speedup >= 2x, quiet sweep skipping
# ticks; routes: outage re-route gain > 1x), so a perf regression makes
# this script fail.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release -p xferopt-bench"
cargo build --release -p xferopt-bench

echo "==> alloc benchmark (cached vs uncached max-min solves + mutation churn)"
./target/release/alloc "$@"

echo "==> fleet benchmark (sharded scaling + quiet skip-ahead sweep)"
./target/release/fleet "$@"

echo "==> routes benchmark (planet route search + outage re-route)"
./target/release/routes "$@"

echo "==> headline numbers"
grep -E '"(repeated_read_100_flow_speedup|solves_per_tick|churn_speedup_1000x64|churn_solves_per_mutation_1000x64)"' BENCH_alloc.json
grep -E '"(fleet_10k_shard8_speedup|quiet_10k_skipped_ticks)"' BENCH_fleet.json
grep -E '"outage_reroute_gain"' BENCH_routes.json
