#!/usr/bin/env bash
# Local CI gate: build, test, and lint the whole workspace offline.
#
# Usage: scripts/ci.sh
#
# The workspace vendors all external dependencies under vendor/, so the
# entire pipeline must succeed with the network disabled. Golden snapshots
# (tests/golden/) are compared byte-for-byte; re-bless with
#   UPDATE_GOLDEN=1 cargo test --test determinism golden_fault_trace
#   UPDATE_GOLDEN=1 cargo test --test telemetry
#   UPDATE_GOLDEN=1 cargo test --test tournament
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> telemetry suite (golden snapshots + determinism)"
cargo test -q --test telemetry
cargo test -q -p xferopt-tuners --test audit_sequences

echo "==> fleet smoke (orchestrator determinism end-to-end)"
cargo test -q --test fleet
FLEET_TMP="$(mktemp -d)"
trap 'rm -rf "$FLEET_TMP"' EXIT
./target/release/xferopt fleet run --jobs 5 --seed 7 --policy sjf \
  --report-out "$FLEET_TMP/a.txt"
./target/release/xferopt fleet run --jobs 5 --seed 7 --policy sjf \
  --report-out "$FLEET_TMP/b.txt"
diff "$FLEET_TMP/a.txt" "$FLEET_TMP/b.txt" \
  || { echo "fleet run is not deterministic"; exit 1; }
./target/release/xferopt fleet run --jobs 5 --seed 7 --policy wfair \
  --report-out "$FLEET_TMP/wa.txt"
./target/release/xferopt fleet run --jobs 5 --seed 7 --policy wfair \
  --report-out "$FLEET_TMP/wb.txt"
diff "$FLEET_TMP/wa.txt" "$FLEET_TMP/wb.txt" \
  || { echo "fleet run (wfair) is not deterministic"; exit 1; }

echo "==> shard-determinism smoke (--shards N is a byte-level no-op)"
cargo test -q --test shard_equiv
./target/release/xferopt fleet run --jobs 5 --seed 7 --policy sjf \
  --shards 4 --report-out "$FLEET_TMP/s4a.txt"
./target/release/xferopt fleet run --jobs 5 --seed 7 --policy sjf \
  --shards 4 --report-out "$FLEET_TMP/s4b.txt"
diff "$FLEET_TMP/s4a.txt" "$FLEET_TMP/s4b.txt" \
  || { echo "sharded fleet run is not deterministic"; exit 1; }
diff "$FLEET_TMP/a.txt" "$FLEET_TMP/s4a.txt" \
  || { echo "--shards 4 diverged from the single-threaded reference"; exit 1; }
./target/release/xferopt fleet run --jobs 9 --seed 7 --policy sjf \
  --sites 3 --shards 1 --report-out "$FLEET_TMP/m1.txt"
./target/release/xferopt fleet run --jobs 9 --seed 7 --policy sjf \
  --sites 3 --shards 8 --report-out "$FLEET_TMP/m8.txt"
diff "$FLEET_TMP/m1.txt" "$FLEET_TMP/m8.txt" \
  || { echo "multi-site --shards 8 diverged from --shards 1"; exit 1; }

echo "==> event-step determinism (quiet-tick skip-ahead is a byte-level no-op)"
cargo test -q --test event_step
./target/release/xferopt fleet run --jobs 5 --seed 7 --policy sjf \
  --dense --report-out "$FLEET_TMP/dense.txt"
diff "$FLEET_TMP/a.txt" "$FLEET_TMP/dense.txt" \
  || { echo "--dense diverged from the skip-ahead default"; exit 1; }
./target/release/xferopt fleet run --jobs 9 --seed 7 --policy sjf \
  --sites 3 --shards 4 --dense --report-out "$FLEET_TMP/m4d.txt"
diff "$FLEET_TMP/m1.txt" "$FLEET_TMP/m4d.txt" \
  || { echo "dense --shards 4 diverged from the skip-ahead --shards 1 run"; exit 1; }

echo "==> perf smoke (fleet scaling, quick mode)"
(cd "$FLEET_TMP" && "$OLDPWD/target/release/fleet" --quick)
[ -f "$FLEET_TMP/BENCH_fleet.json" ] \
  || { echo "BENCH_fleet.json missing"; exit 1; }
FSPEEDUP="$(awk -F': ' '/"fleet_10k_shard8_speedup"/ \
  {gsub(/[,"]/, "", $2); print $2}' "$FLEET_TMP/BENCH_fleet.json")"
awk -v s="$FSPEEDUP" 'BEGIN { exit !(s >= 2.0) }' \
  || { echo "scaling regression: 10k-job sharded speedup ${FSPEEDUP}x < 2x"; exit 1; }
echo "    10k-job 8-shard tick-throughput speedup: ${FSPEEDUP}x"
FSKIP="$(awk -F': ' '/"quiet_10k_skipped_ticks"/ \
  {gsub(/[,"]/, "", $2); print $2}' "$FLEET_TMP/BENCH_fleet.json")"
awk -v s="$FSKIP" 'BEGIN { exit !(s > 0) }' \
  || { echo "skip-ahead regression: quiet 10k sweep skipped ${FSKIP} ticks"; exit 1; }
echo "    quiet 10k-job sweep: ${FSKIP} ticks skipped"

echo "==> perf smoke (allocation engine, quick mode)"
# Run inside the temp dir so the quick-mode JSON does not clobber the
# committed full-mode BENCH_alloc.json at the repo root.
(cd "$FLEET_TMP" && "$OLDPWD/target/release/alloc" --quick)
[ -f "$FLEET_TMP/BENCH_alloc.json" ] \
  || { echo "BENCH_alloc.json missing"; exit 1; }
SPEEDUP="$(awk -F': ' '/"repeated_read_100_flow_speedup"/ \
  {gsub(/[,"]/, "", $2); print $2}' "$FLEET_TMP/BENCH_alloc.json")"
awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 5.0) }' \
  || { echo "perf regression: 100-flow speedup ${SPEEDUP}x < 5x"; exit 1; }
echo "    100-flow repeated-read speedup: ${SPEEDUP}x"
CHURN_SPM="$(awk -F': ' '/"churn_solves_per_mutation_1000x64"/ \
  {gsub(/[,"]/, "", $2); print $2}' "$FLEET_TMP/BENCH_alloc.json")"
awk -v s="$CHURN_SPM" 'BEGIN { exit !(s < 1.0) }' \
  || { echo "churn regression: ${CHURN_SPM} component solves per mutation at 1000 flows (want < 1)"; exit 1; }
CHURN_SPEEDUP="$(awk -F': ' '/"churn_speedup_1000x64"/ \
  {gsub(/[,"]/, "", $2); print $2}' "$FLEET_TMP/BENCH_alloc.json")"
awk -v s="$CHURN_SPEEDUP" 'BEGIN { exit !(s >= 5.0) }' \
  || { echo "churn regression: 1000x64 partial-vs-full speedup ${CHURN_SPEEDUP}x < 5x"; exit 1; }
echo "    1000x64 churn: ${CHURN_SPEEDUP}x vs full re-solve, ${CHURN_SPM} solves/mutation"

echo "==> supervision suite (chaos determinism + golden chaos snapshot)"
cargo test -q --test supervision

echo "==> chaos smoke (--faults produces supervision events)"
./target/release/xferopt fleet run --jobs 6 --seed 7 --horizon 7200 \
  --faults flaky-link --report-out "$FLEET_TMP/chaos.txt" \
  --supervision-out "$FLEET_TMP/chaos.jsonl"
grep -q 'fleet_supervision_total' "$FLEET_TMP/chaos.jsonl" \
  || { echo "chaos run emitted no supervision metrics"; exit 1; }

echo "==> crash/resume gate (kill at tick 70, resume byte-identical)"
./target/release/xferopt fleet run --jobs 6 --seed 7 --horizon 7200 \
  --faults flaky-link --history "$FLEET_TMP/hist-crash" \
  --checkpoint-out "$FLEET_TMP/ck.jsonl" --checkpoint-every 20 \
  --stop-at-tick 70
./target/release/xferopt fleet resume --checkpoint "$FLEET_TMP/ck.jsonl" \
  --history "$FLEET_TMP/hist-crash" --report-out "$FLEET_TMP/resumed.txt"
./target/release/xferopt fleet run --jobs 6 --seed 7 --horizon 7200 \
  --faults flaky-link --history "$FLEET_TMP/hist-full" \
  --report-out "$FLEET_TMP/full.txt"
diff "$FLEET_TMP/full.txt" "$FLEET_TMP/resumed.txt" \
  || { echo "resume diverged from the uninterrupted run"; exit 1; }
diff "$FLEET_TMP/hist-crash/history.jsonl" "$FLEET_TMP/hist-full/history.jsonl" \
  || { echo "resume diverged in the history file"; exit 1; }

echo "==> tournament smoke (quick matrix, golden leaderboard diff)"
cargo test -q --test tournament
# Quick-mode matrix (capped epochs for the CI budget) must reproduce the
# committed golden snapshot byte for byte from the CLI too.
./target/release/xferopt tournament run --quick --seed 7 \
  --report-out "$FLEET_TMP/tour.txt" --jsonl-out "$FLEET_TMP/tour.jsonl"
diff "$FLEET_TMP/tour.txt" tests/golden/tournament/leaderboard.txt \
  || { echo "tournament leaderboard drifted from golden"; exit 1; }
./target/release/xferopt tournament report --in "$FLEET_TMP/tour.jsonl" \
  > "$FLEET_TMP/tour-replay.txt"
diff "$FLEET_TMP/tour-replay.txt" tests/golden/tournament/leaderboard.txt \
  || { echo "tournament report replay drifted from golden"; exit 1; }
head -c 80 "$FLEET_TMP/tour.jsonl" > "$FLEET_TMP/tour-trunc.jsonl"
if ./target/release/xferopt tournament report --in "$FLEET_TMP/tour-trunc.jsonl" \
  >/dev/null 2>&1; then
  echo "tournament report accepted a truncated file"; exit 1
fi

echo "==> route-search smoke (planet search + placement determinism)"
cargo test -q --test routes
./target/release/xferopt routes search --preset mesh \
  --out "$FLEET_TMP/placement-a.jsonl" > "$FLEET_TMP/routes-a.txt"
./target/release/xferopt routes search --preset mesh \
  --out "$FLEET_TMP/placement-b.jsonl" > "$FLEET_TMP/routes-b.txt"
diff "$FLEET_TMP/routes-a.txt" "$FLEET_TMP/routes-b.txt" \
  || { echo "routes search leaderboard is not deterministic"; exit 1; }
diff "$FLEET_TMP/placement-a.jsonl" "$FLEET_TMP/placement-b.jsonl" \
  || { echo "routes search placement is not deterministic"; exit 1; }
diff "$FLEET_TMP/routes-a.txt" tests/golden/routes/leaderboard.txt \
  || { echo "routes search leaderboard drifted from golden"; exit 1; }
diff "$FLEET_TMP/placement-a.jsonl" tests/golden/routes/placement.jsonl \
  || { echo "routes search placement drifted from golden"; exit 1; }

echo "==> regional-outage re-route gate (topo fleet moves more bytes rerouting)"
./target/release/xferopt fleet run --topo mesh --jobs 20 --seed 7 \
  --outage-region 1 --report-out "$FLEET_TMP/topo-reroute.txt"
./target/release/xferopt fleet run --topo mesh --jobs 20 --seed 7 \
  --outage-region 1 --no-reroute --report-out "$FLEET_TMP/topo-fixed.txt"
grep -q ' reroutes=' "$FLEET_TMP/topo-reroute.txt" \
  || { echo "outage run never re-routed a job"; exit 1; }
RMOVED="$(awk '/^summary/ {for (i=1;i<=NF;i++) if ($i ~ /^moved_mb=/) \
  {sub(/^moved_mb=/, "", $i); print $i}}' "$FLEET_TMP/topo-reroute.txt")"
FMOVED="$(awk '/^summary/ {for (i=1;i<=NF;i++) if ($i ~ /^moved_mb=/) \
  {sub(/^moved_mb=/, "", $i); print $i}}' "$FLEET_TMP/topo-fixed.txt")"
awk -v r="$RMOVED" -v f="$FMOVED" 'BEGIN { exit !(r > f) }' \
  || { echo "re-routing (${RMOVED} MB) did not beat fixed routes (${FMOVED} MB)"; exit 1; }
echo "    outage mesh: rerouted ${RMOVED} MB vs fixed ${FMOVED} MB"

echo "==> perf smoke (route search, quick mode)"
(cd "$FLEET_TMP" && "$OLDPWD/target/release/routes" --quick)
[ -f "$FLEET_TMP/BENCH_routes.json" ] \
  || { echo "BENCH_routes.json missing"; exit 1; }
RGAIN="$(awk -F': ' '/"outage_reroute_gain"/ \
  {gsub(/[,"]/, "", $2); print $2}' "$FLEET_TMP/BENCH_routes.json")"
awk -v g="$RGAIN" 'BEGIN { exit !(g > 1.0) }' \
  || { echo "re-route regression: outage gain ${RGAIN}x <= 1x"; exit 1; }
echo "    outage re-route gain: ${RGAIN}x"

echo "==> chaos-campaign gate (self-healing control plane scorecard)"
cargo test -q --test chaos
./target/release/xferopt chaos run --campaign rolling-outage \
  --out "$FLEET_TMP/scorecard.txt"
diff "$FLEET_TMP/scorecard.txt" tests/golden/chaos/rolling_outage_scorecard.txt \
  || { echo "chaos scorecard drifted from golden"; exit 1; }
./target/release/xferopt chaos run --campaign rolling-outage \
  --out "$FLEET_TMP/scorecard-b.txt"
diff "$FLEET_TMP/scorecard.txt" "$FLEET_TMP/scorecard-b.txt" \
  || { echo "chaos scorecard is not deterministic"; exit 1; }
./target/release/xferopt chaos run --campaign rolling-outage --shards 4 \
  --out "$FLEET_TMP/scorecard-s4.txt"
diff <(sed 's/ shards=[0-9]*//' "$FLEET_TMP/scorecard.txt") \
     <(sed 's/ shards=[0-9]*//' "$FLEET_TMP/scorecard-s4.txt") \
  || { echo "chaos scorecard diverged under --shards 4"; exit 1; }
# Resilience invariants: completed jobs never lose bytes, retries stay
# within the governor's budget, and the self-healing fleet moves strictly
# more MB than both baselines.
awk '/^total / { for (i=1;i<=NF;i++) {
       if ($i ~ /^bytes_lost=/) { sub(/^bytes_lost=/, "", $i); if ($i+0 != 0) exit 1 } } }' \
  "$FLEET_TMP/scorecard.txt" \
  || { echo "chaos campaign lost bytes"; exit 1; }
awk '/^total / { u=b=0; for (i=1;i<=NF;i++) {
       if ($i ~ /^retries_used=/) { sub(/^retries_used=/, "", $i); u=$i+0 }
       if ($i ~ /^budget=/)       { sub(/^budget=/, "", $i);       b=$i+0 } }
     if (u > b) exit 1 }' "$FLEET_TMP/scorecard.txt" \
  || { echo "chaos campaign blew its retry budget"; exit 1; }
SH_MOVED="$(awk '/^total variant=selfheal / {for (i=1;i<=NF;i++) if ($i ~ /^moved_mb=/) \
  {sub(/^moved_mb=/, "", $i); print $i}}' "$FLEET_TMP/scorecard.txt")"
NR_MOVED="$(awk '/^total variant=no-reroute / {for (i=1;i<=NF;i++) if ($i ~ /^moved_mb=/) \
  {sub(/^moved_mb=/, "", $i); print $i}}' "$FLEET_TMP/scorecard.txt")"
ST_MOVED="$(awk '/^total variant=static / {for (i=1;i<=NF;i++) if ($i ~ /^moved_mb=/) \
  {sub(/^moved_mb=/, "", $i); print $i}}' "$FLEET_TMP/scorecard.txt")"
awk -v s="$SH_MOVED" -v n="$NR_MOVED" -v t="$ST_MOVED" \
  'BEGIN { exit !(s > n && s > t) }' \
  || { echo "selfheal (${SH_MOVED} MB) did not beat baselines (${NR_MOVED}/${ST_MOVED} MB)"; exit 1; }
echo "    rolling outage: selfheal ${SH_MOVED} MB vs no-reroute ${NR_MOVED} MB, static ${ST_MOVED} MB"

echo "==> torn-journal salvage gate (resume falls back to the intact prefix)"
./target/release/xferopt fleet run --jobs 5 --seed 9 \
  --checkpoint-out "$FLEET_TMP/ck-journal.jsonl" --checkpoint-every 10 \
  --stop-at-tick 35
head -c "$(( $(wc -c < "$FLEET_TMP/ck-journal.jsonl") - 120 ))" \
  "$FLEET_TMP/ck-journal.jsonl" > "$FLEET_TMP/ck-torn.jsonl"
./target/release/xferopt fleet resume --checkpoint "$FLEET_TMP/ck-torn.jsonl" \
  --report-out "$FLEET_TMP/salvaged.txt" 2> "$FLEET_TMP/salvage.err"
grep -q 'salvaged_ticks=' "$FLEET_TMP/salvage.err" \
  || { echo "torn journal resumed without reporting salvage"; exit 1; }
./target/release/xferopt fleet run --jobs 5 --seed 9 \
  --report-out "$FLEET_TMP/journal-full.txt"
diff "$FLEET_TMP/journal-full.txt" "$FLEET_TMP/salvaged.txt" \
  || { echo "salvaged resume diverged from the uninterrupted run"; exit 1; }

echo "==> tuner domain-safety proptests (new tuner kinds)"
cargo test -q -p xferopt-tuners fuzz_new_tuner_kinds_respect_restricted_domains
cargo test -q -p xferopt-tuners fuzz_every_tuner_domain_safety

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI green."
