/root/repo/target/debug/examples/shared_endpoint-ac7d48fa161629d1.d: examples/shared_endpoint.rs

/root/repo/target/debug/examples/shared_endpoint-ac7d48fa161629d1: examples/shared_endpoint.rs

examples/shared_endpoint.rs:
