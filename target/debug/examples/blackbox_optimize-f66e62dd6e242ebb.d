/root/repo/target/debug/examples/blackbox_optimize-f66e62dd6e242ebb.d: examples/blackbox_optimize.rs

/root/repo/target/debug/examples/blackbox_optimize-f66e62dd6e242ebb: examples/blackbox_optimize.rs

examples/blackbox_optimize.rs:
