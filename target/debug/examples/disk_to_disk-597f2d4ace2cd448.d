/root/repo/target/debug/examples/disk_to_disk-597f2d4ace2cd448.d: examples/disk_to_disk.rs

/root/repo/target/debug/examples/disk_to_disk-597f2d4ace2cd448: examples/disk_to_disk.rs

examples/disk_to_disk.rs:
