/root/repo/target/debug/examples/adaptive_wan_transfer-a2decaa46078239f.d: examples/adaptive_wan_transfer.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_wan_transfer-a2decaa46078239f.rmeta: examples/adaptive_wan_transfer.rs Cargo.toml

examples/adaptive_wan_transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
