/root/repo/target/debug/examples/loopback_transfer-d96adc9ab414ef66.d: examples/loopback_transfer.rs

/root/repo/target/debug/examples/loopback_transfer-d96adc9ab414ef66: examples/loopback_transfer.rs

examples/loopback_transfer.rs:
