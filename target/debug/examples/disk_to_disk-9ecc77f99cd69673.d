/root/repo/target/debug/examples/disk_to_disk-9ecc77f99cd69673.d: examples/disk_to_disk.rs Cargo.toml

/root/repo/target/debug/examples/libdisk_to_disk-9ecc77f99cd69673.rmeta: examples/disk_to_disk.rs Cargo.toml

examples/disk_to_disk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
