/root/repo/target/debug/examples/loopback_transfer-fbaeca4d276f54f6.d: examples/loopback_transfer.rs Cargo.toml

/root/repo/target/debug/examples/libloopback_transfer-fbaeca4d276f54f6.rmeta: examples/loopback_transfer.rs Cargo.toml

examples/loopback_transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
