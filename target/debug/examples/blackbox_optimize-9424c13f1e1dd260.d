/root/repo/target/debug/examples/blackbox_optimize-9424c13f1e1dd260.d: examples/blackbox_optimize.rs Cargo.toml

/root/repo/target/debug/examples/libblackbox_optimize-9424c13f1e1dd260.rmeta: examples/blackbox_optimize.rs Cargo.toml

examples/blackbox_optimize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
