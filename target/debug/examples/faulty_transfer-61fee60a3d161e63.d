/root/repo/target/debug/examples/faulty_transfer-61fee60a3d161e63.d: examples/faulty_transfer.rs

/root/repo/target/debug/examples/faulty_transfer-61fee60a3d161e63: examples/faulty_transfer.rs

examples/faulty_transfer.rs:
