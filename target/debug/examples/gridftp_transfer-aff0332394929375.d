/root/repo/target/debug/examples/gridftp_transfer-aff0332394929375.d: examples/gridftp_transfer.rs

/root/repo/target/debug/examples/gridftp_transfer-aff0332394929375: examples/gridftp_transfer.rs

examples/gridftp_transfer.rs:
