/root/repo/target/debug/examples/quickstart-6a3fdd0089c2428b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6a3fdd0089c2428b: examples/quickstart.rs

examples/quickstart.rs:
