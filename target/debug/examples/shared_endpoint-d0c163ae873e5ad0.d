/root/repo/target/debug/examples/shared_endpoint-d0c163ae873e5ad0.d: examples/shared_endpoint.rs Cargo.toml

/root/repo/target/debug/examples/libshared_endpoint-d0c163ae873e5ad0.rmeta: examples/shared_endpoint.rs Cargo.toml

examples/shared_endpoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
