/root/repo/target/debug/examples/adaptive_wan_transfer-988941546d4875aa.d: examples/adaptive_wan_transfer.rs

/root/repo/target/debug/examples/adaptive_wan_transfer-988941546d4875aa: examples/adaptive_wan_transfer.rs

examples/adaptive_wan_transfer.rs:
