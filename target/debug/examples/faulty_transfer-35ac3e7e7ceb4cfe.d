/root/repo/target/debug/examples/faulty_transfer-35ac3e7e7ceb4cfe.d: examples/faulty_transfer.rs Cargo.toml

/root/repo/target/debug/examples/libfaulty_transfer-35ac3e7e7ceb4cfe.rmeta: examples/faulty_transfer.rs Cargo.toml

examples/faulty_transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
