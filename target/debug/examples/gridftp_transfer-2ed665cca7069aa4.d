/root/repo/target/debug/examples/gridftp_transfer-2ed665cca7069aa4.d: examples/gridftp_transfer.rs Cargo.toml

/root/repo/target/debug/examples/libgridftp_transfer-2ed665cca7069aa4.rmeta: examples/gridftp_transfer.rs Cargo.toml

examples/gridftp_transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
