/root/repo/target/debug/examples/quickstart-10f4fc9126affb21.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-10f4fc9126affb21.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
