/root/repo/target/debug/deps/xferopt_scenarios-d2c32c0a9372a213.d: crates/scenarios/src/lib.rs crates/scenarios/src/driver.rs crates/scenarios/src/experiments.rs crates/scenarios/src/faults.rs crates/scenarios/src/load.rs crates/scenarios/src/report.rs crates/scenarios/src/runner.rs crates/scenarios/src/sweep.rs crates/scenarios/src/topology.rs crates/scenarios/src/validation.rs

/root/repo/target/debug/deps/xferopt_scenarios-d2c32c0a9372a213: crates/scenarios/src/lib.rs crates/scenarios/src/driver.rs crates/scenarios/src/experiments.rs crates/scenarios/src/faults.rs crates/scenarios/src/load.rs crates/scenarios/src/report.rs crates/scenarios/src/runner.rs crates/scenarios/src/sweep.rs crates/scenarios/src/topology.rs crates/scenarios/src/validation.rs

crates/scenarios/src/lib.rs:
crates/scenarios/src/driver.rs:
crates/scenarios/src/experiments.rs:
crates/scenarios/src/faults.rs:
crates/scenarios/src/load.rs:
crates/scenarios/src/report.rs:
crates/scenarios/src/runner.rs:
crates/scenarios/src/sweep.rs:
crates/scenarios/src/topology.rs:
crates/scenarios/src/validation.rs:
