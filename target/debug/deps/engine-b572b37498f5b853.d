/root/repo/target/debug/deps/engine-b572b37498f5b853.d: crates/bench/benches/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-b572b37498f5b853.rmeta: crates/bench/benches/engine.rs Cargo.toml

crates/bench/benches/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
