/root/repo/target/debug/deps/xferopt_gridftp-42e7f6d5933be777.d: crates/gridftp/src/lib.rs crates/gridftp/src/block.rs crates/gridftp/src/checksum.rs crates/gridftp/src/client.rs crates/gridftp/src/proto.rs crates/gridftp/src/rangeset.rs crates/gridftp/src/server.rs crates/gridftp/src/session.rs

/root/repo/target/debug/deps/libxferopt_gridftp-42e7f6d5933be777.rlib: crates/gridftp/src/lib.rs crates/gridftp/src/block.rs crates/gridftp/src/checksum.rs crates/gridftp/src/client.rs crates/gridftp/src/proto.rs crates/gridftp/src/rangeset.rs crates/gridftp/src/server.rs crates/gridftp/src/session.rs

/root/repo/target/debug/deps/libxferopt_gridftp-42e7f6d5933be777.rmeta: crates/gridftp/src/lib.rs crates/gridftp/src/block.rs crates/gridftp/src/checksum.rs crates/gridftp/src/client.rs crates/gridftp/src/proto.rs crates/gridftp/src/rangeset.rs crates/gridftp/src/server.rs crates/gridftp/src/session.rs

crates/gridftp/src/lib.rs:
crates/gridftp/src/block.rs:
crates/gridftp/src/checksum.rs:
crates/gridftp/src/client.rs:
crates/gridftp/src/proto.rs:
crates/gridftp/src/rangeset.rs:
crates/gridftp/src/server.rs:
crates/gridftp/src/session.rs:
