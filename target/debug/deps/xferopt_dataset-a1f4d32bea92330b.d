/root/repo/target/debug/deps/xferopt_dataset-a1f4d32bea92330b.d: crates/dataset/src/lib.rs crates/dataset/src/disk.rs crates/dataset/src/filespec.rs crates/dataset/src/online.rs crates/dataset/src/xfer.rs

/root/repo/target/debug/deps/libxferopt_dataset-a1f4d32bea92330b.rlib: crates/dataset/src/lib.rs crates/dataset/src/disk.rs crates/dataset/src/filespec.rs crates/dataset/src/online.rs crates/dataset/src/xfer.rs

/root/repo/target/debug/deps/libxferopt_dataset-a1f4d32bea92330b.rmeta: crates/dataset/src/lib.rs crates/dataset/src/disk.rs crates/dataset/src/filespec.rs crates/dataset/src/online.rs crates/dataset/src/xfer.rs

crates/dataset/src/lib.rs:
crates/dataset/src/disk.rs:
crates/dataset/src/filespec.rs:
crates/dataset/src/online.rs:
crates/dataset/src/xfer.rs:
