/root/repo/target/debug/deps/fig8-978cdc895df4795a.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-978cdc895df4795a: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
