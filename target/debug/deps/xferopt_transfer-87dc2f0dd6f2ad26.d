/root/repo/target/debug/deps/xferopt_transfer-87dc2f0dd6f2ad26.d: crates/transfer/src/lib.rs crates/transfer/src/noise.rs crates/transfer/src/params.rs crates/transfer/src/report.rs crates/transfer/src/retry.rs crates/transfer/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libxferopt_transfer-87dc2f0dd6f2ad26.rmeta: crates/transfer/src/lib.rs crates/transfer/src/noise.rs crates/transfer/src/params.rs crates/transfer/src/report.rs crates/transfer/src/retry.rs crates/transfer/src/world.rs Cargo.toml

crates/transfer/src/lib.rs:
crates/transfer/src/noise.rs:
crates/transfer/src/params.rs:
crates/transfer/src/report.rs:
crates/transfer/src/retry.rs:
crates/transfer/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
