/root/repo/target/debug/deps/xferopt-80f26586882811f0.d: src/bin/xferopt.rs Cargo.toml

/root/repo/target/debug/deps/libxferopt-80f26586882811f0.rmeta: src/bin/xferopt.rs Cargo.toml

src/bin/xferopt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
