/root/repo/target/debug/deps/xferopt-f5a8615a95b637e1.d: src/bin/xferopt.rs Cargo.toml

/root/repo/target/debug/deps/libxferopt-f5a8615a95b637e1.rmeta: src/bin/xferopt.rs Cargo.toml

src/bin/xferopt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
