/root/repo/target/debug/deps/all-fac0238ac21e228b.d: crates/bench/src/bin/all.rs Cargo.toml

/root/repo/target/debug/deps/liball-fac0238ac21e228b.rmeta: crates/bench/src/bin/all.rs Cargo.toml

crates/bench/src/bin/all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
