/root/repo/target/debug/deps/faults-1170b0b40a0d765f.d: tests/faults.rs

/root/repo/target/debug/deps/faults-1170b0b40a0d765f: tests/faults.rs

tests/faults.rs:
