/root/repo/target/debug/deps/xferopt_dataset-98f0186556682e1a.d: crates/dataset/src/lib.rs crates/dataset/src/disk.rs crates/dataset/src/filespec.rs crates/dataset/src/online.rs crates/dataset/src/xfer.rs Cargo.toml

/root/repo/target/debug/deps/libxferopt_dataset-98f0186556682e1a.rmeta: crates/dataset/src/lib.rs crates/dataset/src/disk.rs crates/dataset/src/filespec.rs crates/dataset/src/online.rs crates/dataset/src/xfer.rs Cargo.toml

crates/dataset/src/lib.rs:
crates/dataset/src/disk.rs:
crates/dataset/src/filespec.rs:
crates/dataset/src/online.rs:
crates/dataset/src/xfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
