/root/repo/target/debug/deps/netsim-c1d17507ce8e677b.d: crates/bench/benches/netsim.rs Cargo.toml

/root/repo/target/debug/deps/libnetsim-c1d17507ce8e677b.rmeta: crates/bench/benches/netsim.rs Cargo.toml

crates/bench/benches/netsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
