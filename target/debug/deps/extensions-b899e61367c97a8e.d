/root/repo/target/debug/deps/extensions-b899e61367c97a8e.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-b899e61367c97a8e.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
