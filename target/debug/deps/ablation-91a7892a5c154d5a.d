/root/repo/target/debug/deps/ablation-91a7892a5c154d5a.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-91a7892a5c154d5a.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
