/root/repo/target/debug/deps/all-210161cc85b0a5bc.d: crates/bench/src/bin/all.rs

/root/repo/target/debug/deps/all-210161cc85b0a5bc: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
