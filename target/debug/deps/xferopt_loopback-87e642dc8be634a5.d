/root/repo/target/debug/deps/xferopt_loopback-87e642dc8be634a5.d: crates/loopback/src/lib.rs crates/loopback/src/client.rs crates/loopback/src/cpuload.rs crates/loopback/src/persistent.rs crates/loopback/src/server.rs crates/loopback/src/shaper.rs Cargo.toml

/root/repo/target/debug/deps/libxferopt_loopback-87e642dc8be634a5.rmeta: crates/loopback/src/lib.rs crates/loopback/src/client.rs crates/loopback/src/cpuload.rs crates/loopback/src/persistent.rs crates/loopback/src/server.rs crates/loopback/src/shaper.rs Cargo.toml

crates/loopback/src/lib.rs:
crates/loopback/src/client.rs:
crates/loopback/src/cpuload.rs:
crates/loopback/src/persistent.rs:
crates/loopback/src/server.rs:
crates/loopback/src/shaper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
