/root/repo/target/debug/deps/xferopt_bench-47fb20e4bffe3dc7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/xferopt_bench-47fb20e4bffe3dc7: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
