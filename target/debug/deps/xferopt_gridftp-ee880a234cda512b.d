/root/repo/target/debug/deps/xferopt_gridftp-ee880a234cda512b.d: crates/gridftp/src/lib.rs crates/gridftp/src/block.rs crates/gridftp/src/checksum.rs crates/gridftp/src/client.rs crates/gridftp/src/proto.rs crates/gridftp/src/rangeset.rs crates/gridftp/src/server.rs crates/gridftp/src/session.rs Cargo.toml

/root/repo/target/debug/deps/libxferopt_gridftp-ee880a234cda512b.rmeta: crates/gridftp/src/lib.rs crates/gridftp/src/block.rs crates/gridftp/src/checksum.rs crates/gridftp/src/client.rs crates/gridftp/src/proto.rs crates/gridftp/src/rangeset.rs crates/gridftp/src/server.rs crates/gridftp/src/session.rs Cargo.toml

crates/gridftp/src/lib.rs:
crates/gridftp/src/block.rs:
crates/gridftp/src/checksum.rs:
crates/gridftp/src/client.rs:
crates/gridftp/src/proto.rs:
crates/gridftp/src/rangeset.rs:
crates/gridftp/src/server.rs:
crates/gridftp/src/session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
