/root/repo/target/debug/deps/gridftp-072c8cf7c03095b2.d: crates/bench/benches/gridftp.rs Cargo.toml

/root/repo/target/debug/deps/libgridftp-072c8cf7c03095b2.rmeta: crates/bench/benches/gridftp.rs Cargo.toml

crates/bench/benches/gridftp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
