/root/repo/target/debug/deps/ablation-f06ccfe0534ed4af.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-f06ccfe0534ed4af.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
