/root/repo/target/debug/deps/xferopt_host-63938b7af3d3879e.d: crates/host/src/lib.rs crates/host/src/cpu.rs crates/host/src/host.rs crates/host/src/presets.rs crates/host/src/startup.rs

/root/repo/target/debug/deps/xferopt_host-63938b7af3d3879e: crates/host/src/lib.rs crates/host/src/cpu.rs crates/host/src/host.rs crates/host/src/presets.rs crates/host/src/startup.rs

crates/host/src/lib.rs:
crates/host/src/cpu.rs:
crates/host/src/host.rs:
crates/host/src/presets.rs:
crates/host/src/startup.rs:
