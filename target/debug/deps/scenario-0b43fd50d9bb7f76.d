/root/repo/target/debug/deps/scenario-0b43fd50d9bb7f76.d: crates/bench/benches/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libscenario-0b43fd50d9bb7f76.rmeta: crates/bench/benches/scenario.rs Cargo.toml

crates/bench/benches/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
