/root/repo/target/debug/deps/determinism-245a3ae33277ecc3.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-245a3ae33277ecc3.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
