/root/repo/target/debug/deps/xferopt_transfer-bda2e74cedef79c5.d: crates/transfer/src/lib.rs crates/transfer/src/noise.rs crates/transfer/src/params.rs crates/transfer/src/report.rs crates/transfer/src/retry.rs crates/transfer/src/world.rs

/root/repo/target/debug/deps/xferopt_transfer-bda2e74cedef79c5: crates/transfer/src/lib.rs crates/transfer/src/noise.rs crates/transfer/src/params.rs crates/transfer/src/report.rs crates/transfer/src/retry.rs crates/transfer/src/world.rs

crates/transfer/src/lib.rs:
crates/transfer/src/noise.rs:
crates/transfer/src/params.rs:
crates/transfer/src/report.rs:
crates/transfer/src/retry.rs:
crates/transfer/src/world.rs:
