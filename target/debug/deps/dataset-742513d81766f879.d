/root/repo/target/debug/deps/dataset-742513d81766f879.d: crates/bench/benches/dataset.rs Cargo.toml

/root/repo/target/debug/deps/libdataset-742513d81766f879.rmeta: crates/bench/benches/dataset.rs Cargo.toml

crates/bench/benches/dataset.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
