/root/repo/target/debug/deps/xferopt_tuners-18962e01ceac4969.d: crates/tuners/src/lib.rs crates/tuners/src/baselines.rs crates/tuners/src/cd.rs crates/tuners/src/compass.rs crates/tuners/src/domain.rs crates/tuners/src/extra.rs crates/tuners/src/neldermead.rs crates/tuners/src/offline.rs crates/tuners/src/online.rs crates/tuners/src/regret.rs crates/tuners/src/trigger.rs crates/tuners/src/tuner.rs

/root/repo/target/debug/deps/xferopt_tuners-18962e01ceac4969: crates/tuners/src/lib.rs crates/tuners/src/baselines.rs crates/tuners/src/cd.rs crates/tuners/src/compass.rs crates/tuners/src/domain.rs crates/tuners/src/extra.rs crates/tuners/src/neldermead.rs crates/tuners/src/offline.rs crates/tuners/src/online.rs crates/tuners/src/regret.rs crates/tuners/src/trigger.rs crates/tuners/src/tuner.rs

crates/tuners/src/lib.rs:
crates/tuners/src/baselines.rs:
crates/tuners/src/cd.rs:
crates/tuners/src/compass.rs:
crates/tuners/src/domain.rs:
crates/tuners/src/extra.rs:
crates/tuners/src/neldermead.rs:
crates/tuners/src/offline.rs:
crates/tuners/src/online.rs:
crates/tuners/src/regret.rs:
crates/tuners/src/trigger.rs:
crates/tuners/src/tuner.rs:
