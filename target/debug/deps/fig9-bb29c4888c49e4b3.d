/root/repo/target/debug/deps/fig9-bb29c4888c49e4b3.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-bb29c4888c49e4b3: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
