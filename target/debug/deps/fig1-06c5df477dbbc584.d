/root/repo/target/debug/deps/fig1-06c5df477dbbc584.d: crates/bench/src/bin/fig1.rs Cargo.toml

/root/repo/target/debug/deps/libfig1-06c5df477dbbc584.rmeta: crates/bench/src/bin/fig1.rs Cargo.toml

crates/bench/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
