/root/repo/target/debug/deps/fig1-974ca5f16482f2de.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-974ca5f16482f2de: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
