/root/repo/target/debug/deps/ablations-624d08281162adc5.d: tests/ablations.rs

/root/repo/target/debug/deps/ablations-624d08281162adc5: tests/ablations.rs

tests/ablations.rs:
