/root/repo/target/debug/deps/xferopt_dataset-053c1b0db354f544.d: crates/dataset/src/lib.rs crates/dataset/src/disk.rs crates/dataset/src/filespec.rs crates/dataset/src/online.rs crates/dataset/src/xfer.rs

/root/repo/target/debug/deps/xferopt_dataset-053c1b0db354f544: crates/dataset/src/lib.rs crates/dataset/src/disk.rs crates/dataset/src/filespec.rs crates/dataset/src/online.rs crates/dataset/src/xfer.rs

crates/dataset/src/lib.rs:
crates/dataset/src/disk.rs:
crates/dataset/src/filespec.rs:
crates/dataset/src/online.rs:
crates/dataset/src/xfer.rs:
