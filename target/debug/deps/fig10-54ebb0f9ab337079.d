/root/repo/target/debug/deps/fig10-54ebb0f9ab337079.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-54ebb0f9ab337079: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
