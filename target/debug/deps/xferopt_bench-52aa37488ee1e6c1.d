/root/repo/target/debug/deps/xferopt_bench-52aa37488ee1e6c1.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxferopt_bench-52aa37488ee1e6c1.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
