/root/repo/target/debug/deps/xferopt_simcore-e3313a4f9dcbb5c4.d: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/event.rs crates/simcore/src/faults.rs crates/simcore/src/rng.rs crates/simcore/src/series.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs

/root/repo/target/debug/deps/xferopt_simcore-e3313a4f9dcbb5c4: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/event.rs crates/simcore/src/faults.rs crates/simcore/src/rng.rs crates/simcore/src/series.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs

crates/simcore/src/lib.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/event.rs:
crates/simcore/src/faults.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/series.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
crates/simcore/src/trace.rs:
