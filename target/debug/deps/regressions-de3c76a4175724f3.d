/root/repo/target/debug/deps/regressions-de3c76a4175724f3.d: tests/regressions.rs

/root/repo/target/debug/deps/regressions-de3c76a4175724f3: tests/regressions.rs

tests/regressions.rs:
