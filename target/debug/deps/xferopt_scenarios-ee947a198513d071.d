/root/repo/target/debug/deps/xferopt_scenarios-ee947a198513d071.d: crates/scenarios/src/lib.rs crates/scenarios/src/driver.rs crates/scenarios/src/experiments.rs crates/scenarios/src/faults.rs crates/scenarios/src/load.rs crates/scenarios/src/report.rs crates/scenarios/src/runner.rs crates/scenarios/src/sweep.rs crates/scenarios/src/topology.rs crates/scenarios/src/validation.rs Cargo.toml

/root/repo/target/debug/deps/libxferopt_scenarios-ee947a198513d071.rmeta: crates/scenarios/src/lib.rs crates/scenarios/src/driver.rs crates/scenarios/src/experiments.rs crates/scenarios/src/faults.rs crates/scenarios/src/load.rs crates/scenarios/src/report.rs crates/scenarios/src/runner.rs crates/scenarios/src/sweep.rs crates/scenarios/src/topology.rs crates/scenarios/src/validation.rs Cargo.toml

crates/scenarios/src/lib.rs:
crates/scenarios/src/driver.rs:
crates/scenarios/src/experiments.rs:
crates/scenarios/src/faults.rs:
crates/scenarios/src/load.rs:
crates/scenarios/src/report.rs:
crates/scenarios/src/runner.rs:
crates/scenarios/src/sweep.rs:
crates/scenarios/src/topology.rs:
crates/scenarios/src/validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
