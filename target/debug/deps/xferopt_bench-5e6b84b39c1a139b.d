/root/repo/target/debug/deps/xferopt_bench-5e6b84b39c1a139b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxferopt_bench-5e6b84b39c1a139b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
