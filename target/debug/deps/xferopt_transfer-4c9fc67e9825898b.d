/root/repo/target/debug/deps/xferopt_transfer-4c9fc67e9825898b.d: crates/transfer/src/lib.rs crates/transfer/src/noise.rs crates/transfer/src/params.rs crates/transfer/src/report.rs crates/transfer/src/retry.rs crates/transfer/src/world.rs

/root/repo/target/debug/deps/libxferopt_transfer-4c9fc67e9825898b.rlib: crates/transfer/src/lib.rs crates/transfer/src/noise.rs crates/transfer/src/params.rs crates/transfer/src/report.rs crates/transfer/src/retry.rs crates/transfer/src/world.rs

/root/repo/target/debug/deps/libxferopt_transfer-4c9fc67e9825898b.rmeta: crates/transfer/src/lib.rs crates/transfer/src/noise.rs crates/transfer/src/params.rs crates/transfer/src/report.rs crates/transfer/src/retry.rs crates/transfer/src/world.rs

crates/transfer/src/lib.rs:
crates/transfer/src/noise.rs:
crates/transfer/src/params.rs:
crates/transfer/src/report.rs:
crates/transfer/src/retry.rs:
crates/transfer/src/world.rs:
