/root/repo/target/debug/deps/xferopt_gridftp-a73588bce1d90b3c.d: crates/gridftp/src/lib.rs crates/gridftp/src/block.rs crates/gridftp/src/checksum.rs crates/gridftp/src/client.rs crates/gridftp/src/proto.rs crates/gridftp/src/rangeset.rs crates/gridftp/src/server.rs crates/gridftp/src/session.rs

/root/repo/target/debug/deps/xferopt_gridftp-a73588bce1d90b3c: crates/gridftp/src/lib.rs crates/gridftp/src/block.rs crates/gridftp/src/checksum.rs crates/gridftp/src/client.rs crates/gridftp/src/proto.rs crates/gridftp/src/rangeset.rs crates/gridftp/src/server.rs crates/gridftp/src/session.rs

crates/gridftp/src/lib.rs:
crates/gridftp/src/block.rs:
crates/gridftp/src/checksum.rs:
crates/gridftp/src/client.rs:
crates/gridftp/src/proto.rs:
crates/gridftp/src/rangeset.rs:
crates/gridftp/src/server.rs:
crates/gridftp/src/session.rs:
