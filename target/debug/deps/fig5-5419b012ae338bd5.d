/root/repo/target/debug/deps/fig5-5419b012ae338bd5.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-5419b012ae338bd5: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
