/root/repo/target/debug/deps/xferopt_tuners-acbe3bdd174838be.d: crates/tuners/src/lib.rs crates/tuners/src/baselines.rs crates/tuners/src/cd.rs crates/tuners/src/compass.rs crates/tuners/src/domain.rs crates/tuners/src/extra.rs crates/tuners/src/neldermead.rs crates/tuners/src/offline.rs crates/tuners/src/online.rs crates/tuners/src/regret.rs crates/tuners/src/trigger.rs crates/tuners/src/tuner.rs Cargo.toml

/root/repo/target/debug/deps/libxferopt_tuners-acbe3bdd174838be.rmeta: crates/tuners/src/lib.rs crates/tuners/src/baselines.rs crates/tuners/src/cd.rs crates/tuners/src/compass.rs crates/tuners/src/domain.rs crates/tuners/src/extra.rs crates/tuners/src/neldermead.rs crates/tuners/src/offline.rs crates/tuners/src/online.rs crates/tuners/src/regret.rs crates/tuners/src/trigger.rs crates/tuners/src/tuner.rs Cargo.toml

crates/tuners/src/lib.rs:
crates/tuners/src/baselines.rs:
crates/tuners/src/cd.rs:
crates/tuners/src/compass.rs:
crates/tuners/src/domain.rs:
crates/tuners/src/extra.rs:
crates/tuners/src/neldermead.rs:
crates/tuners/src/offline.rs:
crates/tuners/src/online.rs:
crates/tuners/src/regret.rs:
crates/tuners/src/trigger.rs:
crates/tuners/src/tuner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
