/root/repo/target/debug/deps/validate-10f77badc41bf7f3.d: crates/bench/src/bin/validate.rs Cargo.toml

/root/repo/target/debug/deps/libvalidate-10f77badc41bf7f3.rmeta: crates/bench/src/bin/validate.rs Cargo.toml

crates/bench/src/bin/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
