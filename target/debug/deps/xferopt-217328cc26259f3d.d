/root/repo/target/debug/deps/xferopt-217328cc26259f3d.d: src/lib.rs

/root/repo/target/debug/deps/libxferopt-217328cc26259f3d.rlib: src/lib.rs

/root/repo/target/debug/deps/libxferopt-217328cc26259f3d.rmeta: src/lib.rs

src/lib.rs:
