/root/repo/target/debug/deps/extensions-8ea00736803b2f07.d: crates/bench/src/bin/extensions.rs

/root/repo/target/debug/deps/extensions-8ea00736803b2f07: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
