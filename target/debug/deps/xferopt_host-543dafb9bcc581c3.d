/root/repo/target/debug/deps/xferopt_host-543dafb9bcc581c3.d: crates/host/src/lib.rs crates/host/src/cpu.rs crates/host/src/host.rs crates/host/src/presets.rs crates/host/src/startup.rs

/root/repo/target/debug/deps/libxferopt_host-543dafb9bcc581c3.rlib: crates/host/src/lib.rs crates/host/src/cpu.rs crates/host/src/host.rs crates/host/src/presets.rs crates/host/src/startup.rs

/root/repo/target/debug/deps/libxferopt_host-543dafb9bcc581c3.rmeta: crates/host/src/lib.rs crates/host/src/cpu.rs crates/host/src/host.rs crates/host/src/presets.rs crates/host/src/startup.rs

crates/host/src/lib.rs:
crates/host/src/cpu.rs:
crates/host/src/host.rs:
crates/host/src/presets.rs:
crates/host/src/startup.rs:
