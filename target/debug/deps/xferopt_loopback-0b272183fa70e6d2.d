/root/repo/target/debug/deps/xferopt_loopback-0b272183fa70e6d2.d: crates/loopback/src/lib.rs crates/loopback/src/client.rs crates/loopback/src/cpuload.rs crates/loopback/src/persistent.rs crates/loopback/src/server.rs crates/loopback/src/shaper.rs

/root/repo/target/debug/deps/xferopt_loopback-0b272183fa70e6d2: crates/loopback/src/lib.rs crates/loopback/src/client.rs crates/loopback/src/cpuload.rs crates/loopback/src/persistent.rs crates/loopback/src/server.rs crates/loopback/src/shaper.rs

crates/loopback/src/lib.rs:
crates/loopback/src/client.rs:
crates/loopback/src/cpuload.rs:
crates/loopback/src/persistent.rs:
crates/loopback/src/server.rs:
crates/loopback/src/shaper.rs:
