/root/repo/target/debug/deps/cross_crate-735696674b4ef170.d: tests/cross_crate.rs

/root/repo/target/debug/deps/cross_crate-735696674b4ef170: tests/cross_crate.rs

tests/cross_crate.rs:
