/root/repo/target/debug/deps/validate-f0ec49566f3d0ddc.d: crates/bench/src/bin/validate.rs Cargo.toml

/root/repo/target/debug/deps/libvalidate-f0ec49566f3d0ddc.rmeta: crates/bench/src/bin/validate.rs Cargo.toml

crates/bench/src/bin/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
