/root/repo/target/debug/deps/xferopt_net-06d0e9f656798e1d.d: crates/net/src/lib.rs crates/net/src/dynamic.rs crates/net/src/fairness.rs crates/net/src/flow.rs crates/net/src/link.rs crates/net/src/network.rs crates/net/src/tcp.rs crates/net/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libxferopt_net-06d0e9f656798e1d.rmeta: crates/net/src/lib.rs crates/net/src/dynamic.rs crates/net/src/fairness.rs crates/net/src/flow.rs crates/net/src/link.rs crates/net/src/network.rs crates/net/src/tcp.rs crates/net/src/topology.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/dynamic.rs:
crates/net/src/fairness.rs:
crates/net/src/flow.rs:
crates/net/src/link.rs:
crates/net/src/network.rs:
crates/net/src/tcp.rs:
crates/net/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
