/root/repo/target/debug/deps/fig11-bdec38faacdd1920.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-bdec38faacdd1920: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
