/root/repo/target/debug/deps/xferopt_net-26103111a2caa285.d: crates/net/src/lib.rs crates/net/src/dynamic.rs crates/net/src/fairness.rs crates/net/src/flow.rs crates/net/src/link.rs crates/net/src/network.rs crates/net/src/tcp.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libxferopt_net-26103111a2caa285.rlib: crates/net/src/lib.rs crates/net/src/dynamic.rs crates/net/src/fairness.rs crates/net/src/flow.rs crates/net/src/link.rs crates/net/src/network.rs crates/net/src/tcp.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libxferopt_net-26103111a2caa285.rmeta: crates/net/src/lib.rs crates/net/src/dynamic.rs crates/net/src/fairness.rs crates/net/src/flow.rs crates/net/src/link.rs crates/net/src/network.rs crates/net/src/tcp.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/dynamic.rs:
crates/net/src/fairness.rs:
crates/net/src/flow.rs:
crates/net/src/link.rs:
crates/net/src/network.rs:
crates/net/src/tcp.rs:
crates/net/src/topology.rs:
