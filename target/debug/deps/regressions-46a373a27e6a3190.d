/root/repo/target/debug/deps/regressions-46a373a27e6a3190.d: tests/regressions.rs Cargo.toml

/root/repo/target/debug/deps/libregressions-46a373a27e6a3190.rmeta: tests/regressions.rs Cargo.toml

tests/regressions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
