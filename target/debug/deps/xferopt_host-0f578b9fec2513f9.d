/root/repo/target/debug/deps/xferopt_host-0f578b9fec2513f9.d: crates/host/src/lib.rs crates/host/src/cpu.rs crates/host/src/host.rs crates/host/src/presets.rs crates/host/src/startup.rs Cargo.toml

/root/repo/target/debug/deps/libxferopt_host-0f578b9fec2513f9.rmeta: crates/host/src/lib.rs crates/host/src/cpu.rs crates/host/src/host.rs crates/host/src/presets.rs crates/host/src/startup.rs Cargo.toml

crates/host/src/lib.rs:
crates/host/src/cpu.rs:
crates/host/src/host.rs:
crates/host/src/presets.rs:
crates/host/src/startup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
