/root/repo/target/debug/deps/tuner_step-e608d2f69e9e23fa.d: crates/bench/benches/tuner_step.rs Cargo.toml

/root/repo/target/debug/deps/libtuner_step-e608d2f69e9e23fa.rmeta: crates/bench/benches/tuner_step.rs Cargo.toml

crates/bench/benches/tuner_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
