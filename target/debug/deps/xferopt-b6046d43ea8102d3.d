/root/repo/target/debug/deps/xferopt-b6046d43ea8102d3.d: src/bin/xferopt.rs

/root/repo/target/debug/deps/xferopt-b6046d43ea8102d3: src/bin/xferopt.rs

src/bin/xferopt.rs:
