/root/repo/target/debug/deps/paper_headlines-aae3d7e2a640fa9b.d: tests/paper_headlines.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_headlines-aae3d7e2a640fa9b.rmeta: tests/paper_headlines.rs Cargo.toml

tests/paper_headlines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
