/root/repo/target/debug/deps/extensions-6d397e53891a3d20.d: crates/bench/src/bin/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-6d397e53891a3d20.rmeta: crates/bench/src/bin/extensions.rs Cargo.toml

crates/bench/src/bin/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
