/root/repo/target/debug/deps/xferopt-0d2a2a7b8e68a116.d: src/bin/xferopt.rs

/root/repo/target/debug/deps/xferopt-0d2a2a7b8e68a116: src/bin/xferopt.rs

src/bin/xferopt.rs:
