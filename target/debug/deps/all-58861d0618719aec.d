/root/repo/target/debug/deps/all-58861d0618719aec.d: crates/bench/src/bin/all.rs Cargo.toml

/root/repo/target/debug/deps/liball-58861d0618719aec.rmeta: crates/bench/src/bin/all.rs Cargo.toml

crates/bench/src/bin/all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
