/root/repo/target/debug/deps/xferopt_bench-a390135146c3f35e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libxferopt_bench-a390135146c3f35e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libxferopt_bench-a390135146c3f35e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
