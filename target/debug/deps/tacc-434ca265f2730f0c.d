/root/repo/target/debug/deps/tacc-434ca265f2730f0c.d: crates/bench/src/bin/tacc.rs

/root/repo/target/debug/deps/tacc-434ca265f2730f0c: crates/bench/src/bin/tacc.rs

crates/bench/src/bin/tacc.rs:
