/root/repo/target/debug/deps/tacc-3e2bf0b688f4831f.d: crates/bench/src/bin/tacc.rs Cargo.toml

/root/repo/target/debug/deps/libtacc-3e2bf0b688f4831f.rmeta: crates/bench/src/bin/tacc.rs Cargo.toml

crates/bench/src/bin/tacc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
