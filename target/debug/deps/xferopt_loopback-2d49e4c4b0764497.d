/root/repo/target/debug/deps/xferopt_loopback-2d49e4c4b0764497.d: crates/loopback/src/lib.rs crates/loopback/src/client.rs crates/loopback/src/cpuload.rs crates/loopback/src/persistent.rs crates/loopback/src/server.rs crates/loopback/src/shaper.rs

/root/repo/target/debug/deps/libxferopt_loopback-2d49e4c4b0764497.rlib: crates/loopback/src/lib.rs crates/loopback/src/client.rs crates/loopback/src/cpuload.rs crates/loopback/src/persistent.rs crates/loopback/src/server.rs crates/loopback/src/shaper.rs

/root/repo/target/debug/deps/libxferopt_loopback-2d49e4c4b0764497.rmeta: crates/loopback/src/lib.rs crates/loopback/src/client.rs crates/loopback/src/cpuload.rs crates/loopback/src/persistent.rs crates/loopback/src/server.rs crates/loopback/src/shaper.rs

crates/loopback/src/lib.rs:
crates/loopback/src/client.rs:
crates/loopback/src/cpuload.rs:
crates/loopback/src/persistent.rs:
crates/loopback/src/server.rs:
crates/loopback/src/shaper.rs:
