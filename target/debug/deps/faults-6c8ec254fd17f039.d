/root/repo/target/debug/deps/faults-6c8ec254fd17f039.d: tests/faults.rs Cargo.toml

/root/repo/target/debug/deps/libfaults-6c8ec254fd17f039.rmeta: tests/faults.rs Cargo.toml

tests/faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
