/root/repo/target/debug/deps/paper_headlines-4ff9e0a5aed96ae3.d: tests/paper_headlines.rs

/root/repo/target/debug/deps/paper_headlines-4ff9e0a5aed96ae3: tests/paper_headlines.rs

tests/paper_headlines.rs:
