/root/repo/target/debug/deps/fig10-30a40b4a744a7d91.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-30a40b4a744a7d91.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
