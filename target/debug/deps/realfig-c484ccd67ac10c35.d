/root/repo/target/debug/deps/realfig-c484ccd67ac10c35.d: crates/bench/src/bin/realfig.rs Cargo.toml

/root/repo/target/debug/deps/librealfig-c484ccd67ac10c35.rmeta: crates/bench/src/bin/realfig.rs Cargo.toml

crates/bench/src/bin/realfig.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
