/root/repo/target/debug/deps/proptest-b8c6b5e5fbaf5244.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-b8c6b5e5fbaf5244.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-b8c6b5e5fbaf5244.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
