/root/repo/target/debug/deps/extensions-365f85b2732200f6.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-365f85b2732200f6: tests/extensions.rs

tests/extensions.rs:
