/root/repo/target/debug/deps/realfig-00fc9e2bb3a2d122.d: crates/bench/src/bin/realfig.rs

/root/repo/target/debug/deps/realfig-00fc9e2bb3a2d122: crates/bench/src/bin/realfig.rs

crates/bench/src/bin/realfig.rs:
