/root/repo/target/debug/deps/xferopt_net-b602c9526636fef1.d: crates/net/src/lib.rs crates/net/src/dynamic.rs crates/net/src/fairness.rs crates/net/src/flow.rs crates/net/src/link.rs crates/net/src/network.rs crates/net/src/tcp.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/xferopt_net-b602c9526636fef1: crates/net/src/lib.rs crates/net/src/dynamic.rs crates/net/src/fairness.rs crates/net/src/flow.rs crates/net/src/link.rs crates/net/src/network.rs crates/net/src/tcp.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/dynamic.rs:
crates/net/src/fairness.rs:
crates/net/src/flow.rs:
crates/net/src/link.rs:
crates/net/src/network.rs:
crates/net/src/tcp.rs:
crates/net/src/topology.rs:
