/root/repo/target/debug/deps/xferopt-78741e7eecfcfd69.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxferopt-78741e7eecfcfd69.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
