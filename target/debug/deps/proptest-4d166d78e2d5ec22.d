/root/repo/target/debug/deps/proptest-4d166d78e2d5ec22.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-4d166d78e2d5ec22.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
