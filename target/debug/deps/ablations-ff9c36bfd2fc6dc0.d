/root/repo/target/debug/deps/ablations-ff9c36bfd2fc6dc0.d: tests/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-ff9c36bfd2fc6dc0.rmeta: tests/ablations.rs Cargo.toml

tests/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
