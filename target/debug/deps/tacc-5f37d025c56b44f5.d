/root/repo/target/debug/deps/tacc-5f37d025c56b44f5.d: crates/bench/src/bin/tacc.rs Cargo.toml

/root/repo/target/debug/deps/libtacc-5f37d025c56b44f5.rmeta: crates/bench/src/bin/tacc.rs Cargo.toml

crates/bench/src/bin/tacc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
