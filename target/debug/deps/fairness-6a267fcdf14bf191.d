/root/repo/target/debug/deps/fairness-6a267fcdf14bf191.d: crates/bench/benches/fairness.rs Cargo.toml

/root/repo/target/debug/deps/libfairness-6a267fcdf14bf191.rmeta: crates/bench/benches/fairness.rs Cargo.toml

crates/bench/benches/fairness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
