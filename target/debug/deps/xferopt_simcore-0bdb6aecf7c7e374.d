/root/repo/target/debug/deps/xferopt_simcore-0bdb6aecf7c7e374.d: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/event.rs crates/simcore/src/faults.rs crates/simcore/src/rng.rs crates/simcore/src/series.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libxferopt_simcore-0bdb6aecf7c7e374.rmeta: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/event.rs crates/simcore/src/faults.rs crates/simcore/src/rng.rs crates/simcore/src/series.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/event.rs:
crates/simcore/src/faults.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/series.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
crates/simcore/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
