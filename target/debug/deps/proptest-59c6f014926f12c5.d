/root/repo/target/debug/deps/proptest-59c6f014926f12c5.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-59c6f014926f12c5: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
