/root/repo/target/debug/deps/xferopt-d247067f85864ecd.d: src/lib.rs

/root/repo/target/debug/deps/xferopt-d247067f85864ecd: src/lib.rs

src/lib.rs:
