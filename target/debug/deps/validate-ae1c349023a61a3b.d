/root/repo/target/debug/deps/validate-ae1c349023a61a3b.d: crates/bench/src/bin/validate.rs

/root/repo/target/debug/deps/validate-ae1c349023a61a3b: crates/bench/src/bin/validate.rs

crates/bench/src/bin/validate.rs:
