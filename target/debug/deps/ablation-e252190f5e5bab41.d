/root/repo/target/debug/deps/ablation-e252190f5e5bab41.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-e252190f5e5bab41: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
