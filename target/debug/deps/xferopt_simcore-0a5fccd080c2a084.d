/root/repo/target/debug/deps/xferopt_simcore-0a5fccd080c2a084.d: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/event.rs crates/simcore/src/faults.rs crates/simcore/src/rng.rs crates/simcore/src/series.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs

/root/repo/target/debug/deps/libxferopt_simcore-0a5fccd080c2a084.rlib: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/event.rs crates/simcore/src/faults.rs crates/simcore/src/rng.rs crates/simcore/src/series.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs

/root/repo/target/debug/deps/libxferopt_simcore-0a5fccd080c2a084.rmeta: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/event.rs crates/simcore/src/faults.rs crates/simcore/src/rng.rs crates/simcore/src/series.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs

crates/simcore/src/lib.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/event.rs:
crates/simcore/src/faults.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/series.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
crates/simcore/src/trace.rs:
