/root/repo/target/debug/deps/determinism-7ac98410785b3722.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-7ac98410785b3722: tests/determinism.rs

tests/determinism.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
