/root/repo/target/release/deps/xferopt_net-2544490d336eb7fc.d: crates/net/src/lib.rs crates/net/src/dynamic.rs crates/net/src/fairness.rs crates/net/src/flow.rs crates/net/src/link.rs crates/net/src/network.rs crates/net/src/tcp.rs crates/net/src/topology.rs

/root/repo/target/release/deps/libxferopt_net-2544490d336eb7fc.rlib: crates/net/src/lib.rs crates/net/src/dynamic.rs crates/net/src/fairness.rs crates/net/src/flow.rs crates/net/src/link.rs crates/net/src/network.rs crates/net/src/tcp.rs crates/net/src/topology.rs

/root/repo/target/release/deps/libxferopt_net-2544490d336eb7fc.rmeta: crates/net/src/lib.rs crates/net/src/dynamic.rs crates/net/src/fairness.rs crates/net/src/flow.rs crates/net/src/link.rs crates/net/src/network.rs crates/net/src/tcp.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/dynamic.rs:
crates/net/src/fairness.rs:
crates/net/src/flow.rs:
crates/net/src/link.rs:
crates/net/src/network.rs:
crates/net/src/tcp.rs:
crates/net/src/topology.rs:
