/root/repo/target/release/deps/xferopt_scenarios-b4522038608076ef.d: crates/scenarios/src/lib.rs crates/scenarios/src/driver.rs crates/scenarios/src/experiments.rs crates/scenarios/src/faults.rs crates/scenarios/src/load.rs crates/scenarios/src/report.rs crates/scenarios/src/runner.rs crates/scenarios/src/sweep.rs crates/scenarios/src/topology.rs crates/scenarios/src/validation.rs

/root/repo/target/release/deps/libxferopt_scenarios-b4522038608076ef.rlib: crates/scenarios/src/lib.rs crates/scenarios/src/driver.rs crates/scenarios/src/experiments.rs crates/scenarios/src/faults.rs crates/scenarios/src/load.rs crates/scenarios/src/report.rs crates/scenarios/src/runner.rs crates/scenarios/src/sweep.rs crates/scenarios/src/topology.rs crates/scenarios/src/validation.rs

/root/repo/target/release/deps/libxferopt_scenarios-b4522038608076ef.rmeta: crates/scenarios/src/lib.rs crates/scenarios/src/driver.rs crates/scenarios/src/experiments.rs crates/scenarios/src/faults.rs crates/scenarios/src/load.rs crates/scenarios/src/report.rs crates/scenarios/src/runner.rs crates/scenarios/src/sweep.rs crates/scenarios/src/topology.rs crates/scenarios/src/validation.rs

crates/scenarios/src/lib.rs:
crates/scenarios/src/driver.rs:
crates/scenarios/src/experiments.rs:
crates/scenarios/src/faults.rs:
crates/scenarios/src/load.rs:
crates/scenarios/src/report.rs:
crates/scenarios/src/runner.rs:
crates/scenarios/src/sweep.rs:
crates/scenarios/src/topology.rs:
crates/scenarios/src/validation.rs:
