/root/repo/target/release/deps/xferopt_host-2b09f3a9099bd605.d: crates/host/src/lib.rs crates/host/src/cpu.rs crates/host/src/host.rs crates/host/src/presets.rs crates/host/src/startup.rs

/root/repo/target/release/deps/libxferopt_host-2b09f3a9099bd605.rlib: crates/host/src/lib.rs crates/host/src/cpu.rs crates/host/src/host.rs crates/host/src/presets.rs crates/host/src/startup.rs

/root/repo/target/release/deps/libxferopt_host-2b09f3a9099bd605.rmeta: crates/host/src/lib.rs crates/host/src/cpu.rs crates/host/src/host.rs crates/host/src/presets.rs crates/host/src/startup.rs

crates/host/src/lib.rs:
crates/host/src/cpu.rs:
crates/host/src/host.rs:
crates/host/src/presets.rs:
crates/host/src/startup.rs:
