/root/repo/target/release/deps/fig1-63a43864328b4043.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-63a43864328b4043: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
