/root/repo/target/release/deps/ablation-f717e1490b0fd1d8.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-f717e1490b0fd1d8: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
