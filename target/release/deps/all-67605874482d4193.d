/root/repo/target/release/deps/all-67605874482d4193.d: crates/bench/src/bin/all.rs

/root/repo/target/release/deps/all-67605874482d4193: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
