/root/repo/target/release/deps/xferopt_tuners-1c12082175c79da8.d: crates/tuners/src/lib.rs crates/tuners/src/baselines.rs crates/tuners/src/cd.rs crates/tuners/src/compass.rs crates/tuners/src/domain.rs crates/tuners/src/extra.rs crates/tuners/src/neldermead.rs crates/tuners/src/offline.rs crates/tuners/src/online.rs crates/tuners/src/regret.rs crates/tuners/src/trigger.rs crates/tuners/src/tuner.rs

/root/repo/target/release/deps/libxferopt_tuners-1c12082175c79da8.rlib: crates/tuners/src/lib.rs crates/tuners/src/baselines.rs crates/tuners/src/cd.rs crates/tuners/src/compass.rs crates/tuners/src/domain.rs crates/tuners/src/extra.rs crates/tuners/src/neldermead.rs crates/tuners/src/offline.rs crates/tuners/src/online.rs crates/tuners/src/regret.rs crates/tuners/src/trigger.rs crates/tuners/src/tuner.rs

/root/repo/target/release/deps/libxferopt_tuners-1c12082175c79da8.rmeta: crates/tuners/src/lib.rs crates/tuners/src/baselines.rs crates/tuners/src/cd.rs crates/tuners/src/compass.rs crates/tuners/src/domain.rs crates/tuners/src/extra.rs crates/tuners/src/neldermead.rs crates/tuners/src/offline.rs crates/tuners/src/online.rs crates/tuners/src/regret.rs crates/tuners/src/trigger.rs crates/tuners/src/tuner.rs

crates/tuners/src/lib.rs:
crates/tuners/src/baselines.rs:
crates/tuners/src/cd.rs:
crates/tuners/src/compass.rs:
crates/tuners/src/domain.rs:
crates/tuners/src/extra.rs:
crates/tuners/src/neldermead.rs:
crates/tuners/src/offline.rs:
crates/tuners/src/online.rs:
crates/tuners/src/regret.rs:
crates/tuners/src/trigger.rs:
crates/tuners/src/tuner.rs:
