/root/repo/target/release/deps/rand-38548fc4b0cc48c0.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-38548fc4b0cc48c0.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-38548fc4b0cc48c0.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
