/root/repo/target/release/deps/realfig-4c1aebf811a67312.d: crates/bench/src/bin/realfig.rs

/root/repo/target/release/deps/realfig-4c1aebf811a67312: crates/bench/src/bin/realfig.rs

crates/bench/src/bin/realfig.rs:
