/root/repo/target/release/deps/xferopt-604b042523ee6012.d: src/bin/xferopt.rs

/root/repo/target/release/deps/xferopt-604b042523ee6012: src/bin/xferopt.rs

src/bin/xferopt.rs:
