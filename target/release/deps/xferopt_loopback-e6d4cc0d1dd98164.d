/root/repo/target/release/deps/xferopt_loopback-e6d4cc0d1dd98164.d: crates/loopback/src/lib.rs crates/loopback/src/client.rs crates/loopback/src/cpuload.rs crates/loopback/src/persistent.rs crates/loopback/src/server.rs crates/loopback/src/shaper.rs

/root/repo/target/release/deps/libxferopt_loopback-e6d4cc0d1dd98164.rlib: crates/loopback/src/lib.rs crates/loopback/src/client.rs crates/loopback/src/cpuload.rs crates/loopback/src/persistent.rs crates/loopback/src/server.rs crates/loopback/src/shaper.rs

/root/repo/target/release/deps/libxferopt_loopback-e6d4cc0d1dd98164.rmeta: crates/loopback/src/lib.rs crates/loopback/src/client.rs crates/loopback/src/cpuload.rs crates/loopback/src/persistent.rs crates/loopback/src/server.rs crates/loopback/src/shaper.rs

crates/loopback/src/lib.rs:
crates/loopback/src/client.rs:
crates/loopback/src/cpuload.rs:
crates/loopback/src/persistent.rs:
crates/loopback/src/server.rs:
crates/loopback/src/shaper.rs:
