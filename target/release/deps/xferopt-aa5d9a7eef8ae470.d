/root/repo/target/release/deps/xferopt-aa5d9a7eef8ae470.d: src/lib.rs

/root/repo/target/release/deps/libxferopt-aa5d9a7eef8ae470.rlib: src/lib.rs

/root/repo/target/release/deps/libxferopt-aa5d9a7eef8ae470.rmeta: src/lib.rs

src/lib.rs:
