/root/repo/target/release/deps/xferopt_transfer-79404904b323ce0e.d: crates/transfer/src/lib.rs crates/transfer/src/noise.rs crates/transfer/src/params.rs crates/transfer/src/report.rs crates/transfer/src/retry.rs crates/transfer/src/world.rs

/root/repo/target/release/deps/libxferopt_transfer-79404904b323ce0e.rlib: crates/transfer/src/lib.rs crates/transfer/src/noise.rs crates/transfer/src/params.rs crates/transfer/src/report.rs crates/transfer/src/retry.rs crates/transfer/src/world.rs

/root/repo/target/release/deps/libxferopt_transfer-79404904b323ce0e.rmeta: crates/transfer/src/lib.rs crates/transfer/src/noise.rs crates/transfer/src/params.rs crates/transfer/src/report.rs crates/transfer/src/retry.rs crates/transfer/src/world.rs

crates/transfer/src/lib.rs:
crates/transfer/src/noise.rs:
crates/transfer/src/params.rs:
crates/transfer/src/report.rs:
crates/transfer/src/retry.rs:
crates/transfer/src/world.rs:
