/root/repo/target/release/deps/extensions-6a97071f4b5b2855.d: crates/bench/src/bin/extensions.rs

/root/repo/target/release/deps/extensions-6a97071f4b5b2855: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
