/root/repo/target/release/deps/serde_derive-eadd8e5a0ec04253.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-eadd8e5a0ec04253.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
