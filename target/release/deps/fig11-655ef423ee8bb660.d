/root/repo/target/release/deps/fig11-655ef423ee8bb660.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-655ef423ee8bb660: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
