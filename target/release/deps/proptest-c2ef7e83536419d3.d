/root/repo/target/release/deps/proptest-c2ef7e83536419d3.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-c2ef7e83536419d3.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-c2ef7e83536419d3.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
