/root/repo/target/release/deps/criterion-f09f9831aa27a604.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-f09f9831aa27a604.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-f09f9831aa27a604.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
