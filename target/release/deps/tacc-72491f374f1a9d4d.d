/root/repo/target/release/deps/tacc-72491f374f1a9d4d.d: crates/bench/src/bin/tacc.rs

/root/repo/target/release/deps/tacc-72491f374f1a9d4d: crates/bench/src/bin/tacc.rs

crates/bench/src/bin/tacc.rs:
