/root/repo/target/release/deps/fig10-b4205f47d78fe756.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-b4205f47d78fe756: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
