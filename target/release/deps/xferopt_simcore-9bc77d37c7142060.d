/root/repo/target/release/deps/xferopt_simcore-9bc77d37c7142060.d: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/event.rs crates/simcore/src/faults.rs crates/simcore/src/rng.rs crates/simcore/src/series.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs

/root/repo/target/release/deps/libxferopt_simcore-9bc77d37c7142060.rlib: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/event.rs crates/simcore/src/faults.rs crates/simcore/src/rng.rs crates/simcore/src/series.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs

/root/repo/target/release/deps/libxferopt_simcore-9bc77d37c7142060.rmeta: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/event.rs crates/simcore/src/faults.rs crates/simcore/src/rng.rs crates/simcore/src/series.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs

crates/simcore/src/lib.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/event.rs:
crates/simcore/src/faults.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/series.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
crates/simcore/src/trace.rs:
