/root/repo/target/release/deps/fig5-23f427916a19910d.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-23f427916a19910d: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
