/root/repo/target/release/deps/xferopt_bench-80435b0cdb3249e4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libxferopt_bench-80435b0cdb3249e4.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libxferopt_bench-80435b0cdb3249e4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
