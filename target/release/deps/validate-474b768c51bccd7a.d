/root/repo/target/release/deps/validate-474b768c51bccd7a.d: crates/bench/src/bin/validate.rs

/root/repo/target/release/deps/validate-474b768c51bccd7a: crates/bench/src/bin/validate.rs

crates/bench/src/bin/validate.rs:
