/root/repo/target/release/deps/xferopt_dataset-d5416690ea63c8c0.d: crates/dataset/src/lib.rs crates/dataset/src/disk.rs crates/dataset/src/filespec.rs crates/dataset/src/online.rs crates/dataset/src/xfer.rs

/root/repo/target/release/deps/libxferopt_dataset-d5416690ea63c8c0.rlib: crates/dataset/src/lib.rs crates/dataset/src/disk.rs crates/dataset/src/filespec.rs crates/dataset/src/online.rs crates/dataset/src/xfer.rs

/root/repo/target/release/deps/libxferopt_dataset-d5416690ea63c8c0.rmeta: crates/dataset/src/lib.rs crates/dataset/src/disk.rs crates/dataset/src/filespec.rs crates/dataset/src/online.rs crates/dataset/src/xfer.rs

crates/dataset/src/lib.rs:
crates/dataset/src/disk.rs:
crates/dataset/src/filespec.rs:
crates/dataset/src/online.rs:
crates/dataset/src/xfer.rs:
