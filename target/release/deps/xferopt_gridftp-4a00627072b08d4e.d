/root/repo/target/release/deps/xferopt_gridftp-4a00627072b08d4e.d: crates/gridftp/src/lib.rs crates/gridftp/src/block.rs crates/gridftp/src/checksum.rs crates/gridftp/src/client.rs crates/gridftp/src/proto.rs crates/gridftp/src/rangeset.rs crates/gridftp/src/server.rs crates/gridftp/src/session.rs

/root/repo/target/release/deps/libxferopt_gridftp-4a00627072b08d4e.rlib: crates/gridftp/src/lib.rs crates/gridftp/src/block.rs crates/gridftp/src/checksum.rs crates/gridftp/src/client.rs crates/gridftp/src/proto.rs crates/gridftp/src/rangeset.rs crates/gridftp/src/server.rs crates/gridftp/src/session.rs

/root/repo/target/release/deps/libxferopt_gridftp-4a00627072b08d4e.rmeta: crates/gridftp/src/lib.rs crates/gridftp/src/block.rs crates/gridftp/src/checksum.rs crates/gridftp/src/client.rs crates/gridftp/src/proto.rs crates/gridftp/src/rangeset.rs crates/gridftp/src/server.rs crates/gridftp/src/session.rs

crates/gridftp/src/lib.rs:
crates/gridftp/src/block.rs:
crates/gridftp/src/checksum.rs:
crates/gridftp/src/client.rs:
crates/gridftp/src/proto.rs:
crates/gridftp/src/rangeset.rs:
crates/gridftp/src/server.rs:
crates/gridftp/src/session.rs:
