/root/repo/target/release/deps/fig9-4a8a14e86f35d9f5.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-4a8a14e86f35d9f5: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
