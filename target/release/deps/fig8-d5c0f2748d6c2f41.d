/root/repo/target/release/deps/fig8-d5c0f2748d6c2f41.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-d5c0f2748d6c2f41: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
