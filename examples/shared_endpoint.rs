//! Two simultaneously tuned transfers sharing one source NIC (the paper's
//! Fig. 11): each tuner treats the other as external load, and the
//! UChicago-bound transfer tends to claim the larger share.
//!
//! Run with: `cargo run --release --example shared_endpoint`

use xferopt::prelude::*;

fn main() {
    let specs = vec![
        MultiSpec {
            route: Route::UChicago,
            tuner: TunerKind::Nm,
            dims: TuneDims::NcNp,
            x0: StreamParams::globus_default(),
        },
        MultiSpec {
            route: Route::Tacc,
            tuner: TunerKind::Nm,
            dims: TuneDims::NcNp,
            x0: StreamParams::globus_default(),
        },
    ];
    let driver = MultiDriver::new(&specs, LoadSchedule::constant(ExternalLoad::NONE), 30.0, 42);
    let logs = driver.run(1800.0);

    println!("t_s      UChicago MB/s  (nc,np)     TACC MB/s  (nc,np)");
    for (i, (uc, tacc)) in logs[0].epochs.iter().zip(&logs[1].epochs).enumerate() {
        if i % 4 != 0 {
            continue; // print every 2 minutes
        }
        println!(
            "{:>5.0}  {:>12.0}  ({:>3},{:>2})  {:>10.0}  ({:>3},{:>2})",
            uc.start.as_secs_f64(),
            uc.observed_mbs,
            uc.params.nc,
            uc.params.np,
            tacc.observed_mbs,
            tacc.params.nc,
            tacc.params.np,
        );
    }

    let a = logs[0].mean_observed_between(1200.0, 1801.0).unwrap_or(0.0);
    let b = logs[1].mean_observed_between(1200.0, 1801.0).unwrap_or(0.0);
    println!(
        "\nsteady state: UChicago {a:.0} MB/s, TACC {b:.0} MB/s — {:.0}% / {:.0}% of the shared 5000 MB/s NIC",
        100.0 * a / (a + b),
        100.0 * b / (a + b)
    );
}
