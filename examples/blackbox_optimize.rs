//! The tuners as a general direct-search library: maximize an arbitrary
//! bounded-integer black-box function offline and compare how many
//! evaluations each method needs.
//!
//! Run with: `cargo run --release --example blackbox_optimize`

use xferopt::prelude::*;
use xferopt::tuners::offline::maximize;

/// A 2-D "throughput surface": a ridge with an interior optimum at (40, 6)
/// plus mild curvature — the shape of the paper's nc×np landscape.
fn surface(x: &Point) -> f64 {
    let nc = x[0] as f64;
    let np = x[1] as f64;
    let n = nc * np;
    // Concave saturating gain in total streams, penalty past ~320 streams,
    // and a mild per-process sweet spot.
    5000.0 * n / (n + 16.0) / (1.0 + 0.004 * (n / 8.0 - 1.0).max(0.0)) - 8.0 * (np - 6.0).powi(2)
}

fn main() {
    let domain = Domain::new(&[(1, 256), (1, 32)]);
    let x0 = vec![2, 8];

    println!(
        "{:<12} {:>6} {:>12} {:>10} {:>10}",
        "method", "evals", "best point", "value", "converged"
    );
    let run = |name: &str, tuner: &mut dyn OnlineTuner| {
        let r = maximize(tuner, 400, surface);
        println!(
            "{:<12} {:>6} {:>12} {:>10.0} {:>10}",
            name,
            r.evaluations.len(),
            format!("{:?}", r.best),
            r.best_value,
            r.converged
        );
    };

    run(
        "cd-tuner",
        &mut CdTuner::new(domain.clone(), x0.clone(), 1.0),
    );
    run(
        "cs-tuner",
        &mut CompassTuner::new(domain.clone(), x0.clone(), 8.0, 1.0),
    );
    run(
        "nm-tuner",
        &mut NelderMeadTuner::new(domain.clone(), x0.clone(), 1.0),
    );
    run(
        "heur1",
        &mut Heur1Tuner::new(domain.clone(), x0.clone(), 1.0),
    );
    run("heur2", &mut Heur2Tuner::new(domain, x0, 1.0));

    println!("\nEach evaluation would cost one 30 s control epoch online, so");
    println!("evaluation count is wasted bandwidth — the paper's argument for");
    println!("large initial steps (cs λ=8, nm edge 8) over additive probing.");
}
