//! Striped GridFTP-style transfers over real localhost sockets: SPAS port
//! negotiation, EBLOCK framing, out-of-order reassembly, digest
//! verification, and resume from a restart marker.
//!
//! Run with: `cargo run --release --example gridftp_transfer`

use std::sync::Arc;
use xferopt::gridftp::{client, GridFtpServer, RangeSet};
use xferopt::loopback::{ShaperConfig, TokenBucket};

fn main() {
    let server = GridFtpServer::start().expect("start server");
    println!("GridFTP-style sink listening at {}", server.control_addr());

    // A 100 MB/s "WAN" shared by every data channel.
    let bucket = Arc::new(TokenBucket::new(ShaperConfig::rate_mbs(100.0)));
    let size = 16 * 1024 * 1024u64;

    println!("\nparallelism sweep, {} MB transfer:", size / 1024 / 1024);
    for np in [1u32, 2, 4, 8] {
        let report = client::put(
            server.control_addr(),
            client::PutConfig::new(format!("sweep-np{np}"), size)
                .with_parallelism(np)
                .with_block_bytes(256 * 1024)
                .with_bucket(Arc::clone(&bucket)),
        )
        .expect("put failed");
        println!(
            "  np={np}: {:>6.1} MB/s, complete={}, digest verified={}",
            report.throughput_mbs, report.complete, report.verified
        );
    }

    // Interrupted transfer + resume: send only the odd half first.
    println!("\ninterrupt & resume:");
    let mut pretend_done = RangeSet::new();
    pretend_done.insert(0, size / 2);
    let first = client::put(
        server.control_addr(),
        client::PutConfig::new("resumable", size)
            .with_parallelism(4)
            .with_resume_from(pretend_done),
    )
    .expect("first pass");
    let marker = first.marker.expect("server must return a restart marker");
    println!(
        "  first pass sent {:.1} MB; server marker: {} (gap: {:?})",
        first.bytes_sent as f64 / 1e6,
        marker,
        marker.complement(size)
    );
    let second = client::put(
        server.control_addr(),
        client::PutConfig::new("resumable", size)
            .with_parallelism(4)
            .with_resume_from(marker),
    )
    .expect("second pass");
    println!(
        "  resume sent {:.1} MB; complete={}, digest verified={}",
        second.bytes_sent as f64 / 1e6,
        second.complete,
        second.verified
    );

    // Download direction (RETR): the server streams synthetic data back.
    println!("\ndownload (RETR), 4 channels:");
    let down = client::get(server.control_addr(), "resumable", size, 4).expect("get");
    println!(
        "  received {:.1} MB at {:.1} MB/s; digest verified={}",
        down.bytes_received as f64 / 1e6,
        down.throughput_mbs,
        down.verified
    );
}
