//! Quickstart: tune the number of parallel streams of one simulated WAN
//! transfer with the Nelder–Mead tuner and watch it beat the Globus default.
//!
//! Run with: `cargo run --release --example quickstart`

use xferopt::prelude::*;

fn main() {
    // The paper's source endpoint is loaded with 16 dgemm compute hogs —
    // the regime where static defaults collapse.
    let load = LoadSchedule::constant(ExternalLoad::new(0, 16));

    println!("ANL -> UChicago, ext.cmp = 16, 900 s, e = 30 s epochs\n");
    println!(
        "{:<10} {:>14} {:>14} {:>9}",
        "tuner", "observed MB/s", "best-case MB/s", "final nc"
    );

    for kind in [
        TunerKind::Default,
        TunerKind::Cd,
        TunerKind::Cs,
        TunerKind::Nm,
    ] {
        let cfg = DriveConfig::paper(
            Route::UChicago,
            kind,
            TuneDims::NcOnly { np: 8 },
            load.clone(),
        )
        .with_duration_s(900.0);
        let log = drive_transfer(&cfg);
        // Steady state: the last third of the run.
        let observed = log.mean_observed_between(600.0, 901.0).unwrap_or(0.0);
        let bestcase = log.mean_bestcase_between(600.0, 901.0).unwrap_or(0.0);
        println!(
            "{:<10} {:>14.0} {:>14.0} {:>9}",
            kind.name(),
            observed,
            bestcase,
            log.final_nc().unwrap_or(0)
        );
    }

    println!("\nThe direct-search tuners raise concurrency until the transfer");
    println!("claims its fair share of the contended CPU — the paper's Fig. 5b.");
}
