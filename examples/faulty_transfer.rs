//! Transferring through faults: the WAN link flaps and the transfer is
//! occasionally killed, yet the tuned run retries with exponential backoff
//! and recovers — the tuner sees each fault as a throughput hole, not a
//! crash.
//!
//! Run with: `cargo run --release --example faulty_transfer`

use xferopt::prelude::*;

fn main() {
    let seed = 7;
    let duration = 1800.0;

    // The same deterministic fault schedule is injected into every run, so
    // tuners are compared on identical bad weather.
    let plan = FaultProfile::FlakyLink.plan(Route::UChicago, seed, duration);
    println!("fault plan ({} events from seed {seed}):", plan.len());
    for ev in plan.events().iter().take(8) {
        println!("  {:>9.1} s  {:?}", ev.at.as_secs_f64(), ev.kind);
    }
    if plan.len() > 8 {
        println!("  ... and {} more", plan.len() - 8);
    }

    println!("\ntuner      clean MB/s   faulty MB/s   kept");
    for kind in [TunerKind::Default, TunerKind::Cs, TunerKind::Nm] {
        let base = DriveConfig::paper(
            Route::UChicago,
            kind,
            TuneDims::NcOnly { np: 8 },
            LoadSchedule::constant(ExternalLoad::NONE),
        )
        .with_duration_s(duration)
        .with_seed(seed);
        let clean = drive_transfer(&base).mean_observed_mbs();
        let faulty = drive_transfer(&base.clone().with_faults(plan.clone())).mean_observed_mbs();
        println!(
            "{:<10} {clean:>10.0} {faulty:>13.0}   {:>3.0}%",
            kind.name(),
            100.0 * faulty / clean
        );
    }

    println!("\nEvery run above replays exactly from its seed: link flaps, abort");
    println!("instants, and retry backoff jitter are all part of the fault plan,");
    println!("so a faulty run is as reproducible as a clean one.");
}
