//! The real-TCP harness: run a compass tuner against actual localhost
//! sockets behind a token-bucket "WAN" while synthetic dgemm hogs load the
//! CPU — the paper's experiment, in miniature, with no simulation.
//!
//! Run with: `cargo run --release --example loopback_transfer`

use std::time::Duration;
use xferopt::loopback::{CpuHogs, LoopbackHarness, ShaperConfig};
use xferopt::prelude::*;

fn main() {
    // A 400 MB/s shared bottleneck, ~40 MB/s per-stream cap (the TCP window
    // analogue), and 2 compute hogs: parallel streams pay until the shared
    // bucket saturates — the paper's curve, on real sockets.
    let harness = LoopbackHarness::start(ShaperConfig::rate_mbs(400.0))
        .expect("start sink")
        .with_per_stream_mbs(40.0);
    let _hogs = CpuHogs::spawn(2);

    // Tune nc over real sockets, np fixed at 2; 1-second control epochs so
    // the demo finishes quickly (the paper uses 30 s).
    let epoch = Duration::from_secs(1);
    let mut tuner = CompassTuner::new(Domain::new(&[(1, 16)]), vec![1], 4.0, 5.0);
    let mut x = tuner.initial();

    println!("epoch   nc   np   MB/s   (real TCP through a 400 MB/s token bucket)");
    for i in 0..15 {
        let nc = x[0] as u32;
        let np = 2;
        let mbs = harness.measure(nc, np, epoch).expect("epoch failed");
        println!("{i:>5} {nc:>4} {np:>4} {mbs:>7.1}");
        x = tuner.observe(&x.clone(), mbs);
    }

    println!(
        "\nsink received {:.1} MB total; tuner settled at nc = {}",
        harness.sink_bytes() as f64 / 1e6,
        x[0]
    );
}
