//! The paper's future work #1, built out: disk-to-disk transfers over file
//! sets with very different size distributions, tuning concurrency,
//! parallelism **and pipelining** with the same direct-search methods.
//!
//! Run with: `cargo run --release --example disk_to_disk`

use xferopt::dataset::{
    climate_dataset, hep_dataset, DiskModel, DiskTransfer, DiskTransferObjective,
};
use xferopt::prelude::*;
use xferopt::tuners::offline::maximize;

fn optimize(label: &str, xfer: DiskTransfer) {
    let total = xfer.dataset().total_mb();
    let n = xfer.dataset().len();
    let default = xfer.throughput_mbs(2, 8, 1);

    let mut obj = DiskTransferObjective::new(xfer, 11, 0.03);
    let mut tuner = NelderMeadTuner::new(DiskTransferObjective::domain(), vec![2, 8, 1], 2.0);
    let r = maximize(&mut tuner, 300, |x| obj.evaluate(x));

    println!("{label}: {n} files, {:.1} GB total", total / 1000.0);
    println!("  Globus-default (nc=2, np=8, pp=1): {default:>7.0} MB/s");
    println!(
        "  nm-tuner found nc={}, np={}, pp={}: {:>7.0} MB/s  ({:.1}x, {} evaluations)\n",
        r.best[0],
        r.best[1],
        r.best[2],
        r.best_value,
        r.best_value / default,
        r.evaluations.len()
    );
}

fn main() {
    println!("Tuning (nc, np, pp) for disk-to-disk transfers over a 20 Gb/s WAN\n");
    optimize(
        "climate archive (many small files)",
        DiskTransfer::new(
            climate_dataset(1),
            DiskModel::parallel_fs(),
            DiskModel::parallel_fs(),
        ),
    );
    optimize(
        "HEP dataset (few huge files)",
        DiskTransfer::new(
            hep_dataset(1),
            DiskModel::parallel_fs(),
            DiskModel::parallel_fs(),
        ),
    );
    optimize(
        "archival source (slow opens, slow streams)",
        DiskTransfer::new(
            climate_dataset(2),
            DiskModel::archival(),
            DiskModel::parallel_fs(),
        ),
    );
    println!("Small-file sets want deep pipelining; huge files want per-file");
    println!("parallelism; the tuners find each regime's knob without being told.");
}
