//! Adapting to changing conditions: external load appears mid-transfer and
//! then disappears; the compass tuner re-triggers its search each time while
//! the static default rides the degradation out.
//!
//! Run with: `cargo run --release --example adaptive_wan_transfer`

use xferopt::prelude::*;

fn main() {
    // Quiet start, heavy compute load in the middle third, quiet again.
    let schedule = LoadSchedule::piecewise(vec![
        (0.0, ExternalLoad::NONE),
        (600.0, ExternalLoad::new(16, 32)),
        (1200.0, ExternalLoad::NONE),
    ]);

    let mut logs = Vec::new();
    for kind in [TunerKind::Default, TunerKind::Cs] {
        let cfg = DriveConfig::paper(
            Route::UChicago,
            kind,
            TuneDims::NcOnly { np: 8 },
            schedule.clone(),
        )
        .with_duration_s(1800.0);
        logs.push((kind, drive_transfer(&cfg)));
    }

    println!("phase                     default MB/s   cs-tuner MB/s   cs nc range");
    for (label, from, to) in [
        ("quiet  (0-600 s)", 120.0, 600.0),
        ("loaded (600-1200 s)", 720.0, 1200.0),
        ("quiet  (1200-1800 s)", 1320.0, 1800.0),
    ] {
        let d = logs[0]
            .1
            .mean_observed_between(from, to + 1.0)
            .unwrap_or(0.0);
        let c = logs[1]
            .1
            .mean_observed_between(from, to + 1.0)
            .unwrap_or(0.0);
        let ncs: Vec<u32> = logs[1]
            .1
            .epochs
            .iter()
            .filter(|e| e.start.as_secs_f64() >= from && e.start.as_secs_f64() < to)
            .map(|e| e.params.nc)
            .collect();
        let (lo, hi) = (
            ncs.iter().min().copied().unwrap_or(0),
            ncs.iter().max().copied().unwrap_or(0),
        );
        println!("{label:<25} {d:>12.0} {c:>15.0}   nc in [{lo}, {hi}]");
    }

    println!("\nWhen the hogs arrive the monitor sees a significant throughput");
    println!("drop (|Δc| > ε%), re-invokes compass search, and concurrency climbs;");
    println!("when they leave, the search walks it back down.");
}
