//! `xferopt` — command-line front end for the simulated testbed.
//!
//! ```text
//! xferopt run   [--route uc|tacc] [--tuner default|cd|cs|nm|heur1|heur2]
//!               [--dims nc|ncnp] [--tfr N] [--cmp N] [--duration S]
//!               [--epoch S] [--seed N] [--csv]
//!               [--telemetry-out PATH]         # JSONL + PATH.prom
//! xferopt sweep [--route uc|tacc] [--tfr N] [--cmp N] [--np N]
//!               [--duration S] [--seed N]      # throughput vs nc table
//! xferopt compare [--duration S] [--seed N]    # all tuners × all loads
//! xferopt telemetry summarize --in PATH       # digest a JSONL bundle
//! xferopt fleet run    [--jobs N] [--policy fifo|sjf|wfair] [--seed N]
//!                      [--workload synthetic|contended] [--horizon S]
//!                      [--epoch S] [--tick S] [--budget STREAMS]
//!                      [--history DIR] [--cold] [--csv]
//!                      [--faults flaky-link|degraded-wan|lossy-tacc]
//!                      [--report-out PATH] [--decisions-out PATH]
//!                      [--telemetry-out PATH] [--supervision-out PATH]
//!                      [--checkpoint-out PATH] [--checkpoint-every TICKS]
//!                      [--stop-at-tick K]      # simulate a crash
//!                      [--topo mesh|hub-spoke|asymmetric] [--topo-k K]
//!                      [--outage-region R,...] [--campaign NAME]
//!                      [--multipath M] [--no-reroute] [--selfheal]
//! xferopt fleet resume --checkpoint PATH       # continue a killed run
//!                                              # (salvages torn journals)
//! xferopt fleet report [--history DIR]         # digest a history store
//! xferopt routes search [--preset mesh|hub-spoke|asymmetric | --dat FILE]
//!                       [--k N] [--nc-grid 4,8,...] [--np N] [--passes N]
//!                       [--out PATH]           # placement table JSONL
//! xferopt chaos run --campaign rolling-outage|flapping-links|nic-degrade
//!                   [--preset NAME] [--jobs N] [--seed N] [--seeds COUNT]
//!                   [--horizon S] [--shards N] [--out PATH]  # scorecard
//! xferopt tournament run    [--quick] [--seed N] [--epochs N] [--epoch S]
//!                           [--tuners a,b,...] [--scenarios a,b,...]
//!                           [--history DIR] [--report-out PATH]
//!                           [--csv-out PATH] [--jsonl-out PATH]
//!                           [--decisions-out PATH]
//! xferopt tournament report --in PATH [--csv]  # re-render a JSONL dump
//! ```
//!
//! Everything runs the calibrated fluid testbed (see DESIGN.md); use the
//! `fig*` binaries in `xferopt-bench` to regenerate the paper's figures.

use std::process::ExitCode;
use xferopt::prelude::*;
use xferopt::scenarios::experiments::{fig5, summarize};
use xferopt::scenarios::report::Table;
use xferopt::scenarios::telemetry::{drive_transfer_with_telemetry, summarize_telemetry};

/// Minimal flag parser: `--key value` pairs after the subcommand.
struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument: {a}"));
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    pairs.push((key.to_string(), it.next().unwrap().clone()));
                }
                _ => flags.push(key.to_string()),
            }
        }
        Ok(Args { pairs, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
        }
    }

    fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

fn parse_route(s: &str) -> Result<Route, String> {
    match s {
        "uc" | "uchicago" => Ok(Route::UChicago),
        "tacc" => Ok(Route::Tacc),
        other => Err(format!("unknown route: {other} (use uc|tacc)")),
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let route = parse_route(args.get("route").unwrap_or("uc"))?;
    let tuner: TunerKind = args
        .get("tuner")
        .unwrap_or("nm")
        .parse()
        .map_err(|e: String| e)?;
    let dims = match args.get("dims").unwrap_or("nc") {
        "nc" => TuneDims::NcOnly {
            np: args.get_parsed("np", 8u32)?,
        },
        "ncnp" => TuneDims::NcNp,
        other => return Err(format!("unknown dims: {other} (use nc|ncnp)")),
    };
    let load = ExternalLoad::new(args.get_parsed("tfr", 0u32)?, args.get_parsed("cmp", 0u32)?);
    let duration = args.get_parsed("duration", 1800.0f64)?;
    let seed = args.get_parsed("seed", 0u64)?;
    let mut cfg = DriveConfig::paper(route, tuner, dims, LoadSchedule::constant(load))
        .with_duration_s(duration)
        .with_seed(seed);
    cfg.epoch_s = args.get_parsed("epoch", 30.0f64)?;
    let faults = match args.get("faults") {
        None => None,
        Some(v) => {
            let profile: FaultProfile = v.parse()?;
            Some(profile)
        }
    };
    if let Some(profile) = faults {
        cfg = cfg.with_faults(profile.plan(route, seed, duration));
    }

    let telemetry_out = args.get("telemetry-out").map(str::to_string);
    let log = if let Some(path) = &telemetry_out {
        // Flight recorder on: identical transfer, plus JSONL + Prometheus.
        let (log, tel) = drive_transfer_with_telemetry(&cfg);
        std::fs::write(path, tel.to_jsonl()).map_err(|e| format!("cannot write {path}: {e}"))?;
        let prom_path = format!("{path}.prom");
        std::fs::write(&prom_path, tel.to_prometheus())
            .map_err(|e| format!("cannot write {prom_path}: {e}"))?;
        eprintln!("telemetry: wrote {path} (JSONL) and {prom_path} (Prometheus)");
        log
    } else {
        drive_transfer(&cfg)
    };
    if args.has_flag("csv") {
        println!("t_s,observed_mbs,bestcase_mbs,nc,np,startup_s");
        for e in &log.epochs {
            println!(
                "{:.0},{:.1},{:.1},{},{},{:.2}",
                (e.start + e.duration).as_secs_f64(),
                e.observed_mbs,
                e.bestcase_mbs,
                e.params.nc,
                e.params.np,
                e.startup_s
            );
        }
    } else {
        println!(
            "{} on {} under {} for {:.0} s{}:",
            tuner.name(),
            route.name(),
            load.label(),
            duration,
            faults
                .map(|p| format!(" with {p} faults"))
                .unwrap_or_default()
        );
        println!("  mean observed  {:>8.0} MB/s", log.mean_observed_mbs());
        println!(
            "  steady (last third) {:>8.0} MB/s",
            log.mean_observed_between(duration * 2.0 / 3.0, duration + 1.0)
                .unwrap_or(0.0)
        );
        println!(
            "  final params   nc={} np={}",
            log.final_nc().unwrap_or(0),
            log.final_np().unwrap_or(0)
        );
        println!(
            "  restart overhead {:>6.1} %",
            log.mean_overhead_fraction() * 100.0
        );
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let route = parse_route(args.get("route").unwrap_or("uc"))?;
    let load = ExternalLoad::new(args.get_parsed("tfr", 0u32)?, args.get_parsed("cmp", 0u32)?);
    let np = args.get_parsed("np", 8u32)?;
    let duration = args.get_parsed("duration", 120.0f64)?;
    let seed = args.get_parsed("seed", 0u64)?;

    let ncs = [1u32, 2, 4, 8, 16, 32, 64, 128, 256];
    let surface = xferopt::scenarios::throughput_surface(route, load, &ncs, &[np], duration, seed);
    let mut table = Table::new(vec!["nc", "streams", "MB/s"]);
    for c in &surface.cells {
        table.push_row(vec![
            c.nc.to_string(),
            (c.nc * c.np).to_string(),
            format!("{:.0}", c.mbs),
        ]);
    }
    println!(
        "throughput vs concurrency on {} under {} (np={np}):\n",
        route.name(),
        load.label()
    );
    println!("{}", table.to_markdown());
    if let Some(best) = surface.argmax() {
        println!("optimum: nc={} ({:.0} MB/s)", best.nc, best.mbs);
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let duration = args.get_parsed("duration", 900.0f64)?;
    let seed = args.get_parsed("seed", 0u64)?;
    let route = parse_route(args.get("route").unwrap_or("uc"))?;
    let runs = fig5(route, duration, seed);
    let mut table = Table::new(vec![
        "load",
        "tuner",
        "observed MB/s",
        "vs default",
        "final nc",
    ]);
    for s in summarize(&runs) {
        table.push_row(vec![
            s.load.label(),
            s.tuner.name().to_string(),
            format!("{:.0}", s.observed_mbs),
            if s.improvement.is_nan() {
                "-".into()
            } else {
                format!("{:.1}x", s.improvement)
            },
            s.final_nc.to_string(),
        ]);
    }
    println!("{}", table.to_markdown());
    Ok(())
}

/// `xferopt telemetry summarize --in PATH`: digest a JSONL telemetry bundle.
fn cmd_telemetry(sub: &str, args: &Args) -> Result<(), String> {
    match sub {
        "summarize" => {
            let path = args
                .get("in")
                .ok_or_else(|| "telemetry summarize needs --in PATH".to_string())?;
            let doc =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let s = summarize_telemetry(&doc);
            if s.runs + s.epochs + s.decisions + s.metric_samples == 0 {
                return Err(format!("{path}: no telemetry records found"));
            }
            print!("{}", s.to_report());
            Ok(())
        }
        other => Err(format!(
            "unknown telemetry subcommand: {other} (use summarize)"
        )),
    }
}

/// Open the `--history DIR` store (in-memory without the flag), reporting
/// malformed lines skipped while loading.
fn open_history(args: &Args) -> Result<xferopt::orchestrator::HistoryStore, String> {
    use xferopt::orchestrator::HistoryStore;
    let store = match args.get("history") {
        Some(dir) => HistoryStore::open(std::path::Path::new(dir))
            .map_err(|e| format!("cannot open history store {dir}: {e}"))?,
        None => HistoryStore::in_memory(),
    };
    if store.skipped() > 0 {
        eprintln!(
            "fleet: history store skipped {} malformed line(s)",
            store.skipped()
        );
    }
    Ok(store)
}

/// Write a fleet outcome's report and optional JSONL side-channels.
fn write_fleet_outputs(
    args: &Args,
    out: &xferopt::orchestrator::FleetOutcome,
    history: &xferopt::orchestrator::HistoryStore,
) -> Result<(), String> {
    let report = if args.has_flag("csv") {
        out.report.to_csv()
    } else {
        out.report.render()
    };
    match args.get("report-out") {
        Some(path) => {
            std::fs::write(path, &report).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("fleet: wrote report to {path}");
        }
        None => print!("{report}"),
    }
    if let Some(path) = args.get("decisions-out") {
        std::fs::write(path, &out.decisions_jsonl)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("fleet: wrote per-job tuner decisions to {path}");
    }
    if let Some(path) = args.get("telemetry-out") {
        std::fs::write(path, &out.telemetry_jsonl)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("fleet: wrote epoch telemetry to {path}");
    }
    if let Some(path) = args.get("supervision-out") {
        let doc = format!("{}{}", out.supervision_jsonl, out.metrics_jsonl);
        std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("fleet: wrote supervision events + metrics to {path}");
    }
    if args.get("history").is_some() {
        eprintln!(
            "fleet: appended {} history record(s) ({} total)",
            out.history_appended,
            history.len()
        );
    }
    Ok(())
}

/// Append one checkpoint block to the journal at `path`. The run's first
/// write truncates any stale journal left by a previous run; later writes
/// append, so a crash mid-write tears at most the newest block and `fleet
/// resume` salvages the longest intact prefix.
fn append_checkpoint(path: &str, block: &str, first: &mut bool) -> Result<(), String> {
    use std::io::Write;
    let mut opts = std::fs::OpenOptions::new();
    opts.create(true).write(true);
    if *first {
        opts.truncate(true);
    } else {
        opts.append(true);
    }
    let mut f = opts
        .open(path)
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    f.write_all(block.as_bytes())
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    *first = false;
    Ok(())
}

/// `xferopt fleet run`: drive a multi-job fleet through the orchestrator,
/// optionally under a chaos profile and/or writing periodic checkpoints.
fn cmd_fleet_run(args: &Args) -> Result<(), String> {
    use xferopt::orchestrator::{topo_workload, FleetConfig, FleetSim, TopoFleetConfig, Workload};
    use xferopt::topo::{search_routes, Planet, RouteCatalog, SearchConfig};

    let jobs = args.get_parsed("jobs", 10usize)?;
    let seed = args.get_parsed("seed", 7u64)?;
    let sites = args.get_parsed("sites", 1u32)?;
    if sites == 0 {
        return Err("--sites must be >= 1".into());
    }
    let shards = args.get_parsed("shards", 1usize)?;
    if shards == 0 {
        return Err("--shards must be >= 1".into());
    }
    let topo = match args.get("topo") {
        None => None,
        Some(name) => {
            let planet = Planet::preset(name).map_err(|e| e.to_string())?;
            let mut tc = TopoFleetConfig::preset(name);
            tc.k = args.get_parsed("topo-k", tc.k)?;
            if tc.k == 0 {
                return Err("--topo-k must be >= 1".into());
            }
            if let Some(list) = args.get("outage-region") {
                // Comma-separated region list; each index validated against
                // the planet.
                for s in list.split(',') {
                    let r: usize = s
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad value for --outage-region: {s}"))?;
                    if r >= planet.regions.len() {
                        return Err(format!(
                            "--outage-region {r} out of range ({} has {} regions)",
                            planet.name,
                            planet.regions.len()
                        ));
                    }
                    tc.outage_regions.push(r);
                }
            }
            if let Some(name) = args.get("campaign") {
                if !xferopt::topo::CAMPAIGNS.contains(&name) {
                    return Err(format!(
                        "unknown campaign: {name} (use {})",
                        xferopt::topo::CAMPAIGNS.join("|")
                    ));
                }
                if !tc.outage_regions.is_empty() {
                    return Err("--campaign scripts its own faults; drop --outage-region".into());
                }
                tc.campaign = Some(name.to_string());
            }
            tc.multipath = args.get_parsed("multipath", tc.multipath)?;
            if tc.multipath == 0 {
                return Err("--multipath must be >= 1".into());
            }
            tc.reroute = !args.has_flag("no-reroute");
            tc.selfheal = args.has_flag("selfheal");
            if tc.selfheal && !tc.reroute {
                return Err("--selfheal needs re-routing; drop --no-reroute".into());
            }
            Some(tc)
        }
    };
    if topo.is_some() && sites > 1 {
        return Err("--topo replaces --sites (regions come from the planet)".into());
    }
    let workload = match (args.get("workload").unwrap_or("synthetic"), &topo) {
        (_, Some(tc)) => {
            // A planet fleet always runs the searched-placement workload:
            // jobs round-robin the placement pairs on their rank-0 routes.
            let planet = tc.planet();
            let cfg = SearchConfig {
                k: tc.k,
                ..SearchConfig::default()
            };
            let placement = search_routes(&planet, &cfg).map_err(|e| e.to_string())?;
            let catalog = RouteCatalog::enumerate(&planet, tc.k).map_err(|e| e.to_string())?;
            topo_workload(&placement, &catalog, jobs)
        }
        ("topo", None) => return Err("--workload topo needs --topo PRESET".into()),
        ("synthetic", None) => Workload::synthetic_sites(jobs, seed, sites),
        ("contended", None) => {
            if sites > 1 {
                return Err("--sites > 1 requires --workload synthetic".into());
            }
            Workload::contended(jobs)
        }
        (other, None) => {
            return Err(format!(
                "unknown workload: {other} (use synthetic|contended|topo)"
            ))
        }
    };
    let faults = match args.get("faults") {
        None => None,
        Some(v) => Some(v.parse::<FaultProfile>()?),
    };
    if faults.is_some() && topo.is_some() {
        return Err("--topo uses --outage-region for chaos, not --faults".into());
    }
    let config = FleetConfig {
        policy: args
            .get("policy")
            .unwrap_or("fifo")
            .parse()
            .map_err(|e: String| e)?,
        seed,
        horizon_s: args.get_parsed("horizon", 3600.0f64)?,
        tick_s: args.get_parsed("tick", 5.0f64)?,
        epoch_s: args.get_parsed("epoch", 30.0f64)?,
        link_budget: args.get_parsed("budget", xferopt::orchestrator::DEFAULT_LINK_BUDGET)?,
        warm_start: !args.has_flag("cold"),
        faults,
        topo,
        dense_stepping: args.has_flag("dense"),
        ..FleetConfig::default()
    };
    let checkpoint_out = args.get("checkpoint-out").map(str::to_string);
    let checkpoint_every = args.get_parsed("checkpoint-every", 0u64)?;
    let stop_at_tick = match args.get("stop-at-tick") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("bad value for --stop-at-tick: {v}"))?,
        ),
    };
    if (checkpoint_every > 0 || stop_at_tick.is_some()) && checkpoint_out.is_none() {
        return Err("--checkpoint-every/--stop-at-tick need --checkpoint-out PATH".into());
    }

    let mut history = open_history(args)?;
    let mut first_ckpt = true;
    if shards > 1 || sites > 1 {
        // Sharded path: same stepwise checkpoint loop over the component
        // runner (byte-identical output for every --shards value).
        let mut sim =
            xferopt::orchestrator::ShardedFleetSim::new(&workload, &config, &mut history, shards);
        if checkpoint_every == 0 && stop_at_tick.is_none() {
            // No per-tick obligations: batch ticks through the worker pool
            // (one round trip per batch, byte-identical output).
            while sim.run_ticks(1024) > 0 {}
        } else {
            while sim.tick() {
                let k = sim.tick_index();
                if let Some(stop) = stop_at_tick {
                    if k >= stop {
                        break;
                    }
                }
                if checkpoint_every > 0 && k.is_multiple_of(checkpoint_every) {
                    let path = checkpoint_out.as_deref().expect("checked above");
                    append_checkpoint(path, &sim.checkpoint(), &mut first_ckpt)?;
                    eprintln!("fleet: checkpoint at tick {k} -> {path}");
                }
            }
        }
        if let Some(stop) = stop_at_tick {
            let path = checkpoint_out.as_deref().expect("checked above");
            append_checkpoint(path, &sim.checkpoint(), &mut first_ckpt)?;
            eprintln!(
                "fleet: stopped at tick {} (requested {stop}); checkpoint -> {path}",
                sim.tick_index()
            );
            return Ok(());
        }
        let out = sim.finish();
        return write_fleet_outputs(args, &out, &history);
    }
    let mut sim = FleetSim::new(&workload, &config, &mut history);
    while sim.tick() {
        let k = sim.tick_index();
        if let Some(stop) = stop_at_tick {
            if k >= stop {
                break;
            }
        }
        if checkpoint_every > 0 && k.is_multiple_of(checkpoint_every) {
            let path = checkpoint_out.as_deref().expect("checked above");
            append_checkpoint(path, &sim.checkpoint(), &mut first_ckpt)?;
            eprintln!("fleet: checkpoint at tick {k} -> {path}");
        }
    }
    if let Some(stop) = stop_at_tick {
        // Simulated crash: write the final checkpoint and exit without a
        // report (the CI crash/resume gate picks it up with `fleet resume`).
        let path = checkpoint_out.as_deref().expect("checked above");
        append_checkpoint(path, &sim.checkpoint(), &mut first_ckpt)?;
        eprintln!(
            "fleet: stopped at tick {} (requested {stop}); checkpoint -> {path}",
            sim.tick_index()
        );
        return Ok(());
    }
    let out = sim.finish();
    write_fleet_outputs(args, &out, &history)
}

/// `xferopt fleet resume`: continue a killed run from its checkpoint. The
/// replayed portion re-derives the killed run's state (verified by digest),
/// so the final report is byte-identical to an uninterrupted run.
fn cmd_fleet_resume(args: &Args) -> Result<(), String> {
    use xferopt::orchestrator::{parse_journal, resume_fleet, resume_fleet_sharded};

    let path = args
        .get("checkpoint")
        .ok_or_else(|| "fleet resume needs --checkpoint PATH".to_string())?;
    let shards = args.get_parsed("shards", 1usize)?;
    if shards == 0 {
        return Err("--shards must be >= 1".into());
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // The checkpoint file is a journal of appended blocks; a torn tail
    // (crash mid-write) falls back to the newest intact block.
    let read = parse_journal(&text).map_err(|e| format!("{path}: {e}"))?;
    let ck = read.checkpoint.clone();
    if read.salvaged() {
        eprintln!(
            "fleet: journal tail torn; dropped {} newer block(s), salvaged_ticks={}",
            read.blocks_dropped, ck.tick
        );
    }
    eprintln!(
        "fleet: resuming from {path} (tick {}, t={:.0} s, {} job(s))",
        ck.tick,
        ck.t_s,
        ck.workload.len()
    );
    let mut history = open_history(args)?;
    // Multi-site checkpoints must resume through the sharded runner (a plain
    // FleetSim simulates one site); the shard count is free to differ from
    // the killed run's because the checkpoint format is shard-independent.
    let out = if shards > 1 || ck.workload.max_site() > 0 {
        resume_fleet_sharded(&ck, &mut history, shards)?
    } else {
        resume_fleet(&ck, &mut history)?
    };
    write_fleet_outputs(args, &out, &history)
}

/// `xferopt fleet report`: digest a history store directory.
fn cmd_fleet_report(args: &Args) -> Result<(), String> {
    use xferopt::orchestrator::HistoryStore;

    let dir = args
        .get("history")
        .ok_or_else(|| "fleet report needs --history DIR".to_string())?;
    let store = HistoryStore::open(std::path::Path::new(dir))
        .map_err(|e| format!("cannot open history store {dir}: {e}"))?;
    if store.skipped() > 0 {
        return Err(format!(
            "history store {dir} is truncated or corrupt: {} malformed line(s); \
             refusing to print a partial table",
            store.skipped()
        ));
    }
    if store.is_empty() {
        return Err(format!("history store {dir} is empty: nothing to report"));
    }
    let mut table = Table::new(vec!["route", "tuner", "ext streams", "best", "MB/s"]);
    for r in store.records() {
        let best = r
            .best
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("x");
        table.push_row(vec![
            r.route.clone(),
            r.tuner.name().to_string(),
            format!("{:.0}", r.ext_streams),
            best,
            format!("{:.0}", r.achieved_mbs),
        ]);
    }
    println!("history store {dir}: {} record(s)\n", store.len());
    println!("{}", table.to_markdown());
    Ok(())
}

/// `xferopt tournament run`: sweep every tuner × scenario preset × fault
/// profile and emit the byte-deterministic leaderboard.
fn cmd_tournament_run(args: &Args) -> Result<(), String> {
    use xferopt::orchestrator::{run_tournament, ScenarioPreset, TournamentConfig};

    let mut cfg = if args.has_flag("quick") {
        TournamentConfig::quick()
    } else {
        TournamentConfig::default()
    };
    cfg.seed = args.get_parsed("seed", cfg.seed)?;
    cfg.epochs = args.get_parsed("epochs", cfg.epochs)?;
    cfg.epoch_s = args.get_parsed("epoch", cfg.epoch_s)?;
    if cfg.epochs == 0 {
        return Err("tournament needs --epochs >= 1".to_string());
    }
    if cfg.epoch_s <= 0.0 || cfg.epoch_s.is_nan() {
        return Err("tournament needs --epoch > 0".to_string());
    }
    if let Some(list) = args.get("tuners") {
        cfg.tuners = list
            .split(',')
            .map(|s| s.trim().parse::<TunerKind>())
            .collect::<Result<_, _>>()?;
    }
    if let Some(list) = args.get("scenarios") {
        cfg.scenarios = list
            .split(',')
            .map(|s| s.trim().parse::<ScenarioPreset>())
            .collect::<Result<_, _>>()?;
    }
    let mut history = open_history(args)?;
    let out = run_tournament(&cfg, &mut history);

    match args.get("report-out") {
        Some(path) => {
            std::fs::write(path, out.leaderboard.render())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("tournament: wrote leaderboard to {path}");
        }
        None => print!("{}", out.leaderboard.render()),
    }
    if let Some(path) = args.get("csv-out") {
        std::fs::write(path, out.leaderboard.to_csv())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("tournament: wrote CSV to {path}");
    }
    if let Some(path) = args.get("jsonl-out") {
        std::fs::write(path, out.leaderboard.to_jsonl())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("tournament: wrote JSONL to {path}");
    }
    if let Some(path) = args.get("decisions-out") {
        std::fs::write(path, &out.decisions_jsonl)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("tournament: wrote tuner decisions to {path}");
    }
    if args.get("history").is_some() {
        eprintln!(
            "tournament: appended {} history record(s) ({} total)",
            out.history_appended,
            history.len()
        );
    }
    Ok(())
}

/// `xferopt tournament report`: re-render a leaderboard from its JSONL dump,
/// failing loudly on empty or truncated input.
fn cmd_tournament_report(args: &Args) -> Result<(), String> {
    use xferopt::orchestrator::Leaderboard;

    let path = args
        .get("in")
        .ok_or_else(|| "tournament report needs --in PATH".to_string())?;
    let doc = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let board = Leaderboard::from_jsonl(&doc).map_err(|e| format!("{path}: {e}"))?;
    if args.has_flag("csv") {
        print!("{}", board.to_csv());
    } else {
        print!("{}", board.render());
    }
    Ok(())
}

fn cmd_tournament(sub: &str, args: &Args) -> Result<(), String> {
    match sub {
        "run" => cmd_tournament_run(args),
        "report" => cmd_tournament_report(args),
        other => Err(format!(
            "unknown tournament subcommand: {other} (use run|report)"
        )),
    }
}

fn cmd_fleet(sub: &str, args: &Args) -> Result<(), String> {
    match sub {
        "run" => cmd_fleet_run(args),
        "resume" => cmd_fleet_resume(args),
        "report" => cmd_fleet_report(args),
        other => Err(format!(
            "unknown fleet subcommand: {other} (use run|resume|report)"
        )),
    }
}

/// `xferopt routes search`: offline route/config search over a planet.
/// Renders the leaderboard to stdout and (with `--out`) writes the
/// byte-deterministic placement table JSONL the fleet consumes.
fn cmd_routes_search(args: &Args) -> Result<(), String> {
    use xferopt::topo::{search_routes, Planet, SearchConfig};

    let planet = match args.get("dat") {
        Some(path) => {
            if args.get("preset").is_some() {
                return Err("--dat and --preset are mutually exclusive".into());
            }
            let doc =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Planet::from_dat(&doc).map_err(|e| format!("{path}: {e}"))?
        }
        None => Planet::preset(args.get("preset").unwrap_or("mesh")).map_err(|e| e.to_string())?,
    };
    let defaults = SearchConfig::default();
    let nc_grid = match args.get("nc-grid") {
        None => defaults.nc_grid.clone(),
        Some(spec) => spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<u32>()
                    .map_err(|_| format!("bad value in --nc-grid: {s}"))
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    if nc_grid.is_empty() {
        return Err("--nc-grid must name at least one concurrency".into());
    }
    let cfg = SearchConfig {
        k: args.get_parsed("k", defaults.k)?,
        nc_grid,
        np: args.get_parsed("np", defaults.np)?,
        passes: args.get_parsed("passes", defaults.passes)?,
    };
    if cfg.k == 0 {
        return Err("--k must be >= 1".into());
    }
    let table = search_routes(&planet, &cfg).map_err(|e| e.to_string())?;
    print!("{}", table.render());
    if let Some(out) = args.get("out") {
        std::fs::write(out, table.to_jsonl()).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("routes: placement table -> {out}");
    }
    Ok(())
}

fn cmd_routes(sub: &str, args: &Args) -> Result<(), String> {
    match sub {
        "search" => cmd_routes_search(args),
        other => Err(format!("unknown routes subcommand: {other} (use search)")),
    }
}

/// `xferopt chaos run`: drive a scripted multi-phase fault campaign across
/// control-plane variants and seeds, emitting the byte-deterministic
/// resilience scorecard (DESIGN.md §17).
fn cmd_chaos_run(args: &Args) -> Result<(), String> {
    use xferopt::orchestrator::{run_campaign, CampaignConfig};

    let campaign = args.get("campaign").ok_or_else(|| {
        format!(
            "chaos run needs --campaign NAME (use {})",
            xferopt::topo::CAMPAIGNS.join("|")
        )
    })?;
    let defaults = CampaignConfig::default();
    let nseeds = args.get_parsed("seeds", 1u64)?;
    if nseeds == 0 {
        return Err("--seeds must be >= 1".into());
    }
    let seed0 = args.get_parsed("seed", 7u64)?;
    let cfg = CampaignConfig {
        campaign: campaign.to_string(),
        preset: args.get("preset").unwrap_or(&defaults.preset).to_string(),
        jobs: args.get_parsed("jobs", defaults.jobs)?,
        seeds: (0..nseeds).map(|i| seed0 + i).collect(),
        horizon_s: args.get_parsed("horizon", defaults.horizon_s)?,
        shards: args.get_parsed("shards", defaults.shards)?,
    };
    if cfg.shards == 0 {
        return Err("--shards must be >= 1".into());
    }
    let out = run_campaign(&cfg)?;
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &out.scorecard)
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("chaos: wrote scorecard to {path}");
        }
        None => print!("{}", out.scorecard),
    }
    Ok(())
}

fn cmd_chaos(sub: &str, args: &Args) -> Result<(), String> {
    match sub {
        "run" => cmd_chaos_run(args),
        other => Err(format!("unknown chaos subcommand: {other} (use run)")),
    }
}

fn usage() -> &'static str {
    "usage: xferopt <run|sweep|compare|telemetry|fleet|routes|chaos|tournament> [--flags]\n\
     run:     --route uc|tacc --tuner default|cd|cs|nm|heur1|heur2 --dims nc|ncnp\n\
     \u{20}        --np N --tfr N --cmp N --duration S --epoch S --seed N --csv\n\
     \u{20}        --faults flaky-link|degraded-wan|lossy-tacc\n\
     \u{20}        --telemetry-out PATH   (writes PATH JSONL + PATH.prom)\n\
     sweep:   --route uc|tacc --tfr N --cmp N --np N --duration S --seed N\n\
     compare: --route uc|tacc --duration S --seed N\n\
     telemetry summarize: --in PATH\n\
     fleet run:    --jobs N --policy fifo|sjf|wfair --seed N\n\
     \u{20}            --workload synthetic|contended --horizon S --epoch S --tick S\n\
     \u{20}            --sites K --shards N   (component-sharded parallel run)\n\
     \u{20}            --budget STREAMS --history DIR --cold --csv\n\
     \u{20}            --faults flaky-link|degraded-wan|lossy-tacc\n\
     \u{20}            --report-out PATH --decisions-out PATH --telemetry-out PATH\n\
     \u{20}            --supervision-out PATH\n\
     \u{20}            --checkpoint-out PATH --checkpoint-every TICKS\n\
     \u{20}            --stop-at-tick K   (simulate a crash; resume later)\n\
     \u{20}            --topo mesh|hub-spoke|asymmetric --topo-k K\n\
     \u{20}            --outage-region R[,R...] --campaign NAME --multipath M\n\
     \u{20}            --no-reroute --selfheal   (self-healing control plane)\n\
     \u{20}            --dense   (disable quiet-tick skip-ahead; byte-identical)\n\
     fleet resume: --checkpoint PATH [--shards N] [--history DIR + fleet-run output flags]\n\
     fleet report: --history DIR\n\
     routes search: --preset mesh|hub-spoke|asymmetric | --dat FILE\n\
     \u{20}             --k N --nc-grid 4,8,... --np N --passes N --out PATH\n\
     chaos run: --campaign rolling-outage|flapping-links|nic-degrade\n\
     \u{20}         --preset NAME --jobs N --seed N --seeds COUNT --horizon S\n\
     \u{20}         --shards N --out PATH   (byte-deterministic scorecard)\n\
     tournament run:    --quick --seed N --epochs N --epoch S\n\
     \u{20}                 --tuners a,b,... --scenarios uc-quiet,uc-contended,tacc-mixed\n\
     \u{20}                 --history DIR --report-out PATH --csv-out PATH\n\
     \u{20}                 --jsonl-out PATH --decisions-out PATH\n\
     tournament report: --in PATH [--csv]"
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "telemetry" => match rest.split_first() {
            Some((sub, rest2)) => Args::parse(rest2).and_then(|args| cmd_telemetry(sub, &args)),
            None => Err(format!("telemetry needs a subcommand\n{}", usage())),
        },
        "fleet" => match rest.split_first() {
            Some((sub, rest2)) => Args::parse(rest2).and_then(|args| cmd_fleet(sub, &args)),
            None => Err(format!("fleet needs a subcommand\n{}", usage())),
        },
        "routes" => match rest.split_first() {
            Some((sub, rest2)) => Args::parse(rest2).and_then(|args| cmd_routes(sub, &args)),
            None => Err(format!("routes needs a subcommand\n{}", usage())),
        },
        "chaos" => match rest.split_first() {
            Some((sub, rest2)) => Args::parse(rest2).and_then(|args| cmd_chaos(sub, &args)),
            None => Err(format!("chaos needs a subcommand\n{}", usage())),
        },
        "tournament" => match rest.split_first() {
            Some((sub, rest2)) => Args::parse(rest2).and_then(|args| cmd_tournament(sub, &args)),
            None => Err(format!("tournament needs a subcommand\n{}", usage())),
        },
        _ => Args::parse(rest).and_then(|args| match cmd.as_str() {
            "run" => cmd_run(&args),
            "sweep" => cmd_sweep(&args),
            "compare" => cmd_compare(&args),
            other => Err(format!("unknown command: {other}\n{}", usage())),
        }),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(raw: &[&str]) -> Args {
        Args::parse(&raw.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = args(&["--route", "uc", "--csv", "--seed", "7"]);
        assert_eq!(a.get("route"), Some("uc"));
        assert_eq!(a.get_parsed("seed", 0u64).unwrap(), 7);
        assert!(a.has_flag("csv"));
        assert!(!a.has_flag("quiet"));
        assert_eq!(a.get("missing"), None);
        assert_eq!(a.get_parsed("missing", 42u32).unwrap(), 42);
    }

    #[test]
    fn later_pairs_win() {
        let a = args(&["--seed", "1", "--seed", "2"]);
        assert_eq!(a.get("seed"), Some("2"));
    }

    #[test]
    fn rejects_positional_arguments() {
        let raw = vec!["oops".to_string()];
        assert!(Args::parse(&raw).is_err());
    }

    #[test]
    fn rejects_bad_values() {
        let a = args(&["--seed", "xyz"]);
        assert!(a.get_parsed("seed", 0u64).is_err());
    }

    #[test]
    fn route_parsing() {
        assert_eq!(parse_route("uc").unwrap(), Route::UChicago);
        assert_eq!(parse_route("uchicago").unwrap(), Route::UChicago);
        assert_eq!(parse_route("tacc").unwrap(), Route::Tacc);
        assert!(parse_route("mars").is_err());
    }
}
