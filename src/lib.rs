//! # xferopt — direct-search optimization of data-transfer throughput
//!
//! A Rust reproduction of *"Improving Data Transfer Throughput with Direct
//! Search Optimization"* (Balaprakash, Morozov, Kettimuthu, Kumaran, Foster —
//! ICPP 2016): tune the number of parallel TCP streams of a wide-area
//! transfer **online**, with direct search methods that observe nothing but
//! the throughput of each 30-second control epoch.
//!
//! The workspace provides:
//!
//! * [`tuners`] — the paper's contribution: coordinate-descent
//!   ([`tuners::CdTuner`]), compass-search ([`tuners::CompassTuner`]) and
//!   Nelder–Mead ([`tuners::NelderMeadTuner`]) online tuners over bounded
//!   integer domains, plus the baselines it compares against and an offline
//!   driver that turns them into general black-box maximizers.
//! * [`net`] — a fluid WAN simulator: AIMD congestion models (Reno, CUBIC,
//!   H-TCP, Scalable), max–min fair bandwidth sharing, per-stream dynamic
//!   window simulation.
//! * [`host`] — an endpoint model: fair-share CPU scheduling against compute
//!   hogs, context-switch overhead, process restart costs.
//! * [`transfer`] — the GridFTP-style harness binding net + host into a
//!   steppable [`transfer::World`] with control-epoch accounting.
//! * [`scenarios`] — the paper's testbed topology, load schedules, tuning
//!   driver, and one function per figure/table of the evaluation.
//! * [`orchestrator`] — a multi-tenant fleet layer: deterministic job
//!   queue, admission control under per-link stream budgets
//!   (FIFO / shortest-job-first / weighted-fair policies), one online tuner
//!   per admitted job sharing the simulated links, and a persistent JSONL
//!   history store that warm-starts new jobs from the nearest historical
//!   match (`xferopt fleet run`).
//! * [`topo`] — planet-scale multi-region topology: N-region RTT/capacity/
//!   loss planets (presets + `.dat` loader), k-shortest-path route
//!   enumeration, and a deterministic offline route/config search emitting
//!   byte-stable placement tables the fleet consumes (`xferopt routes
//!   search`, `xferopt fleet run --topo`).
//! * [`loopback`] — a real-TCP localhost harness (shaped sockets + CPU hogs)
//!   so the same tuners can run against a non-simulated objective.
//! * [`simcore`] — the discrete-event substrate: simulated time, event
//!   queues, splittable RNG streams, online statistics, deterministic
//!   fault-injection plans ([`simcore::FaultPlan`]) with retry/backoff
//!   handling in the transfer world, and the structured metrics layer
//!   ([`simcore::MetricsRegistry`]: counters, gauges, log-bucket histograms
//!   with mergeable, byte-deterministic snapshots).
//!
//! The workspace ships a flight recorder on top: per-epoch telemetry in the
//! transfer [`transfer::World`] ([`transfer::WorldTelemetry`]), a typed
//! decision audit log in the tuners ([`tuners::AuditLog`]), and the
//! scenario-level bundle ([`scenarios::RunTelemetry`]) that the `xferopt run
//! --telemetry-out` CLI writes as JSONL + Prometheus text (digestible with
//! `xferopt telemetry summarize`). Telemetry is strictly observational: an
//! instrumented run reproduces the uninstrumented run byte for byte.
//!
//! ## Quickstart
//!
//! ```
//! use xferopt::prelude::*;
//!
//! // Tune concurrency on the simulated ANL->UChicago link under compute
//! // load, with the paper's hyper-parameters (e=30 s, eps=5%, lambda=8).
//! let cfg = DriveConfig::paper(
//!     Route::UChicago,
//!     TunerKind::Nm,
//!     TuneDims::NcOnly { np: 8 },
//!     LoadSchedule::constant(ExternalLoad::new(0, 16)),
//! )
//! .with_duration_s(600.0);
//! let log = drive_transfer(&cfg);
//! println!(
//!     "moved {:.0} MB at {:.0} MB/s, final nc = {}",
//!     log.total_mb(),
//!     log.mean_observed_mbs(),
//!     log.final_nc().unwrap()
//! );
//! ```
//!
//! See `examples/` for more: adapting to load changes, simultaneous tuned
//! transfers sharing a NIC, offline black-box optimization, and the real-TCP
//! loopback harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use xferopt_dataset as dataset;
pub use xferopt_gridftp as gridftp;
pub use xferopt_host as host;
pub use xferopt_loopback as loopback;
pub use xferopt_net as net;
pub use xferopt_orchestrator as orchestrator;
pub use xferopt_scenarios as scenarios;
pub use xferopt_simcore as simcore;
pub use xferopt_topo as topo;
pub use xferopt_transfer as transfer;
pub use xferopt_tuners as tuners;

/// The most common imports in one place.
pub mod prelude {
    pub use xferopt_orchestrator::{
        run_fleet, AdmissionController, FleetConfig, FleetReport, HistoryStore, JobSpec, Policy,
        Workload,
    };
    pub use xferopt_scenarios::driver::{
        drive_transfer, DriveConfig, MultiDriver, MultiSpec, TuneDims,
    };
    pub use xferopt_scenarios::telemetry::{
        drive_transfer_with_telemetry, summarize_telemetry, RunTelemetry, TelemetrySummary,
    };
    pub use xferopt_scenarios::{ExternalLoad, FaultProfile, LoadSchedule, PaperWorld, Route};
    pub use xferopt_simcore::{
        FaultEvent, FaultKind, FaultPlan, MetricsRegistry, MetricsSnapshot, SimDuration, SimTime,
    };
    pub use xferopt_transfer::{
        RetryPolicy, StreamParams, TransferConfig, TransferLog, World, WorldTelemetry,
    };
    pub use xferopt_tuners::{
        AuditLog, CdTuner, CompassTuner, DecisionAction, DecisionEvent, Domain, Heur1Tuner,
        Heur2Tuner, NelderMeadTuner, OnlineTuner, Point, RetriggerCause, StaticTuner, TunerKind,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reexports() {
        use crate::prelude::*;
        let d = Domain::paper_nc();
        assert_eq!(d.dim(), 1);
        let p = StreamParams::globus_default();
        assert_eq!(p.streams(), 16);
        assert_eq!(Route::Tacc.name(), "anl->tacc");
    }
}
