//! Per-link route circuit breakers (DESIGN.md §12).
//!
//! Watchdog quarantines and transfer aborts are *failure signals* about the
//! links a job was running on. Each link carries a [`RouteBreaker`] with the
//! classic three-state machine:
//!
//! ```text
//!             failures ≥ threshold
//!   Closed ──────────────────────────▶ Open
//!      ▲                                │ cooldown elapses
//!      │ probe succeeds                 ▼
//!      └──────────────────────────  HalfOpen ──probe fails──▶ Open
//!                                                    (cooldown doubles, capped)
//! ```
//!
//! * **Closed** — the link admits jobs normally. Failures within the sliding
//!   window accumulate; hitting the threshold trips the breaker.
//! * **Open** — admission refuses every job whose route crosses the link
//!   until the cooldown elapses. Queued jobs wait (or are shed by the fleet
//!   under sustained pressure); nothing panics.
//! * **HalfOpen** — exactly one probe job is admitted, with its grant shrunk
//!   by [`BreakerConfig::half_open_grant_factor`]. A completion (or a healthy
//!   re-quarantine-free epoch run) re-closes the breaker and resets the
//!   cooldown; another failure re-opens it with a doubled cooldown, capped at
//!   [`BreakerConfig::max_cooldown_s`] — so oscillation is rate-limited and
//!   the breaker always re-closes under sustained recovery (proptested).
//!
//! The [`AdmissionController`](crate::AdmissionController) consults the
//! [`BreakerBoard`] via `try_admit_gated`; everything here is deterministic
//! pure state driven by fleet time.

/// Thresholds and cooldowns for one link's circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Failures within [`BreakerConfig::failure_window_s`] that trip the
    /// breaker.
    pub failure_threshold: u32,
    /// Sliding window over which failures are counted, seconds.
    pub failure_window_s: f64,
    /// Initial open-state cooldown, seconds.
    pub cooldown_s: f64,
    /// Cooldown multiplier applied on every half-open probe failure.
    pub cooldown_factor: f64,
    /// Hard cap on the cooldown, seconds (bounds oscillation period).
    pub max_cooldown_s: f64,
    /// Grant shrink factor applied to jobs admitted through a half-open
    /// breaker (the probe runs on a reduced stream reservation).
    pub half_open_grant_factor: f64,
}

impl Default for BreakerConfig {
    /// Three failures in five minutes trip the breaker for 60 s; failed
    /// probes double the cooldown up to eight minutes; half-open probes get
    /// half their requested streams.
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            failure_window_s: 300.0,
            cooldown_s: 60.0,
            cooldown_factor: 2.0,
            max_cooldown_s: 480.0,
            half_open_grant_factor: 0.5,
        }
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Admitting normally.
    Closed,
    /// Refusing all admissions until the cooldown elapses.
    Open,
    /// Admitting exactly one shrunken probe.
    HalfOpen,
}

impl BreakerState {
    /// Stable label for events, digests, and reports.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Circuit breaker for one link.
#[derive(Debug, Clone)]
pub struct RouteBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Timestamps of recent failures (pruned to the sliding window).
    failures: Vec<f64>,
    /// Current cooldown (doubles on probe failure, resets on close).
    cooldown_s: f64,
    /// When the open state ends (valid while `Open`).
    open_until_t: f64,
    /// When the breaker last opened (for sustained-pressure shedding).
    open_since_t: f64,
    /// A half-open probe has been admitted and is still in flight.
    probe_inflight: bool,
    /// Closed→open transitions over the breaker's lifetime.
    trips: u64,
}

impl RouteBreaker {
    /// A closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        assert!(cfg.failure_threshold >= 1, "threshold must be >= 1");
        assert!(cfg.cooldown_factor >= 1.0, "cooldown must not shrink");
        assert!(
            cfg.max_cooldown_s >= cfg.cooldown_s,
            "cooldown cap below initial cooldown"
        );
        RouteBreaker {
            cfg,
            state: BreakerState::Closed,
            failures: Vec::new(),
            cooldown_s: cfg.cooldown_s,
            open_until_t: 0.0,
            open_since_t: 0.0,
            probe_inflight: false,
            trips: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Lifetime closed→open transitions.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Failures currently inside the sliding window.
    pub fn failure_count(&self) -> usize {
        self.failures.len()
    }

    /// Seconds the breaker has been continuously non-closed (0 when closed).
    /// Used by the fleet's sustained-pressure shedding.
    pub fn unhealthy_for_s(&self, t_s: f64) -> f64 {
        if self.state == BreakerState::Closed {
            0.0
        } else {
            (t_s - self.open_since_t).max(0.0)
        }
    }

    /// Deterministic one-line digest of the breaker's state (for the fleet
    /// checkpoint digest).
    pub fn digest(&self) -> String {
        format!(
            "{}:f{}:cd{}:u{}:p{}:t{}",
            self.state.name(),
            self.failures.len(),
            self.cooldown_s,
            self.open_until_t,
            u8::from(self.probe_inflight),
            self.trips,
        )
    }

    fn prune(&mut self, t_s: f64) {
        let cutoff = t_s - self.cfg.failure_window_s;
        self.failures.retain(|&f| f > cutoff);
    }

    /// Advance fleet time; returns `Some("breaker-half-open")` when the
    /// cooldown elapses and the breaker starts probing.
    pub fn tick(&mut self, t_s: f64) -> Option<&'static str> {
        if self.state == BreakerState::Open && t_s >= self.open_until_t {
            self.state = BreakerState::HalfOpen;
            self.probe_inflight = false;
            return Some("breaker-half-open");
        }
        None
    }

    /// Record a failure signal (quarantine or abort observed on this link).
    /// Returns the transition label when the state changes.
    pub fn on_failure(&mut self, t_s: f64) -> Option<&'static str> {
        match self.state {
            BreakerState::Closed => {
                self.prune(t_s);
                self.failures.push(t_s);
                if self.failures.len() as u32 >= self.cfg.failure_threshold {
                    self.state = BreakerState::Open;
                    self.open_until_t = t_s + self.cooldown_s;
                    self.open_since_t = t_s;
                    self.failures.clear();
                    self.trips += 1;
                    Some("breaker-open")
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                // Probe failed: reopen with a doubled (capped) cooldown.
                self.cooldown_s =
                    (self.cooldown_s * self.cfg.cooldown_factor).min(self.cfg.max_cooldown_s);
                self.state = BreakerState::Open;
                self.open_until_t = t_s + self.cooldown_s;
                self.probe_inflight = false;
                Some("breaker-open")
            }
            // Already open: the failure is old news.
            BreakerState::Open => None,
        }
    }

    /// Record a success signal (a job completed over this link). Returns the
    /// transition label when a half-open probe re-closes the breaker.
    pub fn on_success(&mut self, _t_s: f64) -> Option<&'static str> {
        match self.state {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Closed;
                self.cooldown_s = self.cfg.cooldown_s;
                self.failures.clear();
                self.probe_inflight = false;
                Some("breaker-close")
            }
            BreakerState::Closed => {
                // Recovery evidence: forget old failures.
                self.failures.clear();
                None
            }
            BreakerState::Open => None,
        }
    }

    /// Whether admission may place a job on this link right now.
    pub fn admits(&self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => !self.probe_inflight,
        }
    }

    /// Grant shrink factor for a job admitted right now.
    pub fn grant_factor(&self) -> f64 {
        match self.state {
            BreakerState::Closed => 1.0,
            BreakerState::Open => 0.0,
            BreakerState::HalfOpen => self.cfg.half_open_grant_factor,
        }
    }

    /// Mark the half-open probe as in flight (call after admitting through a
    /// half-open breaker).
    pub fn mark_probe(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.probe_inflight = true;
        }
    }
}

/// All link breakers of a fleet, indexed by raw link index.
#[derive(Debug, Clone)]
pub struct BreakerBoard {
    breakers: Vec<RouteBreaker>,
}

impl BreakerBoard {
    /// A board of `links` closed breakers.
    pub fn new(links: usize, cfg: BreakerConfig) -> Self {
        BreakerBoard {
            breakers: (0..links).map(|_| RouteBreaker::new(cfg)).collect(),
        }
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.breakers.len()
    }

    /// True when the board has no breakers.
    pub fn is_empty(&self) -> bool {
        self.breakers.is_empty()
    }

    /// The breaker on `link`.
    pub fn breaker(&self, link: usize) -> &RouteBreaker {
        &self.breakers[link]
    }

    /// Advance all breakers; returns `(link, transition)` for every state
    /// change, in link order.
    pub fn tick(&mut self, t_s: f64) -> Vec<(usize, &'static str)> {
        let mut out = Vec::new();
        for (l, b) in self.breakers.iter_mut().enumerate() {
            if let Some(tr) = b.tick(t_s) {
                out.push((l, tr));
            }
        }
        out
    }

    /// Record a failure on `link`; returns the transition label, if any.
    pub fn on_failure(&mut self, link: usize, t_s: f64) -> Option<&'static str> {
        self.breakers[link].on_failure(t_s)
    }

    /// Record a success on `link`; returns the transition label, if any.
    pub fn on_success(&mut self, link: usize, t_s: f64) -> Option<&'static str> {
        self.breakers[link].on_success(t_s)
    }

    /// Whether every breaker on the route admits a job right now.
    pub fn route_admits(&self, links: &[usize]) -> bool {
        links.iter().all(|&l| self.breakers[l].admits())
    }

    /// Combined (minimum) grant factor across the route's links.
    pub fn route_grant_factor(&self, links: &[usize]) -> f64 {
        links
            .iter()
            .map(|&l| self.breakers[l].grant_factor())
            .fold(1.0, f64::min)
    }

    /// Mark half-open probes in flight on every half-open link of the route.
    pub fn mark_probe(&mut self, links: &[usize]) {
        for &l in links {
            self.breakers[l].mark_probe();
        }
    }

    /// Links whose breaker is currently open (not admitting), ascending —
    /// the self-healing governor feeds these into its fault-adjusted
    /// topology alongside the SLO-degraded links, so a re-search also
    /// steers around links the breakers have independent evidence against.
    pub fn open_links(&self) -> Vec<usize> {
        self.breakers
            .iter()
            .enumerate()
            .filter(|(_, b)| b.state() == BreakerState::Open)
            .map(|(l, _)| l)
            .collect()
    }

    /// True when every breaker is closed: no cooldown can expire, nothing
    /// is shed-eligible, and `tick` is a guaranteed no-op. The fleet's
    /// skip-ahead gate uses this to prove a tick's breaker phase inert.
    pub fn all_closed(&self) -> bool {
        self.breakers
            .iter()
            .all(|b| b.state() == BreakerState::Closed)
    }

    /// Total trips across all links.
    pub fn trips(&self) -> u64 {
        self.breakers.iter().map(|b| b.trips()).sum()
    }

    /// Deterministic digest of the whole board.
    pub fn digest(&self) -> String {
        self.breakers
            .iter()
            .map(|b| b.digest())
            .collect::<Vec<_>>()
            .join("|")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn breaker() -> RouteBreaker {
        RouteBreaker::new(BreakerConfig::default())
    }

    #[test]
    fn trips_after_threshold_failures_within_window() {
        let mut b = breaker();
        assert_eq!(b.on_failure(10.0), None);
        assert_eq!(b.on_failure(20.0), None);
        assert_eq!(b.on_failure(30.0), Some("breaker-open"));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admits());
        assert_eq!(b.grant_factor(), 0.0);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn stale_failures_age_out_of_the_window() {
        let mut b = breaker();
        assert_eq!(b.on_failure(0.0), None);
        assert_eq!(b.on_failure(10.0), None);
        // 400 s later the first two are outside the 300 s window.
        assert_eq!(b.on_failure(400.0), None);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.failure_count(), 1);
    }

    #[test]
    fn cooldown_half_opens_then_success_recloses() {
        let mut b = breaker();
        for t in [0.0, 5.0, 10.0] {
            b.on_failure(t);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.tick(30.0), None, "cooldown not yet elapsed");
        assert_eq!(b.tick(70.0), Some("breaker-half-open"));
        assert!(b.admits(), "half-open admits one probe");
        assert_eq!(b.grant_factor(), 0.5);
        b.mark_probe();
        assert!(!b.admits(), "probe in flight blocks further admissions");
        assert_eq!(b.on_success(120.0), Some("breaker-close"));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.grant_factor(), 1.0);
    }

    #[test]
    fn probe_failure_doubles_the_cooldown_up_to_the_cap() {
        let cfg = BreakerConfig::default();
        let mut b = RouteBreaker::new(cfg);
        for t in [0.0, 1.0, 2.0] {
            b.on_failure(t);
        }
        let mut t = 2.0;
        let mut expected = cfg.cooldown_s;
        for _ in 0..6 {
            t += expected;
            assert_eq!(b.tick(t), Some("breaker-half-open"));
            assert_eq!(b.on_failure(t), Some("breaker-open"));
            expected = (expected * cfg.cooldown_factor).min(cfg.max_cooldown_s);
        }
        assert_eq!(b.cooldown_s, cfg.max_cooldown_s, "cooldown capped");
    }

    #[test]
    fn success_in_closed_state_forgets_failures() {
        let mut b = breaker();
        b.on_failure(0.0);
        b.on_failure(5.0);
        b.on_success(10.0);
        assert_eq!(b.failure_count(), 0);
        assert_eq!(b.on_failure(15.0), None, "counter restarted");
    }

    #[test]
    fn board_routes_and_digest() {
        let mut board = BreakerBoard::new(3, BreakerConfig::default());
        assert!(board.route_admits(&[0, 1]));
        for t in [0.0, 1.0, 2.0] {
            board.on_failure(1, t);
        }
        assert!(!board.route_admits(&[0, 1]), "route crosses the open link");
        assert!(board.route_admits(&[0, 2]), "other route unaffected");
        assert_eq!(board.route_grant_factor(&[0, 1]), 0.0);
        assert_eq!(board.trips(), 1);
        let d = board.digest();
        assert!(d.contains("open"), "digest reflects state: {d}");
        assert_eq!(d.matches('|').count(), 2);
    }

    #[test]
    fn unhealthy_duration_tracks_the_first_trip() {
        let mut b = breaker();
        assert_eq!(b.unhealthy_for_s(100.0), 0.0);
        for t in [10.0, 11.0, 12.0] {
            b.on_failure(t);
        }
        assert_eq!(b.unhealthy_for_s(100.0), 88.0);
        b.tick(72.0);
        // Still unhealthy while half-open.
        assert!(b.unhealthy_for_s(100.0) > 0.0);
        b.on_success(100.0);
        assert_eq!(b.unhealthy_for_s(120.0), 0.0);
    }

    proptest! {
        /// Under sustained recovery (only successes after some point) a
        /// breaker always re-closes within one cooldown, and stays closed.
        #[test]
        fn half_open_breaker_recloses_under_sustained_recovery(
            failures in prop::collection::vec(0f64..500.0, 0..40),
            recovery_start in 500f64..1000.0,
        ) {
            let cfg = BreakerConfig::default();
            let mut b = RouteBreaker::new(cfg);
            let mut fs = failures.clone();
            fs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for t in fs {
                b.tick(t);
                b.on_failure(t);
            }
            // Sustained recovery: tick forward and feed successes.
            let mut t = recovery_start;
            let mut closed_at = None;
            for _ in 0..2000 {
                b.tick(t);
                if b.state() == BreakerState::HalfOpen || b.state() == BreakerState::Closed {
                    b.on_success(t);
                }
                if b.state() == BreakerState::Closed {
                    closed_at = Some(t);
                    break;
                }
                t += 5.0;
            }
            let closed_at = closed_at.expect("breaker must re-close under recovery");
            // Bounded by the capped cooldown.
            prop_assert!(closed_at <= recovery_start + cfg.max_cooldown_s + 5.0);
            // And it stays closed from then on.
            for i in 0..50 {
                let tt = closed_at + i as f64 * 5.0;
                b.tick(tt);
                b.on_success(tt);
                prop_assert_eq!(b.state(), BreakerState::Closed);
            }
        }

        /// Oscillation is bounded: over any horizon, the number of trips is
        /// at most (horizon / cooldown) + threshold-driven initial trips —
        /// the breaker can never flap faster than its cooldown allows.
        #[test]
        fn breaker_never_oscillates_unboundedly(
            events in prop::collection::vec((0f64..4000.0, any::<bool>()), 1..300),
        ) {
            let cfg = BreakerConfig::default();
            let mut b = RouteBreaker::new(cfg);
            let mut evs = events.clone();
            evs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let horizon = 4000.0;
            for (t, fail) in evs {
                b.tick(t);
                if fail { b.on_failure(t); } else { b.on_success(t); }
                prop_assert!(b.cooldown_s <= cfg.max_cooldown_s);
            }
            // Each trip commits the breaker to >= cooldown_s of open time, so
            // trips over the horizon are bounded by horizon/cooldown + 1.
            let bound = (horizon / cfg.cooldown_s) as u64 + 1;
            prop_assert!(
                b.trips() <= bound,
                "{} trips exceeds bound {}", b.trips(), bound
            );
        }
    }
}
