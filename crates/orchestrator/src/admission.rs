//! Admission control: per-link stream budgets.
//!
//! Every link a route crosses (the shared source NIC, each WAN hop) has a
//! stream budget — the maximum number of TCP streams the orchestrator will
//! let admitted jobs reserve on it at once. A job asks for
//! `min(spec.max_streams, ...)` streams on every link of its route; admission
//! either grants the full reservation on all links atomically or rejects the
//! job for this tick. Routes are variable-length ([`crate::route::JobRoute`]):
//! the classic paper world crosses 2 links, a planet-catalog route crosses
//! however many hops the topology dictates.
//!
//! The reservation is a *cap*, not a commitment: the job's tuner is built over
//! a domain whose `nc × np` product cannot exceed the granted streams, so the
//! running transfer never places more streams on the wire than admission
//! granted (see DESIGN.md §11).

use crate::breaker::BreakerBoard;
use crate::job::{JobId, JobSpec};

/// Default per-link stream budget (4× the 128-stream default reservation, so
/// the golden contention scenario holds four full-size jobs per link).
pub const DEFAULT_LINK_BUDGET: u32 = 512;

/// One granted reservation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reservation {
    /// The job holding the reservation.
    pub job: JobId,
    /// Links the streams are reserved on (the job's route link list).
    pub links: Vec<usize>,
    /// Streams reserved on every link of the route.
    pub streams: u32,
}

/// Tracks per-link stream budgets and outstanding reservations.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    /// Budget per link index.
    budgets: Vec<u32>,
    /// Streams currently reserved per link index.
    reserved: Vec<u32>,
    /// Outstanding reservations, in admission order.
    grants: Vec<Reservation>,
}

impl AdmissionController {
    /// A controller with the same `budget` on every one of `links` links.
    pub fn uniform(links: usize, budget: u32) -> Self {
        assert!(budget >= 1, "budget must admit at least one stream");
        AdmissionController {
            budgets: vec![budget; links],
            reserved: vec![0; links],
            grants: Vec::new(),
        }
    }

    /// A controller for the paper world (3 links) with `budget` streams each.
    pub fn paper(budget: u32) -> Self {
        AdmissionController::uniform(3, budget)
    }

    /// Streams still available on `link`.
    pub fn available(&self, link: usize) -> u32 {
        self.budgets[link] - self.reserved[link]
    }

    /// Streams currently reserved on `link`.
    pub fn reserved(&self, link: usize) -> u32 {
        self.reserved[link]
    }

    /// The budget configured for `link`.
    pub fn budget(&self, link: usize) -> u32 {
        self.budgets[link]
    }

    /// Streams a job would be granted right now: the smallest of its
    /// requested reservation and the tightest available link on its route.
    /// Zero means it cannot be admitted this tick.
    pub fn grantable(&self, spec: &JobSpec) -> u32 {
        let avail = spec
            .route
            .links()
            .iter()
            .map(|&l| self.available(l))
            .min()
            .unwrap_or(0);
        spec.max_streams.min(avail)
    }

    /// Try to admit `spec`. Grants `min(spec.max_streams, available)` streams
    /// on every link of the route, but only when at least `spec.np` streams
    /// fit (a reservation smaller than one stream per process is useless).
    /// Returns the reservation on success.
    pub fn try_admit(&mut self, spec: &JobSpec) -> Option<Reservation> {
        let streams = self.grantable(spec);
        self.admit_streams(spec, streams)
    }

    /// Try to admit `spec` through the route's circuit breakers (DESIGN.md
    /// §12): an open breaker on any link of the route denies admission
    /// outright; a half-open breaker shrinks the grant by its probe factor
    /// and the admitted job is marked as the breaker's single in-flight
    /// probe. With all breakers closed this is exactly [`Self::try_admit`].
    pub fn try_admit_gated(
        &mut self,
        spec: &JobSpec,
        board: &mut BreakerBoard,
    ) -> Option<Reservation> {
        if !board.route_admits(spec.route.links()) {
            return None;
        }
        let factor = board.route_grant_factor(spec.route.links());
        let cap = ((spec.max_streams as f64) * factor).floor() as u32;
        let streams = self.grantable(spec).min(cap);
        let r = self.admit_streams(spec, streams)?;
        board.mark_probe(spec.route.links());
        Some(r)
    }

    /// Reserve `streams` on every link of the spec's route, refusing grants
    /// smaller than one stream per process.
    fn admit_streams(&mut self, spec: &JobSpec, streams: u32) -> Option<Reservation> {
        if streams < spec.np.max(1) {
            return None;
        }
        for &l in spec.route.links() {
            self.reserved[l] += streams;
        }
        let r = Reservation {
            job: spec.id,
            links: spec.route.links().to_vec(),
            streams,
        };
        self.grants.push(r.clone());
        Some(r)
    }

    /// Release a job's reservation (on completion or at the horizon).
    ///
    /// # Panics
    /// Panics if the job holds no reservation.
    pub fn release(&mut self, job: JobId) {
        let idx = self
            .grants
            .iter()
            .position(|g| g.job == job)
            .unwrap_or_else(|| panic!("{job} holds no reservation"));
        let g = self.grants.remove(idx);
        for &l in &g.links {
            debug_assert!(self.reserved[l] >= g.streams);
            self.reserved[l] -= g.streams;
        }
    }

    /// Outstanding reservations, in admission order.
    pub fn grants(&self) -> &[Reservation] {
        &self.grants
    }

    /// True when no link is oversubscribed (internal invariant; exercised by
    /// the property test).
    pub fn within_budget(&self) -> bool {
        self.reserved.iter().zip(&self.budgets).all(|(r, b)| r <= b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use xferopt_scenarios::Route;

    #[test]
    fn admits_until_the_tightest_link_is_full() {
        let mut ac = AdmissionController::paper(256);
        // Two 128-stream UChicago jobs fill the NIC and the UC WAN.
        let a = JobSpec::new(0, 0.0, 100.0);
        let b = JobSpec::new(1, 0.0, 100.0);
        let c = JobSpec::new(2, 0.0, 100.0);
        assert_eq!(ac.try_admit(&a).unwrap().streams, 128);
        assert_eq!(ac.try_admit(&b).unwrap().streams, 128);
        // The NIC is exhausted, so even a TACC job is refused.
        let t = JobSpec::new(3, 0.0, 100.0).with_route(Route::Tacc);
        assert!(ac.try_admit(&t).is_none());
        assert!(ac.try_admit(&c).is_none());
        // Releasing one frees both links.
        ac.release(JobId(0));
        assert_eq!(ac.try_admit(&c).unwrap().streams, 128);
        assert!(ac.within_budget());
    }

    #[test]
    fn partial_grants_shrink_to_the_available_headroom() {
        let mut ac = AdmissionController::paper(160);
        let a = JobSpec::new(0, 0.0, 100.0);
        assert_eq!(ac.try_admit(&a).unwrap().streams, 128);
        // 32 streams left; np=8 fits, so a partial grant of 32 is made.
        let b = JobSpec::new(1, 0.0, 100.0);
        assert_eq!(ac.try_admit(&b).unwrap().streams, 32);
        // 0 left: refuse.
        assert!(ac.try_admit(&JobSpec::new(2, 0.0, 100.0)).is_none());
    }

    #[test]
    fn reservations_below_np_are_refused() {
        let mut ac = AdmissionController::paper(4);
        let a = JobSpec::new(0, 0.0, 100.0).with_np(8);
        assert!(ac.try_admit(&a).is_none(), "4 < np=8 must be refused");
        let b = JobSpec::new(1, 0.0, 100.0).with_np(4).with_max_streams(4);
        assert_eq!(ac.try_admit(&b).unwrap().streams, 4);
    }

    #[test]
    fn multi_hop_routes_reserve_every_link() {
        use crate::route::JobRoute;
        let mut ac = AdmissionController::uniform(6, 100);
        let spec = JobSpec::new(0, 0.0, 100.0)
            .with_route(JobRoute::new("a->b:0", vec![0, 3, 5], 0))
            .with_max_streams(64);
        let g = ac.try_admit(&spec).unwrap();
        assert_eq!(g.streams, 64);
        assert_eq!(g.links, vec![0, 3, 5]);
        for l in [0, 3, 5] {
            assert_eq!(ac.reserved(l), 64);
        }
        for l in [1, 2, 4] {
            assert_eq!(ac.reserved(l), 0);
        }
        // The tightest hop of the route caps the grant.
        let tight = JobSpec::new(1, 0.0, 100.0)
            .with_route(JobRoute::new("a->b:1", vec![1, 3], 1))
            .with_max_streams(64)
            .with_np(8);
        assert_eq!(ac.try_admit(&tight).unwrap().streams, 36);
        ac.release(JobId(0));
        ac.release(JobId(1));
        for l in 0..6 {
            assert_eq!(ac.reserved(l), 0);
        }
    }

    #[test]
    #[should_panic(expected = "holds no reservation")]
    fn double_release_panics() {
        let mut ac = AdmissionController::paper(256);
        ac.try_admit(&JobSpec::new(0, 0.0, 100.0)).unwrap();
        ac.release(JobId(0));
        ac.release(JobId(0));
    }

    proptest! {
        /// Under any interleaving of admits and releases, no link ever
        /// exceeds its budget and every grant is within the job's request.
        #[test]
        fn admission_never_oversubscribes(
            budget in 8u32..512,
            ops in prop::collection::vec((0u64..24, 1u32..300, any::<bool>(), any::<bool>()), 1..80)
        ) {
            let mut ac = AdmissionController::paper(budget);
            let mut held: Vec<JobId> = Vec::new();
            for (next_id, (seedish, max_streams, tacc, release_first)) in
                ops.into_iter().enumerate()
            {
                if release_first && !held.is_empty() {
                    let idx = (seedish as usize) % held.len();
                    let job = held.remove(idx);
                    ac.release(job);
                    prop_assert!(ac.within_budget());
                }
                let route = if tacc { Route::Tacc } else { Route::UChicago };
                let spec = JobSpec::new(next_id as u64, 0.0, 100.0)
                    .with_route(route)
                    .with_np(1)
                    .with_max_streams(max_streams);
                if let Some(g) = ac.try_admit(&spec) {
                    prop_assert!(g.streams >= 1);
                    prop_assert!(g.streams <= max_streams);
                    held.push(g.job);
                }
                prop_assert!(ac.within_budget());
                for l in 0..3 {
                    prop_assert!(ac.reserved(l) <= ac.budget(l));
                }
            }
            // Releasing everything restores a clean slate.
            for job in held {
                ac.release(job);
            }
            for l in 0..3 {
                prop_assert_eq!(ac.reserved(l), 0);
            }
        }
    }
}
