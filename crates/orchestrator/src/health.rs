//! Per-job health watchdogs (DESIGN.md §12).
//!
//! Every admitted job gets a [`HealthMonitor`] fed with one sample per
//! closed control epoch. The monitor tracks two failure signals:
//!
//! * **zero-throughput epochs** — consecutive epochs in which the transfer
//!   moved (essentially) nothing, the signature of a flapped link, a stalled
//!   server, or an abort/backoff loop that outlives the epoch; and
//! * **throughput collapse** — the observed rate falling below a small
//!   fraction of the job's *own* trailing mean, which catches brown-outs
//!   that never quite reach zero.
//!
//! Verdicts drive the extended job state machine
//!
//! ```text
//! Running ──degrade──▶ Degraded ──persist──▶ Quarantined ──backoff──▶ Requeued
//!    ▲                    │                      │
//!    └──────recover───────┘                      └──attempt budget──▶ Failed
//! ```
//!
//! Quarantine releases the job's admission grant (so a sick job never camps
//! on link budget) and schedules a requeue after a
//! [`xferopt_transfer::RetryPolicy`] exponential backoff — the *same* policy
//! type the transfer layer uses for abort retries, not a second
//! implementation. Thresholds are deliberately conservative: with supervision
//! enabled and no fault plan, epoch noise and fleet contention never trip the
//! watchdog, so fleet reports stay byte-identical to unsupervised runs
//! (enforced by the golden snapshots).

use xferopt_transfer::RetryPolicy;

/// Thresholds for the per-job watchdog and the requeue budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Consecutive zero-throughput epochs before quarantine.
    pub zero_epoch_limit: u32,
    /// An epoch below `collapse_ratio × trailing_mean` counts as collapsed.
    pub collapse_ratio: f64,
    /// Consecutive collapsed epochs before quarantine.
    pub collapse_epoch_limit: u32,
    /// Trailing-mean window, in epochs.
    pub window: usize,
    /// Throughput below this absolute floor (MB/s) counts as zero.
    pub zero_floor_mbs: f64,
    /// Requeue attempts allowed before the job is failed outright.
    pub max_attempts: u32,
    /// Backoff between quarantine and requeue (shared with the transfer
    /// layer's abort retries — see `xferopt_transfer::retry`).
    pub retry: RetryPolicy,
}

impl Default for HealthConfig {
    /// Conservative defaults: two whole epochs of silence or three epochs
    /// below 5 % of the trailing mean quarantine a job; three requeue
    /// attempts; the transfer layer's default exponential backoff.
    fn default() -> Self {
        HealthConfig {
            zero_epoch_limit: 2,
            collapse_ratio: 0.05,
            collapse_epoch_limit: 3,
            window: 4,
            zero_floor_mbs: 1e-6,
            max_attempts: 3,
            retry: RetryPolicy::default(),
        }
    }
}

/// Watchdog health state of a running job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Throughput within expectations.
    Healthy,
    /// At least one bad epoch in the current run of bad epochs.
    Degraded,
}

/// What the supervisor should do after one observed epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthVerdict {
    /// Keep running.
    Healthy,
    /// Keep running but mark degraded (first bad epochs of a run).
    Degraded,
    /// Pull the job: release its grant and requeue (or fail) it.
    Quarantine,
}

/// Per-job throughput watchdog. Feed it one observation per closed control
/// epoch via [`HealthMonitor::observe`]; it answers with a [`HealthVerdict`].
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    /// Trailing window of healthy observations (ring, `cfg.window` long).
    trailing: Vec<f64>,
    /// Next slot to overwrite once the ring is full.
    cursor: usize,
    zero_run: u32,
    collapse_run: u32,
    state: HealthState,
}

impl HealthMonitor {
    /// A fresh monitor (also used when a requeued job is re-admitted — the
    /// old trailing mean belongs to pre-quarantine conditions).
    pub fn new(cfg: HealthConfig) -> Self {
        HealthMonitor {
            cfg,
            trailing: Vec::with_capacity(cfg.window),
            cursor: 0,
            zero_run: 0,
            collapse_run: 0,
            state: HealthState::Healthy,
        }
    }

    /// Current watchdog state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Mean of the trailing healthy observations (`None` until one exists).
    pub fn trailing_mean(&self) -> Option<f64> {
        if self.trailing.is_empty() {
            None
        } else {
            Some(self.trailing.iter().sum::<f64>() / self.trailing.len() as f64)
        }
    }

    /// Consecutive zero-throughput epochs observed so far.
    pub fn zero_run(&self) -> u32 {
        self.zero_run
    }

    /// Consecutive collapsed epochs observed so far.
    pub fn collapse_run(&self) -> u32 {
        self.collapse_run
    }

    /// Feed one closed epoch's observed throughput; returns the verdict.
    pub fn observe(&mut self, observed_mbs: f64) -> HealthVerdict {
        if observed_mbs <= self.cfg.zero_floor_mbs {
            self.zero_run += 1;
            self.collapse_run = 0;
            self.state = HealthState::Degraded;
            return if self.zero_run >= self.cfg.zero_epoch_limit {
                HealthVerdict::Quarantine
            } else {
                HealthVerdict::Degraded
            };
        }
        let collapsed = self
            .trailing_mean()
            .is_some_and(|m| observed_mbs < self.cfg.collapse_ratio * m);
        if collapsed {
            self.zero_run = 0;
            self.collapse_run += 1;
            self.state = HealthState::Degraded;
            return if self.collapse_run >= self.cfg.collapse_epoch_limit {
                HealthVerdict::Quarantine
            } else {
                HealthVerdict::Degraded
            };
        }
        // Healthy observation: reset runs, fold into the trailing window.
        self.zero_run = 0;
        self.collapse_run = 0;
        self.state = HealthState::Healthy;
        if self.trailing.len() < self.cfg.window {
            self.trailing.push(observed_mbs);
        } else {
            self.trailing[self.cursor] = observed_mbs;
            self.cursor = (self.cursor + 1) % self.cfg.window;
        }
        HealthVerdict::Healthy
    }
}

/// One supervision event (quarantine, requeue, breaker transition, shed,
/// checkpoint, resume), rendered into the namespaced supervision JSONL and
/// counted into the telemetry registry.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisionEvent {
    /// Fleet time, seconds.
    pub t_s: f64,
    /// Event kind (stable label: `quarantine`, `requeue`, `failed`,
    /// `breaker-open`, `breaker-half-open`, `breaker-close`, `shed`,
    /// `checkpoint`, `resume`).
    pub kind: &'static str,
    /// Job namespace (`jobN`), when the event concerns one job.
    pub ns: Option<String>,
    /// Link index, when the event concerns one link.
    pub link: Option<usize>,
    /// Free-form detail (deterministic text only).
    pub detail: String,
}

impl SupervisionEvent {
    /// Render as one JSON line with fixed key order (optional keys are
    /// omitted, mirroring the tuner audit log's namespace convention).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"kind\":\"supervision\",\"t_s\":{},\"event\":\"{}\"",
            xferopt_simcore::metrics::json_f64(self.t_s),
            self.kind
        );
        if let Some(ns) = &self.ns {
            s.push_str(&format!(",\"ns\":\"{ns}\""));
        }
        if let Some(link) = self.link {
            s.push_str(&format!(",\"link\":{link}"));
        }
        if !self.detail.is_empty() {
            s.push_str(&format!(",\"detail\":\"{}\"", self.detail));
        }
        s.push('}');
        s
    }
}

/// Deterministic counters summarizing one fleet run's supervision activity.
/// Rendered into the report only when anything actually happened (or a fault
/// profile is configured), so no-fault reports stay byte-identical to
/// pre-supervision ones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisionSummary {
    /// Jobs pulled from their route by the watchdog.
    pub quarantines: u64,
    /// Quarantined jobs returned to the queue after backoff.
    pub requeues: u64,
    /// Jobs failed after exhausting their attempt budget.
    pub failed: u64,
    /// Queued jobs shed under sustained breaker pressure.
    pub shed: u64,
    /// Closed→open breaker transitions.
    pub breaker_trips: u64,
    /// Checkpoints written during the run.
    pub checkpoints: u64,
    /// Breaker-aware route hops of requeued jobs (planet fleets only).
    pub reroutes: u64,
    /// Running jobs migrated onto a re-searched placement by the
    /// self-healing governor (planet fleets with `selfheal` only).
    pub replans: u64,
    /// Queued jobs dropped by the governor's brownout (retry budget dry
    /// under sustained degradation).
    pub brownouts: u64,
}

impl SupervisionSummary {
    /// True when no supervision event fired.
    pub fn is_quiet(&self) -> bool {
        *self == SupervisionSummary::default()
    }

    /// Fixed-format report line (appended to the fleet report when loud).
    /// The reroute counter only renders when a reroute happened, so classic
    /// fleets keep their exact pre-topology bytes.
    pub fn render(&self) -> String {
        let mut s = format!(
            "supervision quarantines={} requeues={} failed={} shed={} breaker_trips={} checkpoints={}",
            self.quarantines, self.requeues, self.failed, self.shed, self.breaker_trips,
            self.checkpoints,
        );
        if self.reroutes > 0 {
            s.push_str(&format!(" reroutes={}", self.reroutes));
        }
        if self.replans > 0 {
            s.push_str(&format!(" replans={}", self.replans));
        }
        if self.brownouts > 0 {
            s.push_str(&format!(" brownouts={}", self.brownouts));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn monitor() -> HealthMonitor {
        HealthMonitor::new(HealthConfig::default())
    }

    #[test]
    fn healthy_stream_never_trips() {
        let mut m = monitor();
        for i in 0..100 {
            let mbs = 2000.0 + (i % 7) as f64 * 100.0;
            assert_eq!(m.observe(mbs), HealthVerdict::Healthy);
        }
        assert_eq!(m.state(), HealthState::Healthy);
        assert_eq!(m.zero_run(), 0);
    }

    #[test]
    fn consecutive_zero_epochs_quarantine() {
        let mut m = monitor();
        assert_eq!(m.observe(2000.0), HealthVerdict::Healthy);
        assert_eq!(m.observe(0.0), HealthVerdict::Degraded);
        assert_eq!(m.state(), HealthState::Degraded);
        assert_eq!(m.observe(0.0), HealthVerdict::Quarantine);
    }

    #[test]
    fn recovery_resets_the_zero_run() {
        let mut m = monitor();
        assert_eq!(m.observe(0.0), HealthVerdict::Degraded);
        assert_eq!(m.observe(1500.0), HealthVerdict::Healthy);
        assert_eq!(m.state(), HealthState::Healthy);
        assert_eq!(m.observe(0.0), HealthVerdict::Degraded, "run restarts");
    }

    #[test]
    fn collapse_against_trailing_mean_quarantines_after_persisting() {
        let mut m = monitor();
        for _ in 0..4 {
            assert_eq!(m.observe(2000.0), HealthVerdict::Healthy);
        }
        // 1% of the trailing mean: collapsed but nonzero.
        assert_eq!(m.observe(20.0), HealthVerdict::Degraded);
        assert_eq!(m.observe(20.0), HealthVerdict::Degraded);
        assert_eq!(m.observe(20.0), HealthVerdict::Quarantine);
    }

    #[test]
    fn halved_throughput_is_not_a_collapse() {
        // Fleet contention routinely halves a job's rate; the watchdog must
        // not quarantine for that (observational-by-default requirement).
        let mut m = monitor();
        for _ in 0..4 {
            assert_eq!(m.observe(2000.0), HealthVerdict::Healthy);
        }
        for _ in 0..50 {
            assert_eq!(m.observe(1000.0), HealthVerdict::Healthy);
        }
    }

    #[test]
    fn no_trailing_mean_means_no_collapse_verdict() {
        let mut m = monitor();
        // First-ever epoch is tiny but nonzero: no baseline, so healthy.
        assert_eq!(m.observe(3.0), HealthVerdict::Healthy);
        assert_eq!(m.trailing_mean(), Some(3.0));
    }

    #[test]
    fn trailing_window_is_bounded() {
        let mut m = monitor();
        for i in 0..20 {
            m.observe(1000.0 + i as f64);
        }
        // Window of 4: mean over the last four healthy observations.
        let mean = m.trailing_mean().unwrap();
        assert!(
            (mean - (1016.0 + 1017.0 + 1018.0 + 1019.0) / 4.0).abs() < 1e-9,
            "mean={mean}"
        );
    }

    #[test]
    fn event_json_has_fixed_key_order() {
        let ev = SupervisionEvent {
            t_s: 120.0,
            kind: "quarantine",
            ns: Some("job3".into()),
            link: Some(1),
            detail: "zero_epochs=2".into(),
        };
        assert_eq!(
            ev.to_json(),
            "{\"kind\":\"supervision\",\"t_s\":120,\"event\":\"quarantine\",\
             \"ns\":\"job3\",\"link\":1,\"detail\":\"zero_epochs=2\"}"
        );
        let bare = SupervisionEvent {
            t_s: 0.0,
            kind: "checkpoint",
            ns: None,
            link: None,
            detail: String::new(),
        };
        assert_eq!(
            bare.to_json(),
            "{\"kind\":\"supervision\",\"t_s\":0,\"event\":\"checkpoint\"}"
        );
    }

    #[test]
    fn summary_renders_and_detects_quiet() {
        let mut s = SupervisionSummary::default();
        assert!(s.is_quiet());
        s.quarantines = 2;
        s.requeues = 1;
        assert!(!s.is_quiet());
        assert_eq!(
            s.render(),
            "supervision quarantines=2 requeues=1 failed=0 shed=0 breaker_trips=0 checkpoints=0"
        );
    }

    proptest! {
        /// The watchdog quarantines within a bounded number of bad epochs and
        /// never quarantines a healthy stream.
        #[test]
        fn quarantine_is_bounded_and_sound(
            obs in prop::collection::vec(0f64..4000.0, 1..200),
        ) {
            let cfg = HealthConfig::default();
            let mut m = HealthMonitor::new(cfg);
            let mut bad_run = 0u32;
            for &x in &obs {
                let v = m.observe(x);
                if x <= cfg.zero_floor_mbs
                    || m.state() == HealthState::Degraded && v != HealthVerdict::Healthy
                {
                    bad_run += 1;
                } else {
                    bad_run = 0;
                }
                match v {
                    HealthVerdict::Quarantine => {
                        // Quarantine only after at least zero_epoch_limit bad
                        // epochs in a row.
                        prop_assert!(bad_run >= cfg.zero_epoch_limit);
                        // Reset as the supervisor would.
                        m = HealthMonitor::new(cfg);
                        bad_run = 0;
                    }
                    HealthVerdict::Degraded => prop_assert_eq!(m.state(), HealthState::Degraded),
                    HealthVerdict::Healthy => prop_assert_eq!(m.state(), HealthState::Healthy),
                }
            }
        }
    }
}
