//! Sharded parallel fleet execution (DESIGN.md §15).
//!
//! Jobs whose flows share no link are independent under max–min allocation:
//! progressive filling never lets one component's flows change another's
//! fair share. [`ShardPlan`] partitions a workload by connected component of
//! the link-sharing graph (union-find over each job's `(site, link)` keys,
//! via [`xferopt_net::connected_groups`]); every component becomes its own
//! [`FleetSim`] with a site-derived world seed, and [`ShardedFleetSim`]
//! ticks the components — inline for `--shards 1`, on a persistent worker
//! pool for `--shards N` — then merges their outputs with deterministic
//! ordering keys:
//!
//! * outcomes and decision logs sort by job id;
//! * telemetry epochs stable-merge by epoch start time (component order
//!   breaks ties);
//! * supervision events stable-merge by event time;
//! * summary counters add; metrics snapshots merge (counters add, identical
//!   gauges are right-biased no-ops);
//! * per-tick history appends flush to the backing store sorted by job id.
//!
//! The decomposition and every merge key are pure functions of the
//! workload, so **the byte output is independent of the shard count** —
//! `--shards 8` replays exactly what `--shards 1` produces, and a
//! single-component workload reproduces the plain [`run_fleet`] bytes
//! (the merge degenerates to passthrough). Checkpoints use the same wire
//! format as the single-threaded path with the digest taken over the
//! per-component state digests joined in component order, so a run
//! checkpointed under `--shards 4` can resume under any other shard count
//! ([`resume_fleet_sharded`]).
//!
//! The worker pool is plain `std::thread` + `std::sync::mpsc` in strict
//! lockstep: the runner broadcasts one command per tick and waits for every
//! worker's response before advancing, so parallelism never reorders
//! anything observable.

use std::sync::mpsc;
use std::thread;

use crate::checkpoint::{fnv1a, Checkpoint};
use crate::fleet::{render_checkpoint, FleetConfig, FleetOutcome, FleetParts, FleetSim};
use crate::history::{HistoryRecord, HistoryStore};
use crate::job::{JobId, JobSpec, Workload};
use xferopt_net::connected_groups;

/// The workload split by connected component of the link-sharing graph.
///
/// Component `i` holds every job whose route links are (transitively)
/// connected to component `i`'s links within the same site; components are
/// numbered by first appearance in the `(arrival, id)`-sorted job order, so
/// the plan is a pure function of the workload.
#[derive(Debug)]
pub struct ShardPlan {
    components: Vec<Workload>,
}

impl ShardPlan {
    /// Partition `workload` by link-sharing component.
    ///
    /// Each job contributes the actual link list of its route keyed by site
    /// (sites are independent replicas of the same topology, so links on
    /// different sites never alias; the site stride is the global
    /// max-link-index + 1 so keys can never collide across sites). Within the
    /// classic paper topology every route crosses the shared source NIC, so
    /// components coincide with sites — multi-hop catalog routes shard by
    /// whatever the link-sharing graph actually says.
    #[must_use]
    pub fn compute(workload: &Workload) -> ShardPlan {
        let stride = workload
            .jobs()
            .iter()
            .flat_map(|j| j.route.links().iter().copied())
            .max()
            .map_or(1, |m| m + 1);
        let items: Vec<Vec<usize>> = workload
            .jobs()
            .iter()
            .map(|j| {
                let base = j.site as usize * stride;
                j.route.links().iter().map(|&l| base + l).collect()
            })
            .collect();
        let groups = connected_groups(&items);
        let ncomps = groups.iter().copied().max().map_or(0, |m| m + 1);
        let mut buckets: Vec<Vec<JobSpec>> = vec![Vec::new(); ncomps];
        for (j, g) in workload.jobs().iter().zip(&groups) {
            buckets[*g].push(j.clone());
        }
        ShardPlan {
            components: buckets.into_iter().map(Workload::new).collect(),
        }
    }

    /// The per-component workloads, in component order.
    #[must_use]
    pub fn components(&self) -> &[Workload] {
        &self.components
    }

    /// Number of components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the workload was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

/// History appends from one batch, tagged `(tick offset, job id, record)` —
/// the offset is 1-based into the batch so the runner can flush them in
/// global `(tick, job id)` order.
type TickAppends = Vec<(u64, JobId, HistoryRecord)>;

/// One component's batch result: `(component index, ticks advanced,
/// tick-tagged history appends)`.
type BatchOut = (usize, u64, TickAppends);

enum Cmd {
    Run(u64),
    Digest,
    Finish,
}

enum Rsp {
    Run(Vec<BatchOut>),
    Digest(Vec<(usize, String)>),
    Finish(Vec<(usize, FleetParts)>),
}

/// Tick one component up to `max` times (stopping early when it finishes).
/// Returns the ticks advanced and every history append tagged with the tick
/// it happened on, so the runner can flush the global per-tick job-id order
/// regardless of batch size.
fn run_comp(idx: usize, sim: &mut FleetSim<'static>, max: u64) -> BatchOut {
    let mut appends = Vec::new();
    let mut advanced = 0;
    while advanced < max {
        if !sim.tick() {
            break;
        }
        advanced += 1;
        for (id, rec) in sim.take_tick_appends() {
            appends.push((advanced, id, rec));
        }
    }
    (idx, advanced, appends)
}

/// Persistent worker threads, each owning a slice of the component sims.
/// Commands broadcast in lockstep; responses are re-sorted by component
/// index so thread scheduling never reorders anything.
struct WorkerPool {
    cmd_txs: Vec<mpsc::Sender<Cmd>>,
    rsp_rx: mpsc::Receiver<Rsp>,
    handles: Vec<thread::JoinHandle<()>>,
}

fn worker_loop(
    mut sims: Vec<(usize, FleetSim<'static>)>,
    cmd_rx: &mpsc::Receiver<Cmd>,
    rsp_tx: &mpsc::Sender<Rsp>,
) {
    while let Ok(cmd) = cmd_rx.recv() {
        let rsp = match cmd {
            Cmd::Run(max) => Rsp::Run(sims.iter_mut().map(|(i, s)| run_comp(*i, s, max)).collect()),
            Cmd::Digest => Rsp::Digest(sims.iter().map(|(i, s)| (*i, s.state_digest())).collect()),
            Cmd::Finish => {
                let parts = sims.drain(..).map(|(i, s)| (i, s.finish_parts())).collect();
                let _ = rsp_tx.send(Rsp::Finish(parts));
                return;
            }
        };
        if rsp_tx.send(rsp).is_err() {
            return;
        }
    }
}

impl WorkerPool {
    fn new(sims: Vec<FleetSim<'static>>, shards: usize) -> WorkerPool {
        let n = shards.min(sims.len()).max(1);
        let mut buckets: Vec<Vec<(usize, FleetSim<'static>)>> =
            (0..n).map(|_| Vec::new()).collect();
        for (i, sim) in sims.into_iter().enumerate() {
            buckets[i % n].push((i, sim));
        }
        let (rsp_tx, rsp_rx) = mpsc::channel();
        let mut cmd_txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for bucket in buckets {
            let (cmd_tx, cmd_rx) = mpsc::channel();
            let tx = rsp_tx.clone();
            handles.push(thread::spawn(move || worker_loop(bucket, &cmd_rx, &tx)));
            cmd_txs.push(cmd_tx);
        }
        WorkerPool {
            cmd_txs,
            rsp_rx,
            handles,
        }
    }

    fn broadcast(&self, cmd: impl Fn() -> Cmd) {
        for tx in &self.cmd_txs {
            tx.send(cmd()).expect("shard worker alive");
        }
    }

    fn run_all(&mut self, max: u64) -> Vec<(u64, TickAppends)> {
        self.broadcast(|| Cmd::Run(max));
        let mut out: Vec<BatchOut> = Vec::new();
        for _ in 0..self.cmd_txs.len() {
            match self.rsp_rx.recv().expect("shard worker alive") {
                Rsp::Run(v) => out.extend(v),
                _ => unreachable!("lockstep protocol: run response expected"),
            }
        }
        out.sort_by_key(|(i, _, _)| *i);
        out.into_iter().map(|(_, a, ap)| (a, ap)).collect()
    }

    fn digests(&mut self) -> Vec<String> {
        self.broadcast(|| Cmd::Digest);
        let mut out: Vec<(usize, String)> = Vec::new();
        for _ in 0..self.cmd_txs.len() {
            match self.rsp_rx.recv().expect("shard worker alive") {
                Rsp::Digest(v) => out.extend(v),
                _ => unreachable!("lockstep protocol: digest response expected"),
            }
        }
        out.sort_by_key(|(i, _)| *i);
        out.into_iter().map(|(_, d)| d).collect()
    }

    fn finish_all(mut self) -> Vec<FleetParts> {
        self.broadcast(|| Cmd::Finish);
        let mut out: Vec<(usize, FleetParts)> = Vec::new();
        for _ in 0..self.cmd_txs.len() {
            match self.rsp_rx.recv().expect("shard worker alive") {
                Rsp::Finish(v) => out.extend(v),
                _ => unreachable!("lockstep protocol: finish response expected"),
            }
        }
        for h in self.handles.drain(..) {
            h.join().expect("shard worker exits cleanly");
        }
        out.sort_by_key(|(i, _)| *i);
        out.into_iter().map(|(_, p)| p).collect()
    }
}

/// How the component sims execute: inline on the caller's thread (the
/// retained reference path, `--shards 1`) or on the worker pool. Both paths
/// run the identical per-component code and the identical merge.
enum Exec {
    Inline(Vec<FleetSim<'static>>),
    Pool(WorkerPool),
}

impl Exec {
    fn run_all(&mut self, max: u64) -> Vec<(u64, TickAppends)> {
        match self {
            Exec::Inline(sims) => sims
                .iter_mut()
                .enumerate()
                .map(|(i, s)| {
                    let (_, a, ap) = run_comp(i, s, max);
                    (a, ap)
                })
                .collect(),
            Exec::Pool(pool) => pool.run_all(max),
        }
    }

    fn digests(&mut self) -> Vec<String> {
        match self {
            Exec::Inline(sims) => sims.iter().map(FleetSim::state_digest).collect(),
            Exec::Pool(pool) => pool.digests(),
        }
    }

    fn finish_all(self) -> Vec<FleetParts> {
        match self {
            Exec::Inline(sims) => sims.into_iter().map(FleetSim::finish_parts).collect(),
            Exec::Pool(pool) => pool.finish_all(),
        }
    }
}

/// A fleet run sharded by link-sharing component, stepped one global tick at
/// a time (the CLI's checkpoint loop drives this exactly like a plain
/// [`FleetSim`]). See the module docs for the determinism argument.
pub struct ShardedFleetSim<'h> {
    config: FleetConfig,
    workload_jobs: Vec<JobSpec>,
    history: &'h mut HistoryStore,
    exec: Exec,
    tick: u64,
    t: f64,
    done: bool,
    history_start_len: usize,
    history_appended: usize,
}

impl<'h> ShardedFleetSim<'h> {
    /// Build the sharded simulation at tick 0. `shards` is the worker-thread
    /// budget: `<= 1` runs every component inline (the reference path);
    /// `>= 2` spreads components round-robin over `min(shards, components)`
    /// persistent workers. The byte output is the same either way.
    ///
    /// # Panics
    /// Panics when the config fails [`FleetConfig::validate`].
    pub fn new(
        workload: &Workload,
        config: &FleetConfig,
        history: &'h mut HistoryStore,
        shards: usize,
    ) -> Self {
        config.validate();
        let plan = ShardPlan::compute(workload);
        let mut components = plan.components;
        if components.is_empty() {
            // Degenerate empty workload: keep one empty component so the
            // finish path still renders a (trivially empty) report through
            // the same formatter as the plain path.
            components.push(Workload::new(Vec::new()));
        }
        let history_start_len = history.len();
        let sims: Vec<FleetSim<'static>> = components
            .iter()
            .map(|w| FleetSim::new_owned(w, config, history.shard_snapshot()))
            .collect();
        let exec = if shards >= 2 && sims.len() >= 2 {
            Exec::Pool(WorkerPool::new(sims, shards))
        } else {
            Exec::Inline(sims)
        };
        ShardedFleetSim {
            config: config.clone(),
            workload_jobs: workload.jobs().to_vec(),
            history,
            exec,
            tick: 0,
            t: 0.0,
            done: false,
            history_start_len,
            history_appended: 0,
        }
    }

    /// Global ticks completed so far.
    #[must_use]
    pub fn tick_index(&self) -> u64 {
        self.tick
    }

    /// Current fleet time, seconds.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        self.t
    }

    /// Whether every component has finished.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// History records appended so far across all components.
    #[must_use]
    pub fn history_appended(&self) -> usize {
        self.history_appended
    }

    /// Toggle persistence on the backing history store (checkpoint replay
    /// runs with it off; component stores are always memory-only snapshots).
    pub fn set_history_persist(&mut self, persist: bool) {
        self.history.set_persist(persist);
    }

    /// Advance every live component one tick, then flush their history
    /// appends to the backing store in job-id order (the byte-stability fix
    /// for concurrent shards). Returns `false` once all components are done;
    /// the final call advances nothing, exactly like [`FleetSim::tick`].
    pub fn tick(&mut self) -> bool {
        self.run_ticks(1) == 1
    }

    /// Advance up to `max` global ticks in one worker-pool round trip and
    /// return the ticks actually advanced (0 once done). Components are
    /// independent, so each runs its slice of the batch without
    /// synchronizing; the runner then flushes history appends in
    /// `(tick, job id)` order — byte-identical to ticking one at a time.
    /// Batching only amortizes coordination; digests and checkpoints are
    /// taken at batch boundaries.
    pub fn run_ticks(&mut self, max: u64) -> u64 {
        if self.done || max == 0 {
            return 0;
        }
        let results = self.exec.run_all(max);
        let advanced = results.iter().map(|(a, _)| *a).max().unwrap_or(0);
        if advanced == 0 {
            self.done = true;
            return 0;
        }
        let mut appends: Vec<(u64, JobId, HistoryRecord)> =
            results.into_iter().flat_map(|(_, ap)| ap).collect();
        appends.sort_by_key(|(off, id, _)| (*off, *id));
        for (_, _, rec) in appends {
            self.history.append(rec).expect("history append");
            self.history_appended += 1;
        }
        self.tick += advanced;
        // Repeated addition, not multiplication: keeps `t` bit-identical to
        // the tick-at-a-time path (and to the plain FleetSim).
        for _ in 0..advanced {
            self.t += self.config.tick_s;
        }
        if advanced < max {
            // Every component stopped before exhausting the batch: done.
            self.done = true;
        }
        advanced
    }

    /// Deterministic digest of the live state: the per-component digests
    /// joined with `\n` in component order (for one component this is the
    /// plain [`FleetSim::state_digest`] verbatim).
    pub fn state_digest(&mut self) -> String {
        self.exec.digests().join("\n")
    }

    /// FNV-1a hash of [`ShardedFleetSim::state_digest`]. Shard-count
    /// independent, so a checkpoint resumes under any `--shards`.
    pub fn digest_hash(&mut self) -> u64 {
        fnv1a(&self.state_digest())
    }

    /// Serialize a checkpoint at the current global tick — same wire format
    /// as [`FleetSim::checkpoint`] (the full workload is recorded; resume
    /// recomputes the shard plan from it).
    pub fn checkpoint(&mut self) -> String {
        let digest = self.digest_hash();
        render_checkpoint(
            &self.config,
            self.tick,
            self.t,
            &self.workload_jobs,
            self.history_start_len,
            self.history_appended,
            digest,
        )
    }

    /// Close out all components and merge their parts into one outcome.
    pub fn finish(self) -> FleetOutcome {
        let parts = self.exec.finish_all();
        merge_parts(self.workload_jobs.len(), self.history_appended, parts).into_outcome()
    }
}

/// Merge per-component [`FleetParts`] in component order with the
/// deterministic keys from the module docs. A single component passes
/// through untouched, which is what keeps single-component sharded runs
/// byte-identical to the plain path.
fn merge_parts(submitted: usize, history_appended: usize, parts: Vec<FleetParts>) -> FleetParts {
    let mut it = parts.into_iter();
    let mut merged = it.next().expect("at least one component");
    merged.submitted = submitted;
    merged.history_appended = history_appended;
    for p in it {
        merged.outcomes.extend(p.outcomes);
        merged.decisions.extend(p.decisions);
        merged.telemetry.extend(p.telemetry);
        merged.events.extend(p.events);
        merged.supervision.quarantines += p.supervision.quarantines;
        merged.supervision.requeues += p.supervision.requeues;
        merged.supervision.failed += p.supervision.failed;
        merged.supervision.shed += p.supervision.shed;
        merged.supervision.breaker_trips += p.supervision.breaker_trips;
        merged.supervision.checkpoints += p.supervision.checkpoints;
        merged.supervision.reroutes += p.supervision.reroutes;
        merged.supervision.replans += p.supervision.replans;
        merged.supervision.brownouts += p.supervision.brownouts;
        match (&mut merged.metrics, p.metrics) {
            (Some(m), Some(o)) => m.merge(&o),
            (m @ None, Some(o)) => *m = Some(o),
            (_, None) => {}
        }
        merged.outcomes.sort_by_key(|o| o.id);
        merged.decisions.sort_by_key(|(id, _)| *id);
        // Stable sorts: ties keep component order (concat order above).
        merged
            .telemetry
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite epoch start"));
        merged
            .events
            .sort_by(|a, b| a.t_s.partial_cmp(&b.t_s).expect("finite event time"));
    }
    merged
}

/// Run `workload` sharded by link-sharing component on up to `shards` worker
/// threads. Byte-identical output for every `shards` value; `shards <= 1`
/// is the retained single-threaded reference path.
pub fn run_fleet_sharded(
    workload: &Workload,
    config: &FleetConfig,
    history: &mut HistoryStore,
    shards: usize,
) -> FleetOutcome {
    let mut sim = ShardedFleetSim::new(workload, config, history, shards);
    while sim.tick() {}
    sim.finish()
}

/// Resume a killed sharded run from `ck` — the sharded mirror of
/// [`crate::resume_fleet`], and because the checkpoint format and digest are
/// shard-count independent, `shards` may differ from the killed run's.
///
/// # Errors
/// Returns an error when the replay finishes early or the digest or append
/// count mismatches (corrupt checkpoint, or writer/reader drift).
pub fn resume_fleet_sharded(
    ck: &Checkpoint,
    history: &mut HistoryStore,
    shards: usize,
) -> Result<FleetOutcome, String> {
    history.truncate(ck.history_start_len);
    let mut sim = ShardedFleetSim::new(&ck.workload, &ck.config, history, shards);
    sim.set_history_persist(false);
    while sim.tick_index() < ck.tick {
        if !sim.tick() {
            return Err(format!(
                "replay ended at tick {} before reaching checkpoint tick {}",
                sim.tick_index(),
                ck.tick
            ));
        }
    }
    let got = sim.digest_hash();
    if got != ck.digest {
        return Err(format!(
            "checkpoint digest mismatch at tick {}: expected {:016x}, replay produced {:016x}",
            ck.tick, ck.digest, got
        ));
    }
    if sim.history_appended() != ck.history_appended {
        return Err(format!(
            "checkpoint recorded {} history appends, replay produced {}",
            ck.history_appended,
            sim.history_appended()
        ));
    }
    sim.set_history_persist(true);
    while sim.tick() {}
    Ok(sim.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::run_fleet;
    use crate::policy::Policy;

    fn cfg() -> FleetConfig {
        FleetConfig {
            policy: Policy::Sjf,
            seed: 11,
            horizon_s: 3.0 * 3600.0,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn plan_groups_by_site() {
        let wl = Workload::synthetic_sites(12, 5, 3);
        let plan = ShardPlan::compute(&wl);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        let total: usize = plan.components().iter().map(Workload::len).sum();
        assert_eq!(total, 12);
        for comp in plan.components() {
            let site = comp.jobs()[0].site;
            assert!(comp.jobs().iter().all(|j| j.site == site));
        }
        // Component order follows first appearance in (arrival, id) order.
        assert_eq!(plan.components()[0].jobs()[0].site, wl.jobs()[0].site);
    }

    #[test]
    fn three_hop_route_shards_into_one_component() {
        use crate::route::JobRoute;
        // Two jobs on disjoint 3-hop routes plus one bridging route: the
        // bridge shares link 5 with the first and link 9 with the second, so
        // all three jobs must land in a single component. Link keys derive
        // from the actual route link lists, not any `site*8 + link`
        // arithmetic — link 9 would alias into site 1 under an 8-stride.
        let a = JobSpec::new(0, 0.0, 100.0).with_route(JobRoute::new("a", vec![0, 5, 7], 0));
        let b = JobSpec::new(1, 0.0, 100.0).with_route(JobRoute::new("b", vec![1, 9, 11], 1));
        let bridge = JobSpec::new(2, 0.0, 100.0).with_route(JobRoute::new("c", vec![5, 9], 2));
        let plan = ShardPlan::compute(&Workload::new(vec![a.clone(), b.clone(), bridge]));
        assert_eq!(plan.len(), 1, "bridged 3-hop routes form one component");
        // Without the bridge the two routes are independent components.
        let plan = ShardPlan::compute(&Workload::new(vec![a.clone(), b.clone()]));
        assert_eq!(plan.len(), 2);
        // Same routes on different sites never alias, whatever the links.
        let plan = ShardPlan::compute(&Workload::new(vec![a, b.with_site(1)]));
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn single_site_is_one_component() {
        let wl = Workload::synthetic(8, 3);
        let plan = ShardPlan::compute(&wl);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.components()[0].len(), 8);
    }

    #[test]
    fn single_component_matches_plain_run_fleet() {
        let wl = Workload::synthetic(8, 3);
        let config = cfg();
        let mut h1 = HistoryStore::in_memory();
        let mut h2 = HistoryStore::in_memory();
        let plain = run_fleet(&wl, &config, &mut h1);
        let sharded = run_fleet_sharded(&wl, &config, &mut h2, 1);
        assert_eq!(plain.report.render(), sharded.report.render());
        assert_eq!(plain.report.to_csv(), sharded.report.to_csv());
        assert_eq!(plain.telemetry_jsonl, sharded.telemetry_jsonl);
        assert_eq!(plain.decisions_jsonl, sharded.decisions_jsonl);
        assert_eq!(plain.supervision_jsonl, sharded.supervision_jsonl);
        assert_eq!(plain.metrics_jsonl, sharded.metrics_jsonl);
        assert_eq!(plain.history_appended, sharded.history_appended);
        assert_eq!(h1.len(), h2.len());
    }

    #[test]
    fn shard_counts_are_byte_identical_multi_site() {
        let wl = Workload::synthetic_sites(10, 7, 4);
        let config = cfg();
        let mut base = HistoryStore::in_memory();
        let reference = run_fleet_sharded(&wl, &config, &mut base, 1);
        for shards in [2, 4, 8] {
            let mut h = HistoryStore::in_memory();
            let out = run_fleet_sharded(&wl, &config, &mut h, shards);
            assert_eq!(reference.report.render(), out.report.render(), "{shards}");
            assert_eq!(reference.telemetry_jsonl, out.telemetry_jsonl, "{shards}");
            assert_eq!(reference.metrics_jsonl, out.metrics_jsonl, "{shards}");
            assert_eq!(base.len(), h.len(), "{shards}");
        }
    }

    #[test]
    fn batched_ticks_match_tick_at_a_time() {
        let wl = Workload::synthetic_sites(10, 7, 4);
        let config = cfg();
        let mut h1 = HistoryStore::in_memory();
        let reference = run_fleet_sharded(&wl, &config, &mut h1, 1);
        let mut h2 = HistoryStore::in_memory();
        let mut sim = ShardedFleetSim::new(&wl, &config, &mut h2, 4);
        // Uneven batch sizes on purpose: boundaries must not matter.
        for batch in [1u64, 7, 64, 3, 1000] {
            sim.run_ticks(batch);
        }
        while sim.run_ticks(97) > 0 {}
        let out = sim.finish();
        assert_eq!(reference.report.render(), out.report.render());
        assert_eq!(reference.telemetry_jsonl, out.telemetry_jsonl);
        assert_eq!(reference.history_appended, out.history_appended);
        assert_eq!(
            h1.records().iter().map(|r| r.to_json()).collect::<Vec<_>>(),
            h2.records().iter().map(|r| r.to_json()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_workload_finishes_immediately() {
        let wl = Workload::new(Vec::new());
        let mut h = HistoryStore::in_memory();
        let out = run_fleet_sharded(&wl, &cfg(), &mut h, 4);
        assert_eq!(out.report.submitted, 0);
        assert!(out.report.outcomes.is_empty());
    }
}
