//! Self-healing control plane: fleet-level SLO tracking and a retry budget
//! (DESIGN.md §17).
//!
//! The per-job watchdogs in [`crate::health`] react to one transfer at a
//! time; this module watches the *fleet*. An [`SloMonitor`] folds per-link
//! goodput observations into a three-state `Healthy → Strained → Degraded`
//! machine with hysteresis, and a [`RetryBudget`] token bucket caps how many
//! recovery actions (requeues, reroutes, replans) the whole fleet may take
//! per unit time so a regional outage cannot fan out into a retry storm.
//! [`Governor`] bundles both with the replan/brownout cooldown clocks the
//! tick loop consults.
//!
//! Everything here is integer/state-machine arithmetic on values the tick
//! loop already computes deterministically, so the governor adds no new
//! nondeterminism: its digest is part of the fleet state digest whenever it
//! is enabled.

use std::collections::BTreeSet;
use std::fmt;

/// Tuning knobs for the control plane. Like `HealthConfig` and
/// `BreakerConfig`, this is a compile-time/default-constructed config that
/// is *not* serialized into checkpoints: resume reconstructs the same
/// governor from the same defaults, which is exactly what replay needs.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernConfig {
    /// Sliding-window length (in per-link epoch observations) for the SLO
    /// monitor.
    pub window: usize,
    /// Bad observations within the window to declare `Strained`.
    pub strain_bad: usize,
    /// Bad observations within the window to declare `Degraded`.
    pub degrade_bad: usize,
    /// Consecutive good observations required to step back toward
    /// `Healthy` (hysteresis: one good epoch does not clear an outage).
    pub recover_good: usize,
    /// Token-bucket capacity for the fleet-wide retry budget.
    pub budget_cap: u64,
    /// Ticks between single-token refills.
    pub refill_ticks: u64,
    /// Minimum seconds between online placement re-searches.
    pub replan_cooldown_s: f64,
    /// Minimum seconds between brownout sheds.
    pub brownout_cooldown_s: f64,
}

impl Default for GovernConfig {
    fn default() -> Self {
        GovernConfig {
            window: 4,
            strain_bad: 1,
            degrade_bad: 2,
            recover_good: 2,
            budget_cap: 32,
            refill_ticks: 2,
            replan_cooldown_s: 300.0,
            brownout_cooldown_s: 60.0,
        }
    }
}

/// Fleet-level health of one link as seen by the SLO monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloState {
    /// Goodput within expectations.
    Healthy,
    /// Some zero-goodput epochs in the window; watch, do not act.
    Strained,
    /// Sustained zero goodput: the link is effectively down and the
    /// governor may re-search placement around it.
    Degraded,
}

impl fmt::Display for SloState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SloState::Healthy => write!(f, "healthy"),
            SloState::Strained => write!(f, "strained"),
            SloState::Degraded => write!(f, "degraded"),
        }
    }
}

/// Per-link sliding window of good/bad goodput observations.
#[derive(Debug, Clone)]
struct LinkSlo {
    /// Ring of recent observations, `true` = bad (zero goodput).
    ring: Vec<bool>,
    /// Next ring slot to overwrite.
    head: usize,
    /// Observations seen so far (saturates at `ring.len()`).
    filled: usize,
    /// Consecutive good observations since the last bad one.
    good_run: usize,
    state: SloState,
}

impl LinkSlo {
    fn new(window: usize) -> LinkSlo {
        LinkSlo {
            ring: vec![false; window.max(1)],
            head: 0,
            filled: 0,
            good_run: 0,
            state: SloState::Healthy,
        }
    }

    fn bad_count(&self) -> usize {
        self.ring[..self.filled].iter().filter(|b| **b).count()
    }
}

/// Sliding-window SLO state machine over the fleet's links.
///
/// Escalation is immediate (bad observations push `Healthy → Strained →
/// Degraded` as soon as the window holds enough of them); recovery is
/// hysteretic (each step back down requires `recover_good` consecutive good
/// observations, so a flapping link does not oscillate the governor).
#[derive(Debug, Clone)]
pub struct SloMonitor {
    links: Vec<LinkSlo>,
    cfg: GovernConfig,
}

impl SloMonitor {
    /// Monitor for `nlinks` links under `cfg`.
    pub fn new(nlinks: usize, cfg: &GovernConfig) -> SloMonitor {
        SloMonitor {
            links: (0..nlinks).map(|_| LinkSlo::new(cfg.window)).collect(),
            cfg: cfg.clone(),
        }
    }

    /// Record one epoch observation for `link` (`bad` = zero goodput while
    /// traffic was expected). Returns the `(from, to)` transition when the
    /// link's state changed.
    pub fn observe(&mut self, link: usize, bad: bool) -> Option<(SloState, SloState)> {
        let l = &mut self.links[link];
        l.ring[l.head] = bad;
        l.head = (l.head + 1) % l.ring.len();
        l.filled = (l.filled + 1).min(l.ring.len());
        l.good_run = if bad { 0 } else { l.good_run + 1 };
        let bad_count = l.bad_count();
        let from = l.state;
        let to = if bad_count >= self.cfg.degrade_bad {
            SloState::Degraded
        } else if bad_count >= self.cfg.strain_bad {
            // Never escalate on a *good* observation: a stale bad sample
            // aging through the ring should only hold state, not raise it.
            if bad {
                l.state.max(SloState::Strained)
            } else {
                l.state.min(SloState::Strained)
            }
        } else if l.good_run >= self.cfg.recover_good {
            match l.state {
                SloState::Degraded => SloState::Strained,
                _ => SloState::Healthy,
            }
        } else {
            l.state
        };
        // Stepping down resets the run so Degraded → Strained → Healthy
        // takes `recover_good` *more* good epochs, not the same ones twice.
        if to < from {
            l.good_run = 0;
        }
        l.state = to;
        if from == to {
            None
        } else {
            Some((from, to))
        }
    }

    /// Current state of `link`.
    pub fn state(&self, link: usize) -> SloState {
        self.links[link].state
    }

    /// Links currently `Degraded`, ascending.
    pub fn degraded_links(&self) -> BTreeSet<usize> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.state == SloState::Degraded)
            .map(|(i, _)| i)
            .collect()
    }

    /// Compact digest of the non-healthy links (healthy is the default and
    /// is omitted so the digest stays short on quiet fleets).
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for (i, l) in self.links.iter().enumerate() {
            if l.state != SloState::Healthy {
                if !out.is_empty() {
                    out.push(',');
                }
                out.push_str(&format!("{i}:{}", l.state));
            }
        }
        out
    }
}

/// Deterministic fleet-wide token bucket for recovery actions.
///
/// Starts full; every [`RetryBudget::tick`] counts down and adds one token
/// (capped) each `refill_ticks` ticks. [`RetryBudget::try_take`] consumes a
/// token when one is available — requeues, reroutes, and replans each cost
/// one, so the *rate* of fleet-wide recovery work is bounded regardless of
/// how many jobs an outage hits at once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryBudget {
    cap: u64,
    tokens: u64,
    refill_ticks: u64,
    countdown: u64,
    consumed_total: u64,
}

impl RetryBudget {
    /// Full bucket of `cap` tokens refilled one per `refill_ticks` ticks.
    pub fn new(cap: u64, refill_ticks: u64) -> RetryBudget {
        let refill_ticks = refill_ticks.max(1);
        RetryBudget {
            cap,
            tokens: cap,
            refill_ticks,
            countdown: refill_ticks,
            consumed_total: 0,
        }
    }

    /// Advance one tick: on every `refill_ticks`-th call, add one token up
    /// to the cap.
    pub fn tick(&mut self) {
        self.countdown -= 1;
        if self.countdown == 0 {
            self.tokens = (self.tokens + 1).min(self.cap);
            self.countdown = self.refill_ticks;
        }
    }

    /// Consume one token; `false` (and no change) when the bucket is empty.
    pub fn try_take(&mut self) -> bool {
        if self.tokens == 0 {
            return false;
        }
        self.tokens -= 1;
        self.consumed_total += 1;
        true
    }

    /// Tokens currently available.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Bucket capacity.
    pub fn cap(&self) -> u64 {
        self.cap
    }

    /// Total tokens ever consumed.
    pub fn consumed(&self) -> u64 {
        self.consumed_total
    }

    /// Total tokens ever made available (initial fill plus refills); the
    /// budget invariant is `consumed() <= issued()` at all times.
    pub fn issued(&self) -> u64 {
        self.tokens + self.consumed_total
    }

    /// Compact digest of the bucket state.
    pub fn digest(&self) -> String {
        format!(
            "tok{}:cd{}:used{}",
            self.tokens, self.countdown, self.consumed_total
        )
    }
}

/// The self-healing control plane: SLO monitor + retry budget + the
/// cooldown clocks that pace replans and brownouts.
#[derive(Debug, Clone)]
pub struct Governor {
    /// Fleet-level per-link SLO state.
    pub slo: SloMonitor,
    /// Fleet-wide recovery token bucket.
    pub budget: RetryBudget,
    /// Simulation time of the last placement re-search (`-inf` initially so
    /// the first replan is not cooldown-gated).
    pub last_replan_s: f64,
    /// Simulation time of the last brownout shed.
    pub last_brownout_s: f64,
    /// Config the governor was built from.
    pub cfg: GovernConfig,
}

impl Governor {
    /// Governor over `nlinks` links under `cfg`.
    pub fn new(nlinks: usize, cfg: &GovernConfig) -> Governor {
        Governor {
            slo: SloMonitor::new(nlinks, cfg),
            budget: RetryBudget::new(cfg.budget_cap, cfg.refill_ticks),
            last_replan_s: f64::NEG_INFINITY,
            last_brownout_s: f64::NEG_INFINITY,
            cfg: cfg.clone(),
        }
    }

    /// True when a placement re-search is allowed at time `t`.
    pub fn replan_ready(&self, t: f64) -> bool {
        t - self.last_replan_s >= self.cfg.replan_cooldown_s
    }

    /// True when a brownout shed is allowed at time `t`.
    pub fn brownout_ready(&self, t: f64) -> bool {
        t - self.last_brownout_s >= self.cfg.brownout_cooldown_s
    }

    /// Compact digest: budget state plus the non-healthy SLO links.
    pub fn digest(&self) -> String {
        let slo = self.slo.digest();
        if slo.is_empty() {
            self.budget.digest()
        } else {
            format!("{} slo[{}]", self.budget.digest(), slo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_escalates_and_recovers_with_hysteresis() {
        let cfg = GovernConfig::default();
        let mut m = SloMonitor::new(2, &cfg);
        assert_eq!(m.state(0), SloState::Healthy);
        // One bad epoch: Strained.
        assert_eq!(
            m.observe(0, true),
            Some((SloState::Healthy, SloState::Strained))
        );
        // Second bad epoch: Degraded.
        assert_eq!(
            m.observe(0, true),
            Some((SloState::Strained, SloState::Degraded))
        );
        assert_eq!(m.degraded_links().into_iter().collect::<Vec<_>>(), vec![0]);
        // One good epoch is not enough to step down.
        assert_eq!(m.observe(0, false), None);
        assert_eq!(m.state(0), SloState::Degraded);
        // Window is 4, so after two more good epochs the bad samples age
        // out and two consecutive goods step Degraded → Strained.
        assert_eq!(m.observe(0, false), None);
        assert_eq!(
            m.observe(0, false),
            Some((SloState::Degraded, SloState::Strained))
        );
        // Two *more* consecutive goods reach Healthy (the run resets on
        // each step down).
        assert_eq!(m.observe(0, false), None);
        assert_eq!(
            m.observe(0, false),
            Some((SloState::Strained, SloState::Healthy))
        );
        // The other link never moved.
        assert_eq!(m.state(1), SloState::Healthy);
    }

    #[test]
    fn slo_digest_lists_only_unhealthy_links() {
        let cfg = GovernConfig::default();
        let mut m = SloMonitor::new(3, &cfg);
        assert_eq!(m.digest(), "");
        m.observe(2, true);
        assert_eq!(m.digest(), "2:strained");
        m.observe(2, true);
        m.observe(0, true);
        assert_eq!(m.digest(), "0:strained,2:degraded");
    }

    #[test]
    fn budget_refills_and_caps() {
        let mut b = RetryBudget::new(2, 3);
        assert_eq!(b.tokens(), 2);
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(!b.try_take());
        assert_eq!(b.consumed(), 2);
        // Refill arrives every third tick.
        b.tick();
        b.tick();
        assert_eq!(b.tokens(), 0);
        b.tick();
        assert_eq!(b.tokens(), 1);
        // Cap holds: six more ticks add at most one more token.
        for _ in 0..6 {
            b.tick();
        }
        assert_eq!(b.tokens(), 2);
        assert_eq!(b.issued(), 4);
        assert_eq!(b.digest(), "tok2:cd3:used2");
    }

    #[test]
    fn governor_cooldowns_pace_actions() {
        let cfg = GovernConfig {
            replan_cooldown_s: 300.0,
            brownout_cooldown_s: 60.0,
            ..GovernConfig::default()
        };
        let mut g = Governor::new(1, &cfg);
        assert!(g.replan_ready(0.0));
        g.last_replan_s = 100.0;
        assert!(!g.replan_ready(399.0));
        assert!(g.replan_ready(400.0));
        assert!(g.brownout_ready(0.0));
        g.last_brownout_s = 100.0;
        assert!(!g.brownout_ready(159.0));
        assert!(g.brownout_ready(160.0));
    }

    #[test]
    fn governor_digest_combines_budget_and_slo() {
        let cfg = GovernConfig::default();
        let mut g = Governor::new(2, &cfg);
        assert_eq!(g.digest(), "tok32:cd2:used0");
        g.slo.observe(1, true);
        assert!(g.budget.try_take());
        assert_eq!(g.digest(), "tok31:cd2:used1 slo[1:strained]");
    }
}
