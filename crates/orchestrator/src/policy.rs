//! Admission-order policies.
//!
//! The orchestrator keeps arrived-but-not-yet-admitted jobs in a queue and,
//! each tick, asks the active [`Policy`] which job should be considered next.
//! Admission is head-of-line blocking: if the policy's pick does not fit the
//! remaining link budgets, nothing behind it is admitted this tick. That keeps
//! the policies' semantics honest (SJF really is shortest-job-first, not
//! "shortest job that happens to fit") and the trace deterministic.

use crate::job::JobSpec;

/// How the orchestrator orders queued jobs for admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// First-in first-out by `(arrival, id)`.
    Fifo,
    /// Shortest job first by `(size, arrival, id)`.
    Sjf,
    /// Weighted fair: the job whose class (priority weight) has received the
    /// smallest admitted-count/weight ratio goes first; ties break FIFO.
    WeightedFair,
}

impl Policy {
    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fifo => "fifo",
            Policy::Sjf => "sjf",
            Policy::WeightedFair => "wfair",
        }
    }

    /// All policies, in report order.
    pub fn all() -> [Policy; 3] {
        [Policy::Fifo, Policy::Sjf, Policy::WeightedFair]
    }

    /// Index into `queue` of the job this policy admits next, or `None` when
    /// the queue is empty. `admitted_by_class` is the per-priority admitted
    /// count so far (used by [`Policy::WeightedFair`]).
    pub fn pick_next(self, queue: &[JobSpec], admitted_by_class: &[(u32, u32)]) -> Option<usize> {
        if queue.is_empty() {
            return None;
        }
        let idx = match self {
            // Queue is kept in (arrival, id) order already.
            Policy::Fifo => 0,
            Policy::Sjf => queue
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.size_mb
                        .partial_cmp(&b.size_mb)
                        .expect("sizes are finite")
                        .then(
                            a.arrival_s
                                .partial_cmp(&b.arrival_s)
                                .expect("arrivals are finite"),
                        )
                        .then(a.id.cmp(&b.id))
                })
                .map(|(i, _)| i)
                .expect("queue non-empty"),
            Policy::WeightedFair => {
                let served = |priority: u32| -> u32 {
                    admitted_by_class
                        .iter()
                        .find(|(p, _)| *p == priority)
                        .map(|(_, n)| *n)
                        .unwrap_or(0)
                };
                // Deficit = admitted / weight; smaller deficit is hungrier.
                // Compare cross-multiplied to stay in integers (deterministic).
                queue
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        let da = served(a.priority) as u64 * b.priority as u64;
                        let db = served(b.priority) as u64 * a.priority as u64;
                        da.cmp(&db).then(a.id.cmp(&b.id))
                    })
                    .map(|(i, _)| i)
                    .expect("queue non-empty")
            }
        };
        Some(idx)
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Policy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "fifo" => Ok(Policy::Fifo),
            "sjf" => Ok(Policy::Sjf),
            "wfair" | "weighted-fair" | "weightedfair" => Ok(Policy::WeightedFair),
            other => Err(format!(
                "unknown policy '{other}' (expected fifo|sjf|wfair)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    fn queue() -> Vec<JobSpec> {
        vec![
            JobSpec::new(0, 0.0, 300.0).with_priority(1),
            JobSpec::new(1, 5.0, 100.0).with_priority(4),
            JobSpec::new(2, 10.0, 200.0).with_priority(1),
        ]
    }

    #[test]
    fn fifo_takes_the_head() {
        assert_eq!(Policy::Fifo.pick_next(&queue(), &[]), Some(0));
    }

    #[test]
    fn sjf_takes_the_smallest() {
        assert_eq!(Policy::Sjf.pick_next(&queue(), &[]), Some(1));
    }

    #[test]
    fn sjf_breaks_size_ties_by_arrival_then_id() {
        let q = vec![
            JobSpec::new(3, 5.0, 100.0),
            JobSpec::new(1, 5.0, 100.0),
            JobSpec::new(2, 0.0, 100.0),
        ];
        assert_eq!(Policy::Sjf.pick_next(&q, &[]), Some(2));
    }

    #[test]
    fn weighted_fair_prefers_underserved_heavy_class() {
        // Class 4 has been admitted once, class 1 twice: deficits are
        // 1/4 vs 2/1, so the priority-4 job is hungrier.
        let served = [(1u32, 2u32), (4, 1)];
        assert_eq!(Policy::WeightedFair.pick_next(&queue(), &served), Some(1));
        // With class 4 heavily served, class 1 wins (earliest id first).
        let served = [(1u32, 1u32), (4, 40)];
        assert_eq!(Policy::WeightedFair.pick_next(&queue(), &served), Some(0));
    }

    #[test]
    fn empty_queue_yields_none() {
        for p in Policy::all() {
            assert_eq!(p.pick_next(&[], &[]), None);
        }
    }

    #[test]
    fn parse_and_display_round_trip() {
        for p in Policy::all() {
            let s = p.to_string();
            assert_eq!(s.parse::<Policy>().unwrap(), p);
        }
        assert_eq!(
            "weighted-fair".parse::<Policy>().unwrap(),
            Policy::WeightedFair
        );
        assert!("lifo".parse::<Policy>().is_err());
    }
}
