//! Chaos-campaign harness (DESIGN.md §17): scripted multi-phase fault
//! scenarios run across seeds and control-plane variants, folded into a
//! byte-deterministic resilience scorecard.
//!
//! A campaign pits three fleets against the same scripted faults:
//!
//! * `no-reroute` — supervision quarantines and requeues, but jobs are
//!   pinned to their searched routes (`reroute=false`, `selfheal=false`);
//! * `static` — breaker-blocked requeues hop to the placement's next-ranked
//!   candidate (`reroute=true`, `selfheal=false`, the PR-8 baseline);
//! * `selfheal` — the full control plane: SLO tracking, online placement
//!   re-search, retry budget, brownout shedding (`reroute=true`,
//!   `selfheal=true`).
//!
//! Every variant runs the **same** workload through [`run_fleet_sharded`],
//! so the scorecard is a pure function of `(campaign, preset, jobs, seeds,
//! horizon, shards)` and byte-identical across reruns and shard counts —
//! the CI chaos gate diffs it against a golden snapshot.

use crate::fleet::{topo_workload, FleetConfig, FleetOutcome, TopoFleetConfig};
use crate::history::{json_field, HistoryStore};
use crate::job::JobState;
use crate::shard::run_fleet_sharded;
use xferopt_topo::{campaign_phases, search_routes, Planet, RouteCatalog, SearchConfig};

/// The three control-plane variants a campaign compares, in scorecard order.
pub const VARIANTS: [&str; 3] = ["no-reroute", "static", "selfheal"];

/// Campaign harness inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Campaign name (see [`xferopt_topo::CAMPAIGNS`]).
    pub campaign: String,
    /// Planet preset the fleets run on.
    pub preset: String,
    /// Jobs in the shared workload.
    pub jobs: usize,
    /// World seeds, one full variant sweep per seed.
    pub seeds: Vec<u64>,
    /// Run horizon, simulated seconds.
    pub horizon_s: f64,
    /// Worker-thread cap for the sharded executor (output is byte-identical
    /// for every value).
    pub shards: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            campaign: "rolling-outage".to_string(),
            preset: "mesh".to_string(),
            jobs: 20,
            seeds: vec![7],
            horizon_s: 3600.0,
            shards: 1,
        }
    }
}

/// Per-variant totals aggregated over every seed.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantTotals {
    /// Variant label (one of [`VARIANTS`]).
    pub variant: String,
    /// Jobs that completed, summed over seeds.
    pub completed: usize,
    /// Jobs submitted, summed over seeds.
    pub submitted: usize,
    /// Megabytes moved, summed over seeds.
    pub moved_mb: f64,
    /// Megabytes completed jobs fell short of their sizes (the resilience
    /// invariant: must be 0.0 — completion without the bytes is a lie).
    pub bytes_lost: f64,
    /// Watchdog quarantines.
    pub quarantines: u64,
    /// Requeues after quarantine backoff.
    pub requeues: u64,
    /// Next-ranked-candidate route hops.
    pub reroutes: u64,
    /// Online re-search migrations.
    pub replans: u64,
    /// Brownout sheds (budget and SLO both exhausted).
    pub brownouts: u64,
    /// Retry-budget tokens consumed (`requeues + reroutes + replans` by
    /// construction — every budgeted action costs exactly one).
    pub retries_used: u64,
    /// SLO transitions into `degraded` observed by the monitor.
    pub slo_degrades: u64,
}

/// A finished campaign: the rendered scorecard plus the per-variant totals
/// the acceptance tests assert on.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// The byte-deterministic scorecard text.
    pub scorecard: String,
    /// Totals in [`VARIANTS`] order.
    pub totals: Vec<VariantTotals>,
}

impl CampaignOutcome {
    /// Totals for one variant label.
    ///
    /// # Panics
    /// Panics on a label not in [`VARIANTS`] (harness always emits all
    /// three).
    pub fn variant(&self, label: &str) -> &VariantTotals {
        self.totals
            .iter()
            .find(|t| t.variant == label)
            .unwrap_or_else(|| panic!("no variant {label:?} in campaign totals"))
    }
}

/// Stats from one `(seed, variant)` run.
struct RunStats {
    completed: usize,
    submitted: usize,
    moved_mb: f64,
    bytes_lost: f64,
    quarantines: u64,
    requeues: u64,
    reroutes: u64,
    replans: u64,
    brownouts: u64,
    slo_degrades: u64,
    /// Supervision events as `(t_s, event, ns)` in occurrence order.
    events: Vec<(f64, String, Option<String>)>,
}

impl RunStats {
    fn retries_used(&self) -> u64 {
        self.requeues + self.reroutes + self.replans
    }
}

fn collect(out: &FleetOutcome) -> RunStats {
    let mut bytes_lost = 0.0;
    for o in &out.report.outcomes {
        if o.state == JobState::Completed {
            // The classic fleet allows sub-1 MB final-tick rounding; anything
            // beyond that is genuinely lost bytes.
            bytes_lost += (o.spec.size_mb - o.moved_mb - 1.0).max(0.0);
        }
    }
    let mut events = Vec::new();
    let mut slo_degrades = 0;
    for line in out.supervision_jsonl.lines() {
        let Some(event) = json_field(line, "event") else {
            continue;
        };
        let t = json_field(line, "t_s")
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.0);
        if event == "slo" && json_field(line, "detail").is_some_and(|d| d.ends_with("=>degraded")) {
            slo_degrades += 1;
        }
        events.push((
            t,
            event.to_string(),
            json_field(line, "ns").map(str::to_string),
        ));
    }
    let s = &out.report.supervision;
    RunStats {
        completed: out.report.count(JobState::Completed),
        submitted: out.report.submitted,
        moved_mb: out.report.total_moved_mb(),
        bytes_lost,
        quarantines: s.quarantines,
        requeues: s.requeues,
        reroutes: s.reroutes,
        replans: s.replans,
        brownouts: s.brownouts,
        slo_degrades,
        events,
    }
}

/// Mean time-to-recovery for quarantines inside `[start, end)`: the gap from
/// each quarantine to the same job's next requeue/reroute/replan. `None`
/// when no quarantine in the window recovered.
fn mttr_s(events: &[(f64, String, Option<String>)], start: f64, end: f64) -> Option<f64> {
    let mut deltas = Vec::new();
    for (i, (t, event, ns)) in events.iter().enumerate() {
        if event != "quarantine" || *t < start || *t >= end || ns.is_none() {
            continue;
        }
        for (t2, e2, ns2) in &events[i + 1..] {
            if ns2 == ns && matches!(e2.as_str(), "requeue" | "reroute" | "replan") {
                deltas.push(t2 - t);
                break;
            }
        }
    }
    if deltas.is_empty() {
        None
    } else {
        Some(deltas.iter().sum::<f64>() / deltas.len() as f64)
    }
}

/// Run the campaign: every variant over every seed on the shared workload,
/// folded into a scorecard. Deterministic — same config, same bytes, for
/// any `shards`.
///
/// # Errors
/// Returns an error for an unknown preset or campaign name.
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignOutcome, String> {
    let planet = Planet::preset(&cfg.preset).map_err(|e| e.to_string())?;
    let phases =
        campaign_phases(&planet, &cfg.campaign, cfg.horizon_s).map_err(|e| e.to_string())?;
    if cfg.jobs == 0 || cfg.seeds.is_empty() {
        return Err("campaign needs at least one job and one seed".to_string());
    }
    let search = SearchConfig::default();
    let placement = search_routes(&planet, &search).map_err(|e| e.to_string())?;
    let catalog = RouteCatalog::enumerate(&planet, search.k).map_err(|e| e.to_string())?;
    let workload = topo_workload(&placement, &catalog, cfg.jobs);

    let budget_cap = crate::govern::GovernConfig::default().budget_cap;
    let mut scorecard = format!(
        "chaos campaign={} preset={} jobs={} seeds={} horizon_s={:.0} shards={} budget={}\n",
        cfg.campaign,
        cfg.preset,
        cfg.jobs,
        cfg.seeds
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(","),
        cfg.horizon_s,
        cfg.shards,
        budget_cap,
    );
    for (label, start, end) in &phases {
        scorecard.push_str(&format!("phase {label} window={start:.0}-{end:.0}\n"));
    }

    // variant -> per-seed stats, in VARIANTS x seed order.
    let mut all: Vec<(usize, u64, RunStats)> = Vec::new();
    for &seed in &cfg.seeds {
        for (vi, variant) in VARIANTS.iter().enumerate() {
            let mut tc = TopoFleetConfig::preset(&cfg.preset);
            tc.campaign = Some(cfg.campaign.clone());
            tc.reroute = vi > 0;
            tc.selfheal = vi == 2;
            let fleet_cfg = FleetConfig {
                seed,
                horizon_s: cfg.horizon_s,
                topo: Some(tc),
                ..FleetConfig::default()
            };
            let out = run_fleet_sharded(
                &workload,
                &fleet_cfg,
                &mut HistoryStore::in_memory(),
                cfg.shards.max(1),
            );
            let stats = collect(&out);
            scorecard.push_str(&format!(
                "seed={seed} variant={variant} completed={}/{} moved_mb={:.1} bytes_lost={:.1} \
                 quarantines={} requeues={} reroutes={} replans={} brownouts={} retries_used={} \
                 slo_degrades={}\n",
                stats.completed,
                stats.submitted,
                stats.moved_mb,
                stats.bytes_lost,
                stats.quarantines,
                stats.requeues,
                stats.reroutes,
                stats.replans,
                stats.brownouts,
                stats.retries_used(),
                stats.slo_degrades,
            ));
            all.push((vi, seed, stats));
        }
    }

    let mut totals = Vec::new();
    for (vi, variant) in VARIANTS.iter().enumerate() {
        let runs: Vec<&RunStats> = all
            .iter()
            .filter(|(v, _, _)| *v == vi)
            .map(|(_, _, s)| s)
            .collect();
        // Per-phase recovery stats pooled over seeds: event count in the
        // window plus mean time-to-recovery of the window's quarantines.
        for (label, start, end) in &phases {
            let events: usize = runs
                .iter()
                .map(|s| {
                    s.events
                        .iter()
                        .filter(|(t, _, _)| *t >= *start && *t < *end)
                        .count()
                })
                .sum();
            let per_run: Vec<f64> = runs
                .iter()
                .filter_map(|s| mttr_s(&s.events, *start, *end))
                .collect();
            let mttr = if per_run.is_empty() {
                "-".to_string()
            } else {
                format!("{:.1}", per_run.iter().sum::<f64>() / per_run.len() as f64)
            };
            scorecard.push_str(&format!(
                "recovery variant={variant} phase={label} events={events} mttr_s={mttr}\n"
            ));
        }
        let t = VariantTotals {
            variant: variant.to_string(),
            completed: runs.iter().map(|s| s.completed).sum(),
            submitted: runs.iter().map(|s| s.submitted).sum(),
            moved_mb: runs.iter().map(|s| s.moved_mb).sum(),
            bytes_lost: runs.iter().map(|s| s.bytes_lost).sum(),
            quarantines: runs.iter().map(|s| s.quarantines).sum(),
            requeues: runs.iter().map(|s| s.requeues).sum(),
            reroutes: runs.iter().map(|s| s.reroutes).sum(),
            replans: runs.iter().map(|s| s.replans).sum(),
            brownouts: runs.iter().map(|s| s.brownouts).sum(),
            retries_used: runs.iter().map(|s| s.retries_used()).sum(),
            slo_degrades: runs.iter().map(|s| s.slo_degrades).sum(),
        };
        scorecard.push_str(&format!(
            "total variant={} completed={}/{} moved_mb={:.1} bytes_lost={:.1} retries_used={} \
             budget={}\n",
            t.variant,
            t.completed,
            t.submitted,
            t.moved_mb,
            t.bytes_lost,
            t.retries_used,
            budget_cap as usize * cfg.seeds.len(),
        ));
        totals.push(t);
    }
    Ok(CampaignOutcome { scorecard, totals })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_campaign_and_preset_are_refused() {
        let bad_campaign = CampaignConfig {
            campaign: "nope".to_string(),
            ..CampaignConfig::default()
        };
        assert!(run_campaign(&bad_campaign).unwrap_err().contains("nope"));
        let bad_preset = CampaignConfig {
            preset: "flatland".to_string(),
            ..CampaignConfig::default()
        };
        assert!(run_campaign(&bad_preset).is_err());
        let empty = CampaignConfig {
            jobs: 0,
            ..CampaignConfig::default()
        };
        assert!(run_campaign(&empty).unwrap_err().contains("at least one"));
    }

    #[test]
    fn nic_degrade_campaign_is_deterministic_and_loses_no_bytes() {
        let cfg = CampaignConfig {
            campaign: "nic-degrade".to_string(),
            jobs: 6,
            horizon_s: 2400.0,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&cfg).unwrap();
        let b = run_campaign(&cfg).unwrap();
        assert_eq!(a.scorecard, b.scorecard, "scorecard bytes");
        for t in &a.totals {
            assert_eq!(
                t.bytes_lost, 0.0,
                "{}: completed jobs lost bytes",
                t.variant
            );
            assert_eq!(t.retries_used, t.requeues + t.reroutes + t.replans);
        }
        assert!(a.scorecard.starts_with("chaos campaign=nic-degrade"));
        assert!(a.scorecard.contains("phase nic-degrade window=600-1500"));
    }
}
