//! Variable-length job routes.
//!
//! The paper world has exactly two routes (the [`Route`] enum); a planet
//! topology has an arbitrary catalog of multi-hop routes. [`JobRoute`] is the
//! orchestrator's common currency: a stable name, the raw link indices the
//! route crosses (in network construction order), and the simulation path the
//! route's transfers run on. Classic fleets build it [`From<Route>`]; topo
//! fleets build it from a [`xferopt_topo::BuiltRoute`].

use xferopt_scenarios::Route;

/// A concrete route a job transfers on: name + link list + sim path.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRoute {
    /// Stable route name ("anl->uchicago" for the classic enum routes,
    /// "src->dst:rank" for catalog routes).
    pub name: String,
    /// Raw link indices the route crosses, in network construction order.
    /// Admission reserves streams on every one; breakers gate on every one.
    pub links: Vec<usize>,
    /// Index of the route's [`xferopt_net::Path`] in the simulation world.
    pub path: usize,
}

impl JobRoute {
    /// Build from explicit parts.
    pub fn new(name: impl Into<String>, links: Vec<usize>, path: usize) -> Self {
        assert!(!links.is_empty(), "a route must cross at least one link");
        JobRoute {
            name: name.into(),
            links,
            path,
        }
    }

    /// Stable route name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The link indices the route crosses.
    pub fn links(&self) -> &[usize] {
        &self.links
    }

    /// The simulation path index transfers on this route use.
    pub fn path_index(&self) -> usize {
        self.path
    }

    /// The route's bottleneck-of-interest link: its last hop. For the classic
    /// enum routes this is exactly the WAN link index the fault plans target
    /// (`[0, 1] → 1`, `[0, 2] → 2`).
    pub fn wan_link_index(&self) -> usize {
        *self.links.last().expect("routes are non-empty")
    }
}

impl From<Route> for JobRoute {
    fn from(route: Route) -> Self {
        JobRoute {
            name: route.name().to_string(),
            links: vec![0, route.wan_link_index()],
            path: route.path_index(),
        }
    }
}

impl PartialEq<Route> for JobRoute {
    fn eq(&self, other: &Route) -> bool {
        self.name == other.name()
    }
}

impl std::fmt::Display for JobRoute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_routes_convert_losslessly() {
        let uc = JobRoute::from(Route::UChicago);
        assert_eq!(uc.name(), "anl->uchicago");
        assert_eq!(uc.links(), &[0, 1]);
        assert_eq!(uc.path_index(), 0);
        assert_eq!(uc.wan_link_index(), 1);
        let tacc = JobRoute::from(Route::Tacc);
        assert_eq!(tacc.links(), &[0, 2]);
        assert_eq!(tacc.wan_link_index(), 2);
        assert_eq!(tacc.path_index(), 1);
        assert!(uc == Route::UChicago);
        assert!(uc != Route::Tacc);
    }

    #[test]
    fn multi_hop_routes_carry_their_full_link_list() {
        let r = JobRoute::new("use->aps:1", vec![0, 7, 9, 3], 5);
        assert_eq!(r.links(), &[0, 7, 9, 3]);
        assert_eq!(r.wan_link_index(), 3);
        assert_eq!(r.to_string(), "use->aps:1");
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_routes_are_rejected() {
        JobRoute::new("nowhere", Vec::new(), 0);
    }
}
