//! Persistent warm-start history store.
//!
//! Every completed job appends one [`HistoryRecord`] — the context it ran in
//! (route, external stream load, tuner) and the outcome it found (best
//! `nc × np`, achieved MB/s). New jobs query the store for the nearest
//! historical match and seed their tuner at the recorded optimum instead of
//! the Globus default, cutting the convergence transient (the paper's §V-C
//! "log files" future-work direction, following Arslan & Kosar's historical
//! tuning).
//!
//! Records are stored as JSONL (one file per store directory, append-only)
//! with fixed key order, so the store is diffable and byte-deterministic.
//!
//! # Distance metric (see DESIGN.md §11)
//!
//! ```text
//! d(a, b) = 1000 · [route differs]
//!         + 0.5  · [tuner differs]
//!         + |ln((1 + ext_streams_a) / (1 + ext_streams_b))|
//!         + |ln((1 + cmp_jobs_a)    / (1 + cmp_jobs_b))|
//! ```
//!
//! Route mismatch is effectively disqualifying; tuner mismatch is a mild
//! penalty (an optimum found by compass search still seeds Nelder–Mead well);
//! load terms compare on a log scale because contention effects are
//! multiplicative.
//!
//! Distance ties are broken deterministically so reruns are byte-identical:
//! first a record from the *same scenario* as the query wins, then the
//! lexicographically smallest context key
//! ([`HistoryRecord::context_key`]), then insertion order (earliest record
//! wins).

use std::io::Write as _;
use std::path::{Path, PathBuf};

use xferopt_simcore::metrics::json_f64;
use xferopt_tuners::{Point, TunerKind, WarmStart};

/// File name used inside a history directory.
pub const HISTORY_FILE: &str = "history.jsonl";

/// One completed job's context and outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRecord {
    /// Name of the route the job ran on (`"anl->uchicago"` for the classic
    /// enum routes, a catalog route name like `"use->euw:0"` on topo fleets).
    pub route: String,
    /// Tuner strategy that produced the optimum.
    pub tuner: TunerKind,
    /// External TCP streams on the route's WAN link at admission time
    /// (other jobs' streams — the job's own are excluded).
    pub ext_streams: f64,
    /// Competing compute jobs on the source host at admission time.
    pub cmp_jobs: f64,
    /// Best parameters the tuner settled on.
    pub best: Point,
    /// Throughput observed at `best`, MB/s.
    pub achieved_mbs: f64,
    /// Scenario label the job ran under (`"fleet"`, a tournament preset
    /// name, …). Empty on records written before the field existed; used
    /// only as a tiebreak, never in the distance metric.
    pub scenario: String,
}

impl HistoryRecord {
    /// Distance to a query context (see the module docs for the metric).
    pub fn distance(&self, route: &str, tuner: TunerKind, ext_streams: f64, cmp_jobs: f64) -> f64 {
        let mut d = 0.0;
        if self.route != route {
            d += 1000.0;
        }
        if self.tuner != tuner {
            d += 0.5;
        }
        d += (((1.0 + self.ext_streams) / (1.0 + ext_streams)).ln()).abs();
        d += (((1.0 + self.cmp_jobs) / (1.0 + cmp_jobs)).ln()).abs();
        d
    }

    /// Render as one JSON line with fixed key order.
    pub fn to_json(&self) -> String {
        let best = self
            .best
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"kind\":\"history\",\"route\":\"{}\",\"tuner\":\"{}\",\"ext_streams\":{},\"cmp_jobs\":{},\"best\":[{}],\"achieved_mbs\":{},\"scenario\":\"{}\"}}",
            self.route,
            self.tuner.name(),
            json_f64(self.ext_streams),
            json_f64(self.cmp_jobs),
            best,
            json_f64(self.achieved_mbs),
            self.scenario,
        )
    }

    /// Deterministic, human-readable context key used as the lexicographic
    /// tiebreak between equidistant records.
    pub fn context_key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}",
            self.route,
            self.tuner.name(),
            json_f64(self.ext_streams),
            json_f64(self.cmp_jobs),
            self.scenario,
        )
    }

    /// Parse one JSON line produced by [`HistoryRecord::to_json`]. Lines of
    /// other kinds (or malformed lines) yield `None`.
    pub fn from_json(line: &str) -> Option<HistoryRecord> {
        if json_field(line, "kind")? != "history" {
            return None;
        }
        let route = json_field(line, "route")?.to_string();
        if route.is_empty() {
            return None;
        }
        let tuner: TunerKind = json_field(line, "tuner")?.parse().ok()?;
        let ext_streams: f64 = json_field(line, "ext_streams")?.parse().ok()?;
        let cmp_jobs: f64 = json_field(line, "cmp_jobs")?.parse().ok()?;
        let best: Point = json_field(line, "best")?
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| s.trim().parse::<i64>())
            .collect::<Result<_, _>>()
            .ok()?;
        if best.is_empty() {
            return None;
        }
        let achieved_mbs: f64 = json_field(line, "achieved_mbs")?.parse().ok()?;
        // Records written before the scenario field existed parse as "".
        let scenario = json_field(line, "scenario").unwrap_or("").to_string();
        Some(HistoryRecord {
            route,
            tuner,
            ext_streams,
            cmp_jobs,
            best,
            achieved_mbs,
            scenario,
        })
    }
}

/// Append-only store of [`HistoryRecord`]s, optionally backed by a JSONL file.
#[derive(Debug)]
pub struct HistoryStore {
    records: Vec<HistoryRecord>,
    path: Option<PathBuf>,
    /// Malformed / foreign lines skipped while loading the backing file.
    skipped: usize,
    /// When false, `append` updates memory only (used by checkpoint replay,
    /// which re-runs ticks whose records the backing file already holds).
    persist: bool,
}

impl Default for HistoryStore {
    fn default() -> Self {
        HistoryStore {
            records: Vec::new(),
            path: None,
            skipped: 0,
            persist: true,
        }
    }
}

impl HistoryStore {
    /// A store that lives only in memory (used by tests and cold runs).
    pub fn in_memory() -> Self {
        HistoryStore::default()
    }

    /// Open (or create) a store backed by `dir/history.jsonl`. Existing
    /// records are loaded; malformed lines are skipped (and counted — see
    /// [`HistoryStore::skipped`], surfaced as the `history_lines_skipped`
    /// metric by the fleet runner).
    ///
    /// # Errors
    /// Returns any I/O error from creating the directory or reading the file.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(HISTORY_FILE);
        let mut records = Vec::new();
        let mut skipped = 0usize;
        if path.exists() {
            for line in std::fs::read_to_string(&path)?.lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                match HistoryRecord::from_json(line) {
                    Some(r) => records.push(r),
                    None => skipped += 1,
                }
            }
        }
        Ok(HistoryStore {
            records,
            path: Some(path),
            skipped,
            persist: true,
        })
    }

    /// Malformed lines skipped when the backing file was loaded.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// An in-memory snapshot of this store for one shard of a sharded fleet
    /// run: same records and `skipped` count, but no backing file — the
    /// shard appends locally while the sharded runner serializes the same
    /// records into the real store in deterministic job-id order (DESIGN.md
    /// §15). For a single-component run the snapshot's contents track the
    /// real store exactly, keeping warm-start lookups byte-identical to the
    /// single-threaded reference path.
    pub fn shard_snapshot(&self) -> HistoryStore {
        HistoryStore {
            records: self.records.clone(),
            path: None,
            skipped: self.skipped,
            persist: true,
        }
    }

    /// Directory the store persists to, when file-backed.
    pub fn dir(&self) -> Option<&Path> {
        self.path.as_deref().and_then(Path::parent)
    }

    /// Toggle persistence: when off, [`HistoryStore::append`] updates memory
    /// only. Checkpoint resume replays already-persisted ticks with
    /// persistence off so the backing file never holds duplicate records.
    pub fn set_persist(&mut self, persist: bool) {
        self.persist = persist;
    }

    /// Drop in-memory records beyond `len` (checkpoint replay rewinds the
    /// store to its state at run start). The backing file is untouched.
    pub fn truncate(&mut self, len: usize) {
        self.records.truncate(len);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, in insertion order.
    pub fn records(&self) -> &[HistoryRecord] {
        &self.records
    }

    /// Append a record (and persist it when file-backed).
    ///
    /// # Errors
    /// Returns any I/O error from appending to the backing file.
    pub fn append(&mut self, record: HistoryRecord) -> std::io::Result<()> {
        if !self.persist {
            self.records.push(record);
            return Ok(());
        }
        if let Some(path) = &self.path {
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            writeln!(f, "{}", record.to_json())?;
        }
        self.records.push(record);
        Ok(())
    }

    /// The nearest record to a query context, with its distance. Distance
    /// ties break deterministically: same-`scenario` records first (when the
    /// query names one), then the lexicographically smallest
    /// [`HistoryRecord::context_key`], then insertion order (earliest wins).
    /// `None` when the store is empty.
    pub fn nearest(
        &self,
        route: &str,
        tuner: TunerKind,
        ext_streams: f64,
        cmp_jobs: f64,
        scenario: &str,
    ) -> Option<(&HistoryRecord, f64)> {
        let mut best: Option<(&HistoryRecord, f64, bool, String)> = None;
        for r in &self.records {
            let d = r.distance(route, tuner, ext_streams, cmp_jobs);
            let mismatch = !scenario.is_empty() && r.scenario != scenario;
            let better = match &best {
                None => true,
                Some((_, bd, bmis, bkey)) => {
                    if d != *bd {
                        d < *bd
                    } else if mismatch != *bmis {
                        // Same distance: prefer the same-scenario record.
                        !mismatch
                    } else {
                        // Same distance and scenario class: lexicographic
                        // context key; equal keys keep the earliest record.
                        r.context_key() < *bkey
                    }
                }
            };
            if better {
                best = Some((r, d, mismatch, r.context_key()));
            }
        }
        best.map(|(r, d, _, _)| (r, d))
    }

    /// A [`WarmStart`] seed for a new job: the nearest record's optimum when
    /// one exists within `max_distance`, else the cold default `x0`.
    /// `scenario` participates only in tie-breaking (see
    /// [`HistoryStore::nearest`]).
    #[allow(clippy::too_many_arguments)]
    pub fn warm_start(
        &self,
        route: &str,
        tuner: TunerKind,
        ext_streams: f64,
        cmp_jobs: f64,
        scenario: &str,
        cold_x0: Point,
        max_distance: f64,
    ) -> WarmStart {
        match self.nearest(route, tuner, ext_streams, cmp_jobs, scenario) {
            Some((r, d)) if d <= max_distance && r.best.len() == cold_x0.len() => {
                WarmStart::from_history(r.best.clone(), d)
            }
            _ => WarmStart::cold(cold_x0),
        }
    }
}

/// Extract the raw text of a top-level JSON field (string contents, array
/// interior, or bare scalar). Mirrors the scanner used by the scenarios
/// telemetry summarizer. Shared with the checkpoint parser.
pub(crate) fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    match rest.as_bytes().first()? {
        b'"' => {
            let end = rest[1..].find('"')? + 1;
            Some(&rest[1..end])
        }
        b'[' => {
            let end = rest.find(']')?;
            Some(&rest[1..end])
        }
        _ => {
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            Some(&rest[..end])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const UC: &str = "anl->uchicago";
    const TACC: &str = "anl->tacc";

    fn rec(route: &str, tuner: TunerKind, ext: f64, best: Point, mbs: f64) -> HistoryRecord {
        HistoryRecord {
            route: route.to_string(),
            tuner,
            ext_streams: ext,
            cmp_jobs: 0.0,
            best,
            achieved_mbs: mbs,
            scenario: String::new(),
        }
    }

    fn rec_in(scenario: &str, ext: f64, best: Point) -> HistoryRecord {
        HistoryRecord {
            scenario: scenario.to_string(),
            ..rec(UC, TunerKind::Cs, ext, best, 3000.0)
        }
    }

    #[test]
    fn json_round_trips() {
        let r = HistoryRecord {
            scenario: "fleet".to_string(),
            ..rec(TACC, TunerKind::Nm, 48.5, vec![12, 8], 2210.25)
        };
        let line = r.to_json();
        assert!(line.starts_with("{\"kind\":\"history\",\"route\":\"anl->tacc\""));
        assert!(line.ends_with("\"scenario\":\"fleet\"}"));
        assert_eq!(HistoryRecord::from_json(&line).unwrap(), r);
        // Non-history and malformed lines are skipped.
        assert!(HistoryRecord::from_json("{\"kind\":\"decision\"}").is_none());
        assert!(HistoryRecord::from_json("not json").is_none());
    }

    #[test]
    fn pre_scenario_lines_still_parse() {
        // A line written before the scenario field existed.
        let line = "{\"kind\":\"history\",\"route\":\"anl->uchicago\",\"tuner\":\"cs-tuner\",\"ext_streams\":5,\"cmp_jobs\":0,\"best\":[8,8],\"achieved_mbs\":3500}";
        let r = HistoryRecord::from_json(line).expect("legacy line parses");
        assert_eq!(r.scenario, "", "missing scenario defaults to empty");
        assert_eq!(r.best, vec![8, 8]);
    }

    #[test]
    fn distance_prefers_same_route_and_similar_load() {
        let same = rec(UC, TunerKind::Cs, 100.0, vec![8], 3000.0);
        let other_route = rec(TACC, TunerKind::Cs, 100.0, vec![8], 2000.0);
        let other_tuner = rec(UC, TunerKind::Nm, 100.0, vec![8], 3000.0);
        let d_same = same.distance(UC, TunerKind::Cs, 110.0, 0.0);
        let d_route = other_route.distance(UC, TunerKind::Cs, 110.0, 0.0);
        let d_tuner = other_tuner.distance(UC, TunerKind::Cs, 110.0, 0.0);
        assert!(d_same < d_tuner, "{d_same} vs {d_tuner}");
        assert!(d_tuner < d_route, "{d_tuner} vs {d_route}");
        assert!(d_route >= 1000.0);
        // Exact context match is distance 0.
        assert_eq!(same.distance(UC, TunerKind::Cs, 100.0, 0.0), 0.0);
    }

    #[test]
    fn nearest_breaks_ties_on_insertion_order() {
        let mut s = HistoryStore::in_memory();
        s.append(rec(UC, TunerKind::Cs, 0.0, vec![6], 3900.0))
            .unwrap();
        s.append(rec(UC, TunerKind::Cs, 0.0, vec![9], 3800.0))
            .unwrap();
        let (r, d) = s.nearest(UC, TunerKind::Cs, 0.0, 0.0, "").unwrap();
        assert_eq!(d, 0.0);
        assert_eq!(r.best, vec![6], "earliest exact match wins");
    }

    #[test]
    fn nearest_prefers_same_scenario_on_distance_ties() {
        let mut s = HistoryStore::in_memory();
        s.append(rec_in("fleet", 4.0, vec![6])).unwrap();
        s.append(rec_in("uc-contended", 4.0, vec![9])).unwrap();
        // Both are at the same distance from the query; the same-scenario
        // record must win even though it was inserted later.
        let (r, _) = s
            .nearest(UC, TunerKind::Cs, 4.0, 0.0, "uc-contended")
            .unwrap();
        assert_eq!(r.best, vec![9], "same-scenario record wins the tie");
        // Without a scenario in the query the tiebreak is the lexicographic
        // context key ("...|fleet" < "...|uc-contended").
        let (r, _) = s.nearest(UC, TunerKind::Cs, 4.0, 0.0, "").unwrap();
        assert_eq!(r.best, vec![6]);
        // Scenario never overrides a genuinely closer record.
        s.append(rec_in("uc-quiet", 4.05, vec![12])).unwrap();
        let (r, _) = s
            .nearest(UC, TunerKind::Cs, 4.05, 0.0, "uc-contended")
            .unwrap();
        assert_eq!(r.best, vec![12], "distance dominates the scenario tiebreak");
    }

    #[test]
    fn equidistant_tiebreak_is_lexicographic_then_insertion_order() {
        let mut s = HistoryStore::in_memory();
        // Two records whose distance to the query is exactly the tuner
        // mismatch penalty (0.5), same scenario class: the smaller context
        // key must win regardless of insertion order.
        let nm = rec(UC, TunerKind::Nm, 3.0, vec![30], 3000.0);
        let cd = rec(UC, TunerKind::Cd, 3.0, vec![20], 3000.0);
        s.append(nm).unwrap();
        s.append(cd).unwrap();
        let (r, d) = s.nearest(UC, TunerKind::Cs, 3.0, 0.0, "").unwrap();
        assert_eq!(d, 0.5);
        assert_eq!(
            r.best,
            vec![20],
            "cd-tuner key sorts before nm-tuner, so it wins the tie"
        );
        // Identical contexts: earliest insertion wins.
        let mut s2 = HistoryStore::in_memory();
        s2.append(rec_in("fleet", 3.0, vec![5])).unwrap();
        s2.append(rec_in("fleet", 3.0, vec![8])).unwrap();
        let (r, _) = s2.nearest(UC, TunerKind::Cs, 3.0, 0.0, "fleet").unwrap();
        assert_eq!(r.best, vec![5]);
    }

    #[test]
    fn warm_start_falls_back_to_cold() {
        let mut s = HistoryStore::in_memory();
        assert!(!s
            .warm_start(UC, TunerKind::Cs, 0.0, 0.0, "", vec![2, 8], 2.0)
            .is_warm());
        s.append(rec(TACC, TunerKind::Cs, 0.0, vec![12, 8], 2100.0))
            .unwrap();
        // Nearest is on the wrong route: distance 1000 exceeds the cutoff.
        let w = s.warm_start(UC, TunerKind::Cs, 0.0, 0.0, "", vec![2, 8], 2.0);
        assert!(!w.is_warm());
        s.append(rec(UC, TunerKind::Cs, 3.0, vec![7, 8], 3900.0))
            .unwrap();
        let w = s.warm_start(UC, TunerKind::Cs, 3.0, 0.0, "", vec![2, 8], 2.0);
        assert!(w.is_warm());
        assert_eq!(w.x0, vec![7, 8]);
        // Dimension mismatch (1-D record, 2-D query) falls back to cold.
        let mut s1 = HistoryStore::in_memory();
        s1.append(rec(UC, TunerKind::Cs, 3.0, vec![7], 3900.0))
            .unwrap();
        assert!(!s1
            .warm_start(UC, TunerKind::Cs, 3.0, 0.0, "", vec![2, 8], 2.0)
            .is_warm());
    }

    #[test]
    fn file_backed_store_persists_across_open() {
        let dir = std::env::temp_dir().join(format!("xferopt-hist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut s = HistoryStore::open(&dir).unwrap();
            assert!(s.is_empty());
            s.append(rec(UC, TunerKind::Cs, 5.0, vec![8, 8], 3500.0))
                .unwrap();
            s.append(rec(TACC, TunerKind::Nm, 0.0, vec![20, 8], 2300.0))
                .unwrap();
        }
        let s = HistoryStore::open(&dir).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.records()[1].best, vec![20, 8]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
