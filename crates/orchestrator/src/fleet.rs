//! The fleet orchestrator: a deterministic tick loop that admits jobs,
//! drives one online tuner per running job, and records outcomes.
//!
//! Per tick (`tick_s`, which must divide `epoch_s`), in this order:
//!
//! 1. arrivals — pending jobs whose arrival time has come join the queue;
//! 2. admission — the [`Policy`] picks queued jobs; each is granted a stream
//!    reservation by the [`AdmissionController`] or blocks the queue
//!    (head-of-line blocking keeps policy semantics exact);
//! 3. the world advances one tick;
//! 4. completions — finished jobs close their epoch, release their
//!    reservation, and append a [`HistoryRecord`];
//! 5. epoch boundaries — running jobs whose control epoch elapsed report the
//!    observed throughput to their tuner and start the next epoch.
//!
//! Steps 1, 2, 4, and 5 iterate in job-id order, so a fleet run is a pure
//! function of `(workload, config)`: two runs with the same seed produce
//! byte-identical reports (see `tests/fleet.rs`).

use std::collections::BTreeMap;

use crate::admission::{AdmissionController, DEFAULT_LINK_BUDGET};
use crate::history::{HistoryRecord, HistoryStore};
use crate::job::{JobId, JobSpec, JobState, Workload};
use crate::policy::Policy;
use xferopt_scenarios::PaperWorld;
use xferopt_simcore::SimDuration;
use xferopt_transfer::{EpochReport, EpochStart, StreamParams, TransferId};
use xferopt_tuners::{Domain, OnlineTuner, Point, WarmStart};

/// Fleet run configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Admission-order policy.
    pub policy: Policy,
    /// World seed (noise, fault RNG).
    pub seed: u64,
    /// Run horizon, simulated seconds.
    pub horizon_s: f64,
    /// Orchestrator tick, seconds. Must divide `epoch_s`.
    pub tick_s: f64,
    /// Control-epoch length handed to each job's tuner, seconds.
    pub epoch_s: f64,
    /// Per-link stream budget for admission control.
    pub link_budget: u32,
    /// Query the history store to warm-start tuners. When false the run is
    /// cold (but still appends history), so a later warm run can be compared.
    pub warm_start: bool,
    /// Maximum history-match distance accepted for a warm start.
    pub max_match_distance: f64,
    /// Log-std of per-epoch throughput noise on each transfer.
    pub noise_sigma: f64,
    /// Enable per-job tuner audit logs (namespaced by job id).
    pub audit: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            policy: Policy::Fifo,
            seed: 7,
            horizon_s: 3600.0,
            tick_s: 5.0,
            epoch_s: 30.0,
            link_budget: DEFAULT_LINK_BUDGET,
            warm_start: true,
            max_match_distance: 2.0,
            noise_sigma: 0.05,
            audit: true,
        }
    }
}

impl FleetConfig {
    /// Validate tick/epoch/horizon alignment.
    ///
    /// # Panics
    /// Panics when `tick_s` is non-positive or does not divide `epoch_s`.
    pub fn validate(&self) {
        assert!(self.tick_s > 0.0, "tick must be positive");
        assert!(self.epoch_s > 0.0, "epoch must be positive");
        assert!(self.horizon_s > 0.0, "horizon must be positive");
        let ratio = self.epoch_s / self.tick_s;
        assert!(
            (ratio - ratio.round()).abs() < 1e-9 && ratio >= 1.0,
            "tick {} must divide epoch {}",
            self.tick_s,
            self.epoch_s
        );
    }
}

/// Terminal record for one job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job.
    pub id: JobId,
    /// Terminal lifecycle state (`completed`, `unfinished`, `queued`, or
    /// `pending` — the latter two when the horizon arrives first).
    pub state: JobState,
    /// The spec the job ran with.
    pub spec: JobSpec,
    /// Admission time (fleet seconds), if admitted.
    pub admitted_s: Option<f64>,
    /// Completion time (fleet seconds), if completed.
    pub finished_s: Option<f64>,
    /// Streams granted by admission control (0 if never admitted).
    pub granted_streams: u32,
    /// Megabytes moved by the horizon.
    pub moved_mb: f64,
    /// Mean throughput while running, MB/s.
    pub mean_mbs: f64,
    /// Best per-epoch observed throughput, MB/s.
    pub best_mbs: f64,
    /// Parameters in force during the best epoch.
    pub best_params: StreamParams,
    /// Control epochs completed.
    pub epochs: u32,
    /// History-match distance when warm-started; `None` for cold starts.
    pub warm_distance: Option<f64>,
    /// Seconds from admission until an epoch first reached 90 % of the job's
    /// best observed throughput (the warm-start convergence metric).
    pub time_to_90_s: Option<f64>,
    /// Whether the deadline was met (`None` when the job has no deadline).
    pub deadline_met: Option<bool>,
}

impl JobOutcome {
    /// Render as one fixed-format report line.
    pub fn render(&self) -> String {
        let opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.1}"),
            None => "-".to_string(),
        };
        let warm = match self.warm_distance {
            Some(d) => format!("warm:{d:.3}"),
            None => "cold".to_string(),
        };
        let deadline = match self.deadline_met {
            Some(true) => "met",
            Some(false) => "missed",
            None => "-",
        };
        format!(
            "{} state={} route={} tuner={} size_mb={:.0} prio={} arrival_s={:.0} admitted_s={} finished_s={} granted={} start={} best={} best_mbs={:.1} mean_mbs={:.1} moved_mb={:.1} epochs={} t90_s={} deadline={}",
            self.id,
            self.state.name(),
            self.spec.route.name(),
            self.spec.tuner.name(),
            self.spec.size_mb,
            self.spec.priority,
            self.spec.arrival_s,
            opt(self.admitted_s),
            opt(self.finished_s),
            self.granted_streams,
            warm,
            self.best_params.compact(),
            self.best_mbs,
            self.mean_mbs,
            self.moved_mb,
            self.epochs,
            opt(self.time_to_90_s),
            deadline,
        )
    }
}

/// Deterministic summary of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The configuration the fleet ran with.
    pub config: FleetConfig,
    /// Number of jobs submitted.
    pub submitted: usize,
    /// Per-job outcomes, in job-id order.
    pub outcomes: Vec<JobOutcome>,
}

impl FleetReport {
    /// Jobs that reached `state`.
    pub fn count(&self, state: JobState) -> usize {
        self.outcomes.iter().filter(|o| o.state == state).count()
    }

    /// Total megabytes moved across the fleet.
    pub fn total_moved_mb(&self) -> f64 {
        self.outcomes.iter().map(|o| o.moved_mb).sum()
    }

    /// Completion time of the last finished job, if any completed.
    pub fn makespan_s(&self) -> Option<f64> {
        self.outcomes
            .iter()
            .filter_map(|o| o.finished_s)
            .fold(None, |m, t| Some(m.map_or(t, |x: f64| x.max(t))))
    }

    /// Mean time-to-90 % over jobs matching `warm` (the warm-vs-cold
    /// comparison metric). `None` when no matching job converged.
    pub fn mean_time_to_90_s(&self, warm: bool) -> Option<f64> {
        let ts: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.warm_distance.is_some() == warm)
            .filter_map(|o| o.time_to_90_s)
            .collect();
        if ts.is_empty() {
            None
        } else {
            Some(ts.iter().sum::<f64>() / ts.len() as f64)
        }
    }

    /// Render the whole report as deterministic fixed-format text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fleet policy={} seed={} jobs={} horizon_s={:.0} tick_s={:.0} epoch_s={:.0} budget={} warm={} audit={}\n",
            self.config.policy,
            self.config.seed,
            self.submitted,
            self.config.horizon_s,
            self.config.tick_s,
            self.config.epoch_s,
            self.config.link_budget,
            self.config.warm_start,
            self.config.audit,
        ));
        for o in &self.outcomes {
            out.push_str(&o.render());
            out.push('\n');
        }
        let opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.1}"),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "summary completed={} unfinished={} queued={} pending={} moved_mb={:.1} makespan_s={} t90_cold_s={} t90_warm_s={}\n",
            self.count(JobState::Completed),
            self.count(JobState::Unfinished),
            self.count(JobState::Queued),
            self.count(JobState::Pending),
            self.total_moved_mb(),
            opt(self.makespan_s()),
            opt(self.mean_time_to_90_s(false)),
            opt(self.mean_time_to_90_s(true)),
        ));
        out
    }

    /// Render per-job outcomes as CSV (header + one row per job).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "job,state,route,tuner,size_mb,priority,arrival_s,admitted_s,finished_s,granted,warm_distance,best,best_mbs,mean_mbs,moved_mb,epochs,t90_s,deadline_met\n",
        );
        let opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.3}"),
            None => String::new(),
        };
        for o in &self.outcomes {
            out.push_str(&format!(
                "{},{},{},{},{:.0},{},{:.0},{},{},{},{},{},{:.3},{:.3},{:.3},{},{},{}\n",
                o.id.0,
                o.state.name(),
                o.spec.route.name(),
                o.spec.tuner.name(),
                o.spec.size_mb,
                o.spec.priority,
                o.spec.arrival_s,
                opt(o.admitted_s),
                opt(o.finished_s),
                o.granted_streams,
                opt(o.warm_distance),
                o.best_params.compact(),
                o.best_mbs,
                o.mean_mbs,
                o.moved_mb,
                o.epochs,
                opt(o.time_to_90_s),
                o.deadline_met.map(|b| b.to_string()).unwrap_or_default(),
            ));
        }
        out
    }
}

/// Everything a fleet run produced.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The deterministic report.
    pub report: FleetReport,
    /// Per-job tuner decision logs (namespaced JSONL), concatenated in
    /// job-id order. Empty when auditing is off.
    pub decisions_jsonl: String,
    /// World telemetry epochs as JSONL (the flight recorder), one line per
    /// control epoch across all transfers.
    pub telemetry_jsonl: String,
    /// History records appended during this run.
    pub history_appended: usize,
}

/// One admitted job's live state.
struct RunningJob {
    spec: JobSpec,
    tid: TransferId,
    tuner: Box<dyn OnlineTuner + Send>,
    epoch: Option<EpochStart>,
    current: Point,
    admitted_s: f64,
    next_epoch_end_s: f64,
    granted_streams: u32,
    ext_streams: f64,
    warm_distance: Option<f64>,
    best_mbs: f64,
    best_params: StreamParams,
    epochs_done: u32,
    /// `(epoch_end_s_rel_admission, observed_mbs)` per epoch.
    trace: Vec<(f64, f64)>,
}

impl RunningJob {
    fn params_for(&self, x: &Point) -> StreamParams {
        StreamParams::new(x[0].max(1) as u32, self.spec.np)
            .clamp_streams(self.granted_streams.max(1))
    }
}

/// Run `workload` under `config`, appending completed jobs to `history`.
pub fn run_fleet(
    workload: &Workload,
    config: &FleetConfig,
    history: &mut HistoryStore,
) -> FleetOutcome {
    config.validate();
    let mut pw = PaperWorld::new(config.seed);
    pw.world.enable_telemetry();

    let mut pending: Vec<JobSpec> = workload.jobs().to_vec();
    let mut queued: Vec<JobSpec> = Vec::new();
    let mut running: BTreeMap<JobId, RunningJob> = BTreeMap::new();
    let mut admission = AdmissionController::paper(config.link_budget);
    let mut admitted_by_class: Vec<(u32, u32)> = Vec::new();
    let mut outcomes: Vec<JobOutcome> = Vec::new();
    let mut decisions: Vec<(JobId, String)> = Vec::new();
    let mut history_appended = 0usize;

    let mut t = 0.0f64;
    loop {
        // 1. Arrivals (pending is sorted by (arrival, id)).
        while pending.first().is_some_and(|j| j.arrival_s <= t + 1e-9) {
            queued.push(pending.remove(0));
        }

        // 2. Admission: policy pick with head-of-line blocking.
        while let Some(idx) = config.policy.pick_next(&queued, &admitted_by_class) {
            let Some(grant) = admission.try_admit(&queued[idx]) else {
                break; // head-of-line blocked until a reservation frees up
            };
            let spec = queued.remove(idx);
            match admitted_by_class
                .iter_mut()
                .find(|(p, _)| *p == spec.priority)
            {
                Some((_, n)) => *n += 1,
                None => admitted_by_class.push((spec.priority, 1)),
            }
            // Context for the history query: external streams on the WAN
            // link before this job places any of its own.
            let ext_streams = pw.world.net().streams_per_link()[spec.route.wan_link_index()];
            // Restrict the tuner's domain to the granted reservation:
            // nc ≤ granted / np, so proposals can never oversubscribe.
            let nc_hi = (grant.streams / spec.np.max(1)).max(1) as i64;
            let domain = Domain::new(&[(1, nc_hi.min(512))]);
            let cold = vec![spec.cold_start().nc as i64];
            let seed = if config.warm_start {
                history.warm_start(
                    spec.route,
                    spec.tuner,
                    ext_streams,
                    0.0,
                    cold.clone(),
                    config.max_match_distance,
                )
            } else {
                WarmStart::cold(cold.clone())
            };
            let mut tuner = spec.tuner.build_seeded(domain, &seed);
            if config.audit {
                tuner.enable_audit();
                if let Some(log) = tuner.audit_log_mut() {
                    log.set_namespace(spec.id.to_string());
                }
            }
            let x0 = tuner.initial();
            let mut job = RunningJob {
                tid: pw.start_sized_transfer(
                    spec.route,
                    StreamParams::new(1, 1), // placeholder; epoch sets real params
                    spec.size_mb,
                    config.noise_sigma,
                ),
                tuner,
                epoch: None,
                current: x0,
                admitted_s: t,
                next_epoch_end_s: t + config.epoch_s,
                granted_streams: grant.streams,
                ext_streams,
                warm_distance: seed.distance(),
                best_mbs: 0.0,
                best_params: spec.cold_start(),
                epochs_done: 0,
                trace: Vec::new(),
                spec,
            };
            pw.world.set_transfer_tag(job.tid, Some(job.spec.id.0));
            let params = job.params_for(&job.current.clone());
            job.epoch = Some(pw.world.begin_epoch(job.tid, params, false));
            running.insert(job.spec.id, job);
        }

        let all_done = pending.is_empty() && queued.is_empty() && running.is_empty();
        if all_done || t >= config.horizon_s - 1e-9 {
            break;
        }

        // 3. Advance the world one tick.
        pw.world.step(SimDuration::from_secs_f64(config.tick_s));
        t += config.tick_s;

        // 4. Completions, in job-id order (BTreeMap iteration).
        let finished: Vec<JobId> = running
            .iter()
            .filter(|(_, j)| pw.world.is_done(j.tid))
            .map(|(&id, _)| id)
            .collect();
        for id in finished {
            let mut job = running.remove(&id).expect("job is running");
            if let Some(es) = job.epoch.take() {
                let report = pw.world.end_epoch(es);
                record_epoch(&mut job, t, &report);
            }
            admission.release(id);
            let moved = pw.world.moved_mb(job.tid);
            let elapsed = (t - job.admitted_s).max(config.tick_s);
            if job.best_mbs > 0.0 {
                history
                    .append(HistoryRecord {
                        route: job.spec.route,
                        tuner: job.spec.tuner,
                        ext_streams: job.ext_streams,
                        cmp_jobs: 0.0,
                        best: vec![job.best_params.nc as i64],
                        achieved_mbs: job.best_mbs,
                    })
                    .expect("history append");
                history_appended += 1;
            }
            outcomes.push(retire(
                job,
                JobState::Completed,
                Some(t),
                moved,
                elapsed,
                &mut decisions,
            ));
        }

        // 5. Epoch boundaries, in job-id order.
        let due: Vec<JobId> = running
            .iter()
            .filter(|(_, j)| t + 1e-9 >= j.next_epoch_end_s)
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            let job = running.get_mut(&id).expect("job is running");
            let es = job.epoch.take().expect("running job has an open epoch");
            let report = pw.world.end_epoch(es);
            record_epoch(job, t, &report);
            let next = job.tuner.observe(&job.current.clone(), report.observed_mbs);
            job.current = next;
            let params = job.params_for(&job.current.clone());
            job.epoch = Some(pw.world.begin_epoch(job.tid, params, false));
            job.next_epoch_end_s = t + config.epoch_s;
        }
    }

    // Horizon: close out whatever is still in flight or waiting.
    let ids: Vec<JobId> = running.keys().copied().collect();
    for id in ids {
        let mut job = running.remove(&id).expect("job is running");
        if let Some(es) = job.epoch.take() {
            let report = pw.world.end_epoch(es);
            record_epoch(&mut job, t, &report);
        }
        admission.release(id);
        let moved = pw.world.moved_mb(job.tid);
        let elapsed = (t - job.admitted_s).max(config.tick_s);
        outcomes.push(retire(
            job,
            JobState::Unfinished,
            None,
            moved,
            elapsed,
            &mut decisions,
        ));
    }
    for spec in queued {
        outcomes.push(never_ran(spec, JobState::Queued));
    }
    for spec in pending {
        outcomes.push(never_ran(spec, JobState::Pending));
    }
    outcomes.sort_by_key(|o| o.id);
    decisions.sort_by_key(|(id, _)| *id);

    let telemetry_jsonl = pw
        .world
        .take_telemetry()
        .map(|tel| {
            let mut s = String::new();
            for e in tel.epochs() {
                s.push_str(&e.to_json());
                s.push('\n');
            }
            s
        })
        .unwrap_or_default();

    FleetOutcome {
        report: FleetReport {
            config: config.clone(),
            submitted: workload.len(),
            outcomes,
        },
        decisions_jsonl: decisions.into_iter().map(|(_, s)| s).collect(),
        telemetry_jsonl,
        history_appended,
    }
}

/// Fold one closed epoch into the job's running statistics.
fn record_epoch(job: &mut RunningJob, t: f64, report: &EpochReport) {
    job.epochs_done += 1;
    job.trace.push((t - job.admitted_s, report.observed_mbs));
    if report.observed_mbs > job.best_mbs {
        job.best_mbs = report.observed_mbs;
        job.best_params = report.params;
    }
}

/// Build the outcome for a job that ran (completed or unfinished).
fn retire(
    job: RunningJob,
    state: JobState,
    finished_s: Option<f64>,
    moved_mb: f64,
    elapsed_s: f64,
    decisions: &mut Vec<(JobId, String)>,
) -> JobOutcome {
    if let Some(log) = job.tuner.audit_log() {
        if !log.is_empty() {
            decisions.push((job.spec.id, log.to_jsonl()));
        }
    }
    let threshold = 0.9 * job.best_mbs;
    let time_to_90_s = job
        .trace
        .iter()
        .find(|(_, mbs)| *mbs >= threshold && *mbs > 0.0)
        .map(|(dt, _)| *dt);
    let deadline_met = job
        .spec
        .deadline_s
        .map(|d| state == JobState::Completed && finished_s.is_some_and(|f| f <= d + 1e-9));
    JobOutcome {
        id: job.spec.id,
        state,
        admitted_s: Some(job.admitted_s),
        finished_s,
        granted_streams: job.granted_streams,
        moved_mb,
        mean_mbs: moved_mb / elapsed_s,
        best_mbs: job.best_mbs,
        best_params: job.best_params,
        epochs: job.epochs_done,
        warm_distance: job.warm_distance,
        time_to_90_s,
        deadline_met,
        spec: job.spec,
    }
}

/// Outcome for a job the horizon caught before admission.
fn never_ran(spec: JobSpec, state: JobState) -> JobOutcome {
    JobOutcome {
        id: spec.id,
        state,
        admitted_s: None,
        finished_s: None,
        granted_streams: 0,
        moved_mb: 0.0,
        mean_mbs: 0.0,
        best_mbs: 0.0,
        best_params: spec.cold_start(),
        epochs: 0,
        warm_distance: None,
        time_to_90_s: None,
        deadline_met: spec.deadline_s.map(|_| false),
        spec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(policy: Policy) -> FleetConfig {
        FleetConfig {
            policy,
            horizon_s: 1800.0,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn contended_fleet_completes_under_every_policy() {
        for policy in Policy::all() {
            let mut h = HistoryStore::in_memory();
            let out = run_fleet(&Workload::contended(3), &quick_config(policy), &mut h);
            assert_eq!(
                out.report.count(JobState::Completed),
                3,
                "policy {policy}: {}",
                out.report.render()
            );
            assert_eq!(out.history_appended, 3);
            assert!(!out.decisions_jsonl.is_empty(), "audit logs expected");
            assert!(out.decisions_jsonl.contains("\"ns\":\"job0\""));
            assert!(!out.telemetry_jsonl.is_empty(), "telemetry expected");
        }
    }

    #[test]
    fn same_seed_renders_identical_reports() {
        let cfg = quick_config(Policy::Sjf);
        let w = Workload::synthetic(8, 11);
        let a = run_fleet(&w, &cfg, &mut HistoryStore::in_memory());
        let b = run_fleet(&w, &cfg, &mut HistoryStore::in_memory());
        assert_eq!(a.report.render(), b.report.render());
        assert_eq!(a.decisions_jsonl, b.decisions_jsonl);
        assert_eq!(a.telemetry_jsonl, b.telemetry_jsonl);
    }

    #[test]
    fn horizon_marks_unfinished_and_queued() {
        let cfg = FleetConfig {
            horizon_s: 60.0,
            ..quick_config(Policy::Fifo)
        };
        // Two huge jobs plus one arriving after the horizon.
        let w = Workload::new(vec![
            JobSpec::new(0, 0.0, 1_000_000.0),
            JobSpec::new(1, 0.0, 1_000_000.0),
            JobSpec::new(2, 7200.0, 100.0),
        ]);
        let out = run_fleet(&w, &cfg, &mut HistoryStore::in_memory());
        assert_eq!(out.report.count(JobState::Unfinished), 2);
        assert_eq!(out.report.count(JobState::Pending), 1);
        assert_eq!(out.history_appended, 0, "unfinished jobs leave no history");
    }

    #[test]
    fn warm_start_uses_the_history_store() {
        let cfg = FleetConfig {
            warm_start: false,
            ..quick_config(Policy::Fifo)
        };
        let mut h = HistoryStore::in_memory();
        let cold = run_fleet(&Workload::contended(2), &cfg, &mut h);
        assert!(cold
            .report
            .outcomes
            .iter()
            .all(|o| o.warm_distance.is_none()));
        assert!(h.len() >= 2);
        let warm_cfg = FleetConfig {
            warm_start: true,
            ..cfg
        };
        let warm = run_fleet(&Workload::contended(2), &warm_cfg, &mut h);
        assert!(
            warm.report
                .outcomes
                .iter()
                .any(|o| o.warm_distance.is_some()),
            "{}",
            warm.report.render()
        );
    }

    #[test]
    fn csv_has_a_row_per_job() {
        let out = run_fleet(
            &Workload::contended(2),
            &quick_config(Policy::Fifo),
            &mut HistoryStore::in_memory(),
        );
        let csv = out.report.to_csv();
        assert_eq!(csv.lines().count(), 3, "{csv}");
        assert!(csv.starts_with("job,state,route"));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn misaligned_tick_is_rejected() {
        let cfg = FleetConfig {
            tick_s: 7.0,
            ..FleetConfig::default()
        };
        run_fleet(
            &Workload::contended(1),
            &cfg,
            &mut HistoryStore::in_memory(),
        );
    }
}
