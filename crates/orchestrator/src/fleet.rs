//! The fleet orchestrator: a deterministic tick loop that admits jobs,
//! drives one online tuner per running job, supervises their health, and
//! records outcomes.
//!
//! Per tick (`tick_s`, which must divide `epoch_s`), in this order:
//!
//! 1. arrivals — pending jobs whose arrival time has come join the queue;
//!    quarantined jobs whose backoff elapsed are requeued;
//! 2. supervision — route circuit breakers advance (open breakers half-open
//!    when their cooldown elapses) and sustained-pressure shedding drops the
//!    lowest-priority queued job on a sick link;
//! 3. admission — the [`Policy`] picks queued jobs *whose route the breakers
//!    admit*; each is granted a stream reservation by the
//!    [`AdmissionController`] (shrunk through half-open breakers) or blocks
//!    the queue (head-of-line blocking keeps policy semantics exact);
//! 4. the world advances one tick;
//! 5. completions — finished jobs close their epoch, release their
//!    reservation, feed breaker successes, and append a [`HistoryRecord`];
//! 6. epoch boundaries — running jobs whose control epoch elapsed report the
//!    observed throughput to their tuner *and* their
//!    [`HealthMonitor`](crate::health::HealthMonitor); a `Quarantine` verdict
//!    pulls the job off the wire, releases its grant, feeds the route's
//!    breakers a failure, and schedules a requeue after the shared
//!    [`xferopt_transfer::RetryPolicy`] backoff (or fails the job once its
//!    attempt budget is spent).
//!
//! Every step iterates in job-id order, so a fleet run is a pure function of
//! `(workload, config)`: two runs with the same seed produce byte-identical
//! reports (see `tests/fleet.rs` and `tests/supervision.rs`). Supervision is
//! *observational by default*: with no fault plan the watchdogs never trip,
//! the breakers stay closed, and reports are byte-identical to
//! pre-supervision runs (enforced by the golden snapshots).
//!
//! [`FleetSim`] exposes the loop one tick at a time so the CLI can write
//! checkpoints and the resume path can replay deterministically (see
//! `checkpoint.rs`).

use std::collections::{BTreeMap, VecDeque};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::admission::{AdmissionController, Reservation, DEFAULT_LINK_BUDGET};
use crate::breaker::{BreakerBoard, BreakerConfig};
use crate::health::{
    HealthConfig, HealthMonitor, HealthVerdict, SupervisionEvent, SupervisionSummary,
};
use crate::history::{HistoryRecord, HistoryStore};
use crate::job::{JobId, JobSpec, JobState, Workload};
use crate::policy::Policy;
use crate::route::JobRoute;
use xferopt_scenarios::{FaultProfile, PaperWorld, Route};
use xferopt_simcore::metrics::{json_f64, MetricsRegistry};
use xferopt_simcore::SimDuration;
use xferopt_topo::{
    campaign_plan, outage_plan_multi, refine_placement, search_routes, PlacementTable, Planet,
    PlanetWorld, RouteCatalog, SearchConfig,
};
use xferopt_transfer::{EpochReport, EpochStart, StreamParams, TransferId, World};
use xferopt_tuners::{Domain, OnlineTuner, Point, WarmStart};

/// Planet-topology fleet settings. `None` runs the classic single-pipe
/// paper world; `Some` places jobs on an N-region planet using the offline
/// route search's placement table (DESIGN.md §16).
#[derive(Debug, Clone, PartialEq)]
pub struct TopoFleetConfig {
    /// Planet preset name (`mesh`, `hub-spoke`, `asymmetric`).
    pub preset: String,
    /// Candidate routes enumerated per ordered region pair.
    pub k: usize,
    /// Regions whose incident links flap dark under the regional-outage
    /// chaos plan (empty keeps the planet fault-free; multiple regions
    /// overlap their outages).
    pub outage_regions: Vec<usize>,
    /// Scripted multi-phase chaos campaign name (see
    /// [`xferopt_topo::campaign_plan`]); mutually exclusive with
    /// `outage_regions`.
    pub campaign: Option<String>,
    /// Routes one job's streams are split across (1 = single-path).
    pub multipath: u32,
    /// Re-route breaker-blocked requeued jobs onto the placement's
    /// next-ranked candidate (bytes conserved across the hop).
    pub reroute: bool,
    /// Enable the self-healing control plane (DESIGN.md §17): fleet-level
    /// SLO tracking, online placement re-search on sustained degradation,
    /// a fleet-wide retry budget, and brownout shedding.
    pub selfheal: bool,
}

impl TopoFleetConfig {
    /// Topology config for a named preset with search defaults.
    pub fn preset(name: &str) -> Self {
        TopoFleetConfig {
            preset: name.to_string(),
            k: 3,
            outage_regions: Vec::new(),
            campaign: None,
            multipath: 1,
            reroute: true,
            selfheal: false,
        }
    }

    /// Resolve the preset into a [`Planet`].
    ///
    /// # Panics
    /// Panics on an unknown preset name (validated at CLI parse time).
    pub fn planet(&self) -> Planet {
        Planet::preset(&self.preset).expect("known planet preset")
    }
}

/// Fleet run configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Admission-order policy.
    pub policy: Policy,
    /// World seed (noise, fault RNG).
    pub seed: u64,
    /// Run horizon, simulated seconds.
    pub horizon_s: f64,
    /// Orchestrator tick, seconds. Must divide `epoch_s`.
    pub tick_s: f64,
    /// Control-epoch length handed to each job's tuner, seconds.
    pub epoch_s: f64,
    /// Per-link stream budget for admission control.
    pub link_budget: u32,
    /// Query the history store to warm-start tuners. When false the run is
    /// cold (but still appends history), so a later warm run can be compared.
    pub warm_start: bool,
    /// Maximum history-match distance accepted for a warm start.
    pub max_match_distance: f64,
    /// Log-std of per-epoch throughput noise on each transfer.
    pub noise_sigma: f64,
    /// Enable per-job tuner audit logs (namespaced by job id).
    pub audit: bool,
    /// Fleet-scoped chaos plan (see [`FaultProfile::fleet_plan`]); `None`
    /// keeps the world fault-free and draws nothing extra from the seed
    /// stream, so no-fault runs stay byte-identical to pre-supervision ones.
    pub faults: Option<FaultProfile>,
    /// Per-job health-watchdog thresholds and the requeue attempt budget.
    pub health: HealthConfig,
    /// Route circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Shed the lowest-priority queued job on a link whose breaker has been
    /// continuously non-closed for this long (and at most once per interval).
    pub shed_after_s: f64,
    /// Planet-topology settings; `None` keeps the classic paper world (and
    /// its byte-identical goldens).
    pub topo: Option<TopoFleetConfig>,
    /// Self-healing control-plane knobs (active only when
    /// `topo.selfheal`). Like `health` and `breaker`, not serialized into
    /// checkpoints: resume rebuilds the same governor from the same config.
    pub govern: crate::govern::GovernConfig,
    /// Disable the quiet-tick skip-ahead fast path, forcing dense stepping
    /// through every tick. The two modes are byte-identical on every output
    /// surface (enforced in CI); this switch exists for that comparison and
    /// for debugging, not for normal use.
    pub dense_stepping: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            policy: Policy::Fifo,
            seed: 7,
            horizon_s: 3600.0,
            tick_s: 5.0,
            epoch_s: 30.0,
            link_budget: DEFAULT_LINK_BUDGET,
            warm_start: true,
            max_match_distance: 2.0,
            noise_sigma: 0.05,
            audit: true,
            faults: None,
            health: HealthConfig::default(),
            breaker: BreakerConfig::default(),
            shed_after_s: 300.0,
            topo: None,
            govern: crate::govern::GovernConfig::default(),
            dense_stepping: false,
        }
    }
}

impl FleetConfig {
    /// Validate tick/epoch/horizon alignment.
    ///
    /// # Panics
    /// Panics when `tick_s` is non-positive or does not divide `epoch_s`.
    pub fn validate(&self) {
        assert!(self.tick_s > 0.0, "tick must be positive");
        assert!(self.epoch_s > 0.0, "epoch must be positive");
        assert!(self.horizon_s > 0.0, "horizon must be positive");
        let ratio = self.epoch_s / self.tick_s;
        assert!(
            (ratio - ratio.round()).abs() < 1e-9 && ratio >= 1.0,
            "tick {} must divide epoch {}",
            self.tick_s,
            self.epoch_s
        );
    }
}

/// Terminal record for one job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job.
    pub id: JobId,
    /// Terminal lifecycle state (`completed`, `unfinished`, `failed`,
    /// `queued`, or `pending` — the latter two when the horizon arrives
    /// first).
    pub state: JobState,
    /// The spec the job ran with.
    pub spec: JobSpec,
    /// Admission time (fleet seconds), if admitted.
    pub admitted_s: Option<f64>,
    /// Completion time (fleet seconds), if completed.
    pub finished_s: Option<f64>,
    /// Streams granted by admission control (0 if never admitted).
    pub granted_streams: u32,
    /// Megabytes moved by the horizon.
    pub moved_mb: f64,
    /// Mean throughput while running, MB/s.
    pub mean_mbs: f64,
    /// Best per-epoch observed throughput, MB/s.
    pub best_mbs: f64,
    /// Parameters in force during the best epoch.
    pub best_params: StreamParams,
    /// Control epochs completed.
    pub epochs: u32,
    /// History-match distance when warm-started; `None` for cold starts.
    pub warm_distance: Option<f64>,
    /// Seconds from admission until an epoch first reached 90 % of the job's
    /// best observed throughput (the warm-start convergence metric).
    pub time_to_90_s: Option<f64>,
    /// Whether the deadline was met (`None` when the job has no deadline).
    pub deadline_met: Option<bool>,
}

impl JobOutcome {
    /// Render as one fixed-format report line.
    pub fn render(&self) -> String {
        let opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.1}"),
            None => "-".to_string(),
        };
        let warm = match self.warm_distance {
            Some(d) => format!("warm:{d:.3}"),
            None => "cold".to_string(),
        };
        let deadline = match self.deadline_met {
            Some(true) => "met",
            Some(false) => "missed",
            None => "-",
        };
        format!(
            "{} state={} route={} tuner={} size_mb={:.0} prio={} arrival_s={:.0} admitted_s={} finished_s={} granted={} start={} best={} best_mbs={:.1} mean_mbs={:.1} moved_mb={:.1} epochs={} t90_s={} deadline={}",
            self.id,
            self.state.name(),
            self.spec.route.name(),
            self.spec.tuner.name(),
            self.spec.size_mb,
            self.spec.priority,
            self.spec.arrival_s,
            opt(self.admitted_s),
            opt(self.finished_s),
            self.granted_streams,
            warm,
            self.best_params.compact(),
            self.best_mbs,
            self.mean_mbs,
            self.moved_mb,
            self.epochs,
            opt(self.time_to_90_s),
            deadline,
        )
    }
}

/// Deterministic summary of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The configuration the fleet ran with.
    pub config: FleetConfig,
    /// Number of jobs submitted.
    pub submitted: usize,
    /// Per-job outcomes, in job-id order.
    pub outcomes: Vec<JobOutcome>,
    /// Supervision activity counters (all zero in a quiet run).
    pub supervision: SupervisionSummary,
}

impl FleetReport {
    /// Jobs that reached `state`.
    pub fn count(&self, state: JobState) -> usize {
        self.outcomes.iter().filter(|o| o.state == state).count()
    }

    /// Total megabytes moved across the fleet.
    pub fn total_moved_mb(&self) -> f64 {
        self.outcomes.iter().map(|o| o.moved_mb).sum()
    }

    /// Completion time of the last finished job, if any completed.
    pub fn makespan_s(&self) -> Option<f64> {
        self.outcomes
            .iter()
            .filter_map(|o| o.finished_s)
            .fold(None, |m, t| Some(m.map_or(t, |x: f64| x.max(t))))
    }

    /// Mean time-to-90 % over jobs matching `warm` (the warm-vs-cold
    /// comparison metric). `None` when no matching job converged.
    pub fn mean_time_to_90_s(&self, warm: bool) -> Option<f64> {
        let ts: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.warm_distance.is_some() == warm)
            .filter_map(|o| o.time_to_90_s)
            .collect();
        if ts.is_empty() {
            None
        } else {
            Some(ts.iter().sum::<f64>() / ts.len() as f64)
        }
    }

    /// Render the whole report as deterministic fixed-format text.
    ///
    /// Supervision is rendered only when it did something (or a fault
    /// profile is configured): quiet runs are byte-identical to
    /// pre-supervision reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fleet policy={} seed={} jobs={} horizon_s={:.0} tick_s={:.0} epoch_s={:.0} budget={} warm={} audit={}",
            self.config.policy,
            self.config.seed,
            self.submitted,
            self.config.horizon_s,
            self.config.tick_s,
            self.config.epoch_s,
            self.config.link_budget,
            self.config.warm_start,
            self.config.audit,
        ));
        if let Some(p) = self.config.faults {
            out.push_str(&format!(" faults={}", p.name()));
        }
        if let Some(tc) = &self.config.topo {
            out.push_str(&format!(
                " topo={} k={} multipath={} reroute={}",
                tc.preset, tc.k, tc.multipath, tc.reroute
            ));
            if tc.selfheal {
                out.push_str(" selfheal=true");
            }
            if let Some(c) = &tc.campaign {
                out.push_str(&format!(" campaign={c}"));
            }
            // A single outage region keeps the historical `outage_region=`
            // bytes (golden snapshots); only multi-region runs use the
            // plural form.
            match tc.outage_regions.as_slice() {
                [] => {}
                [r] => out.push_str(&format!(" outage_region={r}")),
                rs => out.push_str(&format!(
                    " outage_regions={}",
                    rs.iter()
                        .map(|r| r.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                )),
            }
        }
        out.push('\n');
        for o in &self.outcomes {
            out.push_str(&o.render());
            out.push('\n');
        }
        let opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.1}"),
            None => "-".to_string(),
        };
        let failed = self.count(JobState::Failed);
        let failed_part = if failed > 0 {
            format!(" failed={failed}")
        } else {
            String::new()
        };
        out.push_str(&format!(
            "summary completed={} unfinished={}{} queued={} pending={} moved_mb={:.1} makespan_s={} t90_cold_s={} t90_warm_s={}\n",
            self.count(JobState::Completed),
            self.count(JobState::Unfinished),
            failed_part,
            self.count(JobState::Queued),
            self.count(JobState::Pending),
            self.total_moved_mb(),
            opt(self.makespan_s()),
            opt(self.mean_time_to_90_s(false)),
            opt(self.mean_time_to_90_s(true)),
        ));
        if self.config.faults.is_some() || !self.supervision.is_quiet() {
            out.push_str(&self.supervision.render());
            out.push('\n');
        }
        out
    }

    /// Render per-job outcomes as CSV (header + one row per job).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "job,state,route,tuner,size_mb,priority,arrival_s,admitted_s,finished_s,granted,warm_distance,best,best_mbs,mean_mbs,moved_mb,epochs,t90_s,deadline_met\n",
        );
        let opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.3}"),
            None => String::new(),
        };
        for o in &self.outcomes {
            out.push_str(&format!(
                "{},{},{},{},{:.0},{},{:.0},{},{},{},{},{},{:.3},{:.3},{:.3},{},{},{}\n",
                o.id.0,
                o.state.name(),
                o.spec.route.name(),
                o.spec.tuner.name(),
                o.spec.size_mb,
                o.spec.priority,
                o.spec.arrival_s,
                opt(o.admitted_s),
                opt(o.finished_s),
                o.granted_streams,
                opt(o.warm_distance),
                o.best_params.compact(),
                o.best_mbs,
                o.mean_mbs,
                o.moved_mb,
                o.epochs,
                opt(o.time_to_90_s),
                o.deadline_met.map(|b| b.to_string()).unwrap_or_default(),
            ));
        }
        out
    }
}

/// Everything a fleet run produced.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The deterministic report.
    pub report: FleetReport,
    /// Per-job tuner decision logs (namespaced JSONL), concatenated in
    /// job-id order. Empty when auditing is off.
    pub decisions_jsonl: String,
    /// World telemetry epochs as JSONL (the flight recorder), one line per
    /// control epoch across all transfers.
    pub telemetry_jsonl: String,
    /// Supervision events (quarantines, requeues, breaker transitions,
    /// sheds) as JSONL, in occurrence order. Empty in a quiet run.
    pub supervision_jsonl: String,
    /// Supervision counters from the telemetry registry as JSONL (empty when
    /// no supervision metric was touched).
    pub metrics_jsonl: String,
    /// History records appended during this run.
    pub history_appended: usize,
}

/// How a [`FleetSim`] reaches its history store: borrowed from the caller
/// (the classic single-threaded path) or owned outright (shard component
/// sims, which must be `'static` + `Send` to live on worker threads).
pub(crate) enum HistoryHandle<'h> {
    /// The caller's store, borrowed for the run.
    Borrowed(&'h mut HistoryStore),
    /// A store the sim owns (a [`HistoryStore::shard_snapshot`]).
    Owned(HistoryStore),
}

impl std::ops::Deref for HistoryHandle<'_> {
    type Target = HistoryStore;
    fn deref(&self) -> &HistoryStore {
        match self {
            HistoryHandle::Borrowed(h) => h,
            HistoryHandle::Owned(h) => h,
        }
    }
}

impl std::ops::DerefMut for HistoryHandle<'_> {
    fn deref_mut(&mut self) -> &mut HistoryStore {
        match self {
            HistoryHandle::Borrowed(h) => h,
            HistoryHandle::Owned(h) => h,
        }
    }
}

/// A built planet fleet: the compiled world plus the searched placement
/// table that drives job routing and breaker-aware re-routes.
pub(crate) struct PlanetFleet {
    pub(crate) pw: PlanetWorld,
    pub(crate) placement: PlacementTable,
}

impl PlanetFleet {
    /// The placement's next-ranked candidate for `route`'s pair whose links
    /// the breakers currently admit (skipping the route itself), if any.
    fn reroute_candidate(&self, route: &JobRoute, breakers: &BreakerBoard) -> Option<JobRoute> {
        let entry = self
            .placement
            .entries
            .iter()
            .find(|e| e.routes.iter().any(|r| r == route.name()))?;
        for (name, links) in entry.routes.iter().zip(&entry.links) {
            if name == route.name() || !breakers.route_admits(links) {
                continue;
            }
            let path = self.pw.catalog.route_by_name(name)?;
            return Some(JobRoute::new(name.clone(), links.clone(), path));
        }
        None
    }
}

/// The placement's *chosen* (rank-0) route for the pair owning `route_name`,
/// when it differs from `route_name` itself — the migration target after an
/// online re-search refreshed the table.
fn refreshed_route(pf: &PlanetFleet, route_name: &str) -> Option<JobRoute> {
    let entry = pf
        .placement
        .entries
        .iter()
        .find(|e| e.routes.iter().any(|r| r == route_name))?;
    let name = entry.routes.first()?;
    if name == route_name {
        return None;
    }
    let path = pf.pw.catalog.route_by_name(name)?;
    Some(JobRoute::new(name.clone(), entry.links[0].clone(), path))
}

/// The world a fleet runs against: the classic single-pipe paper testbed or
/// a compiled N-region planet. Classic keeps every constant (3 links, enum
/// route names, digest bytes) exactly as before.
pub(crate) enum FleetWorld {
    /// The paper's 3-link world (`anl->uchicago` / `anl->tacc`).
    Classic(Box<PaperWorld>),
    /// An N-region planet with a searched placement table.
    Planet(Box<PlanetFleet>),
}

impl FleetWorld {
    fn world(&self) -> &World {
        match self {
            FleetWorld::Classic(pw) => &pw.world,
            FleetWorld::Planet(pf) => &pf.pw.world,
        }
    }

    fn world_mut(&mut self) -> &mut World {
        match self {
            FleetWorld::Classic(pw) => &mut pw.world,
            FleetWorld::Planet(pf) => &mut pf.pw.world,
        }
    }

    /// Links the admission controller and breaker board must cover.
    fn nlinks(&self) -> usize {
        match self {
            FleetWorld::Classic(_) => 3,
            FleetWorld::Planet(pf) => pf.pw.catalog.nlinks,
        }
    }

    /// Start a sized transfer on `route` (by classic name or catalog path).
    fn start_sized_transfer(
        &mut self,
        route: &JobRoute,
        params: StreamParams,
        size_mb: f64,
        noise_sigma: f64,
    ) -> TransferId {
        match self {
            FleetWorld::Classic(pw) => {
                let r: Route = route
                    .name()
                    .parse()
                    .expect("classic fleet routes are paper routes");
                pw.start_sized_transfer(r, params, size_mb, noise_sigma)
            }
            FleetWorld::Planet(pf) => {
                pf.pw
                    .start_sized_transfer(route.path_index(), params, size_mb, noise_sigma)
            }
        }
    }
}

/// One admitted job's live state.
struct RunningJob {
    spec: JobSpec,
    tid: TransferId,
    /// Extra multipath transfers riding fallback routes (fixed params, no
    /// tuner). Always empty on the classic world.
    extra_tids: Vec<TransferId>,
    /// Megabytes moved by transfers this job abandoned on earlier routes
    /// (breaker-aware re-routes conserve bytes through this). Always 0 on
    /// the classic world, so `moved_base + moved_mb(tid)` is bit-identical
    /// to the old readout there.
    moved_base: f64,
    tuner: Box<dyn OnlineTuner + Send>,
    epoch: Option<EpochStart>,
    current: Point,
    admitted_s: f64,
    next_epoch_end_s: f64,
    granted_streams: u32,
    ext_streams: f64,
    warm_distance: Option<f64>,
    best_mbs: f64,
    best_params: StreamParams,
    epochs_done: u32,
    /// `(epoch_end_s_rel_admission, observed_mbs)` per epoch.
    trace: Vec<(f64, f64)>,
    monitor: HealthMonitor,
    /// Quarantines suffered so far (0 on a first admission).
    attempts: u32,
    degraded: bool,
}

impl RunningJob {
    fn params_for(&self, x: &Point) -> StreamParams {
        StreamParams::new(x[0].max(1) as u32, self.spec.np)
            .clamp_streams(self.granted_streams.max(1))
    }
}

/// Stats carried across quarantine/requeue attempts (the transfer itself is
/// kept alive but idle, so `moved_mb` is conserved).
struct JobCarry {
    tid: TransferId,
    /// Bytes abandoned on earlier routes (see `RunningJob::moved_base`).
    moved_base: f64,
    /// Route name the live transfer was created on; a differing spec route
    /// at re-admission means the job was re-routed while queued and needs a
    /// fresh transfer for the remainder.
    route_name: String,
    first_admitted_s: f64,
    attempts: u32,
    best_mbs: f64,
    best_params: StreamParams,
    epochs_done: u32,
    trace: Vec<(f64, f64)>,
    warm_distance: Option<f64>,
    granted_streams: u32,
}

/// A quarantined job waiting out its requeue backoff.
struct QuarantinedJob {
    spec: JobSpec,
    carry: JobCarry,
    resume_at_s: f64,
}

/// The fleet simulation, one tick at a time. [`run_fleet`] is the one-shot
/// driver; the CLI uses the stepwise form to write checkpoints, and
/// `checkpoint::resume_fleet` replays it deterministically.
pub struct FleetSim<'h> {
    config: FleetConfig,
    workload_jobs: Vec<JobSpec>,
    world: FleetWorld,
    pending: VecDeque<JobSpec>,
    queued: Vec<JobSpec>,
    running: BTreeMap<JobId, RunningJob>,
    quarantined: BTreeMap<JobId, QuarantinedJob>,
    /// Stats of requeued jobs currently back in the queue.
    carry: BTreeMap<JobId, JobCarry>,
    admission: AdmissionController,
    breakers: BreakerBoard,
    admitted_by_class: Vec<(u32, u32)>,
    outcomes: Vec<JobOutcome>,
    decisions: Vec<(JobId, String)>,
    events: Vec<SupervisionEvent>,
    supervision: SupervisionSummary,
    metrics: MetricsRegistry,
    history: HistoryHandle<'h>,
    history_appended: usize,
    history_start_len: usize,
    /// Records appended during the current tick, drained by the sharded
    /// runner (which re-serializes them into the real store in job-id order).
    tick_appends: Vec<(JobId, HistoryRecord)>,
    /// False while the admission picture is unchanged since the last blocked
    /// admission pass; the next tick then skips the O(queue) policy scan
    /// entirely. Any queue mutation, reservation release, or breaker state
    /// transition sets it (the admission loop itself has no side effects on
    /// a blocked attempt, so skipping it is byte-exact — enforced by the
    /// golden snapshots).
    admission_dirty: bool,
    last_shed_s: Vec<f64>,
    /// The self-healing control plane; `Some` only when `topo.selfheal`
    /// (quiet fleets carry no governor and keep their digests byte-stable).
    governor: Option<crate::govern::Governor>,
    tick: u64,
    t: f64,
    done: bool,
    /// Ticks collapsed by the quiet skip-ahead fast path. Observability
    /// only: deliberately absent from metrics, digests, and checkpoints so
    /// fast and dense runs stay byte-identical on every output surface.
    fast_ticks: u64,
}

/// Per-site world seed: site 0 keeps the configured seed verbatim (so the
/// classic single-site fleet and its goldens see identical RNG streams);
/// other sites mix the site index in.
fn site_world_seed(seed: u64, site: u32) -> u64 {
    seed ^ (site as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

impl<'h> FleetSim<'h> {
    /// Build the simulation at tick 0.
    ///
    /// # Panics
    /// Panics when the config fails [`FleetConfig::validate`], or when the
    /// workload spans multiple sites — one `FleetSim` simulates one site's
    /// 3-link world; multi-site fleets go through
    /// [`run_fleet_sharded`](crate::shard::run_fleet_sharded).
    pub fn new(workload: &Workload, config: &FleetConfig, history: &'h mut HistoryStore) -> Self {
        Self::build(workload, config, HistoryHandle::Borrowed(history))
    }

    /// Build a simulation that owns its history store (shard component sims
    /// are moved onto worker threads, so they cannot borrow).
    pub(crate) fn new_owned(
        workload: &Workload,
        config: &FleetConfig,
        history: HistoryStore,
    ) -> FleetSim<'static> {
        FleetSim::build(workload, config, HistoryHandle::Owned(history))
    }

    fn build(workload: &Workload, config: &FleetConfig, history: HistoryHandle<'h>) -> Self {
        config.validate();
        let site = workload.jobs().first().map_or(0, |j| j.site);
        assert!(
            workload.jobs().iter().all(|j| j.site == site),
            "FleetSim simulates a single site; shard multi-site workloads \
             with run_fleet_sharded"
        );
        let world_seed = site_world_seed(config.seed, site);
        let world = match &config.topo {
            None => {
                let mut pw = PaperWorld::new(world_seed);
                pw.world.enable_telemetry();
                // Strictly opt-in: enabling faults consumes one seed from the
                // world's stream, so a fault-free fleet must not call it at
                // all (keeps no-fault runs byte-identical to pre-supervision
                // ones).
                if let Some(profile) = config.faults {
                    let plan =
                        profile.fleet_plan(world_seed, config.horizon_s, workload.len() as u64);
                    pw.world
                        .enable_faults_with_policy(plan, config.health.retry);
                }
                FleetWorld::Classic(Box::new(pw))
            }
            Some(tc) => {
                assert!(
                    config.faults.is_none(),
                    "classic fault profiles target the 3-link paper world; \
                     planet fleets take an outage_region instead"
                );
                let planet = tc.planet();
                let placement = search_routes(
                    &planet,
                    &SearchConfig {
                        k: tc.k,
                        ..SearchConfig::default()
                    },
                )
                .expect("preset planets search cleanly");
                let mut pw =
                    PlanetWorld::new(&planet, tc.k, world_seed).expect("preset planets compile");
                pw.world.enable_telemetry();
                if let Some(name) = &tc.campaign {
                    assert!(
                        tc.outage_regions.is_empty(),
                        "a campaign scripts its own faults; drop --outage-region"
                    );
                    let plan = campaign_plan(&planet, name, world_seed, config.horizon_s)
                        .expect("campaign validated at CLI parse time");
                    pw.world
                        .enable_faults_with_policy(plan, config.health.retry);
                } else if !tc.outage_regions.is_empty() {
                    let plan = outage_plan_multi(
                        &planet,
                        &tc.outage_regions,
                        world_seed,
                        config.horizon_s,
                    );
                    pw.world
                        .enable_faults_with_policy(plan, config.health.retry);
                }
                FleetWorld::Planet(Box::new(PlanetFleet { pw, placement }))
            }
        };
        let nlinks = world.nlinks();
        let governor = config
            .topo
            .as_ref()
            .filter(|tc| tc.selfheal)
            .map(|_| crate::govern::Governor::new(nlinks, &config.govern));
        let mut metrics = MetricsRegistry::new();
        if history.skipped() > 0 {
            metrics
                .gauge("history_lines_skipped", &[])
                .set(history.skipped() as f64);
        }
        let history_start_len = history.len();
        FleetSim {
            config: config.clone(),
            workload_jobs: workload.jobs().to_vec(),
            world,
            pending: workload.jobs().iter().cloned().collect(),
            queued: Vec::new(),
            running: BTreeMap::new(),
            quarantined: BTreeMap::new(),
            carry: BTreeMap::new(),
            admission: AdmissionController::uniform(nlinks, config.link_budget),
            breakers: BreakerBoard::new(nlinks, config.breaker),
            admitted_by_class: Vec::new(),
            outcomes: Vec::new(),
            decisions: Vec::new(),
            events: Vec::new(),
            supervision: SupervisionSummary::default(),
            metrics,
            history,
            history_appended: 0,
            history_start_len,
            tick_appends: Vec::new(),
            admission_dirty: true,
            last_shed_s: vec![f64::NEG_INFINITY; nlinks],
            governor,
            tick: 0,
            t: 0.0,
            done: false,
            fast_ticks: 0,
        }
    }

    /// Ticks collapsed by the quiet skip-ahead fast path so far (0 with
    /// `dense_stepping`). Observability only — never part of any digest.
    pub fn fast_ticks(&self) -> u64 {
        self.fast_ticks
    }

    /// Ticks completed so far.
    pub fn tick_index(&self) -> u64 {
        self.tick
    }

    /// Read-only view of the shared transfer world (perf gates read the
    /// network's allocation-engine counters through this).
    pub fn world(&self) -> &World {
        self.world.world()
    }

    /// The placement table driving a planet fleet's routing (`None` on the
    /// classic world).
    pub fn placement(&self) -> Option<&PlacementTable> {
        match &self.world {
            FleetWorld::Classic(_) => None,
            FleetWorld::Planet(pf) => Some(&pf.placement),
        }
    }

    /// Retry-budget snapshot of the self-healing governor as
    /// `(tokens_available, tokens_consumed, tokens_issued)`; `None` when
    /// the control plane is off. The budget invariant is
    /// `consumed <= issued` on every tick.
    pub fn governor_snapshot(&self) -> Option<(u64, u64, u64)> {
        self.governor
            .as_ref()
            .map(|g| (g.budget.tokens(), g.budget.consumed(), g.budget.issued()))
    }

    /// Current fleet time, seconds.
    pub fn now_s(&self) -> f64 {
        self.t
    }

    /// Whether the run has reached its end (all jobs terminal or horizon).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Toggle history persistence (used by checkpoint replay: the pre-kill
    /// appends are already in the backing file, so the replay re-appends them
    /// in memory only).
    pub fn set_history_persist(&mut self, persist: bool) {
        self.history.set_persist(persist);
    }

    /// History records appended so far by this run.
    pub fn history_appended(&self) -> usize {
        self.history_appended
    }

    /// History length when the run started (checkpoint header field).
    pub fn history_start_len(&self) -> usize {
        self.history_start_len
    }

    fn push_event(
        &mut self,
        kind: &'static str,
        ns: Option<String>,
        link: Option<usize>,
        detail: String,
    ) {
        self.metrics
            .counter("fleet_supervision_total", &[("event", kind)])
            .inc();
        self.events.push(SupervisionEvent {
            t_s: self.t,
            kind,
            ns,
            link,
            detail,
        });
    }

    /// True when every orchestrator phase of the next tick is provably a
    /// no-op from pure reads alone: no arrival or requeue due, breakers all
    /// closed (so breaker ticks, shedding, and reroutes cannot fire), the
    /// admission picture unchanged, no epoch boundary reachable within the
    /// tick, the governor idle, and the run neither finished nor at its
    /// horizon. The world itself still gets the final say via
    /// [`World::quiet_for`].
    fn fleet_quiet(&self) -> bool {
        if self.config.dense_stepping {
            return false;
        }
        if self
            .pending
            .front()
            .is_some_and(|j| j.arrival_s <= self.t + 1e-9)
        {
            return false;
        }
        if self
            .quarantined
            .values()
            .any(|q| q.resume_at_s <= self.t + 1e-9)
        {
            return false;
        }
        if !self.breakers.all_closed() || self.config.shed_after_s <= 0.0 {
            return false;
        }
        if self.admission_dirty {
            return false;
        }
        let all_done = self.pending.is_empty()
            && self.queued.is_empty()
            && self.running.is_empty()
            && self.quarantined.is_empty();
        if all_done || self.t >= self.config.horizon_s - 1e-9 {
            return false; // let the dense path retire the run
        }
        if self
            .running
            .values()
            .any(|j| self.t + self.config.tick_s + 1e-9 >= j.next_epoch_end_s)
        {
            return false;
        }
        match &self.governor {
            None => true,
            Some(g) => g.slo.degraded_links().is_empty(),
        }
    }

    /// Advance one tick. Returns `false` once the run is finished (call
    /// [`FleetSim::finish`] to collect the outcome).
    pub fn tick(&mut self) -> bool {
        if self.done {
            return false;
        }
        // Quiet skip-ahead: when no orchestrator phase can fire this tick
        // AND the world cannot move a byte or cross a fault boundary inside
        // it, collapse the tick to a clock jump. The per-tick retry budget
        // still replenishes (it is clocked on ticks, not on events).
        // `quiet_for` runs the same fault/stream sync a dense step would
        // open with, so a `false` falls through with no state divergence.
        if self.fleet_quiet()
            && self
                .world
                .world_mut()
                .quiet_for(SimDuration::from_secs_f64(self.config.tick_s))
        {
            self.tick_appends.clear();
            if let Some(g) = &mut self.governor {
                g.budget.tick();
            }
            self.world
                .world_mut()
                .skip(SimDuration::from_secs_f64(self.config.tick_s));
            self.t += self.config.tick_s;
            self.tick += 1;
            self.fast_ticks += 1;
            return true;
        }
        self.tick_appends.clear();
        // 0. The retry budget replenishes deterministically per tick.
        if let Some(g) = &mut self.governor {
            g.budget.tick();
        }
        // 1. Arrivals (pending is sorted by (arrival, id)).
        while self
            .pending
            .front()
            .is_some_and(|j| j.arrival_s <= self.t + 1e-9)
        {
            let j = self.pending.pop_front().expect("front checked");
            self.queued.push(j);
            self.admission_dirty = true;
        }
        // 1b. Requeues: quarantined jobs whose backoff elapsed rejoin the
        // queue (in job-id order). Under the governor each requeue costs a
        // retry-budget token; jobs the budget cannot cover stay quarantined
        // and retry on a later tick (the storm cap).
        let due: Vec<JobId> = self
            .quarantined
            .iter()
            .filter(|(_, q)| q.resume_at_s <= self.t + 1e-9)
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            if let Some(g) = &mut self.governor {
                if !g.budget.try_take() {
                    break; // budget exhausted; later ids wait too
                }
            }
            let q = self.quarantined.remove(&id).expect("job is quarantined");
            self.supervision.requeues += 1;
            self.push_event(
                "requeue",
                Some(id.to_string()),
                None,
                format!("attempt={}", q.carry.attempts),
            );
            self.carry.insert(id, q.carry);
            self.queued.push(q.spec);
            self.admission_dirty = true;
        }
        // 1c. Breakers advance (cooldowns elapse into half-open probes).
        for (l, tr) in self.breakers.tick(self.t) {
            self.push_event(tr, None, Some(l), String::new());
            self.admission_dirty = true;
        }
        // 1d. Sustained-pressure shedding.
        self.shed();
        // 1e. Breaker-aware re-route: a requeued (carried) job whose route
        // the breakers block hops to the placement's next-ranked candidate;
        // its bytes are conserved (re-admission folds the old transfer's
        // progress into `moved_base` and runs the remainder).
        if self.config.topo.as_ref().is_some_and(|t| t.reroute) {
            let moves: Vec<(usize, JobRoute)> = match &self.world {
                FleetWorld::Classic(_) => Vec::new(),
                FleetWorld::Planet(pf) => self
                    .queued
                    .iter()
                    .enumerate()
                    .filter(|(_, j)| {
                        self.carry.contains_key(&j.id)
                            && !self.breakers.route_admits(j.route.links())
                    })
                    .filter_map(|(i, j)| {
                        pf.reroute_candidate(&j.route, &self.breakers)
                            .map(|r| (i, r))
                    })
                    .collect(),
            };
            for (i, next) in moves {
                // Re-routes are retry-budget actions too: an unpayable hop
                // waits (the job keeps its blocked route and retries later).
                if let Some(g) = &mut self.governor {
                    if !g.budget.try_take() {
                        break;
                    }
                }
                let id = self.queued[i].id;
                let detail = format!("{}=>{}", self.queued[i].route.name(), next.name());
                self.supervision.reroutes += 1;
                self.push_event("reroute", Some(id.to_string()), None, detail);
                self.queued[i].route = next;
                self.admission_dirty = true;
            }
        }

        // 2. Admission: policy pick over breaker-admissible jobs, with
        // head-of-line blocking on link capacity. Skipped outright while
        // nothing that feeds the pick (queue, reservations, breaker states,
        // admitted-by-class counters) has changed since the last blocked
        // pass: a re-run would rebuild the same view, pick the same job, and
        // block the same way, with zero side effects.
        while self.admission_dirty {
            let mask: Vec<usize> = self
                .queued
                .iter()
                .enumerate()
                .filter(|(_, j)| self.breakers.route_admits(j.route.links()))
                .map(|(i, _)| i)
                .collect();
            if mask.is_empty() {
                self.admission_dirty = false;
                break;
            }
            let view: Vec<JobSpec> = mask.iter().map(|&i| self.queued[i].clone()).collect();
            let Some(vidx) = self.config.policy.pick_next(&view, &self.admitted_by_class) else {
                self.admission_dirty = false;
                break;
            };
            let qidx = mask[vidx];
            let Some(grant) = self
                .admission
                .try_admit_gated(&self.queued[qidx], &mut self.breakers)
            else {
                self.admission_dirty = false;
                break; // head-of-line blocked until a reservation frees up
            };
            let spec = self.queued.remove(qidx);
            self.admit(spec, grant);
        }

        let all_done = self.pending.is_empty()
            && self.queued.is_empty()
            && self.running.is_empty()
            && self.quarantined.is_empty();
        if all_done || self.t >= self.config.horizon_s - 1e-9 {
            self.done = true;
            return false;
        }

        // 3. Advance the world one tick.
        self.world
            .world_mut()
            .step(SimDuration::from_secs_f64(self.config.tick_s));
        self.t += self.config.tick_s;
        self.tick += 1;

        // 4. Completions, in job-id order (BTreeMap iteration). A multipath
        // job finishes when every one of its transfers has.
        let finished: Vec<JobId> = {
            let w = self.world.world();
            self.running
                .iter()
                .filter(|(_, j)| w.is_done(j.tid) && j.extra_tids.iter().all(|&e| w.is_done(e)))
                .map(|(&id, _)| id)
                .collect()
        };
        for id in finished {
            let mut job = self.running.remove(&id).expect("job is running");
            if let Some(es) = job.epoch.take() {
                let report = self.world.world_mut().end_epoch(es);
                record_epoch(&mut job, self.t, &report);
            }
            self.admission.release(id);
            self.admission_dirty = true;
            for &l in job.spec.route.links() {
                if let Some(tr) = self.breakers.on_success(l, self.t) {
                    self.push_event(tr, None, Some(l), String::new());
                }
            }
            let moved = moved_total(self.world.world(), &job);
            let elapsed = (self.t - job.admitted_s).max(self.config.tick_s);
            if job.best_mbs > 0.0 {
                let record = HistoryRecord {
                    route: job.spec.route.name().to_string(),
                    tuner: job.spec.tuner,
                    ext_streams: job.ext_streams,
                    cmp_jobs: 0.0,
                    best: vec![job.best_params.nc as i64],
                    achieved_mbs: job.best_mbs,
                    scenario: "fleet".to_string(),
                };
                self.tick_appends.push((id, record.clone()));
                self.history.append(record).expect("history append");
                self.history_appended += 1;
            }
            let o = retire(
                job,
                JobState::Completed,
                Some(self.t),
                moved,
                elapsed,
                &mut self.decisions,
            );
            self.outcomes.push(o);
        }

        // 5. Epoch boundaries + health verdicts, in job-id order.
        let due: Vec<JobId> = self
            .running
            .iter()
            .filter(|(_, j)| self.t + 1e-9 >= j.next_epoch_end_s)
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            let (verdict, was_degraded, route, observed) = {
                let job = self.running.get_mut(&id).expect("job is running");
                let es = job.epoch.take().expect("running job has an open epoch");
                let report = self.world.world_mut().end_epoch(es);
                record_epoch(job, self.t, &report);
                let v = job.monitor.observe(report.observed_mbs);
                (v, job.degraded, job.spec.route.clone(), report.observed_mbs)
            };
            // Feed the fleet-level SLO monitor: every link this route
            // crosses saw the epoch's goodput. A zero-goodput epoch is a
            // "bad" observation; state transitions become `slo` events.
            if self.governor.is_some() {
                let bad = observed <= self.config.health.zero_floor_mbs;
                for &l in route.links() {
                    let tr = self
                        .governor
                        .as_mut()
                        .expect("checked above")
                        .slo
                        .observe(l, bad);
                    if let Some((from, to)) = tr {
                        self.push_event("slo", None, Some(l), format!("{from}=>{to}"));
                    }
                }
            }
            match verdict {
                HealthVerdict::Healthy => {
                    if was_degraded {
                        self.running.get_mut(&id).expect("running").degraded = false;
                    }
                    for &l in route.links() {
                        if let Some(tr) = self.breakers.on_success(l, self.t) {
                            self.push_event(tr, None, Some(l), String::new());
                            // A state transition (half-open closing) widens
                            // what admission may grant next tick.
                            self.admission_dirty = true;
                        }
                    }
                    self.next_epoch(id, observed);
                }
                HealthVerdict::Degraded => {
                    if !was_degraded {
                        let (zr, cr) = {
                            let job = self.running.get_mut(&id).expect("running");
                            job.degraded = true;
                            (job.monitor.zero_run(), job.monitor.collapse_run())
                        };
                        self.push_event(
                            "degrade",
                            Some(id.to_string()),
                            None,
                            format!("zero_run={zr} collapse_run={cr}"),
                        );
                    }
                    self.next_epoch(id, observed);
                }
                HealthVerdict::Quarantine => self.quarantine(id),
            }
        }

        // 6. Control-plane step: the governor reacts to the SLO picture the
        // epoch boundaries just painted (no governor → no-op, keeping quiet
        // fleets byte-identical).
        self.govern_step();
        true
    }

    /// End-of-tick self-healing step (active only with `topo.selfheal`):
    /// on sustained link degradation, re-search placement against the
    /// fault-adjusted topology and migrate affected jobs; when the retry
    /// budget is dry under degradation, brown out the lowest-priority
    /// queued job on a degraded link.
    fn govern_step(&mut self) {
        let Some(g) = &self.governor else { return };
        let degraded = g.slo.degraded_links();
        if degraded.is_empty() {
            return;
        }
        if g.replan_ready(self.t) {
            self.replan(&degraded);
        }
        let g = self.governor.as_ref().expect("governor present");
        if g.budget.tokens() == 0 && g.brownout_ready(self.t) {
            self.brownout(&degraded);
        }
    }

    /// Online placement re-search (DESIGN.md §17): shrink the degraded
    /// inter-region edges of a cloned planet to 2 % capacity, re-run the
    /// coordinate descent scoped to the pairs whose chosen route crosses a
    /// degraded link, install the refreshed table, steer queued work onto
    /// it for free, and migrate running jobs (one retry-budget token each)
    /// with byte conservation through the carried `moved_base` fold.
    fn replan(&mut self, degraded: &std::collections::BTreeSet<usize>) {
        let Some(tc) = self.config.topo.clone() else {
            return;
        };
        // The fault picture: SLO-degraded links plus links whose breaker is
        // open (independent per-route failure evidence).
        let mut dead = degraded.clone();
        dead.extend(self.breakers.open_links());
        let (adjusted, affected) = {
            let FleetWorld::Planet(pf) = &self.world else {
                return;
            };
            let planet = &pf.pw.catalog.planet;
            let nregions = planet.regions.len();
            let mut adjusted = planet.clone();
            let mut shrunk = false;
            for &l in &dead {
                // NIC links (< nregions) are per-region host capacity, not
                // planet edges; a re-route cannot dodge an endpoint NIC, so
                // only inter-region edges are adjusted.
                if l >= nregions {
                    adjusted.edges[l - nregions].capacity_mbs *= 0.02;
                    shrunk = true;
                }
            }
            let affected: Vec<usize> = pf
                .placement
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.links[0].iter().any(|l| dead.contains(l)))
                .map(|(i, _)| i)
                .collect();
            if !shrunk || affected.is_empty() {
                return;
            }
            (adjusted, affected)
        };
        let search_cfg = SearchConfig {
            k: tc.k,
            ..SearchConfig::default()
        };
        {
            let FleetWorld::Planet(pf) = &mut self.world else {
                unreachable!("checked above")
            };
            let Ok(refreshed) = refine_placement(&adjusted, &pf.placement, &affected, &search_cfg)
            else {
                return; // structural drift cannot happen on a preset planet
            };
            pf.placement = refreshed;
        }
        self.governor
            .as_mut()
            .expect("governor present")
            .last_replan_s = self.t;

        // Queued jobs have no live transfer yet: steering them onto the
        // refreshed chosen routes is free (carried bytes are conserved by
        // the re-admission fold).
        let updates: Vec<(usize, JobRoute)> = {
            let FleetWorld::Planet(pf) = &self.world else {
                unreachable!("checked above")
            };
            self.queued
                .iter()
                .enumerate()
                .filter(|(_, j)| j.route.links().iter().any(|l| dead.contains(l)))
                .filter_map(|(i, j)| refreshed_route(pf, j.route.name()).map(|r| (i, r)))
                .collect()
        };
        for (i, next) in updates {
            self.queued[i].route = next;
            self.admission_dirty = true;
        }

        // Running jobs on a degraded link migrate onto the refreshed chosen
        // route, one budget token each (in job-id order; jobs the budget
        // cannot cover stay put and recover through the per-job watchdogs).
        let moves: Vec<(JobId, JobRoute)> = {
            let FleetWorld::Planet(pf) = &self.world else {
                unreachable!("checked above")
            };
            self.running
                .iter()
                .filter(|(_, j)| j.spec.route.links().iter().any(|l| dead.contains(l)))
                .filter_map(|(&id, j)| refreshed_route(pf, j.spec.route.name()).map(|r| (id, r)))
                .collect()
        };
        for (id, next) in moves {
            if !self
                .governor
                .as_mut()
                .expect("governor present")
                .budget
                .try_take()
            {
                break;
            }
            self.migrate(id, next);
        }
    }

    /// Pull a running job off its degraded route and requeue it on `next`:
    /// the transfer is idled (bytes stay counted), the grant released, and
    /// the carried stats re-admitted through the same route-change fold a
    /// breaker-aware re-route uses — byte conservation for free.
    fn migrate(&mut self, id: JobId, next: JobRoute) {
        let mut job = self.running.remove(&id).expect("job is running");
        if let Some(es) = job.epoch.take() {
            let report = self.world.world_mut().end_epoch(es);
            record_epoch(&mut job, self.t, &report);
        }
        self.admission.release(id);
        self.admission_dirty = true;
        self.world
            .world_mut()
            .set_params(job.tid, StreamParams::new(0, 1), false);
        let extras = std::mem::take(&mut job.extra_tids);
        if !extras.is_empty() {
            for e in extras {
                self.world
                    .world_mut()
                    .set_params(e, StreamParams::new(0, 1), false);
                job.moved_base += self.world.world().moved_mb(e);
            }
            // See `quarantine`: fold the sliced primary too and re-issue the
            // whole remainder so abandoned slices are not stranded.
            job.moved_base += self.world.world().moved_mb(job.tid);
            job.tid = self.world.start_sized_transfer(
                &job.spec.route,
                StreamParams::new(0, 1),
                (job.spec.size_mb - job.moved_base).max(0.0),
                self.config.noise_sigma,
            );
            self.world.world_mut().set_transfer_tag(job.tid, Some(id.0));
        }
        if let Some(log) = job.tuner.audit_log() {
            if !log.is_empty() {
                self.decisions.push((id, log.to_jsonl()));
            }
        }
        self.supervision.replans += 1;
        self.push_event(
            "replan",
            Some(id.to_string()),
            None,
            format!("{}=>{}", job.spec.route.name(), next.name()),
        );
        let mut spec = job.spec;
        let carry = JobCarry {
            tid: job.tid,
            moved_base: job.moved_base,
            route_name: spec.route.name().to_string(),
            first_admitted_s: job.admitted_s,
            attempts: job.attempts,
            best_mbs: job.best_mbs,
            best_params: job.best_params,
            epochs_done: job.epochs_done,
            trace: std::mem::take(&mut job.trace),
            warm_distance: job.warm_distance,
            granted_streams: job.granted_streams,
        };
        spec.route = next;
        self.carry.insert(id, carry);
        self.queued.push(spec);
    }

    /// Brownout: with the retry budget dry under sustained degradation, the
    /// lowest-priority queued job crossing a degraded link is dropped (the
    /// same victim rule as `shed`, cooldown-gated per the governor config).
    fn brownout(&mut self, degraded: &std::collections::BTreeSet<usize>) {
        let victim = self
            .queued
            .iter()
            .enumerate()
            .filter(|(_, j)| j.route.links().iter().any(|l| degraded.contains(l)))
            .min_by_key(|(_, j)| (j.priority, std::cmp::Reverse(j.id)))
            .map(|(i, _)| i);
        let Some(pos) = victim else { return };
        let spec = self.queued.remove(pos);
        self.admission_dirty = true;
        self.supervision.brownouts += 1;
        self.push_event(
            "brownout",
            Some(spec.id.to_string()),
            None,
            format!("priority={}", spec.priority),
        );
        let o = match self.carry.remove(&spec.id) {
            Some(c) => outcome_from_carry(
                spec,
                c,
                JobState::Failed,
                self.t,
                self.config.tick_s,
                self.world.world(),
            ),
            None => never_ran(spec, JobState::Failed),
        };
        self.outcomes.push(o);
        self.governor
            .as_mut()
            .expect("governor present")
            .last_brownout_s = self.t;
    }

    /// Feed the closed epoch to the tuner and open the next one.
    fn next_epoch(&mut self, id: JobId, observed_mbs: f64) {
        let job = self.running.get_mut(&id).expect("job is running");
        let next = job.tuner.observe(&job.current.clone(), observed_mbs);
        job.current = next;
        let params = job.params_for(&job.current.clone());
        job.epoch = Some(self.world.world_mut().begin_epoch(job.tid, params, false));
        job.next_epoch_end_s = self.t + self.config.epoch_s;
    }

    /// Admit `spec` under `grant`: build (or rebuild) its tuner, restart or
    /// start its transfer, and open the first epoch.
    fn admit(&mut self, spec: JobSpec, grant: Reservation) {
        match self
            .admitted_by_class
            .iter_mut()
            .find(|(p, _)| *p == spec.priority)
        {
            Some((_, n)) => *n += 1,
            None => self.admitted_by_class.push((spec.priority, 1)),
        }
        let carried = self.carry.remove(&spec.id);
        // Context for the history query: external streams on the WAN link
        // before this job places any of its own — an O(1) incremental
        // readout, not a per-admission rebuild of every link's sum.
        let ext_streams = self
            .world
            .world()
            .net()
            .link_streams(xferopt_net::LinkId(spec.route.wan_link_index()));
        // Multipath splits the grant evenly across the job's routes; the
        // tuned primary keeps one share, so its domain shrinks accordingly.
        let multipath = self.config.topo.as_ref().map_or(1, |t| t.multipath.max(1));
        let share = (grant.streams / multipath).max(1);
        // Restrict the tuner's domain to the granted reservation:
        // nc ≤ granted / np, so proposals can never oversubscribe.
        let nc_hi = (share / spec.np.max(1)).max(1) as i64;
        let domain = Domain::new(&[(1, nc_hi.min(512))]);
        let cold = vec![spec.cold_start().nc as i64];
        let seed = match &carried {
            // A requeued job re-tunes from its own best-so-far (Arslan &
            // Kosar's restart-and-re-tune), clamped into the new domain.
            Some(c) if c.best_mbs > 0.0 => WarmStart::from_history(
                vec![(c.best_params.nc as i64).clamp(1, nc_hi.min(512))],
                0.0,
            ),
            _ if self.config.warm_start => self.history.warm_start(
                spec.route.name(),
                spec.tuner,
                ext_streams,
                0.0,
                "fleet",
                cold.clone(),
                self.config.max_match_distance,
            ),
            _ => WarmStart::cold(cold.clone()),
        };
        let mut tuner = spec.tuner.build_seeded(domain, &seed);
        if self.config.audit {
            tuner.enable_audit();
            if let Some(log) = tuner.audit_log_mut() {
                log.set_namespace(spec.id.to_string());
            }
        }
        let x0 = tuner.initial();
        let restart = carried.is_some();
        #[allow(clippy::type_complexity)]
        let (
            tid,
            extra_tids,
            moved_base,
            admitted_s,
            attempts,
            warm_distance,
            best_mbs,
            best_params,
            epochs_done,
            trace,
        ) = match carried {
            Some(mut c) => {
                if c.route_name != spec.route.name() {
                    // Re-routed while queued: fold the abandoned
                    // transfer's bytes into moved_base and run only the
                    // remainder on the new route — bytes conserved.
                    c.moved_base += self.world.world().moved_mb(c.tid);
                    c.tid = self.world.start_sized_transfer(
                        &spec.route,
                        StreamParams::new(1, 1),
                        (spec.size_mb - c.moved_base).max(0.0),
                        self.config.noise_sigma,
                    );
                }
                (
                    c.tid,
                    Vec::new(),
                    c.moved_base,
                    c.first_admitted_s,
                    c.attempts,
                    c.warm_distance,
                    c.best_mbs,
                    c.best_params,
                    c.epochs_done,
                    c.trace,
                )
            }
            None => {
                let (extra_tids, extra_mb) = self.start_multipath_extras(&spec, multipath, share);
                let tid = self.world.start_sized_transfer(
                    &spec.route,
                    StreamParams::new(1, 1), // placeholder; epoch sets real params
                    spec.size_mb - extra_mb,
                    self.config.noise_sigma,
                );
                (
                    tid,
                    extra_tids,
                    0.0,
                    self.t,
                    0,
                    seed.distance(),
                    0.0,
                    spec.cold_start(),
                    0,
                    Vec::new(),
                )
            }
        };
        let mut job = RunningJob {
            tid,
            extra_tids,
            moved_base,
            tuner,
            epoch: None,
            current: x0,
            admitted_s,
            next_epoch_end_s: self.t + self.config.epoch_s,
            granted_streams: grant.streams,
            ext_streams,
            warm_distance,
            best_mbs,
            best_params,
            epochs_done,
            trace,
            monitor: HealthMonitor::new(self.config.health),
            attempts,
            degraded: false,
            spec,
        };
        let w = self.world.world_mut();
        w.set_transfer_tag(job.tid, Some(job.spec.id.0));
        for &e in &job.extra_tids {
            w.set_transfer_tag(e, Some(job.spec.id.0));
        }
        let params = job.params_for(&job.current.clone());
        job.epoch = Some(w.begin_epoch(job.tid, params, restart));
        self.running.insert(job.spec.id, job);
    }

    /// Start the fixed-config extra transfers of a multipath job: one per
    /// fallback route in the placement's rank order, each carrying a slice
    /// of the job's bytes weighted by the route's search score (bottleneck
    /// capacity discounted by RTT — a fat slow detour gets more bytes than
    /// a thin fast hop, but latency still costs), and one `share`-stream
    /// config. Returns the transfer ids and the total bytes they carry (the
    /// primary runs the rest). No-op on the classic world or when the
    /// placement has no fallback for the pair.
    fn start_multipath_extras(
        &mut self,
        spec: &JobSpec,
        multipath: u32,
        share: u32,
    ) -> (Vec<TransferId>, f64) {
        if multipath <= 1 {
            return (Vec::new(), 0.0);
        }
        // `(route, weight)` per fallback, plus the primary's weight.
        let (fallbacks, primary_w): (Vec<(JobRoute, f64)>, f64) = match &self.world {
            FleetWorld::Classic(_) => (Vec::new(), 1.0),
            FleetWorld::Planet(pf) => {
                let score = |path: usize| {
                    let r = &pf.pw.catalog.routes[path];
                    r.bottleneck_mbs / (1.0 + r.rtt_ms / 100.0)
                };
                let fb = pf
                    .placement
                    .entries
                    .iter()
                    .find(|e| e.routes.iter().any(|r| r == spec.route.name()))
                    .map(|entry| {
                        entry
                            .routes
                            .iter()
                            .zip(&entry.links)
                            .filter(|(name, _)| name.as_str() != spec.route.name())
                            .take(multipath as usize - 1)
                            .filter_map(|(name, links)| {
                                pf.pw.catalog.route_by_name(name).map(|p| {
                                    (JobRoute::new(name.clone(), links.clone(), p), score(p))
                                })
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                let pw_w = pf
                    .pw
                    .catalog
                    .route_by_name(spec.route.name())
                    .map_or(1.0, score);
                (fb, pw_w)
            }
        };
        if fallbacks.is_empty() {
            return (Vec::new(), 0.0);
        }
        let total_w: f64 = primary_w + fallbacks.iter().map(|(_, w)| w).sum::<f64>();
        let nc = (share / spec.np.max(1)).max(1);
        let params = StreamParams::new(nc, spec.np);
        let mut tids = Vec::new();
        let mut extra_mb = 0.0;
        for (route, w) in &fallbacks {
            // Conservation by construction: the primary runs
            // `size_mb - extra_mb`, so the slices always sum to size_mb.
            let slice = spec.size_mb * w / total_w;
            tids.push(self.world.start_sized_transfer(
                route,
                params,
                slice,
                self.config.noise_sigma,
            ));
            extra_mb += slice;
        }
        (tids, extra_mb)
    }

    /// Pull a job off the wire: release its grant, feed the route's breakers
    /// a failure, and either schedule a requeue after the shared
    /// [`xferopt_transfer::RetryPolicy`] backoff or fail it when the attempt
    /// budget is spent. The transfer is idled (`nc = 0`), not destroyed, so
    /// `moved_mb` is conserved across the requeue.
    fn quarantine(&mut self, id: JobId) {
        let mut job = self.running.remove(&id).expect("job is running");
        self.admission.release(id);
        self.admission_dirty = true;
        // Idle the transfer: zero streams move nothing but keep the byte
        // counter alive for the resumed attempt. Multipath extras are folded
        // into moved_base and abandoned — a retried job runs single-path.
        self.world
            .world_mut()
            .set_params(job.tid, StreamParams::new(0, 1), false);
        let extras = std::mem::take(&mut job.extra_tids);
        if !extras.is_empty() {
            for e in extras {
                self.world
                    .world_mut()
                    .set_params(e, StreamParams::new(0, 1), false);
                job.moved_base += self.world.world().moved_mb(e);
            }
            // The primary transfer was sized to its slice only; fold it too
            // and re-issue the whole remainder so the abandoned slices'
            // unmoved bytes are not stranded (byte conservation).
            job.moved_base += self.world.world().moved_mb(job.tid);
            job.tid = self.world.start_sized_transfer(
                &job.spec.route,
                StreamParams::new(0, 1),
                (job.spec.size_mb - job.moved_base).max(0.0),
                self.config.noise_sigma,
            );
            self.world.world_mut().set_transfer_tag(job.tid, Some(id.0));
        }
        let attempts = job.attempts + 1;
        self.supervision.quarantines += 1;
        self.push_event(
            "quarantine",
            Some(id.to_string()),
            None,
            format!(
                "attempt={attempts} zero_run={} collapse_run={}",
                job.monitor.zero_run(),
                job.monitor.collapse_run()
            ),
        );
        for &l in job.spec.route.links() {
            if let Some(tr) = self.breakers.on_failure(l, self.t) {
                if tr == "breaker-open" {
                    self.supervision.breaker_trips += 1;
                }
                self.push_event(tr, None, Some(l), String::new());
            }
        }
        if attempts >= self.config.health.max_attempts {
            self.supervision.failed += 1;
            self.push_event(
                "job-failed",
                Some(id.to_string()),
                None,
                "attempts_exhausted".into(),
            );
            let moved = moved_total(self.world.world(), &job);
            let elapsed = (self.t - job.admitted_s).max(self.config.tick_s);
            job.attempts = attempts;
            let o = retire(
                job,
                JobState::Failed,
                None,
                moved,
                elapsed,
                &mut self.decisions,
            );
            self.outcomes.push(o);
        } else {
            // Flush this attempt's audit log now; a fresh tuner (and log) is
            // built on re-admission.
            if let Some(log) = job.tuner.audit_log() {
                if !log.is_empty() {
                    self.decisions.push((id, log.to_jsonl()));
                }
            }
            // Shared backoff policy — the same RetryPolicy the transfer layer
            // uses for abort retries (see xferopt_transfer::retry).
            let mut rng = SmallRng::seed_from_u64(
                self.config.seed
                    ^ 0x7265_7175_6575_7565 // "requeuue"
                    ^ id.0.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    ^ ((attempts as u64) << 32),
            );
            let delay = self.config.health.retry.delay_s(attempts, &mut rng);
            let resume_at_s = self.t + delay;
            self.quarantined.insert(
                id,
                QuarantinedJob {
                    carry: JobCarry {
                        tid: job.tid,
                        moved_base: job.moved_base,
                        route_name: job.spec.route.name().to_string(),
                        first_admitted_s: job.admitted_s,
                        attempts,
                        best_mbs: job.best_mbs,
                        best_params: job.best_params,
                        epochs_done: job.epochs_done,
                        trace: std::mem::take(&mut job.trace),
                        warm_distance: job.warm_distance,
                        granted_streams: job.granted_streams,
                    },
                    spec: job.spec,
                    resume_at_s,
                },
            );
        }
    }

    /// Shed the lowest-priority queued job crossing a link whose breaker has
    /// been continuously unhealthy for `shed_after_s` (at most one job per
    /// link per interval) — graceful degradation under sustained pressure.
    fn shed(&mut self) {
        for link in 0..self.breakers.len() {
            if self.breakers.breaker(link).unhealthy_for_s(self.t) < self.config.shed_after_s {
                continue;
            }
            if self.t - self.last_shed_s[link] < self.config.shed_after_s {
                continue;
            }
            let victim = self
                .queued
                .iter()
                .enumerate()
                .filter(|(_, j)| j.route.links().contains(&link))
                .min_by_key(|(_, j)| (j.priority, std::cmp::Reverse(j.id)))
                .map(|(i, _)| i);
            let Some(pos) = victim else { continue };
            let spec = self.queued.remove(pos);
            self.admission_dirty = true;
            self.supervision.shed += 1;
            self.push_event(
                "shed",
                Some(spec.id.to_string()),
                Some(link),
                format!("priority={}", spec.priority),
            );
            let o = match self.carry.remove(&spec.id) {
                Some(c) => outcome_from_carry(
                    spec,
                    c,
                    JobState::Failed,
                    self.t,
                    self.config.tick_s,
                    self.world.world(),
                ),
                None => never_ran(spec, JobState::Failed),
            };
            self.outcomes.push(o);
            self.last_shed_s[link] = self.t;
        }
    }

    /// Records appended to the history store during the last completed tick,
    /// in completion (job-id) order. The sharded runner drains this every
    /// tick to serialize all shards' appends into the real store.
    pub(crate) fn take_tick_appends(&mut self) -> Vec<(JobId, HistoryRecord)> {
        std::mem::take(&mut self.tick_appends)
    }

    /// Deterministic digest of the live state (checkpoint verification).
    pub fn state_digest(&self) -> String {
        fn ids<'a>(it: impl Iterator<Item = &'a JobSpec>) -> String {
            it.map(|j| j.id.0.to_string()).collect::<Vec<_>>().join(",")
        }
        let mut s = format!("tick={};t={};", self.tick, json_f64(self.t));
        s.push_str(&format!(
            "pending={};queued={};",
            ids(self.pending.iter()),
            ids(self.queued.iter())
        ));
        for (id, j) in &self.running {
            s.push_str(&format!(
                "r{}:e{}:m{}:x{}:g{};",
                id.0,
                j.epochs_done,
                json_f64(moved_total(self.world.world(), j)),
                j.current
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("/"),
                j.granted_streams,
            ));
        }
        for (id, q) in &self.quarantined {
            s.push_str(&format!(
                "q{}:a{}:u{};",
                id.0,
                q.carry.attempts,
                json_f64(q.resume_at_s)
            ));
        }
        for (id, c) in &self.carry {
            s.push_str(&format!("c{}:a{};", id.0, c.attempts));
        }
        s.push_str("res=");
        let nlinks = self.breakers.len();
        s.push_str(
            &(0..nlinks)
                .map(|l| self.admission.reserved(l).to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        s.push(';');
        s.push_str(&format!("brk={};", self.breakers.digest()));
        for (p, n) in &self.admitted_by_class {
            s.push_str(&format!("cls{p}:{n};"));
        }
        if let Some(g) = &self.governor {
            s.push_str(&format!("gov={};", g.digest()));
        }
        s.push_str(&format!(
            "out={};dec={};ev={};hist={};sup={}",
            self.outcomes.len(),
            self.decisions.len(),
            self.events.len(),
            self.history_appended,
            self.supervision.render(),
        ));
        s
    }

    /// FNV-1a hash of [`FleetSim::state_digest`].
    pub fn digest_hash(&self) -> u64 {
        crate::checkpoint::fnv1a(&self.state_digest())
    }

    /// Serialize a checkpoint of this run at the current tick (JSONL: one
    /// header line, one line per workload job, one digest line). See
    /// DESIGN.md §12 — the checkpoint is *replay-based*: it records the run's
    /// inputs plus the tick and a state digest; resume replays ticks `0..k`
    /// with history appends redirected to memory, verifies the digest, then
    /// continues with persistence re-enabled.
    pub fn checkpoint(&self) -> String {
        render_checkpoint(
            &self.config,
            self.tick,
            self.t,
            &self.workload_jobs,
            self.history_start_len,
            self.history_appended,
            self.digest_hash(),
        )
    }

    /// Close out the run and assemble the outcome. Jobs still running are
    /// `Unfinished`; quarantined or requeued-but-not-readmitted jobs are
    /// `Unfinished` with their carried statistics; never-admitted jobs stay
    /// `Queued`/`Pending`.
    pub fn finish(self) -> FleetOutcome {
        self.finish_parts().into_outcome()
    }

    /// Close out the run into structured parts (the sharded runner merges
    /// per-component parts with deterministic keys before rendering; the
    /// single-threaded path renders them directly, so both paths share one
    /// formatter).
    pub(crate) fn finish_parts(mut self) -> FleetParts {
        let ids: Vec<JobId> = self.running.keys().copied().collect();
        for id in ids {
            let mut job = self.running.remove(&id).expect("job is running");
            if let Some(es) = job.epoch.take() {
                let report = self.world.world_mut().end_epoch(es);
                record_epoch(&mut job, self.t, &report);
            }
            self.admission.release(id);
            let moved = moved_total(self.world.world(), &job);
            let elapsed = (self.t - job.admitted_s).max(self.config.tick_s);
            let o = retire(
                job,
                JobState::Unfinished,
                None,
                moved,
                elapsed,
                &mut self.decisions,
            );
            self.outcomes.push(o);
        }
        let qids: Vec<JobId> = self.quarantined.keys().copied().collect();
        for id in qids {
            let q = self.quarantined.remove(&id).expect("job is quarantined");
            self.outcomes.push(outcome_from_carry(
                q.spec,
                q.carry,
                JobState::Unfinished,
                self.t,
                self.config.tick_s,
                self.world.world(),
            ));
        }
        for spec in std::mem::take(&mut self.queued) {
            let o = match self.carry.remove(&spec.id) {
                Some(c) => outcome_from_carry(
                    spec,
                    c,
                    JobState::Unfinished,
                    self.t,
                    self.config.tick_s,
                    self.world.world(),
                ),
                None => never_ran(spec, JobState::Queued),
            };
            self.outcomes.push(o);
        }
        for spec in std::mem::take(&mut self.pending) {
            self.outcomes.push(never_ran(spec, JobState::Pending));
        }
        self.outcomes.sort_by_key(|o| o.id);
        self.decisions.sort_by_key(|(id, _)| *id);

        let telemetry = self
            .world
            .world_mut()
            .take_telemetry()
            .map(|tel| {
                tel.epochs()
                    .iter()
                    .map(|e| (e.start_s, e.to_json()))
                    .collect()
            })
            .unwrap_or_default();
        let metrics = if self.metrics.is_empty() {
            None
        } else {
            Some(self.metrics.snapshot())
        };

        FleetParts {
            config: self.config,
            submitted: self.workload_jobs.len(),
            outcomes: self.outcomes,
            decisions: self.decisions,
            telemetry,
            events: self.events,
            supervision: self.supervision,
            metrics,
            history_appended: self.history_appended,
        }
    }
}

/// Structured output of one finished [`FleetSim`]: everything a
/// [`FleetOutcome`] renders, before rendering. Component parts of a sharded
/// run are merged field-by-field with deterministic ordering keys (job id
/// for outcomes/decisions, epoch start time for telemetry, event time for
/// supervision — component order breaks ties) and then rendered through the
/// same formatter as the single-threaded path.
pub(crate) struct FleetParts {
    pub(crate) config: FleetConfig,
    pub(crate) submitted: usize,
    pub(crate) outcomes: Vec<JobOutcome>,
    pub(crate) decisions: Vec<(JobId, String)>,
    /// `(epoch start_s, rendered JSON line)` in the world's recording order.
    pub(crate) telemetry: Vec<(f64, String)>,
    pub(crate) events: Vec<SupervisionEvent>,
    pub(crate) supervision: SupervisionSummary,
    pub(crate) metrics: Option<xferopt_simcore::metrics::MetricsSnapshot>,
    pub(crate) history_appended: usize,
}

impl FleetParts {
    /// Render into the public [`FleetOutcome`] form.
    pub(crate) fn into_outcome(self) -> FleetOutcome {
        let mut telemetry_jsonl = String::new();
        for (_, line) in &self.telemetry {
            telemetry_jsonl.push_str(line);
            telemetry_jsonl.push('\n');
        }
        let mut supervision_jsonl = String::new();
        for e in &self.events {
            supervision_jsonl.push_str(&e.to_json());
            supervision_jsonl.push('\n');
        }
        FleetOutcome {
            report: FleetReport {
                config: self.config,
                submitted: self.submitted,
                outcomes: self.outcomes,
                supervision: self.supervision,
            },
            decisions_jsonl: self.decisions.into_iter().map(|(_, s)| s).collect(),
            telemetry_jsonl,
            supervision_jsonl,
            metrics_jsonl: self.metrics.map(|m| m.to_jsonl()).unwrap_or_default(),
            history_appended: self.history_appended,
        }
    }
}

/// Render a fleet checkpoint (JSONL: header, one line per workload job, one
/// digest line) — shared by [`FleetSim::checkpoint`] and the sharded runner,
/// so the wire format cannot drift between the two paths.
pub(crate) fn render_checkpoint(
    config: &FleetConfig,
    tick: u64,
    t: f64,
    jobs: &[JobSpec],
    history_start_len: usize,
    history_appended: usize,
    digest: u64,
) -> String {
    let c = config;
    let mut out = format!(
        "{{\"kind\":\"fleet-checkpoint\",\"version\":1,\"tick\":{},\"t_s\":{},\"policy\":\"{}\",\"seed\":{},\"horizon_s\":{},\"tick_s\":{},\"epoch_s\":{},\"budget\":{},\"warm\":{},\"max_match_distance\":{},\"noise_sigma\":{},\"audit\":{},\"shed_after_s\":{}",
        tick,
        json_f64(t),
        c.policy,
        c.seed,
        json_f64(c.horizon_s),
        json_f64(c.tick_s),
        json_f64(c.epoch_s),
        c.link_budget,
        c.warm_start,
        json_f64(c.max_match_distance),
        json_f64(c.noise_sigma),
        c.audit,
        json_f64(c.shed_after_s),
    );
    if let Some(p) = c.faults {
        out.push_str(&format!(",\"faults\":\"{}\"", p.name()));
    }
    if let Some(tc) = &c.topo {
        out.push_str(&format!(
            ",\"topo\":\"{}\",\"topo_k\":{},\"multipath\":{},\"reroute\":{}",
            tc.preset, tc.k, tc.multipath, tc.reroute
        ));
        if tc.selfheal {
            out.push_str(",\"selfheal\":true");
        }
        if let Some(name) = &tc.campaign {
            out.push_str(&format!(",\"campaign\":\"{name}\""));
        }
        // One region keeps the historical scalar field (byte-compatible
        // with pre-multi-outage checkpoints); several use the plural form.
        match tc.outage_regions.as_slice() {
            [] => {}
            [r] => out.push_str(&format!(",\"outage_region\":{r}")),
            rs => out.push_str(&format!(
                ",\"outage_regions\":\"{}\"",
                rs.iter()
                    .map(|r| r.to_string())
                    .collect::<Vec<_>>()
                    .join(";")
            )),
        }
    }
    out.push_str(&format!(
        ",\"jobs\":{},\"history_start_len\":{},\"history_appended\":{}}}\n",
        jobs.len(),
        history_start_len,
        history_appended
    ));
    for j in jobs {
        out.push_str(&crate::checkpoint::job_to_json(j));
        out.push('\n');
    }
    // Two hashes close two different holes: `fnv` (the live-state digest)
    // catches replay divergence, while `text_fnv` (over the header + job
    // lines just written) catches corruption of the serialized inputs
    // themselves — a flipped byte in a job the replay has not admitted yet
    // would otherwise slip past the state digest.
    let text_fnv = crate::checkpoint::fnv1a(&out);
    out.push_str(&format!(
        "{{\"kind\":\"fleet-digest\",\"fnv\":\"{digest:016x}\",\"text_fnv\":\"{text_fnv:016x}\"}}\n"
    ));
    out
}

/// A deterministic planet workload: `n` jobs round-robin over the
/// placement's pairs, each on its pair's chosen (rank-0 of the re-route
/// order) route with the searched stream shape. Sizes cycle a small
/// deterministic grid so admissions and completions interleave.
///
/// # Panics
/// Panics when the placement is empty or references a route missing from
/// the catalog (both impossible for a table searched on the same planet).
pub fn topo_workload(placement: &PlacementTable, catalog: &RouteCatalog, n: usize) -> Workload {
    assert!(!placement.entries.is_empty(), "placement has no pairs");
    let jobs = (0..n)
        .map(|i| {
            let e = &placement.entries[i % placement.entries.len()];
            let name = e.routes.first().expect("placement entry has a route");
            let path = catalog
                .route_by_name(name)
                .expect("placement route in catalog");
            let route = JobRoute::new(name.clone(), e.links[0].clone(), path);
            let size = 30_000.0 + 10_000.0 * ((i * 7 + 3) % 5) as f64;
            let wave = (i / placement.entries.len()) as f64;
            JobSpec::new(i as u64, wave * 120.0, size)
                .with_route(route)
                .with_np(e.np)
                .with_max_streams((e.nc * e.np).max(8))
        })
        .collect();
    Workload::new(jobs)
}

/// Run `workload` under `config`, appending completed jobs to `history`.
pub fn run_fleet(
    workload: &Workload,
    config: &FleetConfig,
    history: &mut HistoryStore,
) -> FleetOutcome {
    let mut sim = FleetSim::new(workload, config, history);
    while sim.tick() {}
    sim.finish()
}

/// Total megabytes a job has moved: bytes abandoned on earlier routes plus
/// every live transfer's counter. On the classic world this is exactly
/// `moved_mb(tid)` (additive identities), preserving golden bytes.
fn moved_total(world: &World, job: &RunningJob) -> f64 {
    job.moved_base
        + world.moved_mb(job.tid)
        + job
            .extra_tids
            .iter()
            .map(|&e| world.moved_mb(e))
            .sum::<f64>()
}

/// Fold one closed epoch into the job's running statistics.
fn record_epoch(job: &mut RunningJob, t: f64, report: &EpochReport) {
    job.epochs_done += 1;
    job.trace.push((t - job.admitted_s, report.observed_mbs));
    if report.observed_mbs > job.best_mbs {
        job.best_mbs = report.observed_mbs;
        job.best_params = report.params;
    }
}

/// Build the outcome for a job that ran (completed, unfinished, or failed).
fn retire(
    job: RunningJob,
    state: JobState,
    finished_s: Option<f64>,
    moved_mb: f64,
    elapsed_s: f64,
    decisions: &mut Vec<(JobId, String)>,
) -> JobOutcome {
    if let Some(log) = job.tuner.audit_log() {
        if !log.is_empty() {
            decisions.push((job.spec.id, log.to_jsonl()));
        }
    }
    let threshold = 0.9 * job.best_mbs;
    let time_to_90_s = job
        .trace
        .iter()
        .find(|(_, mbs)| *mbs >= threshold && *mbs > 0.0)
        .map(|(dt, _)| *dt);
    let deadline_met = job
        .spec
        .deadline_s
        .map(|d| state == JobState::Completed && finished_s.is_some_and(|f| f <= d + 1e-9));
    JobOutcome {
        id: job.spec.id,
        state,
        admitted_s: Some(job.admitted_s),
        finished_s,
        granted_streams: job.granted_streams,
        moved_mb,
        mean_mbs: moved_mb / elapsed_s,
        best_mbs: job.best_mbs,
        best_params: job.best_params,
        epochs: job.epochs_done,
        warm_distance: job.warm_distance,
        time_to_90_s,
        deadline_met,
        spec: job.spec,
    }
}

/// Outcome for a job that ran at least once but sits off the wire (carried
/// quarantine/requeue statistics).
fn outcome_from_carry(
    spec: JobSpec,
    c: JobCarry,
    state: JobState,
    t: f64,
    tick_s: f64,
    world: &World,
) -> JobOutcome {
    let moved = c.moved_base + world.moved_mb(c.tid);
    let elapsed = (t - c.first_admitted_s).max(tick_s);
    let threshold = 0.9 * c.best_mbs;
    let time_to_90_s = c
        .trace
        .iter()
        .find(|(_, mbs)| *mbs >= threshold && *mbs > 0.0)
        .map(|(dt, _)| *dt);
    JobOutcome {
        id: spec.id,
        state,
        admitted_s: Some(c.first_admitted_s),
        finished_s: None,
        granted_streams: c.granted_streams,
        moved_mb: moved,
        mean_mbs: moved / elapsed,
        best_mbs: c.best_mbs,
        best_params: c.best_params,
        epochs: c.epochs_done,
        warm_distance: c.warm_distance,
        time_to_90_s,
        deadline_met: spec.deadline_s.map(|_| false),
        spec,
    }
}

/// Outcome for a job the horizon (or shedding) caught before admission.
fn never_ran(spec: JobSpec, state: JobState) -> JobOutcome {
    JobOutcome {
        id: spec.id,
        state,
        admitted_s: None,
        finished_s: None,
        granted_streams: 0,
        moved_mb: 0.0,
        mean_mbs: 0.0,
        best_mbs: 0.0,
        best_params: spec.cold_start(),
        epochs: 0,
        warm_distance: None,
        time_to_90_s: None,
        deadline_met: spec.deadline_s.map(|_| false),
        spec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(policy: Policy) -> FleetConfig {
        FleetConfig {
            policy,
            horizon_s: 1800.0,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn contended_fleet_completes_under_every_policy() {
        for policy in Policy::all() {
            let mut h = HistoryStore::in_memory();
            let out = run_fleet(&Workload::contended(3), &quick_config(policy), &mut h);
            assert_eq!(
                out.report.count(JobState::Completed),
                3,
                "policy {policy}: {}",
                out.report.render()
            );
            assert_eq!(out.history_appended, 3);
            assert!(!out.decisions_jsonl.is_empty(), "audit logs expected");
            assert!(out.decisions_jsonl.contains("\"ns\":\"job0\""));
            assert!(!out.telemetry_jsonl.is_empty(), "telemetry expected");
            // Observational-by-default: no supervision activity in a quiet
            // run, and nothing rendered about it.
            assert!(out.report.supervision.is_quiet(), "{policy}");
            assert!(out.supervision_jsonl.is_empty(), "{policy}");
            assert!(!out.report.render().contains("supervision"), "{policy}");
        }
    }

    #[test]
    fn same_seed_renders_identical_reports() {
        let cfg = quick_config(Policy::Sjf);
        let w = Workload::synthetic(8, 11);
        let a = run_fleet(&w, &cfg, &mut HistoryStore::in_memory());
        let b = run_fleet(&w, &cfg, &mut HistoryStore::in_memory());
        assert_eq!(a.report.render(), b.report.render());
        assert_eq!(a.decisions_jsonl, b.decisions_jsonl);
        assert_eq!(a.telemetry_jsonl, b.telemetry_jsonl);
        assert_eq!(a.supervision_jsonl, b.supervision_jsonl);
        assert_eq!(a.metrics_jsonl, b.metrics_jsonl);
    }

    #[test]
    fn horizon_marks_unfinished_and_queued() {
        let cfg = FleetConfig {
            horizon_s: 60.0,
            ..quick_config(Policy::Fifo)
        };
        // Two huge jobs plus one arriving after the horizon.
        let w = Workload::new(vec![
            JobSpec::new(0, 0.0, 1_000_000.0),
            JobSpec::new(1, 0.0, 1_000_000.0),
            JobSpec::new(2, 7200.0, 100.0),
        ]);
        let out = run_fleet(&w, &cfg, &mut HistoryStore::in_memory());
        assert_eq!(out.report.count(JobState::Unfinished), 2);
        assert_eq!(out.report.count(JobState::Pending), 1);
        assert_eq!(out.history_appended, 0, "unfinished jobs leave no history");
    }

    #[test]
    fn warm_start_uses_the_history_store() {
        let cfg = FleetConfig {
            warm_start: false,
            ..quick_config(Policy::Fifo)
        };
        let mut h = HistoryStore::in_memory();
        let cold = run_fleet(&Workload::contended(2), &cfg, &mut h);
        assert!(cold
            .report
            .outcomes
            .iter()
            .all(|o| o.warm_distance.is_none()));
        assert!(h.len() >= 2);
        let warm_cfg = FleetConfig {
            warm_start: true,
            ..cfg
        };
        let warm = run_fleet(&Workload::contended(2), &warm_cfg, &mut h);
        assert!(
            warm.report
                .outcomes
                .iter()
                .any(|o| o.warm_distance.is_some()),
            "{}",
            warm.report.render()
        );
    }

    #[test]
    fn csv_has_a_row_per_job() {
        let out = run_fleet(
            &Workload::contended(2),
            &quick_config(Policy::Fifo),
            &mut HistoryStore::in_memory(),
        );
        let csv = out.report.to_csv();
        assert_eq!(csv.lines().count(), 3, "{csv}");
        assert!(csv.starts_with("job,state,route"));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn misaligned_tick_is_rejected() {
        let cfg = FleetConfig {
            tick_s: 7.0,
            ..FleetConfig::default()
        };
        run_fleet(
            &Workload::contended(1),
            &cfg,
            &mut HistoryStore::in_memory(),
        );
    }

    #[test]
    fn stepwise_sim_matches_one_shot_run() {
        let cfg = quick_config(Policy::Sjf);
        let w = Workload::synthetic(6, 3);
        let one = run_fleet(&w, &cfg, &mut HistoryStore::in_memory());
        let mut h = HistoryStore::in_memory();
        let mut sim = FleetSim::new(&w, &cfg, &mut h);
        let mut ticks = 0u64;
        while sim.tick() {
            ticks += 1;
            assert_eq!(sim.tick_index(), ticks);
        }
        let step = sim.finish();
        assert_eq!(one.report.render(), step.report.render());
        assert_eq!(one.decisions_jsonl, step.decisions_jsonl);
        assert_eq!(one.telemetry_jsonl, step.telemetry_jsonl);
    }

    #[test]
    fn chaos_run_quarantines_and_recovers() {
        let cfg = FleetConfig {
            faults: Some(FaultProfile::FlakyLink),
            horizon_s: 7200.0,
            ..quick_config(Policy::Fifo)
        };
        // Big enough that the fleet is still on the wire when the plan's
        // long (multi-epoch) outages land.
        let w = Workload::new(
            (0..4)
                .map(|i| JobSpec::new(i, i as f64 * 60.0, 2_000_000.0))
                .collect(),
        );
        let out = run_fleet(&w, &cfg, &mut HistoryStore::in_memory());
        // No job is lost: every admitted job ends terminal.
        for o in &out.report.outcomes {
            assert!(
                matches!(o.state, JobState::Completed | JobState::Failed),
                "{} stuck in {}:\n{}",
                o.id,
                o.state.name(),
                out.report.render()
            );
        }
        assert!(
            out.report.supervision.quarantines > 0,
            "flaky-link must trip the watchdog:\n{}",
            out.report.render()
        );
        assert!(out.report.render().contains("supervision "));
        assert!(!out.supervision_jsonl.is_empty());
        assert!(out.metrics_jsonl.contains("fleet_supervision_total"));
    }
}
