//! Multi-tenant transfer orchestrator (DESIGN.md §11).
//!
//! The paper tunes one transfer at a time; this crate runs a *fleet*. A
//! [`Workload`] of jobs arrives over time; an [`AdmissionController`] grants
//! each job a stream reservation on its route's links under a per-link
//! budget, in the order chosen by a [`Policy`]; every admitted job gets its
//! own online tuner (seeded from the [`HistoryStore`]'s nearest historical
//! match when warm starts are enabled) and a finite transfer in the shared
//! [`xferopt_transfer::World`]. [`run_fleet`] drives the whole thing on a
//! deterministic tick loop and returns a byte-stable [`FleetReport`].
//!
//! ```
//! use xferopt_orchestrator::{run_fleet, FleetConfig, HistoryStore, Workload};
//!
//! let mut history = HistoryStore::in_memory();
//! let out = run_fleet(&Workload::contended(2), &FleetConfig::default(), &mut history);
//! assert_eq!(out.report.submitted, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod breaker;
pub mod chaos;
pub mod checkpoint;
pub mod fleet;
pub mod govern;
pub mod health;
pub mod history;
pub mod job;
pub mod policy;
pub mod route;
pub mod shard;
pub mod tournament;

pub use admission::{AdmissionController, Reservation, DEFAULT_LINK_BUDGET};
pub use breaker::{BreakerBoard, BreakerConfig, BreakerState, RouteBreaker};
pub use chaos::{run_campaign, CampaignConfig, CampaignOutcome};
pub use checkpoint::{parse_journal, resume_fleet, Checkpoint, JournalRead};
pub use fleet::{
    run_fleet, topo_workload, FleetConfig, FleetOutcome, FleetReport, FleetSim, JobOutcome,
    TopoFleetConfig,
};
pub use govern::{GovernConfig, Governor, RetryBudget, SloMonitor, SloState};
pub use health::{
    HealthConfig, HealthMonitor, HealthState, HealthVerdict, SupervisionEvent, SupervisionSummary,
};
pub use history::{HistoryRecord, HistoryStore};
pub use job::{JobId, JobSpec, JobState, Workload};
pub use policy::Policy;
pub use route::JobRoute;
pub use shard::{resume_fleet_sharded, run_fleet_sharded, ShardPlan, ShardedFleetSim};
pub use tournament::{
    run_tournament, CellResult, Leaderboard, RankRow, ScenarioPreset, TournamentConfig,
    TournamentOutcome,
};
