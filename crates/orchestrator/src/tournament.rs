//! The tuner tournament: every tuner × every scenario preset × every fault
//! profile, scored against a per-scenario oracle.
//!
//! ROADMAP item 3 asks which tuner wins *where*; this module settles it with
//! one deterministic command. Each tournament **cell** drives one tuner
//! through the paper's control-epoch loop on one [`ScenarioPreset`] under
//! one fault profile, then scores it with:
//!
//! * **best MB/s** — the best epoch throughput observed,
//! * **t90** — wall seconds until an epoch's up-time throughput first
//!   reached 90 % of the fault-free oracle (the surface argmax measured by
//!   [`xferopt_scenarios::throughput_surface`]; startup overhead is charged
//!   to regret, not to convergence),
//! * **regret-vs-oracle** — the shortfall integrated over epochs
//!   ([`xferopt_tuners::summarize_regret`], MB wasted),
//! * **decisions-to-converge** — audited decisions until the tuner first
//!   declared convergence,
//! * **bytes moved** — total MB the tuned transfer shipped.
//!
//! Tuners are ranked by mean regret across cells (lower is better; t90
//! misses count as the full horizon in the mean-t90 column). Every render —
//! text, CSV, JSONL — is byte-deterministic, so the leaderboard doubles as a
//! golden snapshot (`tests/golden/tournament/`): any change to a tuner, the
//! allocator, or the fault layer that shifts relative tuner quality fails CI
//! loudly.
//!
//! Completed cells feed the [`HistoryStore`] (tagged with the preset name),
//! which is how the `history` tuner earns its warm start on reruns.

use crate::history::{json_field, HistoryRecord, HistoryStore};
use xferopt_scenarios::{
    throughput_surface, ExternalLoad, FaultProfile, PaperWorld, Route, TuneDims,
};
use xferopt_simcore::metrics::json_f64;
use xferopt_simcore::SimDuration;
use xferopt_transfer::{StreamParams, TransferConfig};
use xferopt_tuners::online::{OnlineStep, OnlineTrajectory};
use xferopt_tuners::{summarize_regret, DecisionAction, HistoryTuner, OnlineTuner, TunerKind};

/// Fraction of the oracle that counts as "converged" for t90/regret.
const NEAR_OPT_FRAC: f64 = 0.9;

/// A named scenario preset: route + constant external load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioPreset {
    /// UChicago route, idle source (the paper's Fig. 5a regime).
    UcQuiet,
    /// UChicago route under heavy mixed load: 32 external streams + 16
    /// compute hogs (the contended regime where tuning matters most).
    UcContended,
    /// TACC route under moderate mixed load (long-RTT path).
    TaccMixed,
}

impl ScenarioPreset {
    /// All presets, in leaderboard order.
    pub const ALL: [ScenarioPreset; 3] = [
        ScenarioPreset::UcQuiet,
        ScenarioPreset::UcContended,
        ScenarioPreset::TaccMixed,
    ];

    /// Stable name (CLI value, report label, history-store scenario tag).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioPreset::UcQuiet => "uc-quiet",
            ScenarioPreset::UcContended => "uc-contended",
            ScenarioPreset::TaccMixed => "tacc-mixed",
        }
    }

    /// The WAN route this preset runs on.
    pub fn route(self) -> Route {
        match self {
            ScenarioPreset::UcQuiet | ScenarioPreset::UcContended => Route::UChicago,
            ScenarioPreset::TaccMixed => Route::Tacc,
        }
    }

    /// The constant external load on the source.
    pub fn load(self) -> ExternalLoad {
        match self {
            ScenarioPreset::UcQuiet => ExternalLoad::NONE,
            ScenarioPreset::UcContended => ExternalLoad::new(32, 16),
            ScenarioPreset::TaccMixed => ExternalLoad::new(8, 4),
        }
    }
}

impl std::str::FromStr for ScenarioPreset {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ScenarioPreset::ALL
            .into_iter()
            .find(|p| p.name() == s)
            .ok_or_else(|| format!("unknown scenario preset: {s}"))
    }
}

/// Tournament matrix and budget.
#[derive(Debug, Clone)]
pub struct TournamentConfig {
    /// Tuner kinds to race.
    pub tuners: Vec<TunerKind>,
    /// Scenario presets to race on.
    pub scenarios: Vec<ScenarioPreset>,
    /// Fault axis: `None` = fault-free, `Some(profile)` = seeded plan.
    pub faults: Vec<Option<FaultProfile>>,
    /// Control epochs per cell.
    pub epochs: usize,
    /// Control epoch length, seconds (the paper uses 30).
    pub epoch_s: f64,
    /// Root seed: worlds, fault plans, and oracle sweeps all derive from it.
    pub seed: u64,
    /// Throughput noise log-std for the driven transfers.
    pub noise_sigma: f64,
    /// Steady measurement window per oracle sweep cell, seconds.
    pub oracle_secs: f64,
}

impl Default for TournamentConfig {
    fn default() -> Self {
        TournamentConfig {
            tuners: vec![
                TunerKind::Default,
                TunerKind::Cd,
                TunerKind::Cs,
                TunerKind::Nm,
                TunerKind::History,
                TunerKind::Heuristic,
                TunerKind::Bandit,
            ],
            scenarios: ScenarioPreset::ALL.to_vec(),
            faults: vec![
                None,
                Some(FaultProfile::FlakyLink),
                Some(FaultProfile::DegradedWan),
            ],
            epochs: 40,
            epoch_s: 30.0,
            seed: 7,
            noise_sigma: 0.05,
            oracle_secs: 150.0,
        }
    }
}

impl TournamentConfig {
    /// The CI smoke matrix: six tuners (including both new learners) × all
    /// three presets × two fault profiles, with capped epochs and a short
    /// oracle window so the whole sweep stays inside the CI budget.
    pub fn quick() -> Self {
        TournamentConfig {
            tuners: vec![
                TunerKind::Default,
                TunerKind::Cd,
                TunerKind::Cs,
                TunerKind::History,
                TunerKind::Heuristic,
                TunerKind::Bandit,
            ],
            faults: vec![None, Some(FaultProfile::FlakyLink)],
            epochs: 12,
            oracle_secs: 60.0,
            ..TournamentConfig::default()
        }
    }

    /// Total wall horizon of one cell, seconds.
    pub fn horizon_s(&self) -> f64 {
        self.epochs as f64 * self.epoch_s
    }

    fn validate(&self) {
        assert!(!self.tuners.is_empty(), "need at least one tuner");
        assert!(!self.scenarios.is_empty(), "need at least one scenario");
        assert!(!self.faults.is_empty(), "need at least one fault profile");
        assert!(self.epochs > 0, "need at least one epoch");
        assert!(self.epoch_s > 0.0, "epoch must be positive");
        assert!(self.oracle_secs > 0.0, "oracle window must be positive");
    }
}

/// Label for one slot on the fault axis.
fn fault_label(f: Option<FaultProfile>) -> &'static str {
    f.map_or("none", FaultProfile::name)
}

/// One scored tournament cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Tuner report name.
    pub tuner: String,
    /// Scenario preset name.
    pub scenario: String,
    /// Fault profile label (`none` when fault-free).
    pub faults: String,
    /// Fault-free oracle throughput for the scenario, MB/s.
    pub oracle_mbs: f64,
    /// Best epoch throughput the tuner reached, MB/s.
    pub best_mbs: f64,
    /// Seconds until an epoch's up-time throughput first reached 90 % of
    /// the oracle.
    pub t90_s: Option<f64>,
    /// Regret vs the oracle integrated over the run, MB.
    pub regret_mb: f64,
    /// Epoch index (0-based) that first reached 90 % of the oracle.
    pub epochs_to_90: Option<usize>,
    /// Audited decisions until the first `converged` event (0 when the
    /// tuner emits no audit stream; the event count when it never
    /// converged).
    pub decisions_to_converge: usize,
    /// Total MB the tuned transfer moved.
    pub moved_mb: f64,
}

impl CellResult {
    /// One fixed-key-order JSONL line.
    pub fn to_json(&self) -> String {
        let t90 = self
            .t90_s
            .map_or("null".to_string(), |v| json_f64(v).to_string());
        let e90 = self
            .epochs_to_90
            .map_or("null".to_string(), |v| v.to_string());
        format!(
            "{{\"kind\":\"tournament_cell\",\"tuner\":\"{}\",\"scenario\":\"{}\",\"faults\":\"{}\",\"oracle_mbs\":{},\"best_mbs\":{},\"t90_s\":{},\"regret_mb\":{},\"epochs_to_90\":{},\"decisions_to_converge\":{},\"moved_mb\":{}}}",
            self.tuner,
            self.scenario,
            self.faults,
            json_f64(self.oracle_mbs),
            json_f64(self.best_mbs),
            t90,
            json_f64(self.regret_mb),
            e90,
            self.decisions_to_converge,
            json_f64(self.moved_mb),
        )
    }

    /// Parse one line written by [`CellResult::to_json`].
    pub fn from_json(line: &str) -> Option<CellResult> {
        if json_field(line, "kind")? != "tournament_cell" {
            return None;
        }
        Some(CellResult {
            tuner: json_field(line, "tuner")?.to_string(),
            scenario: json_field(line, "scenario")?.to_string(),
            faults: json_field(line, "faults")?.to_string(),
            oracle_mbs: json_field(line, "oracle_mbs")?.parse().ok()?,
            best_mbs: json_field(line, "best_mbs")?.parse().ok()?,
            t90_s: json_field(line, "t90_s")?.parse().ok(),
            regret_mb: json_field(line, "regret_mb")?.parse().ok()?,
            epochs_to_90: json_field(line, "epochs_to_90")?.parse().ok(),
            decisions_to_converge: json_field(line, "decisions_to_converge")?.parse().ok()?,
            moved_mb: json_field(line, "moved_mb")?.parse().ok()?,
        })
    }
}

/// One tuner's aggregate row in the ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct RankRow {
    /// 1-based rank (1 = least mean regret).
    pub rank: usize,
    /// Tuner report name.
    pub tuner: String,
    /// Mean regret across the tuner's cells, MB.
    pub mean_regret_mb: f64,
    /// Mean t90 across cells, with misses counted as the full horizon.
    pub mean_t90_s: f64,
    /// Cells that reached 90 % of the oracle.
    pub cells_converged: usize,
    /// Total cells the tuner ran.
    pub cells: usize,
}

/// The full tournament result: cells plus the derived ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct Leaderboard {
    /// Cell horizon used for t90 penalties, seconds.
    pub horizon_s: f64,
    /// All scored cells, in run order (scenario → fault → tuner).
    pub cells: Vec<CellResult>,
    /// Aggregate ranking, best first.
    pub ranks: Vec<RankRow>,
}

impl Leaderboard {
    /// Build the ranking from scored cells. `tuner_order` fixes the tiebreak
    /// (config order) and forces a row even for tuners with zero cells.
    pub fn from_cells(cells: Vec<CellResult>, tuner_order: &[String], horizon_s: f64) -> Self {
        let mut ranks: Vec<RankRow> = Vec::new();
        for name in tuner_order {
            let mine: Vec<&CellResult> = cells.iter().filter(|c| &c.tuner == name).collect();
            if mine.is_empty() {
                continue;
            }
            let n = mine.len() as f64;
            let mean_regret_mb = mine.iter().map(|c| c.regret_mb).sum::<f64>() / n;
            let mean_t90_s = mine
                .iter()
                .map(|c| c.t90_s.unwrap_or(horizon_s))
                .sum::<f64>()
                / n;
            ranks.push(RankRow {
                rank: 0,
                tuner: name.clone(),
                mean_regret_mb,
                mean_t90_s,
                cells_converged: mine.iter().filter(|c| c.t90_s.is_some()).count(),
                cells: mine.len(),
            });
        }
        // Stable sort: ties keep config order.
        ranks.sort_by(|a, b| {
            a.mean_regret_mb
                .partial_cmp(&b.mean_regret_mb)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for (i, r) in ranks.iter_mut().enumerate() {
            r.rank = i + 1;
        }
        Leaderboard {
            horizon_s,
            cells,
            ranks,
        }
    }

    /// Fixed-width text rendering (byte-deterministic).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "tuner tournament leaderboard ({} cells, horizon {}s)\n\n",
            self.cells.len(),
            fmt1(self.horizon_s),
        ));
        out.push_str(&format!(
            "{:<4} {:<10} {:>14} {:>11} {:>10}\n",
            "rank", "tuner", "mean_regret_mb", "mean_t90_s", "converged"
        ));
        for r in &self.ranks {
            out.push_str(&format!(
                "{:<4} {:<10} {:>14} {:>11} {:>9}/{}\n",
                r.rank,
                r.tuner,
                fmt1(r.mean_regret_mb),
                fmt1(r.mean_t90_s),
                r.cells_converged,
                r.cells,
            ));
        }
        out.push_str(&format!(
            "\n{:<10} {:<12} {:<12} {:>10} {:>9} {:>8} {:>11} {:>9} {:>9}\n",
            "tuner",
            "scenario",
            "faults",
            "oracle_mbs",
            "best_mbs",
            "t90_s",
            "regret_mb",
            "conv_dec",
            "moved_mb"
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "{:<10} {:<12} {:<12} {:>10} {:>9} {:>8} {:>11} {:>9} {:>9}\n",
                c.tuner,
                c.scenario,
                c.faults,
                fmt1(c.oracle_mbs),
                fmt1(c.best_mbs),
                c.t90_s.map_or("-".to_string(), fmt1),
                fmt1(c.regret_mb),
                c.decisions_to_converge,
                fmt1(c.moved_mb),
            ));
        }
        out
    }

    /// CSV rendering: one row per cell (byte-deterministic).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "tuner,scenario,faults,oracle_mbs,best_mbs,t90_s,regret_mb,epochs_to_90,decisions_to_converge,moved_mb\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                c.tuner,
                c.scenario,
                c.faults,
                fmt1(c.oracle_mbs),
                fmt1(c.best_mbs),
                c.t90_s.map_or(String::new(), fmt1),
                fmt1(c.regret_mb),
                c.epochs_to_90.map_or(String::new(), |v| v.to_string()),
                c.decisions_to_converge,
                fmt1(c.moved_mb),
            ));
        }
        out
    }

    /// JSONL rendering: one header line, one line per cell, one per rank.
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"kind\":\"tournament_run\",\"cells\":{},\"horizon_s\":{}}}\n",
            self.cells.len(),
            json_f64(self.horizon_s),
        );
        for c in &self.cells {
            out.push_str(&c.to_json());
            out.push('\n');
        }
        for r in &self.ranks {
            out.push_str(&format!(
                "{{\"kind\":\"tournament_rank\",\"rank\":{},\"tuner\":\"{}\",\"mean_regret_mb\":{},\"mean_t90_s\":{},\"cells_converged\":{},\"cells\":{}}}\n",
                r.rank,
                r.tuner,
                json_f64(r.mean_regret_mb),
                json_f64(r.mean_t90_s),
                r.cells_converged,
                r.cells,
            ));
        }
        out
    }

    /// Rebuild a leaderboard from a JSONL document written by
    /// [`Leaderboard::to_jsonl`]. Ranks are recomputed from the cells, so a
    /// tampered rank line cannot disagree with the data.
    ///
    /// # Errors
    /// Returns a description of the first structural problem: empty input,
    /// missing/malformed header, or no parsable cell lines.
    pub fn from_jsonl(doc: &str) -> Result<Leaderboard, String> {
        let mut lines = doc.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty tournament report")?;
        if json_field(header, "kind") != Some("tournament_run") {
            return Err(format!("not a tournament report header: {header}"));
        }
        let declared: usize = json_field(header, "cells")
            .and_then(|v| v.parse().ok())
            .ok_or("header missing cell count")?;
        let horizon_s: f64 = json_field(header, "horizon_s")
            .and_then(|v| v.parse().ok())
            .ok_or("header missing horizon")?;
        let mut cells = Vec::new();
        let mut tuner_order: Vec<String> = Vec::new();
        for line in lines {
            if let Some(c) = CellResult::from_json(line) {
                if !tuner_order.contains(&c.tuner) {
                    tuner_order.push(c.tuner.clone());
                }
                cells.push(c);
            }
        }
        if cells.is_empty() {
            return Err("tournament report has no cells".to_string());
        }
        if cells.len() != declared {
            return Err(format!(
                "truncated tournament report: header declares {declared} cells, found {}",
                cells.len()
            ));
        }
        Ok(Leaderboard::from_cells(cells, &tuner_order, horizon_s))
    }
}

/// Fixed one-decimal float formatting shared by every render.
fn fmt1(v: f64) -> String {
    format!("{v:.1}")
}

/// Everything a tournament run produces.
#[derive(Debug)]
pub struct TournamentOutcome {
    /// The scored leaderboard.
    pub leaderboard: Leaderboard,
    /// Concatenated per-cell tuner audit streams, namespaced
    /// `tuner/scenario/faults`.
    pub decisions_jsonl: String,
    /// History records appended to the store by this run.
    pub history_appended: usize,
}

/// Run the full tournament matrix. Cells run in scenario → fault → tuner
/// order; each completed cell appends its best point to `history` (tagged
/// with the preset name), so the `history` tuner warms up across reruns
/// sharing a store. Fully deterministic in the config and the store
/// contents.
///
/// # Panics
/// Panics if any config axis is empty or a budget is non-positive.
pub fn run_tournament(cfg: &TournamentConfig, history: &mut HistoryStore) -> TournamentOutcome {
    cfg.validate();
    let mut cells = Vec::new();
    let mut decisions = String::new();
    let mut appended = 0usize;
    for &preset in &cfg.scenarios {
        // Fault-free oracle for this preset: the surface argmax over the nc
        // ladder at the paper's fixed np = 8.
        let ncs: Vec<u32> = vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512];
        let surface = throughput_surface(
            preset.route(),
            preset.load(),
            &ncs,
            &[8],
            cfg.oracle_secs,
            cfg.seed,
        );
        let oracle = surface.argmax().expect("non-empty sweep").mbs;
        for &fault in &cfg.faults {
            for &kind in &cfg.tuners {
                let (cell, cell_decisions, record) =
                    run_cell(cfg, kind, preset, fault, oracle, history);
                decisions.push_str(&cell_decisions);
                if let Some(r) = record {
                    history.append(r).expect("history append");
                    appended += 1;
                }
                cells.push(cell);
            }
        }
    }
    let order: Vec<String> = cfg.tuners.iter().map(|k| k.name().to_string()).collect();
    TournamentOutcome {
        leaderboard: Leaderboard::from_cells(cells, &order, cfg.horizon_s()),
        decisions_jsonl: decisions,
        history_appended: appended,
    }
}

/// Drive one tuner through one cell and score it.
fn run_cell(
    cfg: &TournamentConfig,
    kind: TunerKind,
    preset: ScenarioPreset,
    fault: Option<FaultProfile>,
    oracle: f64,
    history: &HistoryStore,
) -> (CellResult, String, Option<HistoryRecord>) {
    let route = preset.route();
    let load = preset.load();
    let dims = TuneDims::NcOnly { np: 8 };
    let x0 = StreamParams::globus_default();

    let mut pw = PaperWorld::new(cfg.seed);
    let source = pw.source;
    // External transfer rides the same route, as in drive_transfer.
    let ext_cfg = TransferConfig::memory_to_memory(source, pw.path(route))
        .with_params(StreamParams::new(load.tfr, 1))
        .with_noise(cfg.noise_sigma, 45.0);
    let _ext = pw.world.add_transfer(ext_cfg);
    pw.world.set_compute_jobs(source, load.cmp);
    let main_cfg = TransferConfig::memory_to_memory(source, pw.path(route))
        .with_params(x0)
        .with_noise(cfg.noise_sigma, 45.0);
    let tid = pw.world.add_transfer(main_cfg);
    if let Some(p) = fault {
        pw.world
            .enable_faults(p.plan(route, cfg.seed, cfg.horizon_s()));
    }

    // The history kind reads its stored observations for this route+preset;
    // every other kind builds cold from the factory.
    let mut tuner: Box<dyn OnlineTuner + Send> = if kind == TunerKind::History {
        let samples: Vec<(Vec<i64>, f64)> = history
            .records()
            .iter()
            .filter(|r| r.route == route.name() && r.scenario == preset.name())
            .map(|r| (r.best.clone(), r.achieved_mbs))
            .collect();
        Box::new(HistoryTuner::new(dims.domain(), dims.to_point(x0), 5.0).with_samples(&samples))
    } else {
        kind.build(dims.domain(), dims.to_point(x0))
    };
    tuner.enable_audit();
    if let Some(log) = tuner.audit_log_mut() {
        log.set_namespace(format!(
            "{}/{}/{}",
            kind.name(),
            preset.name(),
            fault_label(fault)
        ));
    }
    let restarts = kind != TunerKind::Default;

    let mut x = tuner.initial();
    let mut traj = OnlineTrajectory::default();
    let mut best_mbs = 0.0f64;
    let mut best_x = x.clone();
    let mut t90_s = None;
    let mut epochs_to_90 = None;
    for e in 0..cfg.epochs {
        let params = dims.to_params(&x);
        let es = pw.world.begin_epoch(tid, params, restarts);
        pw.world.step(SimDuration::from_secs_f64(cfg.epoch_s));
        let r = pw.world.end_epoch(es);
        traj.steps.push(OnlineStep {
            epoch: e,
            x: x.clone(),
            value: r.observed_mbs,
        });
        if r.observed_mbs > best_mbs {
            best_mbs = r.observed_mbs;
            best_x = x.clone();
        }
        // Convergence is judged on up-time throughput (startup excluded):
        // restart overhead is a cost the regret column already charges, not
        // evidence the tuner found the wrong operating point.
        if t90_s.is_none() && r.bestcase_mbs >= NEAR_OPT_FRAC * oracle {
            t90_s = Some((e + 1) as f64 * cfg.epoch_s);
            epochs_to_90 = Some(e);
        }
        x = tuner.observe(&x, r.observed_mbs);
    }

    let regret = summarize_regret(&traj, oracle, NEAR_OPT_FRAC, cfg.epoch_s);
    let decisions_to_converge = tuner.audit_log().map_or(0, |log| {
        log.events()
            .iter()
            .position(|ev| ev.action == DecisionAction::Converged)
            .map_or(log.len(), |i| i + 1)
    });
    let decisions_jsonl = tuner.audit_log().map_or(String::new(), |l| l.to_jsonl());

    let cell = CellResult {
        tuner: kind.name().to_string(),
        scenario: preset.name().to_string(),
        faults: fault_label(fault).to_string(),
        oracle_mbs: oracle,
        best_mbs,
        t90_s,
        regret_mb: regret.wasted,
        epochs_to_90,
        decisions_to_converge,
        moved_mb: pw.world.moved_mb(tid),
    };
    // Fault-free cells contribute to the warm-start store (faulty epochs
    // would poison the surrogate with outage artifacts).
    let record = (best_mbs > 0.0 && fault.is_none()).then(|| HistoryRecord {
        route: route.name().to_string(),
        tuner: kind,
        ext_streams: load.tfr as f64,
        cmp_jobs: load.cmp as f64,
        best: best_x,
        achieved_mbs: best_mbs,
        scenario: preset.name().to_string(),
    });
    (cell, decisions_jsonl, record)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> TournamentConfig {
        TournamentConfig {
            tuners: vec![TunerKind::Default, TunerKind::Heuristic, TunerKind::Bandit],
            scenarios: vec![ScenarioPreset::UcQuiet],
            faults: vec![None],
            epochs: 6,
            oracle_secs: 45.0,
            ..TournamentConfig::default()
        }
    }

    #[test]
    fn preset_round_trips_and_axes() {
        for p in ScenarioPreset::ALL {
            let parsed: ScenarioPreset = p.name().parse().unwrap();
            assert_eq!(parsed, p);
        }
        assert!("bogus".parse::<ScenarioPreset>().is_err());
        assert_eq!(ScenarioPreset::TaccMixed.route(), Route::Tacc);
        assert_eq!(ScenarioPreset::UcQuiet.load(), ExternalLoad::NONE);
    }

    #[test]
    fn tiny_tournament_scores_every_cell() {
        let mut h = HistoryStore::in_memory();
        let out = run_tournament(&tiny_cfg(), &mut h);
        assert_eq!(out.leaderboard.cells.len(), 3);
        assert_eq!(out.leaderboard.ranks.len(), 3);
        for c in &out.leaderboard.cells {
            assert!(c.oracle_mbs > 0.0, "{c:?}");
            assert!(c.moved_mb > 0.0, "{c:?}");
            assert!(c.regret_mb >= 0.0, "{c:?}");
        }
        // Fault-free cells with progress feed the history store.
        assert_eq!(out.history_appended, 3);
        assert!(h.records().iter().all(|r| r.scenario == "uc-quiet"));
        // Audited tuners contributed decision lines; default did not.
        assert!(out
            .decisions_jsonl
            .contains("\"ns\":\"bandit/uc-quiet/none\""));
        assert!(!out.decisions_jsonl.contains("\"ns\":\"default/"));
    }

    #[test]
    fn leaderboard_jsonl_round_trips() {
        let mut h = HistoryStore::in_memory();
        let out = run_tournament(&tiny_cfg(), &mut h);
        let doc = out.leaderboard.to_jsonl();
        let back = Leaderboard::from_jsonl(&doc).expect("round trip");
        assert_eq!(back, out.leaderboard);
        // Truncation and garbage are rejected loudly.
        assert!(Leaderboard::from_jsonl("").is_err());
        assert!(Leaderboard::from_jsonl("{\"kind\":\"epoch\"}").is_err());
        let truncated: String = doc.lines().take(2).collect::<Vec<_>>().join("\n");
        assert!(
            Leaderboard::from_jsonl(&truncated)
                .unwrap_err()
                .contains("truncated"),
            "partial report must be a hard error"
        );
    }

    #[test]
    fn renders_are_deterministic_across_runs() {
        let run = || run_tournament(&tiny_cfg(), &mut HistoryStore::in_memory());
        let (a, b) = (run(), run());
        assert_eq!(a.leaderboard.render(), b.leaderboard.render());
        assert_eq!(a.leaderboard.to_csv(), b.leaderboard.to_csv());
        assert_eq!(a.leaderboard.to_jsonl(), b.leaderboard.to_jsonl());
        assert_eq!(a.decisions_jsonl, b.decisions_jsonl);
    }

    #[test]
    fn csv_and_text_have_expected_shape() {
        let mut h = HistoryStore::in_memory();
        let out = run_tournament(&tiny_cfg(), &mut h);
        let csv = out.leaderboard.to_csv();
        assert!(csv.starts_with(
            "tuner,scenario,faults,oracle_mbs,best_mbs,t90_s,regret_mb,epochs_to_90,decisions_to_converge,moved_mb\n"
        ));
        assert_eq!(csv.lines().count(), 1 + 3);
        let text = out.leaderboard.render();
        assert!(text.contains("tuner tournament leaderboard (3 cells"));
        assert!(text.contains("mean_regret_mb"));
    }
}
