//! Replay-based fleet checkpoint/resume (DESIGN.md §12).
//!
//! The fleet simulation is a pure function of `(workload, config)`, so a
//! checkpoint does not serialize live state (tuner simplexes, world RNGs,
//! AIMD windows — none of which have a stable wire form). It records the
//! run's **inputs** plus the tick index and an FNV-1a digest of the live
//! state:
//!
//! ```text
//! {"kind":"fleet-checkpoint","version":1,"tick":K,...config fields...}
//! {"kind":"fleet-job","id":0,...}            one line per workload job
//! ...
//! {"kind":"fleet-digest","fnv":"<16 hex>"}
//! ```
//!
//! [`resume_fleet`] rebuilds the simulation from those inputs, replays ticks
//! `0..K` with history persistence off (the killed run already flushed its
//! pre-`K` appends to the backing file), verifies the digest, re-enables
//! persistence, and runs to completion. The result is byte-identical to the
//! uninterrupted run — reports, decision logs, telemetry, and the history
//! file (enforced by `tests/supervision.rs` and the CI crash/resume gate).
//!
//! Watchdog/breaker thresholds are not serialized: they are compile-time
//! defaults the CLI cannot override, so the rebuilt [`FleetConfig`] always
//! matches the killed run's.

use crate::fleet::{FleetConfig, FleetOutcome, FleetSim};
use crate::history::{json_field, HistoryStore};
use crate::job::{JobId, JobSpec, Workload};
use crate::policy::Policy;
use crate::route::JobRoute;
use xferopt_scenarios::{FaultProfile, Route};
use xferopt_simcore::metrics::json_f64;
use xferopt_tuners::TunerKind;

/// FNV-1a hash of a string (the checkpoint's state-digest hash — stable,
/// dependency-free, and plenty for corruption detection).
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Render one workload job as a checkpoint JSONL line (fixed key order;
/// `deadline_s` omitted when absent).
pub(crate) fn job_to_json(j: &JobSpec) -> String {
    let mut s = format!(
        "{{\"kind\":\"fleet-job\",\"id\":{},\"arrival_s\":{},\"size_mb\":{},\"priority\":{},\"route\":\"{}\",\"tuner\":\"{}\",\"np\":{},\"max_streams\":{}",
        j.id.0,
        json_f64(j.arrival_s),
        json_f64(j.size_mb),
        j.priority,
        j.route.name(),
        j.tuner.name(),
        j.np,
        j.max_streams,
    );
    if j.site != 0 {
        s.push_str(&format!(",\"site\":{}", j.site));
    }
    if let Some(d) = j.deadline_s {
        s.push_str(&format!(",\"deadline_s\":{}", json_f64(d)));
    }
    // Classic enum routes round-trip through their name alone (keeps old
    // checkpoints and goldens byte-identical); catalog routes carry their
    // explicit link list and sim path.
    let classic = j
        .route
        .name()
        .parse::<Route>()
        .map(|r| j.route == r)
        .unwrap_or(false);
    if !classic {
        let links = j
            .route
            .links()
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join(";");
        s.push_str(&format!(
            ",\"links\":\"{}\",\"path\":{}",
            links,
            j.route.path_index()
        ));
    }
    s.push('}');
    s
}

fn parse_job(line: &str) -> Result<JobSpec, String> {
    let req = |key: &str| {
        json_field(line, key).ok_or_else(|| format!("checkpoint job line missing '{key}': {line}"))
    };
    let num = |key: &str| -> Result<f64, String> {
        req(key)?
            .parse::<f64>()
            .map_err(|e| format!("bad '{key}' in checkpoint job line: {e}"))
    };
    let name = req("route")?;
    let route: JobRoute = match json_field(line, "links") {
        Some(raw) => {
            let links = raw
                .split(';')
                .filter(|s| !s.is_empty())
                .map(|s| s.parse::<usize>())
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| format!("bad links in checkpoint job line: {e}"))?;
            if links.is_empty() {
                return Err(format!("empty links in checkpoint job line: {line}"));
            }
            let path = num("path")? as usize;
            JobRoute::new(name, links, path)
        }
        None => name.parse::<Route>()?.into(),
    };
    let tuner: TunerKind = req("tuner")?
        .parse()
        .map_err(|e| format!("bad tuner in checkpoint job line: {e}"))?;
    Ok(JobSpec {
        id: JobId(num("id")? as u64),
        arrival_s: num("arrival_s")?,
        size_mb: num("size_mb")?,
        priority: num("priority")? as u32,
        deadline_s: match json_field(line, "deadline_s") {
            Some(v) => Some(
                v.parse::<f64>()
                    .map_err(|e| format!("bad deadline_s in checkpoint job line: {e}"))?,
            ),
            None => None,
        },
        route,
        tuner,
        np: num("np")? as u32,
        max_streams: num("max_streams")? as u32,
        site: match json_field(line, "site") {
            Some(v) => v
                .parse::<u32>()
                .map_err(|e| format!("bad site in checkpoint job line: {e}"))?,
            None => 0,
        },
    })
}

/// A parsed fleet checkpoint: the run's inputs plus the replay target.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The configuration the killed run was using.
    pub config: FleetConfig,
    /// The workload the killed run was driving.
    pub workload: Workload,
    /// Ticks the killed run had completed when the checkpoint was written.
    pub tick: u64,
    /// Fleet time at the checkpoint, seconds.
    pub t_s: f64,
    /// History-store length when the killed run started (replay rewinds the
    /// in-memory store to this length).
    pub history_start_len: usize,
    /// History records the killed run had appended (and persisted) by the
    /// checkpoint — replay re-appends them in memory only.
    pub history_appended: usize,
    /// FNV-1a hash of the killed run's state digest at `tick`; replay must
    /// reproduce it exactly or resume refuses to continue.
    pub digest: u64,
}

impl Checkpoint {
    /// Parse the JSONL text produced by
    /// [`FleetSim::checkpoint`](crate::fleet::FleetSim::checkpoint).
    ///
    /// # Errors
    /// Returns a description of the first missing/malformed line or field.
    pub fn parse(text: &str) -> Result<Checkpoint, String> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        let header = lines.next().ok_or("empty checkpoint")?;
        if json_field(header, "kind") != Some("fleet-checkpoint") {
            return Err(format!("not a fleet checkpoint header: {header}"));
        }
        let version = json_field(header, "version").ok_or("checkpoint missing version")?;
        if version != "1" {
            return Err(format!("unsupported checkpoint version {version}"));
        }
        let req = |key: &str| {
            json_field(header, key).ok_or_else(|| format!("checkpoint header missing '{key}'"))
        };
        let num = |key: &str| -> Result<f64, String> {
            req(key)?
                .parse::<f64>()
                .map_err(|e| format!("bad '{key}' in checkpoint header: {e}"))
        };
        let flag = |key: &str| -> Result<bool, String> {
            req(key)?
                .parse::<bool>()
                .map_err(|e| format!("bad '{key}' in checkpoint header: {e}"))
        };
        let policy: Policy = req("policy")?.parse()?;
        let faults: Option<FaultProfile> = match json_field(header, "faults") {
            Some(name) => Some(name.parse()?),
            None => None,
        };
        let topo = match json_field(header, "topo") {
            Some(preset) => {
                // Outage regions serialize as a scalar when there is exactly
                // one (the pre-multi wire form, kept byte-identical) and as a
                // semicolon-joined string otherwise.
                let outage_regions = match json_field(header, "outage_region") {
                    Some(v) => vec![v
                        .parse::<usize>()
                        .map_err(|e| format!("bad 'outage_region' in checkpoint header: {e}"))?],
                    None => match json_field(header, "outage_regions") {
                        Some(raw) => raw
                            .split(';')
                            .filter(|s| !s.is_empty())
                            .map(|s| s.parse::<usize>())
                            .collect::<Result<Vec<_>, _>>()
                            .map_err(|e| {
                                format!("bad 'outage_regions' in checkpoint header: {e}")
                            })?,
                        None => Vec::new(),
                    },
                };
                Some(crate::fleet::TopoFleetConfig {
                    preset: preset.to_string(),
                    k: num("topo_k")? as usize,
                    outage_regions,
                    campaign: json_field(header, "campaign").map(str::to_string),
                    multipath: num("multipath")? as u32,
                    reroute: flag("reroute")?,
                    selfheal: match json_field(header, "selfheal") {
                        Some(v) => v
                            .parse::<bool>()
                            .map_err(|e| format!("bad 'selfheal' in checkpoint header: {e}"))?,
                        None => false,
                    },
                })
            }
            None => None,
        };
        let config = FleetConfig {
            policy,
            seed: num("seed")? as u64,
            horizon_s: num("horizon_s")?,
            tick_s: num("tick_s")?,
            epoch_s: num("epoch_s")?,
            link_budget: num("budget")? as u32,
            warm_start: flag("warm")?,
            max_match_distance: num("max_match_distance")?,
            noise_sigma: num("noise_sigma")?,
            audit: flag("audit")?,
            faults,
            shed_after_s: num("shed_after_s")?,
            topo,
            ..FleetConfig::default()
        };
        let tick = num("tick")? as u64;
        let t_s = num("t_s")?;
        let njobs = num("jobs")? as usize;
        let history_start_len = num("history_start_len")? as usize;
        let history_appended = num("history_appended")? as usize;

        let mut jobs = Vec::with_capacity(njobs);
        let mut digest: Option<u64> = None;
        // Exact text preceding the digest line, reconstructed for the
        // `text_fnv` content check (writer hashes header + job lines, each
        // newline-terminated).
        let mut preceding = format!("{header}\n");
        for line in lines {
            match json_field(line, "kind") {
                Some("fleet-job") => {
                    jobs.push(parse_job(line)?);
                    preceding.push_str(line);
                    preceding.push('\n');
                }
                Some("fleet-digest") => {
                    let hex = json_field(line, "fnv").ok_or("digest line missing 'fnv'")?;
                    digest = Some(
                        u64::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad digest '{hex}': {e}"))?,
                    );
                    // Content hash over the serialized inputs; absent on
                    // pre-journal checkpoints (accepted — the state digest
                    // still guards the replay).
                    if let Some(hex) = json_field(line, "text_fnv") {
                        let want = u64::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad text digest '{hex}': {e}"))?;
                        let got = fnv1a(&preceding);
                        if got != want {
                            return Err(format!(
                                "checkpoint text corrupted: content hash {got:016x} != recorded {want:016x}"
                            ));
                        }
                    }
                }
                other => return Err(format!("unexpected checkpoint line kind {other:?}: {line}")),
            }
        }
        if jobs.len() != njobs {
            return Err(format!(
                "checkpoint declares {njobs} jobs but carries {}",
                jobs.len()
            ));
        }
        let digest = digest.ok_or("checkpoint missing its fleet-digest line")?;
        Ok(Checkpoint {
            config,
            workload: Workload::new(jobs),
            tick,
            t_s,
            history_start_len,
            history_appended,
            digest,
        })
    }
}

/// The result of reading a checkpoint journal: the newest checkpoint block
/// that still parses and digest-verifies structurally, plus salvage metadata
/// so callers can report what was dropped.
#[derive(Debug, Clone)]
pub struct JournalRead {
    /// The newest intact checkpoint in the journal.
    pub checkpoint: Checkpoint,
    /// Total checkpoint blocks found in the journal (intact or torn).
    pub blocks_total: usize,
    /// Blocks newer than the salvaged one that were torn (truncated write,
    /// flipped bytes) and had to be discarded.
    pub blocks_dropped: usize,
}

impl JournalRead {
    /// True when the journal's newest block was torn and an older one was
    /// salvaged in its place.
    pub fn salvaged(&self) -> bool {
        self.blocks_dropped > 0
    }
}

/// Parse a checkpoint **journal**: a file the CLI appends a full checkpoint
/// block to at every checkpoint interval (rather than rewriting in place,
/// which risks a torn file if the process dies mid-write).
///
/// The journal is split into blocks on `"kind":"fleet-checkpoint"` header
/// lines; blocks are tried newest-first and the first one that parses wins.
/// Torn or corrupt trailing blocks are counted in
/// [`JournalRead::blocks_dropped`] — resume falls back to the longest
/// digest-consistent prefix instead of refusing outright.
///
/// # Errors
/// Returns an error when the journal holds no parseable checkpoint at all
/// (every block torn, or the file is not a checkpoint journal).
pub fn parse_journal(text: &str) -> Result<JournalRead, String> {
    let mut blocks: Vec<Vec<&str>> = Vec::new();
    for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
        if json_field(line, "kind") == Some("fleet-checkpoint") {
            blocks.push(vec![line]);
        } else if let Some(cur) = blocks.last_mut() {
            cur.push(line);
        }
        // Garbage before the first header is ignored: it cannot belong to
        // any checkpoint block.
    }
    if blocks.is_empty() {
        return Err("journal holds no fleet-checkpoint block".to_string());
    }
    let total = blocks.len();
    let mut last_err = String::new();
    for (dropped, block) in blocks.iter().rev().enumerate() {
        match Checkpoint::parse(&block.join("\n")) {
            Ok(checkpoint) => {
                return Ok(JournalRead {
                    checkpoint,
                    blocks_total: total,
                    blocks_dropped: dropped,
                })
            }
            Err(e) => last_err = e,
        }
    }
    Err(format!(
        "journal holds {total} checkpoint block(s) but none parse; newest error: {last_err}"
    ))
}

/// Resume a killed fleet run from `ck`: replay ticks `0..ck.tick` with
/// history persistence off, verify the state digest, then run to completion
/// with persistence back on. Byte-identical to the uninterrupted run.
///
/// # Errors
/// Returns an error when the replay finishes early (checkpoint from a
/// different workload/config) or the digest mismatches (corrupt checkpoint,
/// or code drift between writer and reader).
pub fn resume_fleet(ck: &Checkpoint, history: &mut HistoryStore) -> Result<FleetOutcome, String> {
    // Rewind the in-memory store to the killed run's starting point; the
    // backing file (which already holds the pre-checkpoint appends) is
    // untouched.
    history.truncate(ck.history_start_len);
    let mut sim = FleetSim::new(&ck.workload, &ck.config, history);
    sim.set_history_persist(false);
    while sim.tick_index() < ck.tick {
        if !sim.tick() {
            return Err(format!(
                "replay ended at tick {} before reaching checkpoint tick {}",
                sim.tick_index(),
                ck.tick
            ));
        }
    }
    let got = sim.digest_hash();
    if got != ck.digest {
        return Err(format!(
            "checkpoint digest mismatch at tick {}: expected {:016x}, replay produced {:016x}",
            ck.tick, ck.digest, got
        ));
    }
    if sim.history_appended() != ck.history_appended {
        return Err(format!(
            "checkpoint recorded {} history appends, replay produced {}",
            ck.history_appended,
            sim.history_appended()
        ));
    }
    sim.set_history_persist(true);
    while sim.tick() {}
    Ok(sim.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::run_fleet;

    fn cfg() -> FleetConfig {
        FleetConfig {
            horizon_s: 1800.0,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn checkpoint_round_trips_through_parse() {
        let w = Workload::synthetic(4, 5);
        let mut h = HistoryStore::in_memory();
        let mut sim = FleetSim::new(&w, &cfg(), &mut h);
        for _ in 0..30 {
            assert!(sim.tick());
        }
        let text = sim.checkpoint();
        let expect_digest = sim.digest_hash();
        let ck = Checkpoint::parse(&text).unwrap();
        assert_eq!(ck.tick, 30);
        assert_eq!(ck.digest, expect_digest);
        assert_eq!(ck.workload.len(), 4);
        for (a, b) in ck.workload.jobs().iter().zip(w.jobs()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.arrival_s, b.arrival_s);
            assert_eq!(a.size_mb, b.size_mb);
            assert_eq!(a.priority, b.priority);
            assert_eq!(a.deadline_s, b.deadline_s);
            assert_eq!(a.route, b.route);
            assert_eq!(a.tuner, b.tuner);
            assert_eq!(a.np, b.np);
            assert_eq!(a.max_streams, b.max_streams);
        }
        assert_eq!(ck.config.policy, Policy::Fifo);
        assert_eq!(ck.config.seed, 7);
        assert_eq!(ck.config.faults, None);
    }

    #[test]
    fn kill_and_resume_matches_the_uninterrupted_run() {
        let w = Workload::synthetic(5, 9);
        let full = run_fleet(&w, &cfg(), &mut HistoryStore::in_memory());
        // "Kill" a run at tick 40 with only its checkpoint surviving.
        let text = {
            let mut h = HistoryStore::in_memory();
            let mut sim = FleetSim::new(&w, &cfg(), &mut h);
            for _ in 0..40 {
                assert!(sim.tick());
            }
            sim.checkpoint()
        };
        let ck = Checkpoint::parse(&text).unwrap();
        let mut h = HistoryStore::in_memory();
        let resumed = resume_fleet(&ck, &mut h).unwrap();
        assert_eq!(full.report.render(), resumed.report.render());
        assert_eq!(full.decisions_jsonl, resumed.decisions_jsonl);
        assert_eq!(full.telemetry_jsonl, resumed.telemetry_jsonl);
        assert_eq!(full.supervision_jsonl, resumed.supervision_jsonl);
        assert_eq!(full.history_appended, resumed.history_appended);
    }

    #[test]
    fn tampered_digest_is_refused() {
        let w = Workload::synthetic(3, 2);
        let mut h = HistoryStore::in_memory();
        let mut sim = FleetSim::new(&w, &cfg(), &mut h);
        for _ in 0..10 {
            assert!(sim.tick());
        }
        let text = sim
            .checkpoint()
            .lines()
            .map(|l| {
                if l.contains("fleet-digest") {
                    "{\"kind\":\"fleet-digest\",\"fnv\":\"00000000deadbeef\"}".to_string()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        drop(sim);
        let ck = Checkpoint::parse(&text).unwrap();
        let err = resume_fleet(&ck, &mut HistoryStore::in_memory()).unwrap_err();
        assert!(err.contains("digest mismatch"), "{err}");
    }

    #[test]
    fn journal_prefers_the_newest_intact_block() {
        let w = Workload::synthetic(3, 4);
        let mut h = HistoryStore::in_memory();
        let mut sim = FleetSim::new(&w, &cfg(), &mut h);
        for _ in 0..10 {
            assert!(sim.tick());
        }
        let first = sim.checkpoint();
        for _ in 0..10 {
            assert!(sim.tick());
        }
        let second = sim.checkpoint();
        let journal = format!("{first}\n{second}\n");
        let read = parse_journal(&journal).unwrap();
        assert_eq!(read.blocks_total, 2);
        assert_eq!(read.blocks_dropped, 0);
        assert!(!read.salvaged());
        assert_eq!(read.checkpoint.tick, 20);
    }

    #[test]
    fn journal_salvages_the_prefix_when_the_tail_is_torn() {
        let w = Workload::synthetic(3, 4);
        let mut h = HistoryStore::in_memory();
        let mut sim = FleetSim::new(&w, &cfg(), &mut h);
        for _ in 0..10 {
            assert!(sim.tick());
        }
        let first = sim.checkpoint();
        for _ in 0..10 {
            assert!(sim.tick());
        }
        let second = sim.checkpoint();
        // Tear the newest block mid-write: drop its trailing digest line
        // plus half of its last job line.
        let torn: String = {
            let keep = second.len() - second.len() / 3;
            second[..keep].to_string()
        };
        let journal = format!("{first}\n{torn}");
        let read = parse_journal(&journal).unwrap();
        assert_eq!(read.blocks_total, 2);
        assert_eq!(read.blocks_dropped, 1);
        assert!(read.salvaged());
        assert_eq!(read.checkpoint.tick, 10);
        // The salvaged checkpoint still resumes byte-identically.
        let full = run_fleet(&w, &cfg(), &mut HistoryStore::in_memory());
        let resumed = resume_fleet(&read.checkpoint, &mut HistoryStore::in_memory()).unwrap();
        assert_eq!(full.report.render(), resumed.report.render());
    }

    #[test]
    fn journal_with_no_intact_block_is_refused() {
        assert!(parse_journal("")
            .unwrap_err()
            .contains("no fleet-checkpoint"));
        assert!(parse_journal("{\"kind\":\"history\"}\n")
            .unwrap_err()
            .contains("no fleet-checkpoint"));
        let torn = "{\"kind\":\"fleet-checkpoint\",\"version\":1,\"tick\":3";
        let err = parse_journal(torn).unwrap_err();
        assert!(err.contains("none parse"), "{err}");
    }

    #[test]
    fn malformed_checkpoints_report_what_is_wrong() {
        assert!(Checkpoint::parse("").unwrap_err().contains("empty"));
        assert!(Checkpoint::parse("{\"kind\":\"history\"}")
            .unwrap_err()
            .contains("not a fleet checkpoint"));
        let missing_digest = "{\"kind\":\"fleet-checkpoint\",\"version\":1,\"tick\":0,\"t_s\":0,\
             \"policy\":\"fifo\",\"seed\":7,\"horizon_s\":100,\"tick_s\":5,\"epoch_s\":30,\
             \"budget\":512,\"warm\":true,\"max_match_distance\":2,\"noise_sigma\":0.05,\
             \"audit\":true,\"shed_after_s\":300,\"jobs\":0,\"history_start_len\":0,\
             \"history_appended\":0}";
        assert!(Checkpoint::parse(missing_digest)
            .unwrap_err()
            .contains("fleet-digest"));
    }
}
