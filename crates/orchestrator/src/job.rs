//! Transfer jobs and deterministic workloads.
//!
//! A fleet run is driven by a [`Workload`]: a fixed list of [`JobSpec`]s with
//! arrival times, sizes, priorities, and optional deadlines. Workloads are
//! either constructed explicitly or generated deterministically from a seed
//! ([`Workload::synthetic`]), so two runs with the same seed see byte-for-byte
//! the same job stream.
//!
//! Job lifecycle (see DESIGN.md §11 and the supervision extension in §12):
//!
//! ```text
//! Pending ──arrival──▶ Queued ──admission──▶ Running ──all bytes──▶ Completed
//!                        ▲                      │
//!                        │                      ├──horizon reached──▶ Unfinished
//!                        │                      │
//!                        │   watchdog trip      ▼
//!                        │  (zero-throughput / collapse)
//!                        │                  Degraded ──▶ Quarantined
//!                        │                                  │
//!                        └────── Requeued (backoff) ◀───────┤
//!                                                           └──attempts
//!                                                              exhausted──▶ Failed
//! ```

use crate::route::JobRoute;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xferopt_scenarios::Route;
use xferopt_transfer::StreamParams;
use xferopt_tuners::TunerKind;

/// Identifier of a job within one fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Lifecycle state of a job (reported, not stored — the orchestrator keeps
/// jobs in per-state collections).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Not yet arrived.
    Pending,
    /// Arrived, awaiting admission.
    Queued,
    /// Admitted; its transfer is moving bytes.
    Running,
    /// Admitted but the health watchdog has flagged its throughput (first
    /// strike; still on the wire).
    Degraded,
    /// Pulled off the wire by the watchdog; its admission grant is released
    /// and it waits out an exponential backoff before requeueing.
    Quarantined,
    /// All bytes moved.
    Completed,
    /// Horizon reached before completion.
    Unfinished,
    /// Retry attempt budget exhausted (terminal; see DESIGN.md §12).
    Failed,
}

impl JobState {
    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Degraded => "degraded",
            JobState::Quarantined => "quarantined",
            JobState::Completed => "completed",
            JobState::Unfinished => "unfinished",
            JobState::Failed => "failed",
        }
    }

    /// True for states a job can never leave.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Unfinished | JobState::Failed
        )
    }
}

/// One transfer job submitted to the fleet.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Fleet-unique id (also the flow tag on the wire).
    pub id: JobId,
    /// Arrival time, seconds from fleet start. Must be a multiple of the
    /// orchestrator tick for exact event alignment.
    pub arrival_s: f64,
    /// Dataset size in MB.
    pub size_mb: f64,
    /// Weighted-fair class weight (higher = bigger share of admissions).
    pub priority: u32,
    /// Optional completion deadline (absolute fleet time, seconds).
    pub deadline_s: Option<f64>,
    /// Route of the transfer (variable-length link list + sim path; classic
    /// fleets build it from the two-variant [`Route`] enum).
    pub route: JobRoute,
    /// Per-job online tuner strategy.
    pub tuner: TunerKind,
    /// Fixed parallelism; the tuner drives concurrency over `nc × np`.
    pub np: u32,
    /// Stream reservation requested from admission control (caps the tuner's
    /// domain so the job can never exceed its granted share).
    pub max_streams: u32,
    /// Testbed site (independent replica of the paper's 3-link topology)
    /// the job transfers from. Jobs on different sites share no link, so the
    /// sharded runner simulates each site as its own connected component
    /// (see DESIGN.md §15). Site 0 is the classic single-site fleet.
    pub site: u32,
}

impl JobSpec {
    /// A job with the fleet defaults: UChicago route, compass-search tuner,
    /// `np = 8`, 128-stream reservation, priority 1, no deadline.
    pub fn new(id: u64, arrival_s: f64, size_mb: f64) -> Self {
        assert!(arrival_s >= 0.0, "arrival must be non-negative");
        assert!(size_mb > 0.0, "size must be positive");
        JobSpec {
            id: JobId(id),
            arrival_s,
            size_mb,
            priority: 1,
            deadline_s: None,
            route: Route::UChicago.into(),
            tuner: TunerKind::Cs,
            np: 8,
            max_streams: 128,
            site: 0,
        }
    }

    /// Replace the route (accepts the classic [`Route`] enum or a full
    /// [`JobRoute`]).
    pub fn with_route(mut self, route: impl Into<JobRoute>) -> Self {
        self.route = route.into();
        self
    }

    /// Replace the tuner.
    pub fn with_tuner(mut self, tuner: TunerKind) -> Self {
        self.tuner = tuner;
        self
    }

    /// Replace the priority weight (≥ 1).
    pub fn with_priority(mut self, priority: u32) -> Self {
        assert!(priority >= 1, "priority weight must be >= 1");
        self.priority = priority;
        self
    }

    /// Set a completion deadline (absolute fleet time, seconds).
    pub fn with_deadline_s(mut self, deadline_s: f64) -> Self {
        self.deadline_s = Some(deadline_s);
        self
    }

    /// Replace the stream reservation.
    pub fn with_max_streams(mut self, max_streams: u32) -> Self {
        assert!(max_streams >= 1, "reservation must be >= 1 stream");
        self.max_streams = max_streams;
        self
    }

    /// Replace the fixed parallelism.
    pub fn with_np(mut self, np: u32) -> Self {
        assert!(np >= 1, "np must be >= 1");
        self.np = np;
        self
    }

    /// Place the job on a testbed site (an independent replica of the
    /// 3-link paper topology). Jobs on different sites never share a link.
    pub fn with_site(mut self, site: u32) -> Self {
        self.site = site;
        self
    }

    /// The starting parameters a cold job uses (the Globus default, clamped
    /// into the job's stream reservation).
    pub fn cold_start(&self) -> StreamParams {
        StreamParams::globus_default().clamp_streams(self.max_streams)
    }
}

/// A fixed list of jobs, sorted by `(arrival, id)`.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    jobs: Vec<JobSpec>,
}

impl Workload {
    /// Build from explicit specs (sorted by arrival, then id; ids must be
    /// unique).
    ///
    /// # Panics
    /// Panics on duplicate job ids.
    pub fn new(mut jobs: Vec<JobSpec>) -> Self {
        jobs.sort_by(|a, b| {
            a.arrival_s
                .partial_cmp(&b.arrival_s)
                .expect("arrival times must be comparable")
                .then(a.id.cmp(&b.id))
        });
        for w in jobs.windows(2) {
            assert!(w[0].id != w[1].id, "duplicate job id {}", w[0].id);
        }
        let mut seen: Vec<u64> = jobs.iter().map(|j| j.id.0).collect();
        seen.sort_unstable();
        seen.dedup();
        assert!(seen.len() == jobs.len(), "duplicate job ids in workload");
        Workload { jobs }
    }

    /// A deterministic synthetic workload: `n` jobs with seeded arrivals
    /// (integer seconds over the first 10 minutes), log-spread sizes
    /// (10–320 GB), priorities 1–4, a mix of tuners and routes, and
    /// deadlines on roughly a third of the jobs.
    pub fn synthetic(n: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x6f72_6368); // "orch"
        let tuners = [TunerKind::Cs, TunerKind::Nm, TunerKind::Cd, TunerKind::Cs];
        let mut jobs = Vec::with_capacity(n);
        for i in 0..n {
            let arrival = rng.gen_range(0u32..120) as f64 * 5.0;
            let size_mb = 10_000.0 * 2f64.powi(rng.gen_range(0i32..6));
            let priority = rng.gen_range(1u32..=4);
            let route = if rng.gen_range(0u32..10) < 7 {
                Route::UChicago
            } else {
                Route::Tacc
            };
            let max_streams = [64u32, 128, 256][rng.gen_range(0usize..3)];
            let mut spec = JobSpec::new(i as u64, arrival, size_mb)
                .with_tuner(tuners[i % tuners.len()])
                .with_priority(priority)
                .with_route(route)
                .with_max_streams(max_streams);
            if rng.gen_range(0u32..3) == 0 {
                // Generous deadline: arrival + size at a pessimistic 500 MB/s.
                spec = spec.with_deadline_s(arrival + size_mb / 500.0 + 300.0);
            }
            jobs.push(spec);
        }
        Workload::new(jobs)
    }

    /// [`Workload::synthetic`] spread round-robin over `sites` independent
    /// testbed sites: job `i` keeps its synthetic spec but runs at site
    /// `i % sites`. With `sites == 1` this is exactly [`Workload::synthetic`]
    /// (every job at site 0), so single-site callers see unchanged bytes.
    pub fn synthetic_sites(n: usize, seed: u64, sites: u32) -> Self {
        assert!(sites >= 1, "need at least one site");
        let mut jobs = Workload::synthetic(n, seed).jobs;
        if sites > 1 {
            for j in &mut jobs {
                j.site = (j.id.0 % sites as u64) as u32;
            }
        }
        Workload::new(jobs)
    }

    /// The fleet-scaling benchmark workload: `n` identical long jobs over
    /// `sites` sites. 90% of the jobs are preloaded at `t = 0` (a deep
    /// standing queue — the admission-bound regime a 100k-job fleet lives
    /// in) and the rest arrive one per 5 s tick, cycling sites, so each
    /// tick perturbs exactly one site's admission state — the event-locality
    /// pattern the sharded runner exploits (DESIGN.md §15). Sizes are large
    /// enough that nothing completes inside a bounded measurement window.
    pub fn fleet_scale(n: usize, sites: u32) -> Self {
        assert!(sites >= 1, "need at least one site");
        let preload = n * 9 / 10;
        Workload::new(
            (0..n)
                .map(|i| {
                    let arrival = if i < preload {
                        0.0
                    } else {
                        (i - preload) as f64 * 5.0
                    };
                    JobSpec::new(i as u64, arrival, 400_000.0)
                        .with_tuner(TunerKind::Cs)
                        .with_site(i as u32 % sites)
                })
                .collect(),
        )
    }

    /// Highest site index any job uses (0 for classic single-site fleets).
    pub fn max_site(&self) -> u32 {
        self.jobs.iter().map(|j| j.site).max().unwrap_or(0)
    }

    /// The golden contention scenario: `n` identical compass-search jobs on
    /// the shared UChicago route, arriving 60 s apart, 600 GB each (several
    /// minutes of transfer, so every job lives through many control epochs).
    /// Used by the warm-vs-cold experiments: each job's context (streams
    /// already on the link) repeats, so history matches are close.
    pub fn contended(n: usize) -> Self {
        Workload::new(
            (0..n)
                .map(|i| {
                    JobSpec::new(i as u64, i as f64 * 60.0, 600_000.0)
                        .with_tuner(TunerKind::Cs)
                        .with_max_streams(128)
                })
                .collect(),
        )
    }

    /// The jobs, sorted by `(arrival, id)`.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the workload has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic_and_sorted() {
        let a = Workload::synthetic(20, 7);
        let b = Workload::synthetic(20, 7);
        assert_eq!(a.len(), 20);
        for (x, y) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.arrival_s, y.arrival_s);
            assert_eq!(x.size_mb, y.size_mb);
            assert_eq!(x.priority, y.priority);
            assert_eq!(x.tuner, y.tuner);
            assert_eq!(x.max_streams, y.max_streams);
        }
        for w in a.jobs().windows(2) {
            assert!(w[0].arrival_s <= w[1].arrival_s, "sorted by arrival");
        }
        // Different seeds differ somewhere.
        let c = Workload::synthetic(20, 8);
        assert!(a
            .jobs()
            .iter()
            .zip(c.jobs())
            .any(|(x, y)| x.arrival_s != y.arrival_s || x.size_mb != y.size_mb));
    }

    #[test]
    fn synthetic_arrivals_align_to_five_second_ticks() {
        for j in Workload::synthetic(50, 3).jobs() {
            assert_eq!(j.arrival_s % 5.0, 0.0, "arrival {} off-tick", j.arrival_s);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate job id")]
    fn duplicate_ids_rejected() {
        Workload::new(vec![
            JobSpec::new(1, 0.0, 100.0),
            JobSpec::new(1, 5.0, 100.0),
        ]);
    }

    #[test]
    fn cold_start_respects_reservation() {
        let j = JobSpec::new(0, 0.0, 100.0).with_max_streams(8).with_np(8);
        assert_eq!(j.cold_start(), StreamParams::new(1, 8));
        let j = JobSpec::new(0, 0.0, 100.0);
        assert_eq!(j.cold_start(), StreamParams::globus_default());
    }

    #[test]
    fn state_names_are_stable() {
        assert_eq!(JobState::Pending.name(), "pending");
        assert_eq!(JobState::Queued.name(), "queued");
        assert_eq!(JobState::Running.name(), "running");
        assert_eq!(JobState::Degraded.name(), "degraded");
        assert_eq!(JobState::Quarantined.name(), "quarantined");
        assert_eq!(JobState::Completed.name(), "completed");
        assert_eq!(JobState::Unfinished.name(), "unfinished");
        assert_eq!(JobState::Failed.name(), "failed");
        assert!(JobState::Completed.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(!JobState::Quarantined.is_terminal());
        assert_eq!(JobId(3).to_string(), "job3");
    }

    #[test]
    fn contended_workload_shapes_the_golden_scenario() {
        let w = Workload::contended(5);
        assert_eq!(w.len(), 5);
        for (i, j) in w.jobs().iter().enumerate() {
            assert_eq!(j.arrival_s, i as f64 * 60.0);
            assert_eq!(j.route, Route::UChicago);
            assert_eq!(j.tuner, TunerKind::Cs);
        }
    }
}
