//! Process (re)start cost model.
//!
//! The paper (Section IV-A, "Overhead under external compute load is
//! significant"): every call to `globus-url-copy` must load the executable,
//! allocate buffers and data structures, create threads, and tear everything
//! down again — and the direct-search tuners restart it at **every control
//! epoch**. At the paper's 30 s epoch this costs ~17 % of throughput on an
//! idle source, rising to ~33 % and ~50 % with `ext.cmp` at 16 and 64, while
//! external *transfer* load keeps it near 15 %.
//!
//! The model: a restart of an application with `nc` processes takes
//!
//! ```text
//! t = base + stretch / share^kappa + per_proc · nc
//! ```
//!
//! where `share ∈ (0,1]` is the core fraction one starting process can claim
//! (from [`crate::CpuModel::process_share`]). An idle machine gives
//! `base + stretch (+ small per-proc term)`; contention stretches the
//! CPU-bound portion sublinearly (`kappa < 1` — startup is partly I/O).

use serde::{Deserialize, Serialize};

/// Parameters of the restart-cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StartupModel {
    /// Fixed cost: exec load, connection setup (seconds).
    pub base_s: f64,
    /// CPU-bound cost at full share: buffer allocation, thread spawn
    /// (seconds); stretched by contention.
    pub stretch_s: f64,
    /// Marginal cost of each additional process (seconds).
    pub per_proc_s: f64,
    /// Contention exponent: how strongly low CPU share stretches startup.
    pub kappa: f64,
}

impl StartupModel {
    /// Validate invariants.
    ///
    /// # Panics
    /// Panics when any component is negative or `kappa` is not in `[0, 2]`.
    pub fn validate(&self) {
        assert!(self.base_s >= 0.0, "base_s must be non-negative");
        assert!(self.stretch_s >= 0.0, "stretch_s must be non-negative");
        assert!(self.per_proc_s >= 0.0, "per_proc_s must be non-negative");
        assert!(
            (0.0..=2.0).contains(&self.kappa),
            "kappa must be in [0,2], got {}",
            self.kappa
        );
    }

    /// Restart time in seconds for an app of `nc` processes when one starting
    /// process can claim core fraction `share`.
    ///
    /// # Panics
    /// Panics if `share` is not in `(0, 1]`.
    pub fn startup_time_s(&self, nc: u32, share: f64) -> f64 {
        assert!(
            share > 0.0 && share <= 1.0,
            "share must be in (0,1], got {share}"
        );
        if nc == 0 {
            return 0.0;
        }
        self.base_s + self.stretch_s / share.powf(self.kappa) + self.per_proc_s * nc as f64
    }

    /// A model with zero cost everywhere — the paper's "ideal scenario" where
    /// `globus-url-copy` could adapt `nc` without restarting (used for the
    /// Fig. 7 best-case accounting).
    pub fn free() -> Self {
        StartupModel {
            base_s: 0.0,
            stretch_s: 0.0,
            per_proc_s: 0.0,
            kappa: 0.0,
        }
    }
}

impl Default for StartupModel {
    /// Calibrated so a default transfer (`nc=2`) costs ~5 s of a 30 s epoch
    /// idle (≈17 %) and degrades toward ~50 % under heavy compute load.
    fn default() -> Self {
        StartupModel {
            base_s: 1.0,
            stretch_s: 3.8,
            per_proc_s: 0.05,
            kappa: 0.35,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_restart_is_about_five_seconds() {
        let m = StartupModel::default();
        let t = m.startup_time_s(2, 1.0);
        assert!((4.0..6.0).contains(&t), "t={t}");
    }

    #[test]
    fn contention_stretches_startup() {
        let m = StartupModel::default();
        let idle = m.startup_time_s(2, 1.0);
        let loaded = m.startup_time_s(2, 0.15);
        let heavy = m.startup_time_s(2, 0.04);
        assert!(loaded > idle);
        assert!(heavy > loaded);
        // Paper shape at a 30 s epoch: ~17% idle, ~33% at cmp=16, ~50% at cmp=64.
        let pct = |t: f64| t / 30.0 * 100.0;
        assert!((12.0..25.0).contains(&pct(idle)), "idle {}%", pct(idle));
        assert!(
            (25.0..45.0).contains(&pct(loaded)),
            "loaded {}%",
            pct(loaded)
        );
        assert!((38.0..65.0).contains(&pct(heavy)), "heavy {}%", pct(heavy));
    }

    #[test]
    fn more_processes_cost_more() {
        let m = StartupModel::default();
        assert!(m.startup_time_s(64, 1.0) > m.startup_time_s(2, 1.0));
    }

    #[test]
    fn zero_processes_cost_nothing() {
        assert_eq!(StartupModel::default().startup_time_s(0, 1.0), 0.0);
    }

    #[test]
    fn free_model_is_free() {
        let m = StartupModel::free();
        assert_eq!(m.startup_time_s(100, 0.01), 0.0 + 0.0 + 0.0);
        m.validate();
    }

    #[test]
    #[should_panic(expected = "share must be in (0,1]")]
    fn zero_share_rejected() {
        StartupModel::default().startup_time_s(1, 0.0);
    }

    #[test]
    #[should_panic(expected = "kappa must be in [0,2]")]
    fn bad_kappa_rejected() {
        StartupModel {
            kappa: 3.0,
            ..StartupModel::default()
        }
        .validate();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn startup_monotone_decreasing_in_share(
            share_lo in 0.001f64..0.5,
            delta in 0.001f64..0.5,
            nc in 1u32..128,
        ) {
            let m = StartupModel::default();
            let share_hi = (share_lo + delta).min(1.0);
            prop_assert!(
                m.startup_time_s(nc, share_lo) >= m.startup_time_s(nc, share_hi),
                "less CPU share must never speed up startup"
            );
        }

        #[test]
        fn startup_monotone_increasing_in_nc(
            share in 0.01f64..1.0,
            nc in 1u32..256,
        ) {
            let m = StartupModel::default();
            prop_assert!(m.startup_time_s(nc + 1, share) >= m.startup_time_s(nc, share));
        }

        #[test]
        fn startup_always_positive_and_finite(share in 0.001f64..1.0, nc in 1u32..512) {
            let t = StartupModel::default().startup_time_s(nc, share);
            prop_assert!(t > 0.0 && t.is_finite());
        }
    }
}
