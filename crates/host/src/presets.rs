//! Machine presets matching the paper's testbed.
//!
//! * ANL source: dual-socket quad-core Nehalem (Xeon E5530, 2.40 GHz,
//!   48 GB) behind a 40 Gb/s NIC.
//! * UChicago destination: dual-socket 8-core Sandy Bridge (Xeon E5-2670,
//!   2.60 GHz, 32 GB), 40 Gb/s NIC.
//! * TACC destination: Stampede Sandy Bridge node (Xeon E5-2680, 2.70 GHz,
//!   32 GB) behind a 20 Gb/s path, RTT 33 ms from ANL.
//!
//! The CPU-model constants are calibrated so the workspace reproduces the
//! paper's headline numbers (see `crates/scenarios` calibration tests):
//! Globus-default throughput ≈ 2500 MB/s idle, ≈ 200 MB/s under `ext.cmp=16`,
//! restart overhead 17 % → 50 % as compute load grows.

use crate::cpu::CpuModel;
use crate::startup::StartupModel;
use serde::{Deserialize, Serialize};

/// A machine description: name, CPU model, NIC capacity, startup model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Human-readable machine name.
    pub name: String,
    /// CPU fair-share model.
    pub cpu: CpuModel,
    /// NIC capacity in MB/s (also modelled as a link in `xferopt-net`;
    /// recorded here for reports).
    pub nic_mbs: f64,
    /// Process restart cost model.
    pub startup: StartupModel,
}

/// The ANL Nehalem source machine (8 cores, 40 Gb/s NIC).
pub fn nehalem() -> HostSpec {
    HostSpec {
        name: "anl-nehalem".to_string(),
        cpu: CpuModel {
            cores: 8.0,
            core_rate_mbs: 1250.0,
            compute_thread_weight: 3.0,
            csw_alpha: 0.006,
            csw_alpha_per_hog: 0.0004,
            csw_gamma: 1.0,
        },
        nic_mbs: 5000.0,
        startup: StartupModel::default(),
    }
}

/// The UChicago Sandy Bridge destination (16 cores, 40 Gb/s NIC).
///
/// The paper never loads the destination; more cores and a faster per-core
/// rate mean the sink is never the bottleneck, matching that assumption.
pub fn sandybridge_uchicago() -> HostSpec {
    HostSpec {
        name: "uchicago-sandybridge".to_string(),
        cpu: CpuModel {
            cores: 16.0,
            core_rate_mbs: 1400.0,
            compute_thread_weight: 3.0,
            csw_alpha: 0.004,
            csw_alpha_per_hog: 0.0004,
            csw_gamma: 1.0,
        },
        nic_mbs: 5000.0,
        startup: StartupModel::default(),
    }
}

/// A TACC Stampede Sandy Bridge node (16 cores, 20 Gb/s path from ANL).
pub fn stampede_tacc() -> HostSpec {
    HostSpec {
        name: "tacc-stampede".to_string(),
        cpu: CpuModel {
            cores: 16.0,
            core_rate_mbs: 1400.0,
            compute_thread_weight: 3.0,
            csw_alpha: 0.004,
            csw_alpha_per_hog: 0.0004,
            csw_gamma: 1.0,
        },
        nic_mbs: 2500.0,
        startup: StartupModel::default(),
    }
}

/// A modern data-transfer node (EPYC-class, 100 Gb/s NIC) — not part of the
/// paper's 2016 testbed, provided so the library generalizes to current
/// hardware: many more cores, faster per-core movement, jumbo-frame NICs.
pub fn modern_dtn() -> HostSpec {
    HostSpec {
        name: "modern-dtn".to_string(),
        cpu: CpuModel {
            cores: 64.0,
            core_rate_mbs: 3000.0,
            compute_thread_weight: 2.0,
            csw_alpha: 0.004,
            csw_alpha_per_hog: 0.0002,
            csw_gamma: 1.0,
        },
        nic_mbs: 12500.0, // 100 Gb/s
        startup: StartupModel {
            base_s: 0.3,
            stretch_s: 1.2,
            per_proc_s: 0.02,
            kappa: 0.35,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for spec in [nehalem(), sandybridge_uchicago(), stampede_tacc()] {
            spec.cpu.validate();
            spec.startup.validate();
            assert!(spec.nic_mbs > 0.0);
            assert!(!spec.name.is_empty());
        }
    }

    #[test]
    fn nehalem_matches_paper_hardware() {
        let n = nehalem();
        assert_eq!(n.cpu.cores, 8.0); // dual-socket quad-core
        assert_eq!(n.nic_mbs, 5000.0); // 40 Gb/s
    }

    #[test]
    fn destinations_outclass_source() {
        let src = nehalem();
        for dst in [sandybridge_uchicago(), stampede_tacc()] {
            assert!(dst.cpu.cores > src.cpu.cores);
            assert!(dst.cpu.core_rate_mbs >= src.cpu.core_rate_mbs);
        }
    }

    #[test]
    fn tacc_path_is_twenty_gbps() {
        assert_eq!(stampede_tacc().nic_mbs, 2500.0);
    }

    #[test]
    fn modern_dtn_validates_and_outclasses_2016() {
        let m = modern_dtn();
        m.cpu.validate();
        m.startup.validate();
        let old = nehalem();
        assert!(m.cpu.cores > 4.0 * old.cpu.cores);
        assert!(m.nic_mbs > 2.0 * old.nic_mbs);
        // Restarts are far cheaper on a modern node.
        assert!(m.startup.startup_time_s(2, 1.0) < old.startup.startup_time_s(2, 1.0) / 2.0);
    }

    #[test]
    fn modern_dtn_default_is_not_cpu_bound() {
        // On a modern node the Globus default's bottleneck moves back to the
        // network: 2 processes can push 6 GB/s, under half the 100 Gb/s NIC.
        use crate::host::{AppLoad, Host};
        let mut h = Host::new(modern_dtn());
        let a = h.add_app(AppLoad { nc: 2, np: 8 });
        assert!(h.cpu_cap_mbs(a) >= 6000.0);
        assert!(h.cpu_cap_mbs(a) < m_nic());
    }

    fn m_nic() -> f64 {
        modern_dtn().nic_mbs
    }
}
