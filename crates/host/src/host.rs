//! A host: a registry of transfer applications and compute hogs on one
//! machine, combining the CPU and startup models.

use crate::cpu::CpuModel;
use crate::presets::HostSpec;
use crate::startup::StartupModel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a transfer application registered on a [`Host`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AppId(pub u64);

/// The load shape of one transfer application: `nc` processes × `np` streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppLoad {
    /// Concurrency: number of transfer processes.
    pub nc: u32,
    /// Parallelism: TCP streams per process.
    pub np: u32,
}

impl AppLoad {
    /// Total streams (= schedulable transfer threads) the app runs.
    pub fn streams(&self) -> u32 {
        self.nc * self.np
    }
}

/// A machine hosting transfer applications and external compute jobs.
///
/// # Examples
///
/// ```
/// use xferopt_host::{nehalem, AppLoad, Host};
///
/// let mut host = Host::new(nehalem());
/// let app = host.add_app(AppLoad { nc: 2, np: 8 });
/// let idle_cap = host.cpu_cap_mbs(app);
/// host.set_compute_jobs(16); // the paper's ext.cmp
/// assert!(host.cpu_cap_mbs(app) < idle_cap / 4.0);
/// ```
///
/// The host answers three questions the transfer harness needs each control
/// epoch:
/// 1. [`Host::cpu_cap_mbs`] — how fast can this app move data, CPU-wise?
/// 2. [`Host::efficiency`] — what context-switch penalty does it pay?
/// 3. [`Host::startup_time_s`] — how long does restarting it take right now?
#[derive(Debug, Clone)]
pub struct Host {
    spec: HostSpec,
    apps: BTreeMap<AppId, AppLoad>,
    compute_jobs: u32,
    next_app: u64,
}

impl Host {
    /// A host built from a machine spec with no registered load.
    pub fn new(spec: HostSpec) -> Self {
        spec.cpu.validate();
        spec.startup.validate();
        Host {
            spec,
            apps: BTreeMap::new(),
            compute_jobs: 0,
            next_app: 0,
        }
    }

    /// The machine spec.
    pub fn spec(&self) -> &HostSpec {
        &self.spec
    }

    /// The CPU model.
    pub fn cpu(&self) -> &CpuModel {
        &self.spec.cpu
    }

    /// The startup model.
    pub fn startup(&self) -> &StartupModel {
        &self.spec.startup
    }

    /// Register a transfer application; returns its id.
    pub fn add_app(&mut self, load: AppLoad) -> AppId {
        let id = AppId(self.next_app);
        self.next_app += 1;
        self.apps.insert(id, load);
        id
    }

    /// Change an application's load shape.
    ///
    /// # Panics
    /// Panics if the app id is unknown.
    pub fn set_app(&mut self, id: AppId, load: AppLoad) {
        *self
            .apps
            .get_mut(&id)
            .unwrap_or_else(|| panic!("unknown app {id:?}")) = load;
    }

    /// Current load shape of an app, if registered.
    pub fn app(&self, id: AppId) -> Option<AppLoad> {
        self.apps.get(&id).copied()
    }

    /// Deregister an application (idempotent).
    pub fn remove_app(&mut self, id: AppId) {
        self.apps.remove(&id);
    }

    /// Set the number of external compute hogs (the paper's `ext.cmp`).
    pub fn set_compute_jobs(&mut self, jobs: u32) {
        self.compute_jobs = jobs;
    }

    /// Number of external compute hogs.
    pub fn compute_jobs(&self) -> u32 {
        self.compute_jobs
    }

    /// Total transfer threads across all registered apps.
    pub fn total_transfer_threads(&self) -> f64 {
        self.apps.values().map(|a| a.streams() as f64).sum()
    }

    /// CPU-side throughput cap for `id` in MB/s (before the efficiency
    /// factor).
    ///
    /// # Panics
    /// Panics if the app id is unknown.
    pub fn cpu_cap_mbs(&self, id: AppId) -> f64 {
        let a = self.apps[&id];
        self.spec
            .cpu
            .app_cpu_cap_mbs(a.nc, a.np, self.total_transfer_threads(), self.compute_jobs)
    }

    /// Context-switch efficiency multiplier for `id` (over its own threads,
    /// amplified by compute hogs).
    ///
    /// # Panics
    /// Panics if the app id is unknown.
    pub fn efficiency(&self, id: AppId) -> f64 {
        let a = self.apps[&id];
        self.spec
            .cpu
            .efficiency(a.streams() as f64, self.compute_jobs)
    }

    /// Time to (re)start app `id` with its current shape, in seconds.
    ///
    /// # Panics
    /// Panics if the app id is unknown.
    pub fn startup_time_s(&self, id: AppId) -> f64 {
        let a = self.apps[&id];
        let share =
            self.spec
                .cpu
                .process_share(a.np, self.total_transfer_threads(), self.compute_jobs);
        self.spec.startup.startup_time_s(a.nc, share.max(1e-3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::nehalem;

    fn host() -> Host {
        Host::new(nehalem())
    }

    #[test]
    fn register_and_update_apps() {
        let mut h = host();
        let a = h.add_app(AppLoad { nc: 2, np: 8 });
        assert_eq!(h.app(a), Some(AppLoad { nc: 2, np: 8 }));
        h.set_app(a, AppLoad { nc: 5, np: 8 });
        assert_eq!(h.app(a).unwrap().streams(), 40);
        h.remove_app(a);
        assert_eq!(h.app(a), None);
        h.remove_app(a); // idempotent
    }

    #[test]
    fn default_config_hits_paper_scale() {
        let mut h = host();
        let a = h.add_app(AppLoad { nc: 2, np: 8 });
        let cap = h.cpu_cap_mbs(a);
        assert!((2000.0..3000.0).contains(&cap), "cap={cap}");
        assert!(h.efficiency(a) > 0.95);
    }

    #[test]
    fn compute_load_slashes_cap() {
        let mut h = host();
        let a = h.add_app(AppLoad { nc: 2, np: 8 });
        let idle = h.cpu_cap_mbs(a);
        h.set_compute_jobs(16);
        let loaded = h.cpu_cap_mbs(a);
        assert!(
            loaded < idle / 5.0,
            "16 hogs should slash a 2-process app: {idle} -> {loaded}"
        );
    }

    #[test]
    fn growing_nc_recovers_share_under_load() {
        let mut h = host();
        let a = h.add_app(AppLoad { nc: 2, np: 8 });
        h.set_compute_jobs(16);
        let small = h.cpu_cap_mbs(a) * h.efficiency(a);
        h.set_app(a, AppLoad { nc: 64, np: 8 });
        let big = h.cpu_cap_mbs(a) * h.efficiency(a);
        assert!(
            big > 3.0 * small,
            "growing nc must recover CPU share: {small} -> {big}"
        );
    }

    #[test]
    fn apps_contend_with_each_other() {
        let mut h = host();
        let a = h.add_app(AppLoad { nc: 8, np: 8 });
        let alone = h.cpu_cap_mbs(a);
        let _b = h.add_app(AppLoad { nc: 64, np: 8 });
        let contended = h.cpu_cap_mbs(a);
        assert!(contended < alone, "{alone} -> {contended}");
    }

    #[test]
    fn startup_time_grows_with_load() {
        let mut h = host();
        let a = h.add_app(AppLoad { nc: 2, np: 8 });
        let idle = h.startup_time_s(a);
        h.set_compute_jobs(16);
        let mid = h.startup_time_s(a);
        h.set_compute_jobs(64);
        let heavy = h.startup_time_s(a);
        assert!(idle < mid && mid < heavy, "{idle} {mid} {heavy}");
        // Paper's 30 s-epoch overhead shape: ~17% / ~33% / ~50%.
        assert!((3.5..7.0).contains(&idle), "idle={idle}");
        assert!((7.0..13.0).contains(&mid), "mid={mid}");
        assert!((11.0..20.0).contains(&heavy), "heavy={heavy}");
    }

    #[test]
    fn external_transfer_load_barely_moves_startup() {
        // Paper: under ext.tfr (not cmp) overhead stays ~15%.
        let mut h = host();
        let a = h.add_app(AppLoad { nc: 2, np: 8 });
        let idle = h.startup_time_s(a);
        let _ext = h.add_app(AppLoad { nc: 64, np: 1 });
        let with_tfr = h.startup_time_s(a);
        assert!(
            with_tfr < idle * 1.6,
            "transfer load should not stretch startup like hogs do: {idle} -> {with_tfr}"
        );
    }

    #[test]
    #[should_panic(expected = "unknown app")]
    fn set_unknown_app_panics() {
        let mut h = host();
        h.set_app(AppId(7), AppLoad { nc: 1, np: 1 });
    }
}
