//! CPU fair-share and context-switch model.
//!
//! The model is deliberately simple — a thread-weighted processor-sharing
//! queue with a superlinear oversubscription penalty — because that is all
//! the paper's observed effects require:
//!
//! * A transfer application running `nc` single-core processes of `np`
//!   streams each contributes `nc·np` schedulable threads of weight 1.
//! * A compute hog (the paper's MKL `dgemm` copies pinned to all cores)
//!   contributes `cores` threads of weight [`CpuModel::compute_thread_weight`]
//!   — CPU-bound threads consume their full quantum while I/O-bound transfer
//!   threads often yield early, so a hog thread displaces more than one
//!   transfer thread's worth of time.
//! * Each process is single-core (GridFTP parallelism does **not** exploit
//!   multiple cores — paper Section III-A), so a process can never move more
//!   than [`CpuModel::core_rate_mbs`].
//! * Running many more threads than cores costs context switches and cache
//!   churn: throughput is multiplied by `1/(1 + α·(threads/cores − 1)^γ)`.

use serde::{Deserialize, Serialize};

/// Parameters of the endpoint CPU model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Physical cores available to transfers and hogs.
    pub cores: f64,
    /// Peak MB/s a single (single-core) transfer process can move when it
    /// owns its core outright.
    pub core_rate_mbs: f64,
    /// Scheduler weight of one CPU-hog thread relative to one transfer
    /// thread. Greater than 1 because hogs never yield their quantum.
    pub compute_thread_weight: f64,
    /// Context-switch overhead coefficient α on an otherwise idle machine.
    /// Transfer threads are I/O-bound and park cheaply when cores are free,
    /// so this is small.
    pub csw_alpha: f64,
    /// Additional α per compute hog: switching among transfer threads is far
    /// costlier when hogs keep the cores busy and caches polluted. This is
    /// what makes heavy oversubscription affordable on an idle TACC run but
    /// expensive under `ext.cmp` (paper Figs. 5b/5c vs the ANL→TACC trend).
    pub csw_alpha_per_hog: f64,
    /// Context-switch overhead exponent γ.
    pub csw_gamma: f64,
}

impl CpuModel {
    /// Validate invariants. Called by constructors of presets.
    ///
    /// # Panics
    /// Panics when any parameter is non-positive (except `csw_alpha`, which
    /// may be zero to disable the overhead term).
    pub fn validate(&self) {
        assert!(self.cores > 0.0, "cores must be positive");
        assert!(self.core_rate_mbs > 0.0, "core rate must be positive");
        assert!(
            self.compute_thread_weight > 0.0,
            "compute thread weight must be positive"
        );
        assert!(self.csw_alpha >= 0.0, "csw_alpha must be non-negative");
        assert!(
            self.csw_alpha_per_hog >= 0.0,
            "csw_alpha_per_hog must be non-negative"
        );
        assert!(self.csw_gamma > 0.0, "csw_gamma must be positive");
    }

    /// Total effective thread weight on the machine.
    ///
    /// `transfer_threads` is the sum of `nc·np` over all transfer apps
    /// (weight 1 each); `compute_jobs` hogs contribute `cores` threads each
    /// at [`CpuModel::compute_thread_weight`].
    pub fn total_weight(&self, transfer_threads: f64, compute_jobs: u32) -> f64 {
        transfer_threads + compute_jobs as f64 * self.cores * self.compute_thread_weight
    }

    /// MB/s one transfer thread can move under the current load: its
    /// fair share of the machine, capped at a full core.
    pub fn per_thread_rate_mbs(&self, transfer_threads: f64, compute_jobs: u32) -> f64 {
        let w = self.total_weight(transfer_threads, compute_jobs);
        if w <= self.cores {
            // Undersubscribed: every thread can have a full core.
            self.core_rate_mbs
        } else {
            self.core_rate_mbs * self.cores / w
        }
    }

    /// CPU-side throughput cap for one application of `nc` processes × `np`
    /// streams, in MB/s, given the machine-wide load. Does **not** include
    /// the context-switch efficiency factor — apply [`CpuModel::efficiency`]
    /// on top.
    pub fn app_cpu_cap_mbs(
        &self,
        nc: u32,
        np: u32,
        total_transfer_threads: f64,
        compute_jobs: u32,
    ) -> f64 {
        if nc == 0 || np == 0 {
            return 0.0;
        }
        let per_thread = self.per_thread_rate_mbs(total_transfer_threads, compute_jobs);
        // A process is single-core: its np threads cannot exceed one core.
        let per_process = (np as f64 * per_thread).min(self.core_rate_mbs);
        nc as f64 * per_process
    }

    /// Fraction of a core one `np`-thread process can claim under the current
    /// load, in `(0, 1]`. Drives startup-time stretching.
    pub fn process_share(&self, np: u32, total_transfer_threads: f64, compute_jobs: u32) -> f64 {
        if np == 0 {
            return 1.0;
        }
        let per_thread = self.per_thread_rate_mbs(total_transfer_threads, compute_jobs);
        ((np as f64 * per_thread) / self.core_rate_mbs).min(1.0)
    }

    /// Context-switch efficiency multiplier for an application running
    /// `app_threads` transfer threads while `compute_jobs` hogs run:
    /// `1/(1 + (α + α_hog·jobs)·max(0, T/K − 1)^γ)`.
    pub fn efficiency(&self, app_threads: f64, compute_jobs: u32) -> f64 {
        let alpha = self.csw_alpha + self.csw_alpha_per_hog * compute_jobs as f64;
        let over = (app_threads / self.cores - 1.0).max(0.0);
        1.0 / (1.0 + alpha * over.powf(self.csw_gamma))
    }
}

impl Default for CpuModel {
    /// An 8-core node calibrated to the paper's ANL Nehalem source.
    fn default() -> Self {
        CpuModel {
            cores: 8.0,
            core_rate_mbs: 1250.0,
            compute_thread_weight: 3.0,
            csw_alpha: 0.006,
            csw_alpha_per_hog: 0.0004,
            csw_gamma: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CpuModel {
        CpuModel::default()
    }

    #[test]
    fn undersubscribed_thread_gets_full_core() {
        let m = model();
        assert_eq!(m.per_thread_rate_mbs(4.0, 0), m.core_rate_mbs);
    }

    #[test]
    fn oversubscription_divides_fairly() {
        let m = model();
        // 16 transfer threads, no hogs: each gets half a core.
        let r = m.per_thread_rate_mbs(16.0, 0);
        assert!((r - m.core_rate_mbs / 2.0).abs() < 1e-9);
    }

    #[test]
    fn hogs_weigh_more_than_transfer_threads() {
        let m = model();
        let with_hog = m.per_thread_rate_mbs(8.0, 1);
        let with_threads = m.per_thread_rate_mbs(8.0 + m.cores, 0);
        assert!(
            with_hog < with_threads,
            "a hog ({with_hog}) must displace more than cores-many plain threads ({with_threads})"
        );
    }

    #[test]
    fn process_is_single_core_bound() {
        let m = model();
        // One process with many threads and an idle machine still caps at a core.
        let cap = m.app_cpu_cap_mbs(1, 64, 64.0, 0);
        assert_eq!(cap, m.core_rate_mbs);
    }

    #[test]
    fn more_processes_raise_the_cap() {
        let m = model();
        let one = m.app_cpu_cap_mbs(1, 8, 8.0, 16);
        let four = m.app_cpu_cap_mbs(4, 8, 32.0, 16);
        assert!(four > 3.0 * one, "one={one} four={four}");
    }

    #[test]
    fn critical_point_shifts_right_under_compute_load() {
        // The paper's key effect: with hogs present, raising nc keeps paying
        // because the app claims a larger share of the fair-share scheduler.
        let m = model();
        let observed = |nc: u32, jobs: u32| {
            let threads = (nc * 8) as f64;
            m.app_cpu_cap_mbs(nc, 8, threads, jobs) * m.efficiency(threads, jobs)
        };
        // Without load, growing nc from 8 to 64 gains little (already at the
        // aggregate ceiling) ...
        let gain_idle = observed(64, 0) / observed(8, 0);
        // ... but with 16 hogs, the same growth pays off substantially.
        let gain_loaded = observed(64, 16) / observed(8, 16);
        assert!(
            gain_loaded > 1.5 * gain_idle,
            "gain_idle={gain_idle:.2} gain_loaded={gain_loaded:.2}"
        );
    }

    #[test]
    fn efficiency_is_one_when_undersubscribed() {
        let m = model();
        assert_eq!(m.efficiency(1.0, 0), 1.0);
        assert_eq!(m.efficiency(8.0, 0), 1.0);
        assert_eq!(m.efficiency(8.0, 64), 1.0);
    }

    #[test]
    fn efficiency_decays_monotonically() {
        let m = model();
        let mut last = 1.0;
        for t in [8.0, 16.0, 64.0, 256.0, 1024.0] {
            let e = m.efficiency(t, 0);
            assert!(e <= last && e > 0.0);
            last = e;
        }
        assert!(
            m.efficiency(4096.0, 0) < 0.3,
            "heavy oversubscription must hurt even idle"
        );
    }

    #[test]
    fn hogs_amplify_switch_costs() {
        // The same oversubscription is much more expensive under compute
        // load: idle TACC runs tolerate nc≈45 (paper), loaded UChicago runs
        // pay heavily at nc≈64.
        let m = model();
        let idle = m.efficiency(512.0, 0);
        let loaded = m.efficiency(512.0, 16);
        assert!(idle > 0.7, "idle oversubscription is cheap: {idle}");
        assert!(loaded < 0.6, "loaded oversubscription is dear: {loaded}");
    }

    #[test]
    fn zero_alpha_disables_overhead() {
        let m = CpuModel {
            csw_alpha: 0.0,
            csw_alpha_per_hog: 0.0,
            ..model()
        };
        assert_eq!(m.efficiency(10_000.0, 64), 1.0);
    }

    #[test]
    fn zero_sized_app_caps_at_zero() {
        let m = model();
        assert_eq!(m.app_cpu_cap_mbs(0, 8, 0.0, 0), 0.0);
        assert_eq!(m.app_cpu_cap_mbs(2, 0, 0.0, 0), 0.0);
    }

    #[test]
    fn process_share_bounds() {
        let m = model();
        assert_eq!(m.process_share(8, 8.0, 0), 1.0);
        let loaded = m.process_share(8, 16.0, 64);
        assert!(loaded > 0.0 && loaded < 0.2, "share={loaded}");
        assert_eq!(m.process_share(0, 0.0, 64), 1.0);
    }

    #[test]
    #[should_panic(expected = "cores must be positive")]
    fn validate_rejects_zero_cores() {
        CpuModel {
            cores: 0.0,
            ..model()
        }
        .validate();
    }

    #[test]
    fn default_matches_paper_scale_default_config() {
        // Globus default nc=2, np=8 on an idle Nehalem: CPU cap should be
        // ~2×core_rate = 2500 MB/s, the paper's observed default throughput.
        let m = model();
        let cap = m.app_cpu_cap_mbs(2, 8, 16.0, 0);
        assert!((cap - 2500.0).abs() < 1.0, "cap={cap}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn per_thread_rate_never_exceeds_core(
            threads in 0.0f64..10_000.0,
            jobs in 0u32..256,
        ) {
            let m = CpuModel::default();
            let r = m.per_thread_rate_mbs(threads, jobs);
            prop_assert!(r > 0.0 && r <= m.core_rate_mbs);
        }

        #[test]
        fn app_cap_monotone_in_nc(
            nc in 1u32..128,
            np in 1u32..32,
            jobs in 0u32..128,
        ) {
            let m = CpuModel::default();
            let t1 = (nc * np) as f64;
            let t2 = ((nc + 1) * np) as f64;
            let a = m.app_cpu_cap_mbs(nc, np, t1, jobs);
            let b = m.app_cpu_cap_mbs(nc + 1, np, t2, jobs);
            prop_assert!(b >= a - 1e-9, "cap fell when adding a process: {} -> {}", a, b);
        }

        #[test]
        fn aggregate_cap_bounded_by_machine(
            nc in 1u32..256,
            np in 1u32..64,
            jobs in 0u32..64,
        ) {
            let m = CpuModel::default();
            let t = (nc as f64) * (np as f64);
            let cap = m.app_cpu_cap_mbs(nc, np, t, jobs);
            // An app can never move more than the whole machine.
            prop_assert!(cap <= m.cores * m.core_rate_mbs * (1.0 + 1e-9),
                "cap {} exceeds machine {}", cap, m.cores * m.core_rate_mbs);
        }

        #[test]
        fn efficiency_in_unit_interval(t in 0.0f64..100_000.0, jobs in 0u32..128) {
            let e = CpuModel::default().efficiency(t, jobs);
            prop_assert!(e > 0.0 && e <= 1.0);
        }

        #[test]
        fn efficiency_monotone_in_hogs(t in 0.0f64..10_000.0, jobs in 0u32..64) {
            let m = CpuModel::default();
            prop_assert!(m.efficiency(t, jobs + 1) <= m.efficiency(t, jobs) + 1e-12);
        }
    }
}
