//! Endpoint host model: cores, fair-share scheduling, process startup costs.
//!
//! The paper's central empirical finding (Section III-A) is that the
//! *critical* number of parallel streams depends on **external load at the
//! source endpoint**: running `ext.cmp` dgemm hogs or `ext.tfr` competing
//! transfer streams both move the throughput-vs-streams peak right and pull
//! it down. The mechanism is the OS fair-share scheduler: transfer threads
//! and compute threads split CPU time roughly per-thread, so a transfer that
//! spawns *more* threads claims a *larger* share of a loaded machine — up to
//! the point where context-switch overhead dominates.
//!
//! This crate models exactly that:
//!
//! * [`cpu::CpuModel`] — cores, per-core transfer bandwidth, per-thread
//!   fair-share weights (CPU-bound hogs weigh more than I/O-bound transfer
//!   threads), and a superlinear context-switch efficiency penalty.
//! * [`startup::StartupModel`] — the cost of (re)starting a
//!   `globus-url-copy`-like process: executable load, buffer allocation, and
//!   thread spawning, stretched under CPU contention. This is the paper's
//!   "restart overhead" separating Fig. 5 (observed) from Fig. 7 (best-case).
//! * [`host::Host`] — a registry of transfer applications and compute jobs on
//!   one machine, combining the two models.
//! * [`presets`] — the paper's machines: the ANL Nehalem source, the
//!   UChicago Sandy Bridge destination, and a TACC Stampede node.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cpu;
pub mod host;
pub mod presets;
pub mod startup;

pub use cpu::CpuModel;
pub use host::{AppId, AppLoad, Host};
pub use presets::{modern_dtn, nehalem, sandybridge_uchicago, stampede_tacc, HostSpec};
pub use startup::StartupModel;
