//! Connected components of the link-sharing graph.
//!
//! Two flows (or jobs) interact under max–min allocation only if their paths
//! can reach a common bottleneck link, i.e. they are in the same connected
//! component of the graph whose vertices are links and whose edges join
//! links that appear on one path together. Progressive filling treats
//! components independently: freezing a flow in one component never changes
//! the fair share computed in another. The fleet orchestrator exploits this
//! to shard a workload by component and tick the shards in parallel without
//! changing a single allocated byte (DESIGN.md §15).
//!
//! [`UnionFind`] is the classic disjoint-set forest (path halving + union by
//! rank); [`connected_groups`] maps each item (a set of link keys) to a
//! dense component index, numbering components by first appearance so the
//! grouping is deterministic for a deterministic input order.

/// Disjoint-set forest over `usize` keys with path halving and union by
/// rank. Amortised near-constant time per operation.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// A forest of `n` singleton sets `0..n`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements (not sets).
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the forest holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path halving).
    ///
    /// # Panics
    /// Panics if `x >= self.len()`.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merge the sets holding `a` and `b`; returns `true` if they were
    /// previously distinct.
    ///
    /// # Panics
    /// Panics if `a` or `b` is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// True when `a` and `b` are currently in the same set.
    ///
    /// # Panics
    /// Panics if `a` or `b` is out of range.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Group items by connected component of the link-sharing graph.
///
/// Each item is the set of link keys its flow traverses; two items share a
/// component when their key sets are connected (directly or transitively)
/// through common keys. Returns one dense component index per item,
/// numbered by first appearance (item 0 is always component 0), so equal
/// inputs yield equal groupings — the determinism the sharded fleet path
/// relies on. Items with no keys are isolated singleton components.
#[must_use]
pub fn connected_groups<I: AsRef<[usize]>>(items: &[I]) -> Vec<usize> {
    // Union link keys per item, then collapse items onto their first key.
    let max_key = items
        .iter()
        .flat_map(|it| it.as_ref().iter().copied())
        .max()
        .map_or(0, |m| m + 1);
    // Extra slots past `max_key` give keyless items a private vertex each.
    let mut uf = UnionFind::new(max_key + items.len());
    for (i, item) in items.iter().enumerate() {
        let keys = item.as_ref();
        let anchor = keys.first().copied().unwrap_or(max_key + i);
        for &k in keys.iter().skip(1) {
            uf.union(anchor, k);
        }
    }
    let mut order: Vec<usize> = Vec::new();
    let mut groups = Vec::with_capacity(items.len());
    let mut root_to_group = std::collections::HashMap::new();
    for (i, item) in items.iter().enumerate() {
        let keys = item.as_ref();
        let anchor = keys.first().copied().unwrap_or(max_key + i);
        let root = uf.find(anchor);
        let g = *root_to_group.entry(root).or_insert_with(|| {
            order.push(root);
            order.len() - 1
        });
        groups.push(g);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_merges_and_finds() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert!(uf.same(0, 1));
        assert!(!uf.same(1, 2));
        assert!(uf.union(1, 3));
        assert!(uf.same(0, 2));
        assert!(!uf.same(4, 5));
        assert_eq!(uf.len(), 6);
        assert!(!uf.is_empty());
    }

    #[test]
    fn groups_number_by_first_appearance() {
        // Items 0 and 2 share key 7; item 1 is alone on key 3.
        let groups = connected_groups(&[vec![1, 7], vec![3], vec![7, 9]]);
        assert_eq!(groups, vec![0, 1, 0]);
    }

    #[test]
    fn transitive_sharing_joins_components() {
        // 0-{a,b}, 1-{b,c}, 2-{c,d}: all one component through b and c.
        let groups = connected_groups(&[vec![0, 1], vec![1, 2], vec![2, 3]]);
        assert_eq!(groups, vec![0, 0, 0]);
    }

    #[test]
    fn keyless_items_are_singletons() {
        let groups = connected_groups(&[vec![], vec![5], vec![], vec![5]]);
        assert_eq!(groups, vec![0, 1, 2, 1]);
    }

    #[test]
    fn empty_input_is_empty() {
        let groups = connected_groups::<Vec<usize>>(&[]);
        assert!(groups.is_empty());
    }
}
