//! Links and paths.
//!
//! A [`Link`] is a capacitated resource (a NIC, a campus uplink, a WAN
//! segment). A [`Path`] is an ordered set of links plus the end-to-end
//! properties TCP cares about: round-trip time and random packet loss.
//! Putting capacity on links (not paths) lets two transfers that leave the
//! same source NIC — the paper's Fig. 11 scenario — contend for it while
//! crossing different WAN bottlenecks.

use serde::{Deserialize, Serialize};

/// Identifier of a link within a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub usize);

/// Identifier of a path within a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PathId(pub usize);

/// A capacitated network resource.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// Human-readable name for reports.
    pub name: String,
    /// Capacity in MB/s.
    pub capacity_mbs: f64,
    /// AIMD half-saturation stream count `h`: with `N` total TCP streams
    /// crossing the link, the *achievable* aggregate goodput is
    /// `capacity · N/(N+h)` — AIMD sawtooth and loss recovery leave bandwidth
    /// unused, and more multiplexed streams recover more of it (the paper's
    /// first observation). `h = 0` disables the effect (ideal link).
    pub half_streams: f64,
}

impl Link {
    /// A link with the given name and capacity (MB/s), ideal (`h = 0`).
    ///
    /// # Panics
    /// Panics if `capacity_mbs` is not strictly positive and finite.
    pub fn new(name: impl Into<String>, capacity_mbs: f64) -> Self {
        assert!(
            capacity_mbs > 0.0 && capacity_mbs.is_finite(),
            "link capacity must be positive and finite, got {capacity_mbs}"
        );
        Link {
            name: name.into(),
            capacity_mbs,
            half_streams: 0.0,
        }
    }

    /// A link whose capacity is given in Gb/s (the unit NICs are quoted in);
    /// converted at 8 bits/byte, 1000-based.
    pub fn from_gbps(name: impl Into<String>, gbps: f64) -> Self {
        Link::new(name, gbps * 1000.0 / 8.0)
    }

    /// Set the AIMD half-saturation stream count.
    ///
    /// # Panics
    /// Panics if `h` is negative.
    pub fn with_half_streams(mut self, h: f64) -> Self {
        assert!(h >= 0.0, "half_streams must be non-negative, got {h}");
        self.half_streams = h;
        self
    }

    /// Effective aggregate capacity when `n_streams` TCP streams cross the
    /// link: `capacity · N/(N+h)` (or full capacity when `h = 0`).
    pub fn effective_capacity_mbs(&self, n_streams: f64) -> f64 {
        if self.half_streams <= 0.0 || n_streams <= 0.0 {
            return if n_streams <= 0.0 && self.half_streams > 0.0 {
                0.0
            } else {
                self.capacity_mbs
            };
        }
        self.capacity_mbs * n_streams / (n_streams + self.half_streams)
    }
}

/// An end-to-end route: the links it crosses plus TCP-relevant path
/// properties.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Path {
    /// Human-readable name for reports.
    pub name: String,
    /// Links crossed, in order. Must be non-empty and duplicate-free.
    pub links: Vec<LinkId>,
    /// Round-trip time in seconds.
    pub rtt_s: f64,
    /// Per-packet random loss probability (non-congestion loss).
    pub loss: f64,
    /// Per-stream window cap in bytes (socket buffer limit).
    pub wmax_bytes: f64,
}

impl Path {
    /// Default per-stream socket-buffer window cap: 4 MiB, a typical tuned
    /// GridFTP endpoint configuration.
    pub const DEFAULT_WMAX_BYTES: f64 = 4.0 * 1024.0 * 1024.0;

    /// A path over `links` with a 1 ms RTT and zero random loss.
    ///
    /// # Panics
    /// Panics if `links` is empty or contains duplicates.
    pub fn new(name: impl Into<String>, links: Vec<LinkId>) -> Self {
        assert!(!links.is_empty(), "a path must cross at least one link");
        let mut seen = links.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), links.len(), "a path cannot cross a link twice");
        Path {
            name: name.into(),
            links,
            rtt_s: 0.001,
            loss: 0.0,
            wmax_bytes: Self::DEFAULT_WMAX_BYTES,
        }
    }

    /// Set the round-trip time in milliseconds.
    ///
    /// # Panics
    /// Panics if `rtt_ms` is not strictly positive.
    pub fn with_rtt_ms(mut self, rtt_ms: f64) -> Self {
        assert!(rtt_ms > 0.0, "RTT must be positive, got {rtt_ms} ms");
        self.rtt_s = rtt_ms / 1000.0;
        self
    }

    /// Set the per-packet random loss probability.
    ///
    /// # Panics
    /// Panics if `loss` is outside `[0, 1)`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&loss),
            "loss must be in [0,1), got {loss}"
        );
        self.loss = loss;
        self
    }

    /// Set the per-stream window cap in bytes.
    ///
    /// # Panics
    /// Panics if `wmax_bytes` is not strictly positive.
    pub fn with_wmax_bytes(mut self, wmax_bytes: f64) -> Self {
        assert!(wmax_bytes > 0.0, "window cap must be positive");
        self.wmax_bytes = wmax_bytes;
        self
    }

    /// True if the path crosses `link`.
    pub fn crosses(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_conversion() {
        let l = Link::from_gbps("nic", 40.0);
        assert_eq!(l.capacity_mbs, 5000.0);
        let l = Link::from_gbps("wan", 20.0);
        assert_eq!(l.capacity_mbs, 2500.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        Link::new("bad", 0.0);
    }

    #[test]
    fn path_builder() {
        let p = Path::new("p", vec![LinkId(0), LinkId(1)])
            .with_rtt_ms(33.0)
            .with_loss(1e-5)
            .with_wmax_bytes(1e6);
        assert!((p.rtt_s - 0.033).abs() < 1e-12);
        assert_eq!(p.loss, 1e-5);
        assert_eq!(p.wmax_bytes, 1e6);
        assert!(p.crosses(LinkId(0)));
        assert!(!p.crosses(LinkId(2)));
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_path_rejected() {
        Path::new("p", vec![]);
    }

    #[test]
    #[should_panic(expected = "cannot cross a link twice")]
    fn duplicate_link_rejected() {
        Path::new("p", vec![LinkId(3), LinkId(3)]);
    }

    #[test]
    #[should_panic(expected = "loss must be in [0,1)")]
    fn bad_loss_rejected() {
        Path::new("p", vec![LinkId(0)]).with_loss(1.0);
    }
}
