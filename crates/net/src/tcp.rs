//! Per-stream TCP models: steady-state response functions and congestion
//! window dynamics.
//!
//! The paper attributes the rising segment of its throughput-vs-streams
//! curves to AIMD leaving bandwidth unused: a single stream's steady-state
//! rate on a lossy long-RTT path is far below the link capacity, so `n`
//! streams recover roughly `n×` that rate until a resource saturates. The
//! response functions here quantify the per-stream rate; the window dynamics
//! drive the higher-fidelity [`crate::dynamic`] mode.
//!
//! The response functions are the standard "square-root-p" family — exact
//! constants matter less than the relative aggressiveness of the variants,
//! which is what changes where the critical stream count lands.

use serde::{Deserialize, Serialize};

/// Default TCP maximum segment size in bytes (Ethernet MTU minus headers).
pub const DEFAULT_MSS_BYTES: f64 = 1460.0;

/// A TCP congestion-control variant.
///
/// The paper's endpoints ran **H-TCP**; Linux defaults to **CUBIC**; Reno is
/// the classic AIMD baseline; Scalable TCP is the most aggressive of the
/// "high-speed" family. All four are discussed in the paper's Section III-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CongestionControl {
    /// Classic AIMD: +1 MSS per RTT, halve on loss.
    Reno,
    /// CUBIC (Linux default): cubic window growth around the last loss size.
    Cubic,
    /// H-TCP: additive increase grows with time since the last loss.
    #[default]
    HTcp,
    /// Scalable TCP: multiplicative increase, gentle (0.875) decrease.
    Scalable,
}

impl CongestionControl {
    /// All variants, for sweeps and ablations.
    pub const ALL: [CongestionControl; 4] = [
        CongestionControl::Reno,
        CongestionControl::Cubic,
        CongestionControl::HTcp,
        CongestionControl::Scalable,
    ];

    /// Short lowercase name (`reno`, `cubic`, `htcp`, `scalable`).
    pub fn name(self) -> &'static str {
        match self {
            CongestionControl::Reno => "reno",
            CongestionControl::Cubic => "cubic",
            CongestionControl::HTcp => "htcp",
            CongestionControl::Scalable => "scalable",
        }
    }

    /// Multiplicative-decrease factor applied to the window on a loss event.
    pub fn beta(self) -> f64 {
        match self {
            CongestionControl::Reno => 0.5,
            CongestionControl::Cubic => 0.7, // RFC 8312 uses 0.7
            CongestionControl::HTcp => 0.8,  // adaptive in the real stack; typical value
            CongestionControl::Scalable => 0.875,
        }
    }

    /// Steady-state per-stream goodput in MB/s for a path with round-trip
    /// time `rtt_s` (seconds) and per-packet random loss probability `loss`,
    /// using segments of `mss_bytes`.
    ///
    /// Response functions (throughput in segments/RTT as a function of p):
    ///
    /// * Reno: `sqrt(3/2) / sqrt(p)` (Mathis et al.)
    /// * CUBIC: `1.17 / p^0.75 · (RTT/1s)^(-0.25) · RTT` — the standard CUBIC
    ///   response, less RTT-sensitive than Reno.
    /// * H-TCP: quadratic increase in time-since-loss integrates to a
    ///   `~ c / p^(2/3)` response; we use `1.2 / p^(2/3)`.
    /// * Scalable: `0.075 / p` (per-ack multiplicative increase).
    ///
    /// `loss <= 0` returns `f64::INFINITY` — a lossless path leaves the
    /// stream limited only by window caps and link shares, which the caller
    /// applies on top.
    ///
    /// # Examples
    ///
    /// ```
    /// use xferopt_net::CongestionControl;
    /// // On a 33 ms RTT path with 1e-4 loss, H-TCP sustains far more per
    /// // stream than classic Reno — why the paper's endpoints run it.
    /// let reno = CongestionControl::Reno.steady_rate_mbs(0.033, 1e-4, 1460.0);
    /// let htcp = CongestionControl::HTcp.steady_rate_mbs(0.033, 1e-4, 1460.0);
    /// assert!(htcp > reno);
    /// ```
    pub fn steady_rate_mbs(self, rtt_s: f64, loss: f64, mss_bytes: f64) -> f64 {
        assert!(rtt_s > 0.0, "RTT must be positive");
        if loss <= 0.0 {
            return f64::INFINITY;
        }
        let segs_per_rtt = match self {
            CongestionControl::Reno => (1.5f64).sqrt() / loss.sqrt(),
            CongestionControl::Cubic => {
                // RFC 8312 average window: 1.054 * (C·RTT^3 / p^3)^(1/4)
                // segments, with C = 0.4 ⇒ rate scales as RTT^(-1/4).
                1.054 * (0.4 * rtt_s.powi(3) / loss.powi(3)).powf(0.25)
            }
            CongestionControl::HTcp => 1.2 / loss.powf(2.0 / 3.0),
            CongestionControl::Scalable => 0.075 / loss,
        };
        segs_per_rtt * mss_bytes / rtt_s / 1e6
    }

    /// Per-stream rate cap in MB/s given the socket-buffer window cap
    /// `wmax_bytes` (a window can never sustain more than `wmax/RTT`).
    pub fn window_cap_mbs(rtt_s: f64, wmax_bytes: f64) -> f64 {
        assert!(rtt_s > 0.0, "RTT must be positive");
        wmax_bytes / rtt_s / 1e6
    }

    /// Congestion-avoidance window growth over `dt` seconds, given the
    /// current window `cwnd_bytes`, the path RTT, and the time since the last
    /// loss event `since_loss_s`. Returns the new window in bytes.
    ///
    /// Growth rules:
    /// * Reno: +1 MSS per RTT.
    /// * CUBIC: window follows `C·(t−K)³ + Wmax` around the last-loss window
    ///   (`w_last_max_bytes`), with C = 0.4 (segments/s³) and
    ///   `K = (Wmax·β/C)^(1/3)`.
    /// * H-TCP: +α(Δ) MSS per RTT with `α(Δ) = 1 + 10(Δ−ΔL) + 0.25(Δ−ΔL)²`
    ///   for Δ beyond the low-speed threshold ΔL = 1 s.
    /// * Scalable: ×(1 + 0.01) per MSS acked, i.e. exponential in time.
    #[allow(clippy::too_many_arguments)]
    pub fn grow_window(
        self,
        cwnd_bytes: f64,
        w_last_max_bytes: f64,
        rtt_s: f64,
        since_loss_s: f64,
        dt_s: f64,
        mss_bytes: f64,
    ) -> f64 {
        debug_assert!(rtt_s > 0.0 && dt_s >= 0.0);
        let rtts = dt_s / rtt_s;
        match self {
            CongestionControl::Reno => cwnd_bytes + mss_bytes * rtts,
            CongestionControl::HTcp => {
                let delta_l = 1.0;
                let d = (since_loss_s - delta_l).max(0.0);
                let alpha = 1.0 + 10.0 * d + 0.25 * d * d;
                cwnd_bytes + alpha * mss_bytes * rtts
            }
            CongestionControl::Scalable => {
                // cwnd += 0.01 * cwnd per RTT-worth of acks ⇒ exponential.
                cwnd_bytes * (1.0 + 0.01f64).powf(rtts.min(1e3))
            }
            CongestionControl::Cubic => {
                let c = 0.4; // segments per second^3 (RFC 8312)
                let beta = self.beta();
                let wmax_seg = (w_last_max_bytes / mss_bytes).max(1.0);
                let k = (wmax_seg * (1.0 - beta) / c).cbrt();
                let t = since_loss_s + dt_s;
                let target_seg = c * (t - k).powi(3) + wmax_seg;
                let target = target_seg * mss_bytes;
                // CUBIC never shrinks the window during growth.
                target.max(cwnd_bytes)
            }
        }
    }

    /// Apply a multiplicative decrease after a loss event. Returns the new
    /// window (bytes), floored at one MSS.
    pub fn on_loss(self, cwnd_bytes: f64, mss_bytes: f64) -> f64 {
        (cwnd_bytes * self.beta()).max(mss_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RTT: f64 = 0.033; // 33 ms, the paper's ANL->TACC path
    const MSS: f64 = DEFAULT_MSS_BYTES;

    #[test]
    fn lossless_rate_is_unbounded() {
        for cc in CongestionControl::ALL {
            assert!(cc.steady_rate_mbs(RTT, 0.0, MSS).is_infinite());
        }
    }

    #[test]
    fn rate_decreases_with_loss() {
        for cc in CongestionControl::ALL {
            let lo = cc.steady_rate_mbs(RTT, 1e-6, MSS);
            let hi = cc.steady_rate_mbs(RTT, 1e-3, MSS);
            assert!(
                lo > hi,
                "{}: rate must fall as loss rises ({lo} vs {hi})",
                cc.name()
            );
        }
    }

    #[test]
    fn rate_decreases_with_rtt_for_reno() {
        let short = CongestionControl::Reno.steady_rate_mbs(0.01, 1e-5, MSS);
        let long = CongestionControl::Reno.steady_rate_mbs(0.1, 1e-5, MSS);
        assert!(short > long * 5.0, "Reno is strongly RTT-limited");
    }

    #[test]
    fn cubic_less_rtt_sensitive_than_reno() {
        let p = 1e-5;
        let ratio = |cc: CongestionControl| {
            cc.steady_rate_mbs(0.01, p, MSS) / cc.steady_rate_mbs(0.1, p, MSS)
        };
        assert!(ratio(CongestionControl::Cubic) < ratio(CongestionControl::Reno));
    }

    #[test]
    fn aggressiveness_ordering_at_high_loss() {
        // At meaningful loss rates the high-speed variants beat Reno.
        let p = 1e-4;
        let reno = CongestionControl::Reno.steady_rate_mbs(RTT, p, MSS);
        let htcp = CongestionControl::HTcp.steady_rate_mbs(RTT, p, MSS);
        let scal = CongestionControl::Scalable.steady_rate_mbs(RTT, p, MSS);
        assert!(htcp > reno, "htcp={htcp} reno={reno}");
        assert!(scal > htcp, "scalable={scal} htcp={htcp}");
    }

    #[test]
    fn window_cap() {
        // 4 MB window over 33 ms RTT ≈ 121 MB/s.
        let cap = CongestionControl::window_cap_mbs(RTT, 4.0 * 1024.0 * 1024.0);
        assert!((cap - 127.1).abs() < 1.0, "cap={cap}");
    }

    #[test]
    fn reno_growth_is_one_mss_per_rtt() {
        let cc = CongestionControl::Reno;
        let w0 = 100_000.0;
        let w1 = cc.grow_window(w0, w0, RTT, 5.0, RTT, MSS);
        assert!((w1 - w0 - MSS).abs() < 1e-6);
    }

    #[test]
    fn htcp_growth_accelerates() {
        let cc = CongestionControl::HTcp;
        let w0 = 100_000.0;
        let early = cc.grow_window(w0, w0, RTT, 0.5, RTT, MSS) - w0;
        let late = cc.grow_window(w0, w0, RTT, 10.0, RTT, MSS) - w0;
        assert!(late > 10.0 * early, "early={early} late={late}");
    }

    #[test]
    fn scalable_growth_is_multiplicative() {
        let cc = CongestionControl::Scalable;
        let small = cc.grow_window(1e5, 1e5, RTT, 1.0, RTT, MSS) - 1e5;
        let large = cc.grow_window(1e6, 1e6, RTT, 1.0, RTT, MSS) - 1e6;
        assert!((large / small - 10.0).abs() < 0.1);
    }

    #[test]
    fn cubic_growth_concave_then_convex() {
        let cc = CongestionControl::Cubic;
        let wmax = 1_000_000.0;
        let w_after_loss = cc.on_loss(wmax, MSS);
        // Right after a loss the window climbs back toward wmax...
        let w_mid = cc.grow_window(w_after_loss, wmax, RTT, 0.0, 2.0, MSS);
        assert!(w_mid > w_after_loss && w_mid <= wmax * 1.05);
        // ...and far past K it exceeds the old maximum (probing).
        let w_late = cc.grow_window(w_after_loss, wmax, RTT, 0.0, 60.0, MSS);
        assert!(w_late > wmax);
    }

    #[test]
    fn cubic_never_shrinks_during_growth() {
        let cc = CongestionControl::Cubic;
        let cwnd = 2_000_000.0;
        let w = cc.grow_window(cwnd, 1_000_000.0, RTT, 0.1, 0.01, MSS);
        assert!(w >= cwnd);
    }

    #[test]
    fn loss_decrease_floors_at_mss() {
        for cc in CongestionControl::ALL {
            assert_eq!(cc.on_loss(100.0, MSS), MSS);
            let w = cc.on_loss(1e6, MSS);
            assert!((w - 1e6 * cc.beta()).abs() < 1e-9);
        }
    }

    #[test]
    fn beta_ordering_matches_aggressiveness() {
        assert!(CongestionControl::Reno.beta() < CongestionControl::Cubic.beta());
        assert!(CongestionControl::Cubic.beta() < CongestionControl::Scalable.beta());
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<_> = CongestionControl::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["reno", "cubic", "htcp", "scalable"]);
    }

    #[test]
    #[should_panic(expected = "RTT must be positive")]
    fn zero_rtt_rejected() {
        CongestionControl::Reno.steady_rate_mbs(0.0, 1e-5, MSS);
    }
}
