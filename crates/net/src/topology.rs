//! Named-node topology builder with shortest-path routing.
//!
//! The core [`crate::Network`] is deliberately low level: links, paths,
//! flows by index. Real deployments are described as *sites* connected by
//! *links*; this builder lets users write that description and derives the
//! `Network` — finding the route between any two sites by Dijkstra over
//! link latencies, accumulating RTT and compounding loss along the way.
//!
//! ```
//! use xferopt_net::topology::TopologyBuilder;
//! use xferopt_net::CongestionControl;
//!
//! let mut b = TopologyBuilder::new();
//! b.add_site("anl");
//! b.add_site("starlight");
//! b.add_site("uchicago");
//! b.connect("anl", "starlight", 5000.0, 0.5, 1e-6);
//! b.connect("starlight", "uchicago", 5000.0, 0.5, 1e-6);
//! let (mut net, routes) = b.build(&[("anl", "uchicago")]).unwrap();
//! let f = net.add_flow(routes[0], 16, CongestionControl::HTcp);
//! assert!(net.allocation_of(f) > 0.0);
//! ```

use crate::link::{Link, LinkId, Path, PathId};
use crate::network::Network;
use std::collections::{BTreeMap, BinaryHeap};

/// Error from topology construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A site name was used twice.
    DuplicateSite(String),
    /// A referenced site does not exist.
    UnknownSite(String),
    /// No route exists between the endpoints.
    NoRoute(String, String),
    /// A connection was declared twice between the same pair.
    DuplicateEdge(String, String),
    /// An explicit route referenced an edge index that does not exist.
    BadEdge(usize),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::DuplicateSite(s) => write!(f, "duplicate site: {s}"),
            TopologyError::UnknownSite(s) => write!(f, "unknown site: {s}"),
            TopologyError::NoRoute(a, b) => write!(f, "no route from {a} to {b}"),
            TopologyError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} <-> {b}"),
            TopologyError::BadEdge(i) => write!(f, "edge index {i} out of range"),
        }
    }
}
impl std::error::Error for TopologyError {}

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    capacity_mbs: f64,
    one_way_ms: f64,
    loss: f64,
    /// Index into the builder's edge list (shared by both directions).
    edge_idx: usize,
}

/// Builder for site-graph topologies.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    sites: Vec<String>,
    index: BTreeMap<String, usize>,
    adj: Vec<Vec<Edge>>,
    n_edges: usize,
    half_streams: f64,
}

impl TopologyBuilder {
    /// An empty topology with no AIMD derating.
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    /// Apply an AIMD half-saturation stream count to every built link.
    pub fn with_half_streams(mut self, h: f64) -> Self {
        assert!(h >= 0.0, "half_streams must be non-negative");
        self.half_streams = h;
        self
    }

    /// Declare a site. Returns an error on duplicates.
    pub fn add_site(&mut self, name: &str) -> &mut Self {
        if self.index.contains_key(name) {
            // Defer error to build-time? No: panic-free fluent API — record
            // duplicate as is and let `try_add_site` handle errors.
        }
        self.try_add_site(name).expect("duplicate site");
        self
    }

    /// Declare a site, returning an error on duplicates.
    pub fn try_add_site(&mut self, name: &str) -> Result<(), TopologyError> {
        if self.index.contains_key(name) {
            return Err(TopologyError::DuplicateSite(name.to_string()));
        }
        self.index.insert(name.to_string(), self.sites.len());
        self.sites.push(name.to_string());
        self.adj.push(Vec::new());
        Ok(())
    }

    /// Connect two sites with a bidirectional link of `capacity_mbs`,
    /// one-way latency `one_way_ms` and per-packet loss `loss`.
    ///
    /// # Panics
    /// Panics on unknown sites or duplicate edges (use [`TopologyBuilder::try_connect`]
    /// for error handling).
    pub fn connect(
        &mut self,
        a: &str,
        b: &str,
        capacity_mbs: f64,
        one_way_ms: f64,
        loss: f64,
    ) -> &mut Self {
        self.try_connect(a, b, capacity_mbs, one_way_ms, loss)
            .expect("connect failed");
        self
    }

    /// Fallible [`TopologyBuilder::connect`].
    pub fn try_connect(
        &mut self,
        a: &str,
        b: &str,
        capacity_mbs: f64,
        one_way_ms: f64,
        loss: f64,
    ) -> Result<(), TopologyError> {
        let ia = *self
            .index
            .get(a)
            .ok_or_else(|| TopologyError::UnknownSite(a.to_string()))?;
        let ib = *self
            .index
            .get(b)
            .ok_or_else(|| TopologyError::UnknownSite(b.to_string()))?;
        if self.adj[ia].iter().any(|e| e.to == ib) {
            return Err(TopologyError::DuplicateEdge(a.to_string(), b.to_string()));
        }
        let edge_idx = self.n_edges;
        self.n_edges += 1;
        self.adj[ia].push(Edge {
            to: ib,
            capacity_mbs,
            one_way_ms,
            loss,
            edge_idx,
        });
        self.adj[ib].push(Edge {
            to: ia,
            capacity_mbs,
            one_way_ms,
            loss,
            edge_idx,
        });
        Ok(())
    }

    /// Lowest-latency route between two sites: `(site indices, edge indices)`.
    fn route(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        // Dijkstra over one-way latency.
        #[derive(PartialEq)]
        struct State {
            cost_ms: f64,
            node: usize,
        }
        impl Eq for State {}
        impl Ord for State {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other
                    .cost_ms
                    .partial_cmp(&self.cost_ms)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }
        }
        impl PartialOrd for State {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let n = self.sites.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev_edge: Vec<Option<(usize, usize)>> = vec![None; n]; // (from_node, edge_idx)
        let mut heap = BinaryHeap::new();
        dist[from] = 0.0;
        heap.push(State {
            cost_ms: 0.0,
            node: from,
        });
        while let Some(State { cost_ms, node }) = heap.pop() {
            if cost_ms > dist[node] {
                continue;
            }
            if node == to {
                break;
            }
            for e in &self.adj[node] {
                let next = cost_ms + e.one_way_ms;
                if next < dist[e.to] {
                    dist[e.to] = next;
                    prev_edge[e.to] = Some((node, e.edge_idx));
                    heap.push(State {
                        cost_ms: next,
                        node: e.to,
                    });
                }
            }
        }
        if dist[to].is_infinite() {
            return None;
        }
        let mut edges = Vec::new();
        let mut cursor = to;
        while cursor != from {
            let (prev, edge) = prev_edge[cursor]?;
            edges.push(edge);
            cursor = prev;
        }
        edges.reverse();
        Some(edges)
    }

    /// Per-edge `(capacity_mbs, one_way_ms, loss)` metadata, indexed by
    /// edge index.
    fn edge_caps(&self) -> Vec<(f64, f64, f64)> {
        let mut caps: Vec<Option<(f64, f64, f64)>> = vec![None; self.n_edges];
        for edges in &self.adj {
            for e in edges {
                caps[e.edge_idx] = Some((e.capacity_mbs, e.one_way_ms, e.loss));
            }
        }
        caps.into_iter()
            .map(|c| c.expect("edge without metadata"))
            .collect()
    }

    /// Number of declared edges (= number of links a build will create).
    pub fn edge_count(&self) -> usize {
        self.n_edges
    }

    /// Number of declared sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Index of a declared site, if any.
    pub fn site_index(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Aggregate `(rtt_ms, loss, bottleneck_mbs)` along an explicit edge
    /// list: RTT accumulates, loss compounds, capacity is the minimum.
    ///
    /// # Errors
    /// Returns [`TopologyError::BadEdge`] on an out-of-range edge index.
    pub fn route_stats(&self, edges: &[usize]) -> Result<(f64, f64, f64), TopologyError> {
        let caps = self.edge_caps();
        let mut rtt_ms = 0.0;
        let mut pass = 1.0;
        let mut bottleneck = f64::INFINITY;
        for &e in edges {
            let (cap, ms, loss) = *caps.get(e).ok_or(TopologyError::BadEdge(e))?;
            rtt_ms += 2.0 * ms;
            pass *= 1.0 - loss;
            bottleneck = bottleneck.min(cap);
        }
        Ok((rtt_ms, (1.0 - pass).clamp(0.0, 0.999_999), bottleneck))
    }

    /// Dijkstra over one-way latency with edges/nodes masked out (the spur
    /// machinery of Yen's algorithm). Ties are broken toward the
    /// lexicographically smallest edge list so enumeration is deterministic.
    fn route_masked(
        &self,
        from: usize,
        to: usize,
        banned_edges: &[bool],
        banned_nodes: &[bool],
    ) -> Option<(f64, Vec<usize>)> {
        #[derive(PartialEq)]
        struct State {
            cost_ms: f64,
            node: usize,
        }
        impl Eq for State {}
        impl Ord for State {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other
                    .cost_ms
                    .partial_cmp(&self.cost_ms)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(other.node.cmp(&self.node))
            }
        }
        impl PartialOrd for State {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let n = self.sites.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev_edge: Vec<Option<(usize, usize)>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[from] = 0.0;
        heap.push(State {
            cost_ms: 0.0,
            node: from,
        });
        while let Some(State { cost_ms, node }) = heap.pop() {
            if cost_ms > dist[node] {
                continue;
            }
            for e in &self.adj[node] {
                if banned_edges.get(e.edge_idx).copied().unwrap_or(false)
                    || banned_nodes.get(e.to).copied().unwrap_or(false)
                {
                    continue;
                }
                let next = cost_ms + e.one_way_ms;
                let better = next < dist[e.to]
                    || (next == dist[e.to]
                        && prev_edge[e.to].is_some_and(|(_, pe)| e.edge_idx < pe));
                if better {
                    dist[e.to] = next;
                    prev_edge[e.to] = Some((node, e.edge_idx));
                    heap.push(State {
                        cost_ms: next,
                        node: e.to,
                    });
                }
            }
        }
        if dist[to].is_infinite() {
            return None;
        }
        let mut edges = Vec::new();
        let mut cursor = to;
        while cursor != from {
            let (prev, edge) = prev_edge[cursor]?;
            edges.push(edge);
            cursor = prev;
        }
        edges.reverse();
        Some((dist[to], edges))
    }

    /// Node sequence visited by an edge list starting at `from`.
    fn node_sequence(&self, from: usize, edges: &[usize]) -> Vec<usize> {
        let mut nodes = vec![from];
        let mut cur = from;
        for &e in edges {
            let next = self.adj[cur]
                .iter()
                .find(|a| a.edge_idx == e)
                .map(|a| a.to)
                .expect("edge list does not continue the walk");
            nodes.push(next);
            cur = next;
        }
        nodes
    }

    /// Up to `k` loopless lowest-latency routes between two sites (Yen's
    /// algorithm), each as an edge-index list. Deterministic: candidates are
    /// ordered by latency, then by the lexicographic edge list. Fewer than
    /// `k` routes are returned when the graph has fewer distinct loopless
    /// routes.
    ///
    /// # Errors
    /// Returns [`TopologyError::UnknownSite`] / [`TopologyError::NoRoute`]
    /// on bad endpoints.
    pub fn k_shortest_routes(
        &self,
        from: &str,
        to: &str,
        k: usize,
    ) -> Result<Vec<Vec<usize>>, TopologyError> {
        let ia = *self
            .index
            .get(from)
            .ok_or_else(|| TopologyError::UnknownSite(from.to_string()))?;
        let ib = *self
            .index
            .get(to)
            .ok_or_else(|| TopologyError::UnknownSite(to.to_string()))?;
        let caps = self.edge_caps();
        let no_edges = vec![false; self.n_edges];
        let no_nodes = vec![false; self.sites.len()];
        let (cost0, first) = self
            .route_masked(ia, ib, &no_edges, &no_nodes)
            .ok_or_else(|| TopologyError::NoRoute(from.to_string(), to.to_string()))?;
        let mut shortest: Vec<(f64, Vec<usize>)> = vec![(cost0, first)];
        // Candidate pool, kept sorted by (cost, edges) for deterministic pops.
        let mut candidates: Vec<(f64, Vec<usize>)> = Vec::new();
        while shortest.len() < k {
            let (_, last) = shortest.last().expect("non-empty").clone();
            let last_nodes = self.node_sequence(ia, &last);
            for spur in 0..last.len() {
                let root = &last[..spur];
                let spur_node = last_nodes[spur];
                let mut banned_edges = no_edges.clone();
                for (_, path) in shortest.iter().chain(candidates.iter()) {
                    if path.len() > spur && path[..spur] == *root {
                        banned_edges[path[spur]] = true;
                    }
                }
                let mut banned_nodes = no_nodes.clone();
                for &n in &last_nodes[..spur] {
                    banned_nodes[n] = true;
                }
                if let Some((spur_cost, tail)) =
                    self.route_masked(spur_node, ib, &banned_edges, &banned_nodes)
                {
                    let mut total: Vec<usize> = root.to_vec();
                    total.extend(tail);
                    let root_cost: f64 = root.iter().map(|&e| caps[e].1).sum::<f64>();
                    let cand = (root_cost + spur_cost, total);
                    if !shortest.contains(&cand) && !candidates.contains(&cand) {
                        candidates.push(cand);
                    }
                }
            }
            if candidates.is_empty() {
                break;
            }
            candidates.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.1.cmp(&b.1))
            });
            shortest.push(candidates.remove(0));
        }
        Ok(shortest.into_iter().map(|(_, e)| e).collect())
    }

    /// Build a [`Network`] with one [`Link`] per declared edge and one
    /// [`Path`] per explicit `(name, edge list)` route. RTT accumulates
    /// along the route; loss compounds (`1 − Π(1 − p_l)`).
    ///
    /// # Errors
    /// Returns [`TopologyError::BadEdge`] on an out-of-range edge index.
    pub fn build_explicit(
        &self,
        routes: &[(String, Vec<usize>)],
    ) -> Result<(Network, Vec<PathId>), TopologyError> {
        let mut net = Network::new();
        let edge_caps = self.edge_caps();
        let link_ids: Vec<LinkId> = edge_caps
            .iter()
            .enumerate()
            .map(|(i, &(cap, _, _))| {
                net.add_link(
                    Link::new(format!("edge{i}"), cap).with_half_streams(self.half_streams),
                )
            })
            .collect();
        let mut paths = Vec::new();
        for (name, edges) in routes {
            let mut rtt_ms = 0.0;
            let mut pass = 1.0;
            for &e in edges {
                let (_, ms, loss) = *edge_caps.get(e).ok_or(TopologyError::BadEdge(e))?;
                rtt_ms += 2.0 * ms;
                pass *= 1.0 - loss;
            }
            let links: Vec<LinkId> = edges.iter().map(|&e| link_ids[e]).collect();
            let path = Path::new(name.clone(), links)
                .with_rtt_ms(rtt_ms.max(1e-3))
                .with_loss((1.0 - pass).clamp(0.0, 0.999_999));
            paths.push(net.add_path(path));
        }
        Ok((net, paths))
    }

    /// Build a [`Network`] and one path per requested `(src, dst)` pair,
    /// routed by lowest latency. RTT accumulates along the route; loss
    /// compounds (`1 − Π(1 − p_l)`).
    pub fn build(&self, pairs: &[(&str, &str)]) -> Result<(Network, Vec<PathId>), TopologyError> {
        let mut routes = Vec::new();
        for &(a, b) in pairs {
            let ia = *self
                .index
                .get(a)
                .ok_or_else(|| TopologyError::UnknownSite(a.to_string()))?;
            let ib = *self
                .index
                .get(b)
                .ok_or_else(|| TopologyError::UnknownSite(b.to_string()))?;
            let edges = self
                .route(ia, ib)
                .ok_or_else(|| TopologyError::NoRoute(a.to_string(), b.to_string()))?;
            routes.push((format!("{a}->{b}"), edges));
        }
        self.build_explicit(&routes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::CongestionControl;

    fn esnet_like() -> TopologyBuilder {
        // anl -- starlight -- cern
        //    \        |
        //     \--- kansas --- tacc
        let mut b = TopologyBuilder::new();
        for s in ["anl", "starlight", "cern", "kansas", "tacc"] {
            b.add_site(s);
        }
        b.connect("anl", "starlight", 5000.0, 0.5, 1e-6);
        b.connect("starlight", "cern", 1250.0, 45.0, 1e-5);
        b.connect("anl", "kansas", 2500.0, 8.0, 1e-6);
        b.connect("starlight", "kansas", 2500.0, 8.0, 1e-6);
        b.connect("kansas", "tacc", 2500.0, 9.0, 1e-6);
        b
    }

    #[test]
    fn routes_by_lowest_latency() {
        let b = esnet_like();
        let (net, paths) = b.build(&[("anl", "tacc")]).unwrap();
        // anl->kansas->tacc (17 ms one-way), not via starlight (17.5 ms).
        let p = net.path(paths[0]);
        assert_eq!(p.links.len(), 2);
        assert!((p.rtt_s - 0.034).abs() < 1e-9, "rtt={}", p.rtt_s);
    }

    #[test]
    fn rtt_and_loss_accumulate() {
        let b = esnet_like();
        let (net, paths) = b.build(&[("anl", "cern")]).unwrap();
        let p = net.path(paths[0]);
        assert!((p.rtt_s - 0.091).abs() < 1e-9, "rtt={}", p.rtt_s);
        assert!(p.loss > 1e-5 && p.loss < 2e-5, "loss={}", p.loss);
    }

    #[test]
    fn shared_edges_are_shared_links() {
        let b = esnet_like();
        let (mut net, paths) = b.build(&[("anl", "cern"), ("anl", "tacc")]).unwrap();
        // Both routes leave ANL; ANL->CERN and ANL->TACC share no edge, but
        // ANL->STARLIGHT is on the CERN route only. Saturate the CERN path
        // and check the TACC path is unaffected (disjoint), then share a
        // bottleneck explicitly.
        let f1 = net.add_flow(paths[0], 64, CongestionControl::HTcp);
        let f2 = net.add_flow(paths[1], 64, CongestionControl::HTcp);
        let alloc = net.allocate();
        assert!(alloc[&f1] > 0.0 && alloc[&f2] > 0.0);
        // CERN route bottleneck = 1250, TACC route = 2500.
        assert!(alloc[&f1] <= 1250.0 + 1e-6);
        assert!(alloc[&f2] <= 2500.0 + 1e-6);
        net.set_streams(f1, 0);
        let alloc2 = net.allocate();
        assert!(
            (alloc2[&f2] - alloc[&f2]).abs() < 1e-6,
            "disjoint routes must not couple"
        );
    }

    #[test]
    fn same_start_pairs_share_first_hop() {
        let mut b = TopologyBuilder::new();
        for s in ["src", "mid", "a", "b"] {
            b.add_site(s);
        }
        b.connect("src", "mid", 100.0, 1.0, 0.0);
        b.connect("mid", "a", 1000.0, 1.0, 0.0);
        b.connect("mid", "b", 1000.0, 1.0, 0.0);
        let (mut net, paths) = b.build(&[("src", "a"), ("src", "b")]).unwrap();
        let fa = net.add_flow(paths[0], 4, CongestionControl::HTcp);
        let fb = net.add_flow(paths[1], 4, CongestionControl::HTcp);
        let alloc = net.allocate();
        // The shared 100 MB/s first hop splits between them.
        assert!((alloc[&fa] + alloc[&fb] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn errors_are_reported() {
        let mut b = TopologyBuilder::new();
        b.add_site("a");
        assert_eq!(
            b.try_add_site("a"),
            Err(TopologyError::DuplicateSite("a".into()))
        );
        assert!(matches!(
            b.try_connect("a", "zz", 1.0, 1.0, 0.0),
            Err(TopologyError::UnknownSite(_))
        ));
        b.try_add_site("b").unwrap();
        b.try_connect("a", "b", 1.0, 1.0, 0.0).unwrap();
        assert!(matches!(
            b.try_connect("b", "a", 1.0, 1.0, 0.0),
            Err(TopologyError::DuplicateEdge(_, _))
        ));
        // Disconnected pair.
        b.try_add_site("island").unwrap();
        assert!(matches!(
            b.build(&[("a", "island")]),
            Err(TopologyError::NoRoute(_, _))
        ));
    }

    #[test]
    fn k_shortest_enumerates_in_latency_order() {
        let b = esnet_like();
        let routes = b.k_shortest_routes("anl", "tacc", 4).unwrap();
        // Loopless routes: anl->kansas->tacc (17 ms), then via starlight
        // (anl->starlight->kansas->tacc, 17.5 ms). There is no third.
        assert_eq!(routes.len(), 2, "{routes:?}");
        assert_eq!(routes[0], vec![2, 4]);
        assert_eq!(routes[1], vec![0, 3, 4]);
        let (rtt0, _, _) = b.route_stats(&routes[0]).unwrap();
        let (rtt1, _, _) = b.route_stats(&routes[1]).unwrap();
        assert!(rtt0 <= rtt1);
        // Rank 0 matches the plain Dijkstra build.
        let (net, paths) = b.build(&[("anl", "tacc")]).unwrap();
        assert_eq!(net.path(paths[0]).links.len(), routes[0].len());
    }

    #[test]
    fn k_shortest_is_deterministic_and_loopless() {
        let b = esnet_like();
        let a = b.k_shortest_routes("anl", "cern", 5).unwrap();
        let again = b.k_shortest_routes("anl", "cern", 5).unwrap();
        assert_eq!(a, again);
        for route in &a {
            let mut seen = std::collections::BTreeSet::new();
            assert!(route.iter().all(|e| seen.insert(*e)), "loop in {route:?}");
        }
        assert!(b.k_shortest_routes("anl", "mars", 2).is_err());
    }

    #[test]
    fn build_explicit_matches_dijkstra_build() {
        let b = esnet_like();
        let routes = b.k_shortest_routes("anl", "tacc", 1).unwrap();
        let (net_a, pa) = b.build(&[("anl", "tacc")]).unwrap();
        let (net_b, pb) = b
            .build_explicit(&[("anl->tacc".to_string(), routes[0].clone())])
            .unwrap();
        assert_eq!(net_a.link_count(), net_b.link_count());
        let (a, b2) = (net_a.path(pa[0]), net_b.path(pb[0]));
        assert_eq!(a.links, b2.links);
        assert!((a.rtt_s - b2.rtt_s).abs() < 1e-12);
        assert!((a.loss - b2.loss).abs() < 1e-12);
        assert!(matches!(
            b.build_explicit(&[("bad".to_string(), vec![99])]),
            Err(TopologyError::BadEdge(99))
        ));
    }

    #[test]
    fn route_stats_aggregate() {
        let b = esnet_like();
        // anl->starlight->cern: rtt 2*(0.5+45), loss compounds, cap min.
        let (rtt, loss, cap) = b.route_stats(&[0, 1]).unwrap();
        assert!((rtt - 91.0).abs() < 1e-9);
        assert!(loss > 1e-5 && loss < 2e-5);
        assert!((cap - 1250.0).abs() < 1e-9);
    }

    #[test]
    fn half_streams_propagate() {
        let mut b = TopologyBuilder::new().with_half_streams(16.0);
        b.add_site("x");
        b.add_site("y");
        b.connect("x", "y", 1000.0, 1.0, 0.0);
        let (mut net, paths) = b.build(&[("x", "y")]).unwrap();
        let f = net.add_flow(paths[0], 16, CongestionControl::HTcp);
        let r = net.allocation_of(f);
        assert!((r - 500.0).abs() < 1e-6, "derating missing: {r}");
    }
}
