//! Weighted max–min fair allocation with demand caps (progressive filling).
//!
//! TCP's steady-state bandwidth sharing on a congested link is approximately
//! per-flow fair; a transfer running `k` streams therefore behaves like a
//! single flow with weight `k`. The classical *progressive filling* algorithm
//! computes the weighted max–min allocation: grow every unfrozen flow's
//! per-weight rate uniformly; freeze a flow when it hits its demand cap or
//! when some link it crosses saturates.
//!
//! The solver is exact (up to float arithmetic), allocation-free in the hot
//! loop after setup, and `O((F + L)^2)` in the worst case — each round
//! saturates at least one link or caps at least one flow.

/// Jain's fairness index of an allocation: `(Σx)² / (n·Σx²)`, in
/// `(0, 1]` — 1 for a perfectly equal allocation, `1/n` when one flow takes
/// everything. The standard summary statistic for bandwidth-sharing
/// experiments like the paper's Fig. 11.
///
/// Returns 1.0 for an empty or all-zero allocation (vacuously fair).
///
/// # Examples
///
/// ```
/// use xferopt_net::fairness::jain_index;
/// assert_eq!(jain_index(&[5.0, 5.0, 5.0]), 1.0);
/// assert!((jain_index(&[10.0, 0.0]) - 0.5).abs() < 1e-12);
/// ```
pub fn jain_index(allocs: &[f64]) -> f64 {
    let sum: f64 = allocs.iter().sum();
    let sum_sq: f64 = allocs.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 || allocs.is_empty() {
        return 1.0;
    }
    sum * sum / (allocs.len() as f64 * sum_sq)
}

/// One flow's view of the fairness problem.
#[derive(Debug, Clone)]
pub struct FlowDemand {
    /// Fair-share weight (number of TCP streams). Zero-weight flows get zero.
    pub weight: f64,
    /// Maximum useful rate in MB/s (loss/window-limited demand). Use
    /// `f64::INFINITY` for an uncapped flow.
    pub demand_cap: f64,
    /// Indices (into the caller's capacity slice) of links this flow crosses.
    pub links: Vec<usize>,
}

/// Reusable buffers for [`max_min_allocate_into`].
///
/// Progressive filling needs four working arrays: the per-flow `active`
/// mask, per-link `remaining` headroom, and the link→flows adjacency
/// (`flows_on_link`). Allocating them per solve dominates the cost of small
/// problems; a scratch lets hot callers (the [`crate::Network`] allocation
/// cache, [`crate::DynamicSim`]) amortize the allocations to zero.
///
/// The adjacency is the only piece whose *contents* survive between solves:
/// it depends only on the flow membership and link count, not on weights or
/// demand caps. Callers that know membership has not changed skip
/// [`AllocScratch::rebuild_adjacency`] entirely — the fast path for
/// "only demand caps changed" re-solves.
#[derive(Debug, Clone, Default)]
pub struct AllocScratch {
    active: Vec<bool>,
    remaining: Vec<f64>,
    flows_on_link: Vec<Vec<usize>>,
}

impl AllocScratch {
    /// A scratch with no buffers allocated yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild the link→flows adjacency for `flows` over `n_links` links.
    ///
    /// Must be called before [`max_min_allocate_into`] whenever the flow
    /// membership, any flow's link list, or the link count changed since the
    /// previous solve. Reuses inner buffers; no allocation once capacities
    /// have grown to the working-set size.
    pub fn rebuild_adjacency(&mut self, n_links: usize, flows: &[FlowDemand]) {
        for v in &mut self.flows_on_link {
            v.clear();
        }
        if self.flows_on_link.len() > n_links {
            self.flows_on_link.truncate(n_links);
        } else {
            self.flows_on_link.resize_with(n_links, Vec::new);
        }
        for (i, f) in flows.iter().enumerate() {
            for &l in &f.links {
                assert!(l < n_links, "flow {i} references missing link {l}");
                self.flows_on_link[l].push(i);
            }
        }
    }
}

/// Compute the weighted max–min fair allocation.
///
/// `capacities[l]` is link `l`'s capacity in MB/s. Returns the per-flow
/// allocation in MB/s, in the same order as `flows`.
///
/// # Examples
///
/// ```
/// use xferopt_net::{max_min_allocate, FlowDemand};
///
/// // 64 streams vs 16 streams sharing a 1000 MB/s bottleneck: 80/20 split.
/// let caps = [1000.0];
/// let flows = [
///     FlowDemand { weight: 64.0, demand_cap: f64::INFINITY, links: vec![0] },
///     FlowDemand { weight: 16.0, demand_cap: f64::INFINITY, links: vec![0] },
/// ];
/// let alloc = max_min_allocate(&caps, &flows);
/// assert!((alloc[0] - 800.0).abs() < 1e-6);
/// assert!((alloc[1] - 200.0).abs() < 1e-6);
/// ```
///
/// Invariants guaranteed (and property-tested):
/// * no link's total allocation exceeds its capacity (within 1e-6 relative),
/// * no flow exceeds its demand cap,
/// * the allocation is max–min: a flow below its cap is bottlenecked at some
///   saturated link where every other flow has an equal-or-smaller
///   per-weight rate.
///
/// # Panics
/// Panics if a flow references a link index out of range, or if any weight,
/// cap, or capacity is negative/NaN.
pub fn max_min_allocate(capacities: &[f64], flows: &[FlowDemand]) -> Vec<f64> {
    let mut scratch = AllocScratch::new();
    scratch.rebuild_adjacency(capacities.len(), flows);
    let mut out = Vec::new();
    max_min_allocate_into(capacities, flows, &mut scratch, &mut out);
    out
}

/// Allocation-free core of [`max_min_allocate`]: solve into `out`, reusing
/// `scratch` buffers.
///
/// The caller is responsible for keeping `scratch`'s adjacency current via
/// [`AllocScratch::rebuild_adjacency`]; only the adjacency carries state
/// between solves — `active`, `remaining`, and `out` are fully
/// re-initialized here. The arithmetic is **bit-identical** to
/// [`max_min_allocate`] (same operations in the same order), which the
/// golden-snapshot suite depends on.
///
/// # Panics
/// Panics on the same invalid inputs as [`max_min_allocate`], and (debug
/// builds) if the scratch adjacency does not match `capacities.len()`.
pub fn max_min_allocate_into(
    capacities: &[f64],
    flows: &[FlowDemand],
    scratch: &mut AllocScratch,
    out: &mut Vec<f64>,
) {
    for (i, c) in capacities.iter().enumerate() {
        assert!(*c >= 0.0, "link {i} has negative or NaN capacity: {c}");
    }
    for (i, f) in flows.iter().enumerate() {
        assert!(f.weight >= 0.0, "flow {i} has negative or NaN weight");
        assert!(
            f.demand_cap >= 0.0 || f.demand_cap.is_infinite(),
            "flow {i} has negative or NaN demand cap"
        );
        for &l in &f.links {
            assert!(l < capacities.len(), "flow {i} references missing link {l}");
        }
    }
    debug_assert_eq!(
        scratch.flows_on_link.len(),
        capacities.len(),
        "stale scratch adjacency: call rebuild_adjacency after membership changes"
    );

    let n = flows.len();
    out.clear();
    out.resize(n, 0.0);
    let alloc: &mut [f64] = out.as_mut_slice();
    // Per-weight rate level each frozen flow stopped at; active flows all sit
    // at the current common level.
    scratch.active.clear();
    scratch
        .active
        .extend(flows.iter().map(|f| f.weight > 0.0 && f.demand_cap > 0.0));
    let active: &mut [bool] = scratch.active.as_mut_slice();
    scratch.remaining.clear();
    scratch.remaining.extend_from_slice(capacities);
    let remaining: &mut [f64] = scratch.remaining.as_mut_slice();
    let mut level = 0.0f64; // current common per-weight rate of active flows

    // Which flows cross each link (maintained by the caller between solves).
    let flows_on_link: &[Vec<usize>] = &scratch.flows_on_link;

    loop {
        // Active weight per link.
        let mut any_active = false;
        let mut step = f64::INFINITY;

        // Smallest per-weight headroom across links.
        for (l, &rem) in remaining.iter().enumerate() {
            let w: f64 = flows_on_link[l]
                .iter()
                .filter(|&&i| active[i])
                .map(|&i| flows[i].weight)
                .sum();
            if w > 0.0 {
                any_active = true;
                step = step.min(rem / w);
            }
        }
        if !any_active {
            break;
        }

        // Smallest per-weight distance to a demand cap.
        for (i, f) in flows.iter().enumerate() {
            if active[i] && f.demand_cap.is_finite() {
                let to_cap = (f.demand_cap / f.weight) - level;
                step = step.min(to_cap.max(0.0));
            }
        }

        if !step.is_finite() {
            // Uncapped flows over unconstrained links cannot happen:
            // every flow crosses >= 1 link, so headroom bounded the step.
            unreachable!("progressive filling produced an infinite step");
        }

        // Advance the water level.
        level += step;
        for (i, f) in flows.iter().enumerate() {
            if active[i] {
                alloc[i] += step * f.weight;
            }
        }
        for (l, rem) in remaining.iter_mut().enumerate() {
            let w: f64 = flows_on_link[l]
                .iter()
                .filter(|&&i| active[i])
                .map(|&i| flows[i].weight)
                .sum();
            *rem = (*rem - step * w).max(0.0);
        }

        // Freeze flows at saturated links or at their caps. Tolerances are
        // relative: with large weights, `level·weight` and the separately
        // accumulated `alloc` can disagree by more than any absolute epsilon.
        let mut froze = false;
        for (i, f) in flows.iter().enumerate() {
            if !active[i] {
                continue;
            }
            let capped = f.demand_cap.is_finite() && alloc[i] >= f.demand_cap * (1.0 - 1e-9) - 1e-9;
            let blocked = f
                .links
                .iter()
                .any(|&l| remaining[l] <= 1e-9 * capacities[l].max(1.0));
            if capped || blocked {
                active[i] = false;
                froze = true;
                if capped {
                    alloc[i] = alloc[i].min(f.demand_cap);
                }
            }
        }
        // A zero (or denormal) step with nothing newly frozen means float
        // error has pinned the water level against a cap/capacity the freeze
        // tolerances did not quite catch; the allocation is already within
        // tolerance of optimal, so stop rather than spin.
        if !froze && step <= f64::EPSILON * level.max(1.0) {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(weight: f64, cap: f64, links: &[usize]) -> FlowDemand {
        FlowDemand {
            weight,
            demand_cap: cap,
            links: links.to_vec(),
        }
    }

    #[test]
    fn jain_index_properties() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_index(&[7.0]), 1.0);
        assert!((jain_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[100.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // Scale invariance.
        let a = jain_index(&[1.0, 2.0, 3.0]);
        let b = jain_index(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn max_min_equal_weights_is_jain_fair() {
        let flows: Vec<FlowDemand> = (0..5).map(|_| demand(1.0, f64::INFINITY, &[0])).collect();
        let alloc = max_min_allocate(&[1000.0], &flows);
        assert!((jain_index(&alloc) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_flow_takes_min_of_cap_and_capacity() {
        let a = max_min_allocate(&[100.0], &[demand(1.0, f64::INFINITY, &[0])]);
        assert_eq!(a, vec![100.0]);
        let a = max_min_allocate(&[100.0], &[demand(1.0, 30.0, &[0])]);
        assert_eq!(a, vec![30.0]);
    }

    #[test]
    fn equal_weights_split_equally() {
        let flows = vec![
            demand(1.0, f64::INFINITY, &[0]),
            demand(1.0, f64::INFINITY, &[0]),
        ];
        let a = max_min_allocate(&[100.0], &flows);
        assert!((a[0] - 50.0).abs() < 1e-9);
        assert!((a[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn weights_bias_the_split() {
        // 64 streams vs 16 streams on one bottleneck: 80/20 split.
        let flows = vec![
            demand(64.0, f64::INFINITY, &[0]),
            demand(16.0, f64::INFINITY, &[0]),
        ];
        let a = max_min_allocate(&[1000.0], &flows);
        assert!((a[0] - 800.0).abs() < 1e-6);
        assert!((a[1] - 200.0).abs() < 1e-6);
    }

    #[test]
    fn capped_flow_releases_bandwidth() {
        let flows = vec![demand(1.0, 10.0, &[0]), demand(1.0, f64::INFINITY, &[0])];
        let a = max_min_allocate(&[100.0], &flows);
        assert!((a[0] - 10.0).abs() < 1e-9);
        assert!((a[1] - 90.0).abs() < 1e-9);
    }

    #[test]
    fn two_links_different_bottlenecks() {
        // Flow 0 crosses both links; flow 1 only the second.
        // link0 = 50 caps flow 0 at <= 50; then flow 1 takes the rest of link1.
        let flows = vec![
            demand(1.0, f64::INFINITY, &[0, 1]),
            demand(1.0, f64::INFINITY, &[1]),
        ];
        let a = max_min_allocate(&[50.0, 200.0], &flows);
        assert!((a[0] - 50.0).abs() < 1e-9, "a={a:?}");
        assert!((a[1] - 150.0).abs() < 1e-9, "a={a:?}");
    }

    #[test]
    fn shared_nic_two_wans() {
        // The Fig. 11 topology: one source NIC feeding two separate WAN paths.
        // NIC 5000, wan_a 5000, wan_b 2500. Equal weights: level rises to
        // 2500 each (NIC saturates exactly as wan_b allows 2500).
        let flows = vec![
            demand(1.0, f64::INFINITY, &[0, 1]),
            demand(1.0, f64::INFINITY, &[0, 2]),
        ];
        let a = max_min_allocate(&[5000.0, 5000.0, 2500.0], &flows);
        assert!((a[0] - 2500.0).abs() < 1e-6, "a={a:?}");
        assert!((a[1] - 2500.0).abs() < 1e-6, "a={a:?}");
    }

    #[test]
    fn shared_nic_weighted() {
        // Heavier flow on the bigger WAN claims more of the shared NIC.
        let flows = vec![
            demand(3.0, f64::INFINITY, &[0, 1]),
            demand(1.0, f64::INFINITY, &[0, 2]),
        ];
        let a = max_min_allocate(&[4000.0, 5000.0, 2500.0], &flows);
        assert!((a[0] - 3000.0).abs() < 1e-6, "a={a:?}");
        assert!((a[1] - 1000.0).abs() < 1e-6, "a={a:?}");
    }

    #[test]
    fn zero_weight_gets_zero() {
        let flows = vec![
            demand(0.0, f64::INFINITY, &[0]),
            demand(2.0, f64::INFINITY, &[0]),
        ];
        let a = max_min_allocate(&[100.0], &flows);
        assert_eq!(a[0], 0.0);
        assert!((a[1] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cap_gets_zero() {
        let flows = vec![demand(5.0, 0.0, &[0])];
        let a = max_min_allocate(&[100.0], &flows);
        assert_eq!(a[0], 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert!(max_min_allocate(&[], &[]).is_empty());
        assert!(max_min_allocate(&[10.0], &[]).is_empty());
    }

    #[test]
    fn undersubscribed_link_everyone_at_cap() {
        let flows = vec![demand(1.0, 10.0, &[0]), demand(4.0, 20.0, &[0])];
        let a = max_min_allocate(&[1000.0], &flows);
        assert!((a[0] - 10.0).abs() < 1e-9);
        assert!((a[1] - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "references missing link")]
    fn bad_link_index_panics() {
        max_min_allocate(&[10.0], &[demand(1.0, 1.0, &[3])]);
    }

    #[test]
    fn three_way_cascade() {
        // Three flows, staggered caps; progressive filling must redistribute
        // released bandwidth fairly at each stage.
        let flows = vec![
            demand(1.0, 5.0, &[0]),
            demand(1.0, 25.0, &[0]),
            demand(1.0, f64::INFINITY, &[0]),
        ];
        let a = max_min_allocate(&[90.0], &flows);
        // stage 1: all to 5 (f0 capped, 75 left); stage 2: f1,f2 to 25
        // (f1 capped); stage 3: f2 takes the rest = 90-5-25 = 60.
        assert!((a[0] - 5.0).abs() < 1e-9);
        assert!((a[1] - 25.0).abs() < 1e-9);
        assert!((a[2] - 60.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_problem() -> impl Strategy<Value = (Vec<f64>, Vec<FlowDemand>)> {
        let caps = prop::collection::vec(1.0f64..10_000.0, 1..6);
        caps.prop_flat_map(|caps| {
            let nlinks = caps.len();
            let flow = (
                0.0f64..128.0,
                prop_oneof![Just(f64::INFINITY), 0.0f64..5000.0],
                prop::collection::btree_set(0..nlinks, 1..=nlinks),
            )
                .prop_map(|(w, cap, links)| FlowDemand {
                    weight: w,
                    demand_cap: cap,
                    links: links.into_iter().collect(),
                });
            (Just(caps), prop::collection::vec(flow, 0..8))
        })
    }

    proptest! {
        #[test]
        fn allocation_respects_capacities_and_caps((caps, flows) in arb_problem()) {
            let alloc = max_min_allocate(&caps, &flows);
            prop_assert_eq!(alloc.len(), flows.len());
            // No link oversubscribed.
            for (l, &c) in caps.iter().enumerate() {
                let used: f64 = flows
                    .iter()
                    .zip(&alloc)
                    .filter(|(f, _)| f.links.contains(&l))
                    .map(|(_, a)| *a)
                    .sum();
                prop_assert!(used <= c * (1.0 + 1e-6) + 1e-6,
                    "link {} oversubscribed: {} > {}", l, used, c);
            }
            // No flow above its cap; all allocations non-negative and finite.
            for (f, &a) in flows.iter().zip(&alloc) {
                prop_assert!(a >= 0.0 && a.is_finite());
                prop_assert!(a <= f.demand_cap * (1.0 + 1e-9) + 1e-9);
                if f.weight == 0.0 {
                    prop_assert_eq!(a, 0.0);
                }
            }
        }

        #[test]
        fn unbottlenecked_flows_reach_their_caps((caps, flows) in arb_problem()) {
            let alloc = max_min_allocate(&caps, &flows);
            // Work-conservation flavour: a flow strictly below its cap must
            // cross at least one link that is (nearly) saturated.
            for (i, (f, &a)) in flows.iter().zip(&alloc).enumerate() {
                if f.weight == 0.0 || f.demand_cap <= 0.0 {
                    continue;
                }
                if a + 1e-6 < f.demand_cap.min(1e18) {
                    let saturated = f.links.iter().any(|&l| {
                        let used: f64 = flows
                            .iter()
                            .zip(&alloc)
                            .filter(|(g, _)| g.links.contains(&l))
                            .map(|(_, x)| *x)
                            .sum();
                        used >= caps[l] * (1.0 - 1e-6) - 1e-6
                    });
                    prop_assert!(saturated, "flow {} below cap but no saturated link", i);
                }
            }
        }

        #[test]
        fn scaling_capacities_scales_allocation((caps, flows) in arb_problem()) {
            // Homogeneity: doubling all capacities and caps doubles the result.
            let a1 = max_min_allocate(&caps, &flows);
            let caps2: Vec<f64> = caps.iter().map(|c| c * 2.0).collect();
            let flows2: Vec<FlowDemand> = flows
                .iter()
                .map(|f| FlowDemand {
                    weight: f.weight,
                    demand_cap: f.demand_cap * 2.0,
                    links: f.links.clone(),
                })
                .collect();
            let a2 = max_min_allocate(&caps2, &flows2);
            for (x, y) in a1.iter().zip(&a2) {
                prop_assert!((y - 2.0 * x).abs() <= 1e-6 * (1.0 + y.abs()),
                    "not homogeneous: {} vs {}", x, y);
            }
        }
    }
}
