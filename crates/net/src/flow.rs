//! Flow groups: `k` identical parallel TCP streams from one application.
//!
//! GridFTP's `nc × np` streams all carry chunks of the same transfer along
//! the same path, so the fluid model treats them as one *flow group* with a
//! stream count. The stream count is the group's **fair-share weight**: TCP
//! allocates a congested bottleneck per-flow, so a group with more streams
//! claims proportionally more — the mechanism behind the paper's observation
//! that the critical stream count rises with competing traffic.

use crate::link::PathId;
use crate::tcp::CongestionControl;
use serde::{Deserialize, Serialize};

/// Identifier of a flow group within a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId(pub u64);

/// A group of identical parallel TCP streams on one path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowGroup {
    /// The path all streams in the group follow.
    pub path: PathId,
    /// Number of parallel streams (the fair-share weight). Zero streams is a
    /// legal transient state — the flow simply demands nothing.
    pub streams: u32,
    /// Congestion-control variant the streams run.
    pub cc: CongestionControl,
    /// Opaque owner tag: fleet orchestrators label each job's flows with the
    /// job id so per-job shares can be read back out of a shared allocation
    /// (see [`crate::Network::tag_allocation_mbs`]). `None` = untagged.
    pub tag: Option<u64>,
}

impl FlowGroup {
    /// A flow group of `streams` parallel streams on `path`.
    pub fn new(path: PathId, streams: u32, cc: CongestionControl) -> Self {
        FlowGroup {
            path,
            streams,
            cc,
            tag: None,
        }
    }

    /// Attach an owner tag (builder style).
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = Some(tag);
        self
    }

    /// Aggregate demand cap in MB/s: streams × min(loss-limited steady rate,
    /// window cap). Infinite per-stream rates (lossless paths) clamp to the
    /// window cap alone.
    pub fn demand_mbs(&self, rtt_s: f64, loss: f64, wmax_bytes: f64, mss_bytes: f64) -> f64 {
        if self.streams == 0 {
            return 0.0;
        }
        let loss_limited = self.cc.steady_rate_mbs(rtt_s, loss, mss_bytes);
        let window_limited = CongestionControl::window_cap_mbs(rtt_s, wmax_bytes);
        let per_stream = loss_limited.min(window_limited);
        debug_assert!(per_stream.is_finite(), "per-stream cap must be finite");
        self.streams as f64 * per_stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::DEFAULT_MSS_BYTES;

    #[test]
    fn zero_streams_demand_nothing() {
        let f = FlowGroup::new(PathId(0), 0, CongestionControl::HTcp);
        assert_eq!(f.demand_mbs(0.033, 1e-5, 4e6, DEFAULT_MSS_BYTES), 0.0);
    }

    #[test]
    fn demand_scales_linearly_with_streams() {
        let mk = |k| FlowGroup::new(PathId(0), k, CongestionControl::HTcp);
        let d1 = mk(1).demand_mbs(0.033, 1e-5, 4e6, DEFAULT_MSS_BYTES);
        let d8 = mk(8).demand_mbs(0.033, 1e-5, 4e6, DEFAULT_MSS_BYTES);
        assert!((d8 / d1 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn lossless_path_is_window_limited() {
        let f = FlowGroup::new(PathId(0), 2, CongestionControl::Reno);
        let d = f.demand_mbs(0.01, 0.0, 1e6, DEFAULT_MSS_BYTES);
        // window cap = 1e6 bytes / 0.01 s = 100 MB/s per stream
        assert!((d - 200.0).abs() < 1e-9);
    }

    #[test]
    fn high_loss_is_loss_limited() {
        let f = FlowGroup::new(PathId(0), 1, CongestionControl::Reno);
        let d = f.demand_mbs(0.033, 1e-2, 4e6, DEFAULT_MSS_BYTES);
        let window_cap = CongestionControl::window_cap_mbs(0.033, 4e6);
        assert!(d < window_cap);
    }
}
