//! Dynamic per-stream congestion-window simulation.
//!
//! The quasi-static model in [`crate::network`] assumes every stream sits at
//! its steady-state rate. This module instead *evolves* each stream's
//! congestion window on a fixed time step — slow start, variant-specific
//! congestion avoidance, multiplicative decrease on random (Poisson) and
//! congestion-induced losses — and allocates link bandwidth per step with the
//! same max–min solver. It reproduces the ramp-up transients the paper cites
//! as one reason multiple streams help ("scale more rapidly to peak
//! bandwidth") and the AIMD sawtooth that leaves bandwidth unused.

use crate::fairness::{max_min_allocate_into, AllocScratch, FlowDemand};
use crate::flow::FlowId;
use crate::network::Network;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::BTreeMap;
use xferopt_simcore::rng::RngFactory;

/// State of one TCP stream.
#[derive(Debug, Clone)]
struct StreamState {
    flow: FlowId,
    /// Congestion window in bytes.
    cwnd: f64,
    /// Slow-start threshold in bytes.
    ssthresh: f64,
    /// Window size at the last loss (CUBIC's Wmax anchor).
    w_last_max: f64,
    /// Seconds since the last loss event.
    since_loss: f64,
    rng: SmallRng,
}

/// Per-flow output of one simulation step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FlowStepStats {
    /// Achieved rate over the step, MB/s.
    pub rate_mbs: f64,
    /// Number of streams that experienced a loss event this step.
    pub losses: u32,
    /// Current number of streams.
    pub streams: u32,
}

/// A dynamic window-evolution simulation bound to a [`Network`] topology.
///
/// The `Network`'s flow *registration* is reused for paths and stream counts;
/// `DynamicSim` maintains its own per-stream state and must be told about
/// stream-count changes via [`DynamicSim::sync_streams`].
#[derive(Debug)]
pub struct DynamicSim {
    streams: Vec<StreamState>,
    factory: RngFactory,
    spawned: u64,
    /// Initial window: 10 segments (RFC 6928).
    init_cwnd: f64,
    elapsed_s: f64,
    /// Cumulative loss events per flow since construction (survives stream
    /// retirement, unlike the per-step [`FlowStepStats::losses`]).
    cum_losses: BTreeMap<FlowId, u64>,
    /// Reused per-step buffers (scratch, not logical state): effective link
    /// capacities, per-stream demands, solver output, per-link demand sums,
    /// and the progressive-filling working arrays. Steady-state stepping
    /// performs no heap allocation.
    caps_buf: Vec<f64>,
    demands_buf: Vec<FlowDemand>,
    alloc_buf: Vec<f64>,
    link_demand_buf: Vec<f64>,
    scratch: AllocScratch,
}

impl DynamicSim {
    /// Create a simulation seeded by `seed`. Call [`DynamicSim::sync_streams`]
    /// before the first step to populate stream state from the network.
    pub fn new(seed: u64) -> Self {
        DynamicSim {
            streams: Vec::new(),
            factory: RngFactory::new(seed),
            spawned: 0,
            init_cwnd: 10.0 * crate::tcp::DEFAULT_MSS_BYTES,
            elapsed_s: 0.0,
            cum_losses: BTreeMap::new(),
            caps_buf: Vec::new(),
            demands_buf: Vec::new(),
            alloc_buf: Vec::new(),
            link_demand_buf: Vec::new(),
            scratch: AllocScratch::new(),
        }
    }

    /// Total simulated seconds stepped so far.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }

    /// Cumulative loss events observed by `flow` since construction.
    pub fn total_losses(&self, flow: FlowId) -> u64 {
        self.cum_losses.get(&flow).copied().unwrap_or(0)
    }

    /// Cumulative loss events across all flows since construction.
    pub fn total_losses_all(&self) -> u64 {
        self.cum_losses.values().sum()
    }

    /// Mean congestion window (bytes) over the live streams of `flow`, or
    /// `None` when the flow has no live streams.
    pub fn mean_cwnd_bytes(&self, flow: FlowId) -> Option<f64> {
        let (sum, n) = self
            .streams
            .iter()
            .filter(|s| s.flow == flow)
            .fold((0.0f64, 0u64), |(sum, n), s| (sum + s.cwnd, n + 1));
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Number of live streams across all flows.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Reconcile per-stream state with the stream counts registered in `net`:
    /// spawn new streams (in slow start) or retire surplus ones. Newly
    /// spawned streams get fresh, deterministic RNG streams.
    pub fn sync_streams(&mut self, net: &Network) {
        // Count live streams per flow.
        let mut have: BTreeMap<FlowId, u32> = BTreeMap::new();
        for s in &self.streams {
            *have.entry(s.flow).or_insert(0) += 1;
        }
        // Retire streams for flows that shrank or vanished.
        let mut excess: BTreeMap<FlowId, u32> = BTreeMap::new();
        for (&flow, &n) in &have {
            let want = net.flow(flow).map(|f| f.streams).unwrap_or(0);
            if n > want {
                excess.insert(flow, n - want);
            }
        }
        if !excess.is_empty() {
            // Retire from the back so long-lived streams keep their state.
            let mut kept = Vec::with_capacity(self.streams.len());
            for s in self.streams.drain(..).rev() {
                match excess.get_mut(&s.flow) {
                    Some(e) if *e > 0 => *e -= 1,
                    _ => kept.push(s),
                }
            }
            kept.reverse();
            self.streams = kept;
        }
        // Spawn streams for flows that grew.
        for flow in net.iter_flow_ids() {
            let want = net.flow(flow).map(|f| f.streams).unwrap_or(0);
            let have_n = self.streams.iter().filter(|s| s.flow == flow).count() as u32;
            for _ in have_n..want {
                let rng = self.factory.rng_for(self.spawned);
                self.spawned += 1;
                self.streams.push(StreamState {
                    flow,
                    cwnd: self.init_cwnd,
                    ssthresh: f64::INFINITY,
                    w_last_max: self.init_cwnd,
                    since_loss: 0.0,
                    rng,
                });
            }
        }
    }

    /// Advance the simulation by `dt_s` seconds against the topology and
    /// stream counts in `net`. Returns per-flow statistics for the step.
    ///
    /// # Panics
    /// Panics if `dt_s` is not strictly positive.
    pub fn step(&mut self, net: &Network, dt_s: f64) -> BTreeMap<FlowId, FlowStepStats> {
        assert!(dt_s > 0.0, "step must be positive");
        self.elapsed_s += dt_s;
        let mss = net.mss_bytes();

        // 1. Per-stream demand: cwnd/RTT capped by the socket buffer.
        // All solver inputs live in reused buffers — no per-step allocation
        // once the working set has been reached.
        self.caps_buf.clear();
        self.caps_buf.extend(net.iter_link_capacities());
        self.demands_buf.truncate(self.streams.len());
        while self.demands_buf.len() < self.streams.len() {
            self.demands_buf.push(FlowDemand {
                weight: 0.0,
                demand_cap: 0.0,
                links: Vec::new(),
            });
        }
        for (s, d) in self.streams.iter().zip(self.demands_buf.iter_mut()) {
            let f = net.flow(s.flow).expect("stream references removed flow");
            let p = net.path(f.path);
            let rate = (s.cwnd.min(p.wmax_bytes)) / net.effective_rtt_s(f.path) / 1e6;
            d.weight = 1.0;
            d.demand_cap = rate;
            d.links.clear();
            d.links.extend(p.links.iter().map(|l| l.0));
        }
        self.scratch
            .rebuild_adjacency(self.caps_buf.len(), &self.demands_buf);
        max_min_allocate_into(
            &self.caps_buf,
            &self.demands_buf,
            &mut self.scratch,
            &mut self.alloc_buf,
        );
        let caps: &[f64] = &self.caps_buf;
        let demands: &[FlowDemand] = &self.demands_buf;
        let alloc: &[f64] = &self.alloc_buf;

        // 2. Congestion pressure per link: demand / capacity.
        self.link_demand_buf.clear();
        self.link_demand_buf.resize(caps.len(), 0.0);
        for d in demands {
            for &l in &d.links {
                self.link_demand_buf[l] += d.demand_cap;
            }
        }
        let link_demand: &[f64] = &self.link_demand_buf;

        // 3. Evolve each stream.
        let mut out: BTreeMap<FlowId, FlowStepStats> = BTreeMap::new();
        for (s, (d, &rate)) in self.streams.iter_mut().zip(demands.iter().zip(alloc)) {
            let f = net.flow(s.flow).expect("stream references removed flow");
            let p = net.path(f.path);
            let rtt_s = net.effective_rtt_s(f.path);
            let cc = f.cc;

            // Loss probability this step: random per-packet loss over the
            // packets actually sent, plus congestion loss proportional to the
            // worst oversubscription among crossed links.
            let pkts = rate * 1e6 * dt_s / mss;
            let p_rand = 1.0 - (1.0 - p.loss).powf(pkts.max(0.0));
            let overload = d
                .links
                .iter()
                .map(|&l| (link_demand[l] / caps[l].max(1e-12) - 1.0).max(0.0))
                .fold(0.0f64, f64::max);
            // An oversubscribed link drops the excess; a window's chance of
            // seeing a drop within one step scales with its share of it.
            let p_cong = (overload * 0.5).min(0.9);
            let p_loss = (p_rand + p_cong - p_rand * p_cong).clamp(0.0, 1.0);

            let stats = out.entry(s.flow).or_default();
            stats.rate_mbs += rate;
            stats.streams += 1;

            if s.rng.gen_bool(p_loss) {
                s.w_last_max = s.cwnd;
                s.cwnd = cc.on_loss(s.cwnd, mss);
                s.ssthresh = s.cwnd;
                s.since_loss = 0.0;
                stats.losses += 1;
                *self.cum_losses.entry(s.flow).or_insert(0) += 1;
            } else if s.cwnd < s.ssthresh {
                // Slow start: double per RTT, clamp at ssthresh.
                let grown = s.cwnd * 2f64.powf(dt_s / rtt_s);
                s.cwnd = grown.min(s.ssthresh).min(p.wmax_bytes);
                s.since_loss += dt_s;
            } else {
                s.cwnd = cc
                    .grow_window(s.cwnd, s.w_last_max, rtt_s, s.since_loss, dt_s, mss)
                    .min(p.wmax_bytes);
                s.since_loss += dt_s;
            }
        }
        // Flows with zero live streams still appear with zeros if registered.
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{Link, Path};
    use crate::tcp::CongestionControl;

    fn simple_net(streams: u32) -> (Network, FlowId) {
        let mut net = Network::new();
        let nic = net.add_link(Link::new("nic", 1000.0));
        let path = net.add_path(Path::new("p", vec![nic]).with_rtt_ms(33.0).with_loss(1e-5));
        let f = net.add_flow(path, streams, CongestionControl::HTcp);
        (net, f)
    }

    fn run(net: &Network, sim: &mut DynamicSim, flow: FlowId, secs: f64, dt: f64) -> Vec<f64> {
        let mut rates = Vec::new();
        let steps = (secs / dt) as usize;
        for _ in 0..steps {
            let stats = sim.step(net, dt);
            rates.push(stats.get(&flow).map(|s| s.rate_mbs).unwrap_or(0.0));
        }
        rates
    }

    #[test]
    fn slow_start_ramps_up() {
        let (net, f) = simple_net(1);
        let mut sim = DynamicSim::new(1);
        sim.sync_streams(&net);
        let rates = run(&net, &mut sim, f, 3.0, 0.033);
        assert!(
            rates[0] < rates[rates.len() - 1] * 0.9,
            "no ramp-up observed"
        );
    }

    #[test]
    fn more_streams_ramp_faster() {
        let measure = |k: u32| {
            let (net, f) = simple_net(k);
            let mut sim = DynamicSim::new(7);
            sim.sync_streams(&net);
            let rates = run(&net, &mut sim, f, 2.0, 0.033);
            rates.iter().sum::<f64>() / rates.len() as f64
        };
        let one = measure(1);
        let eight = measure(8);
        assert!(
            eight > 2.0 * one,
            "8 streams should ramp much faster: {one} vs {eight}"
        );
    }

    #[test]
    fn rates_never_exceed_capacity() {
        let (net, f) = simple_net(32);
        let mut sim = DynamicSim::new(3);
        sim.sync_streams(&net);
        let rates = run(&net, &mut sim, f, 10.0, 0.05);
        for r in rates {
            assert!(r <= 1000.0 + 1e-6, "rate {r} exceeds link capacity");
        }
    }

    #[test]
    fn losses_occur_under_congestion() {
        let (net, f) = simple_net(64);
        let mut sim = DynamicSim::new(4);
        sim.sync_streams(&net);
        let mut losses = 0;
        for _ in 0..400 {
            let stats = sim.step(&net, 0.05);
            losses += stats[&f].losses;
        }
        assert!(
            losses > 0,
            "64 streams on a 1 GB/s link must see congestion loss"
        );
    }

    #[test]
    fn sync_streams_grows_and_shrinks() {
        let (mut net, f) = simple_net(4);
        let mut sim = DynamicSim::new(5);
        sim.sync_streams(&net);
        assert_eq!(sim.stream_count(), 4);
        net.set_streams(f, 10);
        sim.sync_streams(&net);
        assert_eq!(sim.stream_count(), 10);
        net.set_streams(f, 2);
        sim.sync_streams(&net);
        assert_eq!(sim.stream_count(), 2);
        net.set_streams(f, 0);
        sim.sync_streams(&net);
        assert_eq!(sim.stream_count(), 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let run_once = || {
            let (net, f) = simple_net(8);
            let mut sim = DynamicSim::new(42);
            sim.sync_streams(&net);
            run(&net, &mut sim, f, 5.0, 0.05)
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn link_degradation_caps_dynamic_rates() {
        let (mut net, f) = simple_net(16);
        let mut sim = DynamicSim::new(9);
        sim.sync_streams(&net);
        // Warm up at full capacity, then degrade the link to 20%.
        run(&net, &mut sim, f, 5.0, 0.05);
        net.set_link_factor(crate::link::LinkId(0), 0.2);
        let rates = run(&net, &mut sim, f, 5.0, 0.05);
        for r in &rates {
            assert!(*r <= 200.0 + 1e-6, "rate {r} exceeds degraded capacity");
        }
    }

    #[test]
    fn rtt_spike_slows_ramp_up() {
        let measure = |factor: f64| {
            let (mut net, f) = simple_net(4);
            net.set_rtt_factor(crate::link::PathId(0), factor);
            let mut sim = DynamicSim::new(11);
            sim.sync_streams(&net);
            let rates = run(&net, &mut sim, f, 2.0, 0.033);
            rates.iter().sum::<f64>() / rates.len() as f64
        };
        let normal = measure(1.0);
        let spiked = measure(8.0);
        assert!(
            spiked < normal * 0.7,
            "8x RTT should slow ramp-up: normal {normal} vs spiked {spiked}"
        );
    }

    #[test]
    fn elapsed_tracks_steps() {
        let (net, _) = simple_net(1);
        let mut sim = DynamicSim::new(1);
        sim.sync_streams(&net);
        for _ in 0..10 {
            sim.step(&net, 0.1);
        }
        assert!((sim.elapsed_s() - 1.0).abs() < 1e-9);
    }
}
