//! Fluid wide-area network simulator for parallel TCP transfers.
//!
//! The paper's tuners interact with the network only through the *aggregate
//! throughput achieved by `n` parallel TCP streams sharing production WAN
//! links*. This crate reproduces that signal with a fluid-flow model, the
//! standard abstraction for studying parallel-TCP behaviour:
//!
//! * [`tcp`] — per-stream steady-state response functions and congestion
//!   window dynamics for the variants the paper discusses: Reno, CUBIC
//!   (Linux default), H-TCP (the paper's endpoints), and Scalable TCP.
//! * [`link`] — capacitated links and paths (RTT + random loss live on the
//!   path, capacity on the links so a NIC can be shared by several paths).
//! * [`flow`] — flow groups: `k` identical TCP streams from one application
//!   following one path.
//! * [`fairness`] — weighted max–min progressive-filling allocation with
//!   per-flow demand caps; TCP's per-flow fairness is what makes *more
//!   streams imply a larger share of a congested bottleneck* (the paper's
//!   second observation).
//! * [`network`] — the assembled quasi-static model: register flows, get the
//!   per-flow goodput allocation.
//! * [`dynamic`] — optional higher-fidelity mode evolving per-stream
//!   congestion windows (slow start, variant-specific increase, Poisson
//!   loss) on a fixed time step, for ramp-up transients.
//!
//! Rates are in **MB/s** throughout (the unit the paper reports).
//!
//! # Example
//!
//! ```
//! use xferopt_net::{Link, Network, CongestionControl};
//!
//! let mut net = Network::new();
//! let nic = net.add_link(Link::new("anl-nic", 5000.0));
//! let wan = net.add_link(Link::new("wan", 2500.0));
//! let path = net.add_path(
//!     xferopt_net::Path::new("anl->tacc", vec![nic, wan])
//!         .with_rtt_ms(33.0)
//!         .with_loss(1e-5),
//! );
//! let f = net.add_flow(path, 16, CongestionControl::HTcp);
//! let rates = net.allocate();
//! assert!(rates[&f] > 0.0 && rates[&f] <= 2500.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod components;
pub mod dynamic;
pub mod fairness;
pub mod flow;
pub mod link;
pub mod metrics;
pub mod network;
pub mod tcp;
pub mod topology;

pub use components::{connected_groups, UnionFind};
pub use fairness::{jain_index, max_min_allocate, max_min_allocate_into, AllocScratch, FlowDemand};
pub use flow::{FlowGroup, FlowId};
pub use link::{Link, LinkId, Path, PathId};
pub use metrics::{export_alloc_stats, export_dynamic, export_network};
pub use network::Network;
pub use tcp::CongestionControl;
pub use topology::{TopologyBuilder, TopologyError};
