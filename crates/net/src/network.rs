//! The assembled quasi-static network model.
//!
//! A [`Network`] owns links, paths, and flow groups, and exposes one core
//! operation: [`Network::allocate`], which maps every registered flow group
//! to its max–min fair goodput given current demands. Transfer harnesses
//! re-run the allocation whenever membership changes (a tuner changed its
//! stream count, external traffic appeared) and integrate bytes between
//! changes — the standard fluid discrete-event pattern.

use crate::components::UnionFind;
use crate::fairness::{max_min_allocate_into, AllocScratch, FlowDemand};
use crate::flow::{FlowGroup, FlowId};
use crate::link::{Link, LinkId, Path, PathId};
use crate::tcp::{CongestionControl, DEFAULT_MSS_BYTES};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

/// Sentinel component id for links no present flow crosses.
const NO_COMP: usize = usize::MAX;

/// Partition of the present flows (and the links they cross) into
/// bottleneck-connected components. Progressive filling treats components
/// independently — freezing a flow in one never changes another's fair
/// share — so the solver may scope a re-solve to single components.
/// Components are numbered densely by first appearance in flow-id order,
/// the same determinism rule as [`crate::components::connected_groups`].
#[derive(Debug, Clone, Default)]
struct Partition {
    /// Component id per link (`NO_COMP` when no present flow crosses it).
    of_link: Vec<usize>,
    /// Order positions per component, ascending.
    flows: Vec<Vec<usize>>,
    /// Global link ids per component, ascending.
    links: Vec<Vec<usize>>,
    /// Component-local index of each global link (`NO_COMP` when flowless).
    link_local: Vec<usize>,
}

/// Cached solver state: the last allocation plus every reusable buffer
/// needed to recompute it without allocating.
///
/// Validity is tracked with two generation counters mirrored from
/// [`Network`]: `built_gen` stamps the allocation itself (any mutation that
/// can change rates invalidates it), `adjacency_gen` stamps the link→flow
/// adjacency and per-flow link lists (only membership/topology mutations
/// invalidate those, so a stream-count or fault-factor change re-solves
/// without rebuilding adjacency — the fast path).
#[derive(Debug, Clone, Default)]
struct AllocCache {
    /// `Network::generation` at the time of the last solve.
    built_gen: u64,
    /// `Network::membership_gen` at the time the partition (component ids,
    /// per-component demand link lists, adjacencies) was last rebuilt.
    adjacency_gen: u64,
    /// Cached rates, parallel to `Network::order`.
    rates: Vec<f64>,
    /// Flow ids parallel to `rates` — rates of untouched components are
    /// carried across membership rebuilds by id, not by position.
    ids: Vec<FlowId>,
    /// The component partition the caches below are indexed by.
    part: Partition,
    /// Solver inputs per component, parallel to `part.flows` — link indices
    /// are component-local and fixed at rebuild; weights and demand caps are
    /// refreshed only when the component is dirty.
    comp_demands: Vec<Vec<FlowDemand>>,
    /// Progressive-filling working arrays per component; adjacency built
    /// once at partition rebuild, reused across re-solves.
    comp_scratch: Vec<AllocScratch>,
    /// Components whose inputs may have changed since their last solve.
    comp_dirty: Vec<bool>,
    /// Reused per-solve buffers: effective capacities and rates of the
    /// component being solved.
    sub_caps: Vec<f64>,
    sub_rates: Vec<f64>,
}

/// A network of links, paths, and active flow groups.
///
/// Flow groups live in a flat slot arena (`slots` + `free` list) with a
/// separate id-sorted `order` index, so lookups are a binary search,
/// iteration stays in id order (identical to the former `BTreeMap`
/// registry — all byte-deterministic outputs are preserved), and removal
/// recycles slots without shifting. Flow ids come from a monotone counter
/// and are never reused, so a new flow always appends to `order`.
///
/// The max–min allocation is computed lazily and cached: every read
/// ([`Network::allocate`], [`Network::flow_rate`],
/// [`Network::tag_allocation_mbs`], …) reuses one solve until a mutation
/// bumps the generation counter. See `DESIGN.md` §13 for the invalidation
/// rules.
#[derive(Debug, Clone, Default)]
pub struct Network {
    links: Vec<Link>,
    paths: Vec<Path>,
    /// Flow storage; `None` slots are free and listed in `free`.
    slots: Vec<Option<FlowGroup>>,
    /// Recyclable slot indices.
    free: Vec<u32>,
    /// `(id, slot)` pairs sorted by id — the iteration order.
    order: Vec<(FlowId, u32)>,
    next_flow: u64,
    mss_bytes: f64,
    /// Multiplicative capacity factor per link (fault injection); 1.0 = healthy.
    link_factor: Vec<f64>,
    /// Multiplicative RTT factor per path (fault injection); 1.0 = nominal.
    rtt_factor: Vec<f64>,
    /// Total stream weight per link, maintained incrementally on
    /// `add_flow`/`remove_flow`/`set_streams`. Stream counts are integers,
    /// so the running f64 sums are exact and order-independent.
    link_weight: Vec<f64>,
    /// Bumped by every mutation that can change the allocation.
    generation: u64,
    /// Bumped by mutations that change flow membership or topology
    /// (add/remove flow, add link/path) — these also invalidate adjacency.
    membership_gen: u64,
    /// Lazily rebuilt allocation state; interior mutability keeps
    /// [`Network::allocate`] a `&self` read.
    cache: RefCell<AllocCache>,
    /// Links touched by mutations since the last solve; at solve time only
    /// the components containing a dirty link are re-solved. A `RefCell` so
    /// the `&self` solve path can drain it.
    dirty_links: RefCell<Vec<usize>>,
    /// Escape hatch: re-solve every component at the next read (global
    /// mutations like the MSS, or an explicit [`Network::invalidate_all`]).
    dirty_all: Cell<bool>,
    /// Number of solve passes performed (cache misses).
    solves: Cell<u64>,
    /// Number of per-component solves performed. One solve pass re-solves
    /// only its dirty components, so under scoped mutation churn this grows
    /// slower than `components × passes`.
    comp_solves: Cell<u64>,
}

impl Network {
    /// An empty network with the default MSS.
    pub fn new() -> Self {
        Network {
            mss_bytes: DEFAULT_MSS_BYTES,
            ..Network::default()
        }
    }

    /// Record a mutation that can change allocation results.
    fn touch(&mut self) {
        self.generation = self.generation.wrapping_add(1);
    }

    /// Record a mutation that changes flow membership or topology.
    fn touch_membership(&mut self) {
        self.membership_gen = self.membership_gen.wrapping_add(1);
        self.touch();
    }

    /// Mark every link of `path` dirty, so the next solve revisits the
    /// component(s) containing them. A (degenerate) linkless path belongs to
    /// no link component, so it falls back to dirtying everything.
    fn mark_path_dirty(&mut self, path: PathId) {
        let links = &self.paths[path.0].links;
        if links.is_empty() {
            self.dirty_all.set(true);
        } else {
            self.dirty_links.get_mut().extend(links.iter().map(|l| l.0));
        }
    }

    /// Binary-search `order` for a flow id; `Ok(position)` if present.
    fn find(&self, id: FlowId) -> Result<usize, usize> {
        self.order.binary_search_by_key(&id, |&(fid, _)| fid)
    }

    /// Slot index of `id`, or a panic naming the unknown flow.
    fn slot_of(&self, id: FlowId) -> u32 {
        match self.find(id) {
            Ok(pos) => self.order[pos].1,
            Err(_) => panic!("unknown flow {id:?}"),
        }
    }

    fn group(&self, slot: u32) -> &FlowGroup {
        self.slots[slot as usize]
            .as_ref()
            .expect("arena invariant: ordered slot must be occupied")
    }

    /// Override the TCP maximum segment size in bytes (e.g. 8960 for jumbo
    /// frames, common on data-transfer nodes).
    ///
    /// # Panics
    /// Panics if `mss` is not strictly positive.
    pub fn set_mss_bytes(&mut self, mss: f64) {
        assert!(mss > 0.0, "MSS must be positive");
        self.mss_bytes = mss;
        // The MSS feeds every flow's demand cap: all components are stale.
        self.dirty_all.set(true);
        self.touch();
    }

    /// The configured MSS in bytes.
    pub fn mss_bytes(&self) -> f64 {
        self.mss_bytes
    }

    /// Register a link and return its id.
    pub fn add_link(&mut self, link: Link) -> LinkId {
        self.links.push(link);
        self.link_factor.push(1.0);
        self.link_weight.push(0.0);
        // Adjacency arrays are sized by the link count.
        self.touch_membership();
        LinkId(self.links.len() - 1)
    }

    /// Register a path and return its id.
    ///
    /// # Panics
    /// Panics if the path references an unknown link.
    pub fn add_path(&mut self, path: Path) -> PathId {
        for &l in &path.links {
            assert!(l.0 < self.links.len(), "path references unknown link {l:?}");
        }
        self.paths.push(path);
        self.rtt_factor.push(1.0);
        self.touch_membership();
        PathId(self.paths.len() - 1)
    }

    /// Register a flow group of `streams` parallel `cc` streams on `path`.
    ///
    /// # Panics
    /// Panics if the path id is unknown.
    pub fn add_flow(&mut self, path: PathId, streams: u32, cc: CongestionControl) -> FlowId {
        assert!(path.0 < self.paths.len(), "unknown path {path:?}");
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        let group = FlowGroup::new(path, streams, cc);
        for &l in &self.paths[path.0].links {
            self.link_weight[l.0] += streams as f64;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.slots[s as usize].is_none());
                self.slots[s as usize] = Some(group);
                s
            }
            None => {
                self.slots.push(Some(group));
                (self.slots.len() - 1) as u32
            }
        };
        // Ids are monotone and never reused: a new flow sorts after every
        // existing one, so `order` stays sorted by appending.
        self.order.push((id, slot));
        self.mark_path_dirty(path);
        self.touch_membership();
        id
    }

    /// Change the stream count of an existing flow group.
    ///
    /// Setting the count a flow already has is a no-op and does **not**
    /// invalidate the cached allocation — harness sync loops call this for
    /// every flow every piece.
    ///
    /// # Panics
    /// Panics if the flow id is unknown.
    pub fn set_streams(&mut self, flow: FlowId, streams: u32) {
        let slot = self.slot_of(flow) as usize;
        let group = self.slots[slot].as_mut().expect("occupied slot");
        let old = group.streams;
        if old == streams {
            return;
        }
        group.streams = streams;
        let path = group.path;
        for &l in &self.paths[path.0].links {
            // Exact: stream counts are integers, and integer-valued f64 sums
            // below 2^53 add/subtract without rounding.
            self.link_weight[l.0] += streams as f64 - old as f64;
        }
        self.mark_path_dirty(path);
        self.touch();
    }

    /// Remove a flow group. Removing an unknown id is a no-op (idempotent
    /// teardown).
    pub fn remove_flow(&mut self, flow: FlowId) {
        let Ok(pos) = self.find(flow) else {
            return;
        };
        let (_, slot) = self.order.remove(pos);
        let group = self.slots[slot as usize]
            .take()
            .expect("arena invariant: ordered slot must be occupied");
        for &l in &self.paths[group.path.0].links {
            self.link_weight[l.0] -= group.streams as f64;
        }
        self.mark_path_dirty(group.path);
        self.free.push(slot);
        self.touch_membership();
    }

    /// Set (or clear) the owner tag of a flow group. Fleet orchestrators tag
    /// each job's flow with the job id so a shared allocation can be read
    /// back per job.
    ///
    /// Tags do not affect the allocation, so this never invalidates the
    /// cached solve.
    ///
    /// # Panics
    /// Panics if the flow id is unknown.
    pub fn set_flow_tag(&mut self, flow: FlowId, tag: Option<u64>) {
        let slot = self.slot_of(flow) as usize;
        self.slots[slot].as_mut().expect("occupied slot").tag = tag;
    }

    /// Ids of all flow groups carrying `tag`, in id order.
    pub fn flows_with_tag(&self, tag: u64) -> Vec<FlowId> {
        self.flows()
            .filter(|(_, f)| f.tag == Some(tag))
            .map(|(id, _)| id)
            .collect()
    }

    /// Total TCP streams currently registered under `tag`.
    pub fn tag_streams(&self, tag: u64) -> u32 {
        self.flows()
            .filter(|(_, f)| f.tag == Some(tag))
            .map(|(_, f)| f.streams)
            .sum()
    }

    /// Aggregate max–min fair goodput of every flow group carrying `tag`, in
    /// MB/s (zero when no flow carries the tag). Reads the cached
    /// allocation, so looping over many tags costs one (amortized) solve.
    pub fn tag_allocation_mbs(&self, tag: u64) -> f64 {
        self.ensure_solved();
        let cache = self.cache.borrow();
        self.order
            .iter()
            .enumerate()
            .filter(|(_, &(_, slot))| self.group(slot).tag == Some(tag))
            .map(|(i, _)| cache.rates[i])
            .sum()
    }

    /// Access a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Access a path.
    pub fn path(&self, id: PathId) -> &Path {
        &self.paths[id.0]
    }

    /// Access a flow group, if it exists.
    pub fn flow(&self, id: FlowId) -> Option<&FlowGroup> {
        self.find(id).ok().map(|pos| self.group(self.order[pos].1))
    }

    /// Number of registered flow groups.
    pub fn flow_count(&self) -> usize {
        self.order.len()
    }

    /// Number of registered links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of registered paths.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// Scale a link's capacity by `factor ∈ [0, 1]` (fault injection: 0 is a
    /// dead link, 1 restores full health). The factor applies on top of the
    /// AIMD derating in [`Network::allocate`].
    ///
    /// # Panics
    /// Panics if the link id is unknown or `factor` is outside `[0, 1]`.
    pub fn set_link_factor(&mut self, id: LinkId, factor: f64) {
        assert!(id.0 < self.links.len(), "unknown link {id:?}");
        assert!(
            (0.0..=1.0).contains(&factor),
            "link factor must be in [0,1], got {factor}"
        );
        if self.link_factor[id.0] == factor {
            return; // no-op: keep the cached allocation valid
        }
        self.link_factor[id.0] = factor;
        self.dirty_links.get_mut().push(id.0);
        self.touch();
    }

    /// Current capacity factor of a link (1.0 when healthy).
    ///
    /// # Panics
    /// Panics if the link id is unknown.
    pub fn link_factor(&self, id: LinkId) -> f64 {
        self.link_factor[id.0]
    }

    /// Scale a path's RTT by `factor ≥ 1` (fault injection: bufferbloat or a
    /// route change; 1 restores the nominal RTT).
    ///
    /// # Panics
    /// Panics if the path id is unknown or `factor` is not finite and ≥ 1.
    pub fn set_rtt_factor(&mut self, id: PathId, factor: f64) {
        assert!(id.0 < self.paths.len(), "unknown path {id:?}");
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "RTT factor must be finite and >= 1, got {factor}"
        );
        if self.rtt_factor[id.0] == factor {
            return; // no-op: keep the cached allocation valid
        }
        self.rtt_factor[id.0] = factor;
        // The RTT feeds the demand caps of flows on this path; those flows
        // live in the component(s) of the path's links.
        self.mark_path_dirty(id);
        self.touch();
    }

    /// Current RTT factor of a path (1.0 when nominal).
    ///
    /// # Panics
    /// Panics if the path id is unknown.
    pub fn rtt_factor(&self, id: PathId) -> f64 {
        self.rtt_factor[id.0]
    }

    /// A path's round-trip time with any fault-injected factor applied.
    ///
    /// # Panics
    /// Panics if the path id is unknown.
    pub fn effective_rtt_s(&self, id: PathId) -> f64 {
        self.paths[id.0].rtt_s * self.rtt_factor[id.0]
    }

    /// Effective link capacities in MB/s (fault factors applied), in
    /// `LinkId.0` order, without allocating.
    pub fn iter_link_capacities(&self) -> impl Iterator<Item = f64> + '_ {
        self.links
            .iter()
            .zip(&self.link_factor)
            .map(|(l, &f)| l.capacity_mbs * f)
    }

    /// Link capacities in MB/s, indexed by `LinkId.0`, with any
    /// fault-injected capacity factors applied.
    ///
    /// Thin collecting wrapper over [`Network::iter_link_capacities`];
    /// prefer the iterator on hot paths.
    pub fn link_capacities(&self) -> Vec<f64> {
        self.iter_link_capacities().collect()
    }

    /// Ids of all registered flow groups, in id order, without allocating.
    pub fn iter_flow_ids(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.order.iter().map(|&(id, _)| id)
    }

    /// All registered flow groups with their ids, in id order.
    pub fn flows(&self) -> impl Iterator<Item = (FlowId, &FlowGroup)> + '_ {
        self.order.iter().map(|&(id, slot)| (id, self.group(slot)))
    }

    /// Ids of all registered flow groups, in id order.
    ///
    /// Thin collecting wrapper over [`Network::iter_flow_ids`]; prefer the
    /// iterator on hot paths.
    pub fn flow_ids(&self) -> Vec<FlowId> {
        self.iter_flow_ids().collect()
    }

    /// Aggregate demand cap of one flow in MB/s (before fair sharing).
    ///
    /// # Panics
    /// Panics if the flow id is unknown.
    pub fn flow_demand_mbs(&self, id: FlowId) -> f64 {
        let f = self.group(self.slot_of(id));
        let p = &self.paths[f.path.0];
        f.demand_mbs(
            self.effective_rtt_s(f.path),
            p.loss,
            p.wmax_bytes,
            self.mss_bytes,
        )
    }

    /// Total TCP streams crossing each link, indexed by `LinkId.0`.
    ///
    /// Maintained incrementally — this is a clone of the running sums, not
    /// a rebuild. Use [`Network::link_streams`] for a single link.
    pub fn streams_per_link(&self) -> Vec<f64> {
        self.link_weight.clone()
    }

    /// Total TCP streams crossing one link (O(1) incremental readout).
    ///
    /// # Panics
    /// Panics if the link id is unknown.
    pub fn link_streams(&self, id: LinkId) -> f64 {
        self.link_weight[id.0]
    }

    /// Compute the bottleneck-component partition of the present flows from
    /// scratch. Shared by the incremental cache rebuild and the uncached
    /// reference so both sides group (and therefore solve) identically.
    fn build_partition(&self) -> Partition {
        let nlinks = self.links.len();
        let nflows = self.order.len();
        // Union the links along each flow's path; extra vertices past
        // `nlinks` give (degenerate) linkless flows a private component.
        let mut uf = UnionFind::new(nlinks + nflows);
        let anchor =
            |pos: usize, links: &[LinkId]| -> usize { links.first().map_or(nlinks + pos, |l| l.0) };
        for (pos, &(_, slot)) in self.order.iter().enumerate() {
            let links = &self.paths[self.group(slot).path.0].links;
            let a = anchor(pos, links);
            for &l in links.iter().skip(1) {
                uf.union(a, l.0);
            }
        }
        // Dense component ids by first appearance in flow (id) order.
        let mut root_comp = vec![NO_COMP; nlinks + nflows];
        let mut part = Partition {
            of_link: vec![NO_COMP; nlinks],
            flows: Vec::new(),
            links: Vec::new(),
            link_local: vec![NO_COMP; nlinks],
        };
        for (pos, &(_, slot)) in self.order.iter().enumerate() {
            let links = &self.paths[self.group(slot).path.0].links;
            let root = uf.find(anchor(pos, links));
            let c = match root_comp[root] {
                NO_COMP => {
                    root_comp[root] = part.flows.len();
                    part.flows.push(Vec::new());
                    part.flows.len() - 1
                }
                c => c,
            };
            part.flows[c].push(pos);
            for &l in links {
                part.of_link[l.0] = c;
            }
        }
        // Component link lists in ascending global order, plus the
        // global→component-local index map the compacted solves use.
        part.links = vec![Vec::new(); part.flows.len()];
        for (l, &c) in part.of_link.iter().enumerate() {
            if c != NO_COMP {
                part.link_local[l] = part.links[c].len();
                part.links[c].push(l);
            }
        }
        part
    }

    /// Rebuild the cached partition after a membership change, carrying the
    /// rates of surviving flows across the re-index by flow id.
    fn rebuild_partition(&self, cache: &mut AllocCache) {
        let part = self.build_partition();
        let ncomps = part.flows.len();

        // Carry rates by id: both the old and new id lists are ascending.
        let old_ids = std::mem::take(&mut cache.ids);
        let old_rates = std::mem::take(&mut cache.rates);
        cache.ids = self.order.iter().map(|&(id, _)| id).collect();
        cache.rates = Vec::with_capacity(cache.ids.len());
        let mut j = 0;
        for &id in &cache.ids {
            while j < old_ids.len() && old_ids[j] < id {
                j += 1;
            }
            if j < old_ids.len() && old_ids[j] == id {
                cache.rates.push(old_rates[j]);
            } else {
                cache.rates.push(0.0);
            }
        }

        // Per-component solver inputs: link indices are component-local and
        // fixed until the next rebuild; weights/caps refresh at solve time.
        cache.comp_demands.truncate(ncomps);
        cache.comp_demands.resize_with(ncomps, Vec::new);
        cache.comp_scratch.truncate(ncomps);
        cache.comp_scratch.resize_with(ncomps, AllocScratch::new);
        for c in 0..ncomps {
            let demands = &mut cache.comp_demands[c];
            demands.clear();
            for &pos in &part.flows[c] {
                let f = self.group(self.order[pos].1);
                let links = &self.paths[f.path.0].links;
                demands.push(FlowDemand {
                    weight: 0.0,
                    demand_cap: 0.0,
                    links: links.iter().map(|l| part.link_local[l.0]).collect(),
                });
            }
            cache.comp_scratch[c].rebuild_adjacency(part.links[c].len(), demands);
        }
        cache.comp_dirty.clear();
        cache.comp_dirty.resize(ncomps, false);
        cache.part = part;
    }

    /// Re-solve the cached allocation if any mutation occurred since the
    /// last solve. Only the components containing a dirty link are
    /// re-solved; untouched components keep their cached rates (which is
    /// bit-exact: progressive filling never couples components). Rebuilds
    /// the partition only when membership changed.
    fn ensure_solved(&self) {
        if self.cache.borrow().built_gen == self.generation {
            return;
        }
        let mut cache = self.cache.borrow_mut();
        let cache = &mut *cache;
        let mut dirty_links = self.dirty_links.borrow_mut();

        if cache.adjacency_gen != self.membership_gen {
            // Components already marked dirty must survive the re-index;
            // their links re-identify them in the new partition.
            for (c, d) in cache.comp_dirty.iter().enumerate() {
                if *d {
                    dirty_links.extend(cache.part.links[c].iter().copied());
                }
            }
            self.rebuild_partition(cache);
            cache.adjacency_gen = self.membership_gen;
        }

        if self.dirty_all.get() {
            cache.comp_dirty.iter_mut().for_each(|d| *d = true);
            self.dirty_all.set(false);
        } else {
            for &l in dirty_links.iter() {
                let c = cache.part.of_link[l];
                if c != NO_COMP {
                    cache.comp_dirty[c] = true;
                }
            }
        }
        dirty_links.clear();

        let AllocCache {
            rates,
            part,
            comp_demands,
            comp_scratch,
            comp_dirty,
            sub_caps,
            sub_rates,
            ..
        } = cache;
        for (c, dirty) in comp_dirty.iter_mut().enumerate() {
            if !*dirty {
                continue;
            }
            *dirty = false;
            // Effective capacities of this component's links: derate by
            // multiplexed stream count, then by the fault factor —
            // identical arithmetic to the uncached path.
            sub_caps.clear();
            sub_caps.extend(part.links[c].iter().map(|&l| {
                self.links[l].effective_capacity_mbs(self.link_weight[l]) * self.link_factor[l]
            }));
            // Refresh weights and demand caps (link lists are fixed).
            for (&pos, d) in part.flows[c].iter().zip(comp_demands[c].iter_mut()) {
                let f = self.group(self.order[pos].1);
                let p = &self.paths[f.path.0];
                d.weight = f.streams as f64;
                d.demand_cap = f.demand_mbs(
                    self.effective_rtt_s(f.path),
                    p.loss,
                    p.wmax_bytes,
                    self.mss_bytes,
                );
            }
            max_min_allocate_into(sub_caps, &comp_demands[c], &mut comp_scratch[c], sub_rates);
            for (&pos, &r) in part.flows[c].iter().zip(sub_rates.iter()) {
                rates[pos] = r;
            }
            self.comp_solves.set(self.comp_solves.get() + 1);
        }
        self.solves.set(self.solves.get() + 1);
        cache.built_gen = self.generation;
    }

    /// Number of max–min solves actually performed so far (cache misses).
    /// Cached reads do not increment this — the whole point of the engine.
    pub fn allocation_solves(&self) -> u64 {
        self.solves.get()
    }

    /// Number of *component* solves performed so far: each dirty bottleneck
    /// component re-solved during a pass counts once. With component-scoped
    /// invalidation this grows slower than mutations × components — the
    /// ratio `component_solves / mutations` is the churn-bench gate metric.
    pub fn component_solves(&self) -> u64 {
        self.comp_solves.get()
    }

    /// Number of bottleneck-connected components in the current (cached)
    /// partition. Solves the cache first if it is stale.
    pub fn component_count(&self) -> usize {
        self.ensure_solved();
        self.cache.borrow().part.flows.len()
    }

    /// Mark every component dirty so the next read re-solves the whole
    /// network. This is the full-re-solve baseline for the mutation-churn
    /// microbenchmark; normal callers never need it.
    pub fn invalidate_all(&mut self) {
        self.dirty_all.set(true);
        self.touch();
    }

    /// Current allocation generation: bumped by every mutation that can
    /// change the allocation. Equal generations between two reads guarantee
    /// the reads came from the same cached solve.
    pub fn allocation_epoch(&self) -> u64 {
        self.generation
    }

    /// Compute the max–min fair goodput allocation for every registered flow
    /// group, in MB/s.
    ///
    /// Link capacities are first derated to their *effective* values given
    /// the total stream count multiplexed onto each link (see
    /// [`Link::effective_capacity_mbs`]), then shared max–min fairly with
    /// stream counts as weights and TCP-model demand caps.
    ///
    /// The solve is cached: repeated calls without an intervening mutation
    /// reuse the previous result (only the returned map is rebuilt). Use
    /// [`Network::flow_rate`] to read a single flow without building a map.
    pub fn allocate(&self) -> BTreeMap<FlowId, f64> {
        self.ensure_solved();
        let cache = self.cache.borrow();
        self.order
            .iter()
            .map(|&(id, _)| id)
            .zip(cache.rates.iter().copied())
            .collect()
    }

    /// Reference implementation: recompute the allocation from scratch,
    /// bypassing the incremental cache (fresh buffers, full adjacency
    /// rebuild). This is the pre-cache code path, kept for equivalence
    /// testing and as the baseline in the allocation microbenchmarks.
    pub fn allocate_uncached(&self) -> BTreeMap<FlowId, f64> {
        let mut streams = vec![0.0f64; self.links.len()];
        for (_, f) in self.flows() {
            for &l in &self.paths[f.path.0].links {
                streams[l.0] += f.streams as f64;
            }
        }
        let part = self.build_partition();
        let mut rates = vec![0.0f64; self.order.len()];
        let mut sub_caps = Vec::new();
        let mut sub_rates = Vec::new();
        for c in 0..part.flows.len() {
            sub_caps.clear();
            sub_caps.extend(
                part.links[c].iter().map(|&l| {
                    self.links[l].effective_capacity_mbs(streams[l]) * self.link_factor[l]
                }),
            );
            let demands: Vec<FlowDemand> = part.flows[c]
                .iter()
                .map(|&pos| {
                    let f = self.group(self.order[pos].1);
                    let p = &self.paths[f.path.0];
                    FlowDemand {
                        weight: f.streams as f64,
                        demand_cap: f.demand_mbs(
                            self.effective_rtt_s(f.path),
                            p.loss,
                            p.wmax_bytes,
                            self.mss_bytes,
                        ),
                        links: p.links.iter().map(|l| part.link_local[l.0]).collect(),
                    }
                })
                .collect();
            let mut scratch = AllocScratch::new();
            scratch.rebuild_adjacency(part.links[c].len(), &demands);
            max_min_allocate_into(&sub_caps, &demands, &mut scratch, &mut sub_rates);
            for (&pos, &r) in part.flows[c].iter().zip(sub_rates.iter()) {
                rates[pos] = r;
            }
        }
        self.order.iter().map(|&(id, _)| id).zip(rates).collect()
    }

    /// The max–min fair goodput of a single flow (other flows still
    /// contend), in MB/s, read from the cached allocation — an O(log F)
    /// lookup after one amortized solve, not a solve per call.
    ///
    /// # Panics
    /// Panics if the flow id is unknown.
    pub fn flow_rate(&self, id: FlowId) -> f64 {
        let pos = match self.find(id) {
            Ok(pos) => pos,
            Err(_) => panic!("unknown flow {id:?}"),
        };
        self.ensure_solved();
        self.cache.borrow().rates[pos]
    }

    /// Convenience alias for [`Network::flow_rate`] (historical name).
    ///
    /// # Panics
    /// Panics if the flow id is unknown.
    pub fn allocation_of(&self, id: FlowId) -> f64 {
        self.flow_rate(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the paper's ANL source topology: 5000 MB/s NIC, a 5000 MB/s WAN
    /// to UChicago and a 2500 MB/s WAN to TACC.
    fn anl_topology() -> (Network, PathId, PathId) {
        let mut net = Network::new();
        let nic = net.add_link(Link::from_gbps("anl-nic", 40.0));
        let wan_uc = net.add_link(Link::from_gbps("wan-uc", 40.0));
        let wan_tacc = net.add_link(Link::from_gbps("wan-tacc", 20.0));
        let p_uc = net.add_path(
            Path::new("anl->uc", vec![nic, wan_uc])
                .with_rtt_ms(2.0)
                .with_loss(2e-4),
        );
        let p_tacc = net.add_path(
            Path::new("anl->tacc", vec![nic, wan_tacc])
                .with_rtt_ms(33.0)
                .with_loss(1e-5),
        );
        (net, p_uc, p_tacc)
    }

    #[test]
    fn single_stream_cannot_saturate_lossy_path() {
        let (mut net, p_uc, _) = anl_topology();
        let f = net.add_flow(p_uc, 1, CongestionControl::HTcp);
        let rate = net.allocation_of(f);
        assert!(rate > 0.0);
        assert!(
            rate < 1000.0,
            "one stream should be far below the 5000 MB/s NIC, got {rate}"
        );
    }

    #[test]
    fn more_streams_more_throughput_until_saturation() {
        let (mut net, p_uc, _) = anl_topology();
        let f = net.add_flow(p_uc, 1, CongestionControl::HTcp);
        let mut last = 0.0;
        let mut saturated_at = None;
        for k in [1u32, 2, 4, 8, 16, 32, 64, 128] {
            net.set_streams(f, k);
            let r = net.allocation_of(f);
            assert!(
                r >= last - 1e-9,
                "throughput must not fall in pure net model"
            );
            if r >= 4999.0 && saturated_at.is_none() {
                saturated_at = Some(k);
            }
            last = r;
        }
        let k = saturated_at.expect("some stream count should saturate the NIC");
        assert!(
            k >= 16,
            "saturation too early (k={k}); loss calibration off"
        );
    }

    #[test]
    fn competing_traffic_shifts_shares() {
        let (mut net, p_uc, _) = anl_topology();
        let ours = net.add_flow(p_uc, 64, CongestionControl::HTcp);
        let theirs = net.add_flow(p_uc, 64, CongestionControl::HTcp);
        let a = net.allocate();
        assert!(
            (a[&ours] - a[&theirs]).abs() < 1e-6,
            "equal weights, equal split"
        );
        // Quadrupling our streams quadruples our weight.
        net.set_streams(ours, 256);
        let a = net.allocate();
        assert!(a[&ours] > 3.0 * a[&theirs], "a={a:?}");
    }

    #[test]
    fn fig11_shared_nic_coupling() {
        let (mut net, p_uc, p_tacc) = anl_topology();
        let f_uc = net.add_flow(p_uc, 64, CongestionControl::HTcp);
        let f_tacc = net.add_flow(p_tacc, 64, CongestionControl::HTcp);
        let a = net.allocate();
        let total = a[&f_uc] + a[&f_tacc];
        assert!(total <= 5000.0 + 1e-6, "NIC bound violated: {total}");
        // Raising UC streams must reduce the TACC share (shared NIC).
        let before_tacc = a[&f_tacc];
        net.set_streams(f_uc, 256);
        let a = net.allocate();
        assert!(
            a[&f_tacc] < before_tacc,
            "shared NIC should couple the transfers"
        );
    }

    #[test]
    fn remove_flow_restores_bandwidth() {
        let (mut net, p_uc, _) = anl_topology();
        let a = net.add_flow(p_uc, 64, CongestionControl::HTcp);
        let b = net.add_flow(p_uc, 64, CongestionControl::HTcp);
        let with_b = net.allocation_of(a);
        net.remove_flow(b);
        let without_b = net.allocation_of(a);
        assert!(without_b > with_b);
        assert_eq!(net.flow_count(), 1);
        net.remove_flow(b); // idempotent
    }

    #[test]
    fn flow_demand_reflects_tcp_model() {
        let (mut net, _, p_tacc) = anl_topology();
        let f = net.add_flow(p_tacc, 10, CongestionControl::HTcp);
        let d = net.flow_demand_mbs(f);
        let p = net.path(p_tacc);
        let per = CongestionControl::HTcp
            .steady_rate_mbs(p.rtt_s, p.loss, net.mss_bytes())
            .min(CongestionControl::window_cap_mbs(p.rtt_s, p.wmax_bytes));
        assert!((d - 10.0 * per).abs() < 1e-9);
    }

    /// Topology with the paper-calibrated AIMD derating on the shared NIC.
    fn derated_topology() -> (Network, PathId) {
        let mut net = Network::new();
        let nic = net.add_link(Link::from_gbps("anl-nic", 40.0).with_half_streams(16.0));
        let wan = net.add_link(Link::from_gbps("wan-uc", 40.0).with_half_streams(16.0));
        let p = net.add_path(
            Path::new("anl->uc", vec![nic, wan])
                .with_rtt_ms(2.0)
                .with_loss(1e-5),
        );
        (net, p)
    }

    #[test]
    fn derated_link_matches_paper_default() {
        // Globus default = 16 streams: 5000·16/32 = 2500 MB/s, the paper's
        // observed default throughput on ANL->UChicago.
        let (mut net, p) = derated_topology();
        let f = net.add_flow(p, 16, CongestionControl::HTcp);
        let r = net.allocation_of(f);
        assert!((r - 2500.0).abs() < 1.0, "r={r}");
    }

    #[test]
    fn derated_link_concave_growth() {
        let (mut net, p) = derated_topology();
        let f = net.add_flow(p, 16, CongestionControl::HTcp);
        let r16 = net.allocation_of(f);
        net.set_streams(f, 64);
        let r64 = net.allocation_of(f);
        net.set_streams(f, 256);
        let r256 = net.allocation_of(f);
        assert!(r16 < r64 && r64 < r256, "monotone: {r16} {r64} {r256}");
        // Diminishing returns: 4x streams gives far less than 4x throughput.
        assert!(r64 < 2.0 * r16);
        assert!(r256 < 5000.0);
    }

    #[test]
    fn external_streams_on_shared_nic_match_paper_tfr_numbers() {
        // Paper Fig. 5d/5e: default (16 streams) drops from 2500 to ~1400
        // with ext.tfr=16 and ~900 with ext.tfr=64.
        let (mut net, p) = derated_topology();
        let ours = net.add_flow(p, 16, CongestionControl::HTcp);
        let ext = net.add_flow(p, 16, CongestionControl::HTcp);
        let r = net.allocation_of(ours);
        assert!((1300.0..1900.0).contains(&r), "tfr=16: r={r}");
        net.set_streams(ext, 64);
        let r = net.allocation_of(ours);
        assert!((700.0..1100.0).contains(&r), "tfr=64: r={r}");
    }

    #[test]
    fn effective_capacity_edges() {
        let ideal = Link::new("ideal", 100.0);
        assert_eq!(ideal.effective_capacity_mbs(0.0), 100.0);
        assert_eq!(ideal.effective_capacity_mbs(1e9), 100.0);
        let derated = Link::new("d", 100.0).with_half_streams(10.0);
        assert_eq!(derated.effective_capacity_mbs(0.0), 0.0);
        assert!((derated.effective_capacity_mbs(10.0) - 50.0).abs() < 1e-9);
        assert!(derated.effective_capacity_mbs(1e6) > 99.9);
    }

    #[test]
    #[should_panic(expected = "unknown flow")]
    fn set_streams_unknown_flow_panics() {
        let (mut net, _, _) = anl_topology();
        net.set_streams(FlowId(99), 4);
    }

    #[test]
    fn flow_tags_group_per_job_shares() {
        let (mut net, p_uc, p_tacc) = anl_topology();
        // Job 7 runs two flow groups (one per route); job 9 runs one.
        let a = net.add_flow(p_uc, 16, CongestionControl::HTcp);
        let b = net.add_flow(p_tacc, 16, CongestionControl::HTcp);
        let c = net.add_flow(p_uc, 32, CongestionControl::HTcp);
        net.set_flow_tag(a, Some(7));
        net.set_flow_tag(b, Some(7));
        net.set_flow_tag(c, Some(9));
        assert_eq!(net.flows_with_tag(7), vec![a, b]);
        assert_eq!(net.flows_with_tag(9), vec![c]);
        assert_eq!(net.tag_streams(7), 32);
        assert_eq!(net.tag_streams(9), 32);
        let alloc = net.allocate();
        let want = alloc[&a] + alloc[&b];
        assert!((net.tag_allocation_mbs(7) - want).abs() < 1e-9);
        assert!((net.tag_allocation_mbs(9) - alloc[&c]).abs() < 1e-9);
        // Unknown tags read as empty/zero.
        assert!(net.flows_with_tag(1).is_empty());
        assert_eq!(net.tag_streams(1), 0);
        assert_eq!(net.tag_allocation_mbs(1), 0.0);
        // Clearing a tag removes the grouping.
        net.set_flow_tag(b, None);
        assert_eq!(net.flows_with_tag(7), vec![a]);
        // Builder form attaches the tag at construction.
        let g = crate::flow::FlowGroup::new(p_uc, 4, CongestionControl::HTcp).with_tag(3);
        assert_eq!(g.tag, Some(3));
    }

    #[test]
    #[should_panic(expected = "unknown flow")]
    fn set_flow_tag_unknown_flow_panics() {
        let (mut net, _, _) = anl_topology();
        net.set_flow_tag(FlowId(99), Some(1));
    }

    #[test]
    #[should_panic(expected = "references unknown link")]
    fn path_with_unknown_link_panics() {
        let mut net = Network::new();
        net.add_path(Path::new("bad", vec![LinkId(5)]));
    }
}
