//! Read-only export of network state into a [`MetricsRegistry`].
//!
//! The telemetry layer observes the fluid model — it never mutates it. These
//! helpers translate the quasi-static allocation ([`Network`]) and the
//! dynamic window simulation ([`DynamicSim`]) into typed samples:
//!
//! * per-flow fair-share allocation, registered stream count and steady-state
//!   demand (`net_flow_*` gauges),
//! * per-link capacity and current degradation factor (`net_link_*` gauges),
//! * per-path RTT inflation factor (`net_path_rtt_factor`),
//! * cumulative per-flow loss events and mean congestion window from the
//!   dynamic simulation (`net_flow_losses_total`, `net_flow_cwnd_bytes`).
//!
//! All label values are derived from stable integer ids, so two exports of
//! the same state produce identical snapshots (the registry orders samples
//! by `(name, labels)`).

use crate::dynamic::DynamicSim;
use crate::network::Network;
use xferopt_simcore::MetricsRegistry;

/// Export the quasi-static allocation state of `net` into `reg`.
///
/// Emits, for every registered flow `f`:
///
/// * `net_flow_fair_share_mbs{flow="<id>"}` — max–min fair goodput, MB/s,
/// * `net_flow_streams{flow="<id>"}` — registered parallel stream count,
/// * `net_flow_demand_mbs{flow="<id>"}` — steady-state aggregate demand,
///
/// and for every link / path:
///
/// * `net_link_capacity_mbs{link="<i>"}` and `net_link_factor{link="<i>"}`,
/// * `net_path_rtt_factor{path="<i>"}`.
pub fn export_network(reg: &mut MetricsRegistry, net: &Network) {
    // Reads the cached allocation: exporting after a `World::step` costs no
    // extra solve, and repeated exports of unchanged state cost none at all.
    for (flow, group) in net.flows() {
        let id = flow.0.to_string();
        let labels = [("flow", id.as_str())];
        reg.gauge("net_flow_fair_share_mbs", &labels)
            .set(net.flow_rate(flow));
        reg.gauge("net_flow_streams", &labels)
            .set(f64::from(group.streams));
        reg.gauge("net_flow_demand_mbs", &labels)
            .set(net.flow_demand_mbs(flow));
    }
    for i in 0..net.link_count() {
        let id = i.to_string();
        let labels = [("link", id.as_str())];
        let link = crate::link::LinkId(i);
        reg.gauge("net_link_capacity_mbs", &labels)
            .set(net.link(link).capacity_mbs);
        reg.gauge("net_link_factor", &labels)
            .set(net.link_factor(link));
    }
    for i in 0..net.path_count() {
        let id = i.to_string();
        reg.gauge("net_path_rtt_factor", &[("path", id.as_str())])
            .set(net.rtt_factor(crate::link::PathId(i)));
    }
}

/// Export the dynamic window-evolution state of `sim` into `reg`.
///
/// Emits, for every flow registered in `net`:
///
/// * `net_flow_losses_total{flow="<id>"}` — cumulative loss events (a
///   monotone counter; repeated exports advance it to the current total),
/// * `net_flow_cwnd_bytes{flow="<id>"}` — mean congestion window over the
///   flow's live streams (omitted when the flow has none).
pub fn export_dynamic(reg: &mut MetricsRegistry, net: &Network, sim: &DynamicSim) {
    for flow in net.iter_flow_ids() {
        let id = flow.0.to_string();
        let labels = [("flow", id.as_str())];
        let total = sim.total_losses(flow);
        let c = reg.counter("net_flow_losses_total", &labels);
        let cur = c.get();
        debug_assert!(total >= cur, "loss counter went backwards");
        c.add(total.saturating_sub(cur));
        if let Some(cwnd) = sim.mean_cwnd_bytes(flow) {
            reg.gauge("net_flow_cwnd_bytes", &labels).set(cwnd);
        }
    }
}

/// Export allocation-engine statistics of `net` into `reg`.
///
/// Emits:
///
/// * `net_alloc_solves_total` — cumulative max–min solves actually performed
///   (cache misses; a monotone counter, repeated exports advance it),
/// * `net_alloc_epoch` — current allocation generation (bumped by every
///   allocation-affecting mutation),
/// * `net_alloc_flows` — registered flow-group count.
///
/// Deliberately **not** part of [`export_network`]: the standard telemetry
/// stream must stay byte-identical across engine changes, so perf
/// instrumentation is opt-in (benchmarks and the fleet perf gate call this).
pub fn export_alloc_stats(reg: &mut MetricsRegistry, net: &Network) {
    let c = reg.counter("net_alloc_solves_total", &[]);
    let cur = c.get();
    let total = net.allocation_solves();
    debug_assert!(total >= cur, "solve counter went backwards");
    c.add(total.saturating_sub(cur));
    reg.gauge("net_alloc_epoch", &[])
        .set(net.allocation_epoch() as f64);
    reg.gauge("net_alloc_flows", &[])
        .set(net.flow_count() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{Link, Path};
    use crate::tcp::CongestionControl;
    use xferopt_simcore::SampleValue;

    fn net_with_flow(streams: u32) -> (Network, crate::flow::FlowId) {
        let mut net = Network::new();
        let nic = net.add_link(Link::new("nic", 1000.0));
        let path = net.add_path(Path::new("p", vec![nic]).with_rtt_ms(33.0).with_loss(1e-5));
        let f = net.add_flow(path, streams, CongestionControl::HTcp);
        (net, f)
    }

    #[test]
    fn exports_fair_share_and_streams() {
        let (net, f) = net_with_flow(8);
        let mut reg = MetricsRegistry::new();
        export_network(&mut reg, &net);
        let snap = reg.snapshot();
        let id = f.0.to_string();
        let labels = [("flow", id.as_str())];
        match snap.get("net_flow_streams", &labels) {
            Some(SampleValue::Gauge(v)) => assert_eq!(*v, 8.0),
            other => panic!("missing streams gauge: {other:?}"),
        }
        match snap.get("net_flow_fair_share_mbs", &labels) {
            Some(SampleValue::Gauge(v)) => assert!(*v > 0.0 && *v <= 1000.0),
            other => panic!("missing fair-share gauge: {other:?}"),
        }
    }

    #[test]
    fn export_is_deterministic() {
        let (net, _) = net_with_flow(4);
        let render = || {
            let mut reg = MetricsRegistry::new();
            export_network(&mut reg, &net);
            reg.snapshot().to_jsonl()
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn dynamic_export_tracks_cumulative_losses() {
        let (net, f) = net_with_flow(64);
        let mut sim = DynamicSim::new(4);
        sim.sync_streams(&net);
        let mut reg = MetricsRegistry::new();
        for _ in 0..200 {
            sim.step(&net, 0.05);
        }
        export_dynamic(&mut reg, &net, &sim);
        let after_first = {
            let id = f.0.to_string();
            let labels = [("flow", id.as_str())];
            match reg.snapshot().get("net_flow_losses_total", &labels) {
                Some(SampleValue::Counter(n)) => *n,
                other => panic!("missing loss counter: {other:?}"),
            }
        };
        assert_eq!(after_first, sim.total_losses(f));
        assert!(after_first > 0, "64 streams on 1 GB/s must lose packets");
        // Re-export is idempotent when nothing advanced.
        export_dynamic(&mut reg, &net, &sim);
        let id = f.0.to_string();
        let labels = [("flow", id.as_str())];
        match reg.snapshot().get("net_flow_losses_total", &labels) {
            Some(SampleValue::Counter(n)) => assert_eq!(*n, after_first),
            other => panic!("missing loss counter: {other:?}"),
        }
    }

    #[test]
    fn export_does_not_perturb_simulation() {
        let run = |export: bool| {
            let (net, f) = net_with_flow(8);
            let mut sim = DynamicSim::new(42);
            sim.sync_streams(&net);
            let mut rates = Vec::new();
            for _ in 0..100 {
                let stats = sim.step(&net, 0.05);
                rates.push(stats[&f].rate_mbs);
                if export {
                    let mut reg = MetricsRegistry::new();
                    export_network(&mut reg, &net);
                    export_dynamic(&mut reg, &net, &sim);
                }
            }
            rates
        };
        assert_eq!(run(false), run(true));
    }
}
