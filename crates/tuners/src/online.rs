//! Online driver utility: run a tuner against a *time-varying* black-box
//! objective for a fixed number of control epochs.
//!
//! This is the skeleton every experiment driver in the workspace follows
//! (the paper's `while s' > 0` loop), extracted so downstream users can
//! point a tuner at any `FnMut(epoch, &Point) -> f64` — a live measurement,
//! a simulator, a replayed trace — without writing the loop themselves.

use crate::domain::Point;
use crate::tuner::OnlineTuner;

/// One step of an online run.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineStep {
    /// Control-epoch index (0-based).
    pub epoch: usize,
    /// The point evaluated.
    pub x: Point,
    /// The observed objective value.
    pub value: f64,
}

/// The trajectory of an online run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineTrajectory {
    /// Every step in order.
    pub steps: Vec<OnlineStep>,
}

impl OnlineTrajectory {
    /// The step with the best observed value, if any.
    pub fn best(&self) -> Option<&OnlineStep> {
        self.steps.iter().max_by(|a, b| {
            a.value
                .partial_cmp(&b.value)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Mean value over epochs in `[from, to)`.
    pub fn mean_between(&self, from: usize, to: usize) -> Option<f64> {
        let v: Vec<f64> = self
            .steps
            .iter()
            .filter(|s| s.epoch >= from && s.epoch < to)
            .map(|s| s.value)
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    /// The final point.
    pub fn final_point(&self) -> Option<&Point> {
        self.steps.last().map(|s| &s.x)
    }

    /// Distinct points visited, in first-seen order.
    pub fn distinct_points(&self) -> Vec<Point> {
        let mut seen = Vec::new();
        for s in &self.steps {
            if !seen.contains(&s.x) {
                seen.push(s.x.clone());
            }
        }
        seen
    }
}

/// Drive `tuner` for `epochs` control epochs against `objective(epoch, x)`.
///
/// Unlike [`crate::offline::maximize`], nothing is memoized — the objective
/// may change between epochs (that is the point), so every epoch costs one
/// evaluation.
///
/// # Panics
/// Panics if `epochs` is zero.
pub fn run_online<F>(
    tuner: &mut dyn OnlineTuner,
    epochs: usize,
    mut objective: F,
) -> OnlineTrajectory
where
    F: FnMut(usize, &Point) -> f64,
{
    assert!(epochs > 0, "need at least one epoch");
    let mut traj = OnlineTrajectory::default();
    let mut x = tuner.initial();
    for epoch in 0..epochs {
        let value = objective(epoch, &x);
        traj.steps.push(OnlineStep {
            epoch,
            x: x.clone(),
            value,
        });
        x = tuner.observe(&x, value);
    }
    traj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compass::CompassTuner;
    use crate::domain::Domain;

    #[test]
    fn tracks_a_moving_peak() {
        let mut t = CompassTuner::new(Domain::new(&[(1, 128)]), vec![2], 8.0, 5.0);
        let traj = run_online(&mut t, 120, |epoch, x| {
            let peak = if epoch < 60 { 20 } else { 90 };
            4000.0 - ((x[0] - peak) as f64).powi(2)
        });
        assert_eq!(traj.steps.len(), 120);
        let early = traj.mean_between(40, 60).unwrap();
        let late = traj.mean_between(100, 120).unwrap();
        assert!(
            early > 3900.0,
            "should have converged near the first peak: {early}"
        );
        assert!(late > 3700.0, "should have re-found the moved peak: {late}");
        assert!(
            (traj.final_point().unwrap()[0] - 90).abs() <= 10,
            "final point {:?}",
            traj.final_point()
        );
    }

    #[test]
    fn trajectory_helpers() {
        let mut t = CompassTuner::new(Domain::new(&[(1, 64)]), vec![2], 8.0, 5.0);
        let traj = run_online(&mut t, 40, |_, x| -((x[0] - 10) as f64).abs());
        let best = traj.best().unwrap();
        assert!((best.x[0] - 10).abs() <= 1, "best {:?}", best);
        assert!(traj.distinct_points().len() > 1);
        assert!(traj.mean_between(100, 200).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_epochs_rejected() {
        let mut t = CompassTuner::new(Domain::new(&[(1, 4)]), vec![1], 2.0, 5.0);
        run_online(&mut t, 0, |_, _| 0.0);
    }
}
