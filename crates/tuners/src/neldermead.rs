//! Algorithm 3: the Nelder–Mead simplex tuner (`nm-tuner`).
//!
//! Nelder–Mead navigates an `m`-dimensional search space with a simplex of
//! `m+1` vertices, replacing the worst vertex each iteration via reflection,
//! expansion, contraction, or — when all else fails — shrinking the whole
//! simplex toward the best vertex. The paper uses the customary coefficients
//! `(R, E, C, S) = (1, 2, 0.5, 0.5)` and forces every generated vertex
//! through `fBnd` so the simplex only ever visits bounded integer points,
//! which also makes it degenerate (all vertices equal) in finite time.
//!
//! Like `cs-tuner`, the online wrapper holds the best vertex after the
//! simplex degenerates and re-invokes the search when consecutive epoch
//! throughputs differ by more than `ε%`.

use crate::audit::{AuditLog, DecisionAction, DecisionEvent, RetriggerCause};
use crate::domain::{Domain, Point};
use crate::trigger::SignificanceMonitor;
use crate::tuner::OnlineTuner;

/// Reflection coefficient (paper: 1).
pub const R_COEFF: f64 = 1.0;
/// Expansion coefficient (paper: 2).
pub const E_COEFF: f64 = 2.0;
/// Contraction coefficient (paper: 0.5).
pub const C_COEFF: f64 = 0.5;
/// Shrink coefficient (paper: 0.5).
pub const S_COEFF: f64 = 0.5;

/// Default initial-simplex edge length (matches the compass λ = 8 scale).
const DEFAULT_INIT_EDGE: i64 = 8;

/// Cap on evaluations within one simplex search, per dimension, so integer
/// rounding pathologies cannot stall the transfer in search mode forever.
const MAX_EVALS_PER_DIM: u32 = 60;

#[derive(Debug, Clone)]
enum Phase {
    /// Evaluating initial vertices; `next` is the index being evaluated.
    Init { next: usize },
    /// Waiting for the reflection point's throughput.
    Reflect { xr: Point },
    /// Waiting for the expansion point's throughput.
    Expand { xr: Point, fr: f64, xe: Point },
    /// Waiting for the contraction point's throughput.
    Contract { xc: Point },
    /// Re-evaluating shrunk vertices; `next` is the vertex index.
    Shrink { next: usize },
    /// Simplex degenerated; holding the best point and monitoring.
    Monitor,
}

/// The Nelder–Mead tuner of Algorithm 3.
///
/// # Examples
///
/// ```
/// use xferopt_tuners::{offline::maximize, Domain, NelderMeadTuner};
///
/// let mut tuner = NelderMeadTuner::new(Domain::new(&[(1, 128), (1, 32)]), vec![2, 8], 5.0);
/// let r = maximize(&mut tuner, 300, |x| {
///     -((x[0] - 40) as f64).powi(2) - ((x[1] - 6) as f64).powi(2)
/// });
/// assert!((r.best[0] - 40).abs() <= 8 && (r.best[1] - 6).abs() <= 6);
/// ```
#[derive(Debug, Clone)]
pub struct NelderMeadTuner {
    domain: Domain,
    x0: Point,
    init_edge: i64,
    /// Vertices and their observed throughputs (NaN = not yet evaluated).
    vertices: Vec<(Point, f64)>,
    phase: Phase,
    monitor: SignificanceMonitor,
    evals_this_search: u32,
    searches_started: u64,
    /// Whether the most recent `fBnd` pass projected the generated point off
    /// its nominal (rounded) target. Reset at the top of every `observe`.
    last_projected: bool,
    /// Opt-in decision audit log (disabled by default; purely observational).
    audit: AuditLog,
}

impl NelderMeadTuner {
    /// An nm-tuner starting at `x0` with tolerance `eps_pct` (paper: 5).
    ///
    /// # Panics
    /// Panics if `x0` is outside `domain`.
    pub fn new(domain: Domain, x0: Point, eps_pct: f64) -> Self {
        assert!(domain.contains(&x0), "x0 {x0:?} outside domain");
        let mut t = NelderMeadTuner {
            domain,
            x0: x0.clone(),
            init_edge: DEFAULT_INIT_EDGE,
            vertices: Vec::new(),
            phase: Phase::Monitor,
            monitor: SignificanceMonitor::new(eps_pct),
            evals_this_search: 0,
            searches_started: 0,
            last_projected: false,
            audit: AuditLog::new(),
        };
        t.start_search(x0);
        t
    }

    /// Override the initial simplex edge length.
    ///
    /// # Panics
    /// Panics if `edge` is not positive.
    pub fn with_init_edge(mut self, edge: i64) -> Self {
        assert!(edge > 0, "edge must be positive");
        self.init_edge = edge;
        let from = self
            .vertices
            .first()
            .map(|v| v.0.clone())
            .unwrap_or_else(|| self.x0.clone());
        self.searches_started -= 1;
        self.start_search(from);
        self
    }

    /// Number of search invocations so far (1 initial + re-triggers).
    pub fn searches_started(&self) -> u64 {
        self.searches_started
    }

    /// Current best vertex.
    pub fn best(&self) -> &Point {
        &self.vertices[0].0
    }

    /// Build the initial simplex around `from` and enter the Init phase.
    fn start_search(&mut self, from: Point) {
        let m = self.domain.dim();
        let mut vertices = vec![(from.clone(), f64::NAN)];
        for axis in 0..m {
            let mut v: Vec<f64> = from.iter().map(|&c| c as f64).collect();
            v[axis] += self.init_edge as f64;
            let mut p = self.domain.fbnd(&v);
            if p == from {
                // Offset clipped at the bound; go the other way.
                v[axis] -= 2.0 * self.init_edge as f64;
                p = self.domain.fbnd(&v);
            }
            vertices.push((p, f64::NAN));
        }
        self.vertices = vertices;
        self.phase = Phase::Init { next: 0 };
        self.monitor.reset();
        self.evals_this_search = 0;
        self.searches_started += 1;
    }

    /// Sort vertices best-first (descending throughput — we maximize).
    fn order(&mut self) {
        self.vertices
            .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    }

    /// Centroid of all vertices except the worst.
    fn centroid(&self) -> Vec<f64> {
        let m = self.domain.dim();
        let mut c = vec![0.0; m];
        for (p, _) in &self.vertices[..self.vertices.len() - 1] {
            for (ci, &pi) in c.iter_mut().zip(p) {
                *ci += pi as f64;
            }
        }
        for ci in &mut c {
            *ci /= (self.vertices.len() - 1) as f64;
        }
        c
    }

    /// True when every vertex is the same integer point.
    fn degenerate(&self) -> bool {
        self.vertices.windows(2).all(|w| w[0].0 == w[1].0)
    }

    fn combine(&mut self, centroid: &[f64], toward: &Point, coeff: f64) -> Point {
        let v: Vec<f64> = centroid
            .iter()
            .zip(toward)
            .map(|(&c, &t)| c + coeff * (t as f64 - c))
            .collect();
        let p = self.domain.fbnd(&v);
        let raw: Point = v.iter().map(|&c| c.round() as i64).collect();
        self.last_projected = p != raw;
        p
    }

    /// Record one audited decision (no-op while the log is disabled).
    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        x: &Point,
        observed: f64,
        action: DecisionAction,
        accepted: Option<bool>,
        next: &Point,
        delta_pct: Option<f64>,
        retrigger: Option<RetriggerCause>,
    ) {
        self.audit.record(DecisionEvent {
            seq: 0,
            tuner: "nm-tuner",
            x: x.clone(),
            observed,
            action,
            accepted,
            next: next.clone(),
            lambda: None,
            delta_pct,
            projected: self.last_projected,
            retrigger,
        });
    }

    /// Enter Monitor with the best vertex held.
    fn finish_search(&mut self) -> Point {
        self.order();
        // Holding an existing vertex is never an fBnd projection.
        self.last_projected = false;
        self.phase = Phase::Monitor;
        self.monitor.reset();
        let f_best = self.vertices[0].1;
        if f_best.is_finite() {
            self.monitor.observe(f_best);
        }
        self.vertices[0].0.clone()
    }

    /// Kick off the next NM iteration (order, reflect) or finish when the
    /// simplex has degenerated or the evaluation budget is spent. Returns the
    /// next point to evaluate.
    fn next_iteration(&mut self) -> Point {
        self.order();
        let budget = MAX_EVALS_PER_DIM * self.domain.dim() as u32;
        if self.degenerate() || self.evals_this_search >= budget {
            return self.finish_search();
        }
        // Step 2, Reflect: x_r = x̄ + R(x̄ − x_worst).
        let centroid = self.centroid();
        let worst = self.vertices.last().unwrap().0.clone();
        let xr = self.combine(&centroid, &worst, -R_COEFF);
        if xr == worst && self.vertices.len() == 2 {
            // 1-D pathologies: reflection can be projected back to the worst
            // vertex at a bound — contract instead of re-evaluating it.
            let xc = self.combine(&centroid, &worst, C_COEFF);
            if xc == worst || xc == self.vertices[0].0 {
                return self.finish_search();
            }
            self.phase = Phase::Contract { xc: xc.clone() };
            return xc;
        }
        self.phase = Phase::Reflect { xr: xr.clone() };
        xr
    }

    /// The audited action for the epoch just decided: `Converged` when the
    /// decision finished the search (the phase fell into `Monitor` via
    /// [`Self::finish_search`]), otherwise the phase-specific `action`.
    fn phase_action(&self, action: DecisionAction) -> DecisionAction {
        if matches!(self.phase, Phase::Monitor) {
            DecisionAction::Converged
        } else {
            action
        }
    }

    fn replace_worst(&mut self, p: Point, f: f64) {
        let last = self.vertices.len() - 1;
        self.vertices[last] = (p, f);
    }
}

impl OnlineTuner for NelderMeadTuner {
    fn name(&self) -> &'static str {
        "nm-tuner"
    }

    fn domain(&self) -> &Domain {
        &self.domain
    }

    fn initial(&self) -> Point {
        self.vertices
            .first()
            .map(|v| v.0.clone())
            .unwrap_or_else(|| self.x0.clone())
    }

    fn observe(&mut self, x: &Point, throughput: f64) -> Point {
        self.evals_this_search = self.evals_this_search.saturating_add(1);
        self.last_projected = false;
        match std::mem::replace(&mut self.phase, Phase::Monitor) {
            Phase::Init { next } => {
                debug_assert_eq!(x, &self.vertices[next].0, "init vertex mismatch");
                self.vertices[next].1 = throughput;
                let nxt = if next + 1 < self.vertices.len() {
                    self.phase = Phase::Init { next: next + 1 };
                    self.vertices[next + 1].0.clone()
                } else {
                    self.next_iteration()
                };
                let action = self.phase_action(DecisionAction::InitVertex);
                self.record(x, throughput, action, None, &nxt, None, None);
                nxt
            }
            Phase::Reflect { xr } => {
                debug_assert_eq!(x, &xr, "reflect point mismatch");
                let fr = throughput;
                let f_best = self.vertices[0].1;
                let f_worst = self.vertices.last().unwrap().1;
                let (nxt, accepted) = if fr > f_best {
                    // Step 3, Expand: x_e = x̄ + E(x_r − x̄).
                    let centroid = self.centroid();
                    let xe = self.combine(&centroid, &xr, E_COEFF);
                    if xe == xr {
                        // Projection collapsed the expansion: accept reflect.
                        self.replace_worst(xr, fr);
                        (self.next_iteration(), true)
                    } else {
                        self.phase = Phase::Expand {
                            xr: xr.clone(),
                            fr,
                            xe: xe.clone(),
                        };
                        (xe, true)
                    }
                } else if fr > f_worst {
                    // Accept the reflection (paper: f_0 ≥ f_r > f_m).
                    self.replace_worst(xr, fr);
                    (self.next_iteration(), true)
                } else {
                    // Step 4, Contract toward the better of x_r and x_worst.
                    let centroid = self.centroid();
                    let worst = self.vertices.last().unwrap().clone();
                    let toward = if fr >= worst.1 {
                        xr.clone()
                    } else {
                        worst.0.clone()
                    };
                    let xc = self.combine(&centroid, &toward, C_COEFF);
                    self.phase = Phase::Contract { xc: xc.clone() };
                    (xc, false)
                };
                let action = self.phase_action(DecisionAction::Reflect);
                self.record(x, throughput, action, Some(accepted), &nxt, None, None);
                nxt
            }
            Phase::Expand { xr, fr, xe } => {
                debug_assert_eq!(x, &xe, "expand point mismatch");
                let fe = throughput;
                let accepted = fe >= fr;
                if accepted {
                    self.replace_worst(xe, fe);
                } else {
                    self.replace_worst(xr, fr);
                }
                let nxt = self.next_iteration();
                let action = self.phase_action(DecisionAction::Expand);
                self.record(x, throughput, action, Some(accepted), &nxt, None, None);
                nxt
            }
            Phase::Contract { xc } => {
                debug_assert_eq!(x, &xc, "contract point mismatch");
                let fc = throughput;
                let f_worst = self.vertices.last().unwrap().1;
                let (nxt, accepted) = if fc >= f_worst {
                    self.replace_worst(xc, fc);
                    (self.next_iteration(), true)
                } else {
                    // Step 5, Shrink every vertex toward the best:
                    // x_j = x_0 + S(x_j − x_0).
                    let best = self.vertices[0].0.clone();
                    for j in 1..self.vertices.len() {
                        let v: Vec<f64> = best
                            .iter()
                            .zip(&self.vertices[j].0)
                            .map(|(&b, &p)| b as f64 + S_COEFF * (p as f64 - b as f64))
                            .collect();
                        let p = self.domain.fbnd(&v);
                        if j == 1 {
                            // The next proposal is vertex 1; note its fBnd
                            // projection for the audit record.
                            let raw: Point = v.iter().map(|&c| c.round() as i64).collect();
                            self.last_projected = p != raw;
                        }
                        self.vertices[j] = (p, f64::NAN);
                    }
                    if self.degenerate() {
                        // Shrinking collapsed the simplex outright.
                        (self.finish_search(), false)
                    } else {
                        self.phase = Phase::Shrink { next: 1 };
                        (self.vertices[1].0.clone(), false)
                    }
                };
                let action = self.phase_action(DecisionAction::Contract);
                self.record(x, throughput, action, Some(accepted), &nxt, None, None);
                nxt
            }
            Phase::Shrink { next } => {
                debug_assert_eq!(x, &self.vertices[next].0, "shrink vertex mismatch");
                self.vertices[next].1 = throughput;
                let nxt = if next + 1 < self.vertices.len() {
                    self.phase = Phase::Shrink { next: next + 1 };
                    self.vertices[next + 1].0.clone()
                } else {
                    self.next_iteration()
                };
                let action = self.phase_action(DecisionAction::Shrink);
                self.record(x, throughput, action, None, &nxt, None, None);
                nxt
            }
            Phase::Monitor => {
                let delta_pct = self.monitor.peek_delta_pct(throughput);
                if self.monitor.observe(throughput) {
                    // Significant change: re-run Nelder–Mead from the held
                    // point (Algorithm 3 line 37).
                    let cause = match delta_pct {
                        Some(d) if d == f64::INFINITY => RetriggerCause::ZeroRecovery,
                        Some(d) => RetriggerCause::SignificantDelta {
                            delta_pct: d,
                            eps_pct: self.monitor.eps_pct(),
                        },
                        None => RetriggerCause::ZeroRecovery,
                    };
                    let from = self.vertices[0].0.clone();
                    self.start_search(from);
                    let nxt = self.vertices[0].0.clone();
                    self.record(
                        x,
                        throughput,
                        DecisionAction::Retrigger,
                        None,
                        &nxt,
                        delta_pct,
                        Some(cause),
                    );
                    nxt
                } else {
                    self.phase = Phase::Monitor;
                    let nxt = self.vertices[0].0.clone();
                    self.record(
                        x,
                        throughput,
                        DecisionAction::Monitor,
                        None,
                        &nxt,
                        delta_pct,
                        None,
                    );
                    nxt
                }
            }
        }
    }

    fn enable_audit(&mut self) {
        self.audit.enable();
    }

    fn audit_log(&self) -> Option<&AuditLog> {
        Some(&self.audit)
    }

    fn audit_log_mut(&mut self) -> Option<&mut AuditLog> {
        Some(&mut self.audit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<F: FnMut(&Point) -> f64>(
        tuner: &mut dyn OnlineTuner,
        epochs: usize,
        mut f: F,
    ) -> Vec<Point> {
        let mut x = tuner.initial();
        let mut traj = vec![x.clone()];
        for _ in 0..epochs {
            let fx = f(&x);
            x = tuner.observe(&x.clone(), fx);
            traj.push(x.clone());
        }
        traj
    }

    fn concave_1d(peak: i64) -> impl FnMut(&Point) -> f64 {
        move |x: &Point| 4000.0 - ((x[0] - peak) as f64).powi(2) * 2.0
    }

    #[test]
    fn finds_1d_peak() {
        let mut t = NelderMeadTuner::new(Domain::paper_nc(), vec![2], 5.0);
        let traj = drive(&mut t, 60, concave_1d(40));
        let last = traj.last().unwrap();
        assert!(
            (last[0] - 40).abs() <= 6,
            "nm should end near 40: {last:?} (traj {traj:?})"
        );
    }

    #[test]
    fn expansion_accelerates_toward_distant_peak() {
        // Paper: nm-tuner "can rapidly move to the critical point using
        // reflection and expansion".
        let mut t = NelderMeadTuner::new(Domain::paper_nc(), vec![2], 5.0);
        let traj = drive(&mut t, 20, concave_1d(100));
        let best = traj.iter().map(|p| p[0]).max().unwrap();
        assert!(
            best >= 50,
            "expansion should cover ground fast; best in 20 epochs = {best}"
        );
    }

    #[test]
    fn converges_and_holds_on_quiet_objective() {
        let mut t = NelderMeadTuner::new(Domain::paper_nc(), vec![2], 5.0);
        let traj = drive(&mut t, 80, concave_1d(20));
        let tail = &traj[60..];
        assert!(
            tail.windows(2).all(|w| w[0] == w[1]),
            "simplex must degenerate and hold: {tail:?}"
        );
        assert_eq!(t.searches_started(), 1);
    }

    #[test]
    fn retriggers_on_environment_change() {
        let mut t = NelderMeadTuner::new(Domain::paper_nc(), vec![2], 5.0);
        let mut x = t.initial();
        for epoch in 0..160 {
            let peak = if epoch < 70 { 12 } else { 70 };
            let fx = 4000.0 - ((x[0] - peak) as f64).powi(2) * 2.0;
            x = t.observe(&x.clone(), fx);
        }
        assert!(t.searches_started() >= 2);
        assert!(
            (x[0] - 70).abs() <= 12,
            "should track the moved peak: ended at {x:?}"
        );
    }

    #[test]
    fn two_dim_finds_joint_peak() {
        let f = |x: &Point| {
            4000.0 - ((x[0] - 30) as f64).powi(2) * 3.0 - ((x[1] - 10) as f64).powi(2) * 30.0
        };
        let mut t = NelderMeadTuner::new(Domain::paper_nc_np(), vec![2, 8], 5.0);
        let traj = drive(&mut t, 120, f);
        let last = traj.last().unwrap();
        assert!(
            (last[0] - 30).abs() <= 8 && (last[1] - 10).abs() <= 5,
            "2-D nm should end near (30, 10): {last:?}"
        );
    }

    #[test]
    fn all_points_stay_in_domain() {
        let domain = Domain::new(&[(1, 16), (1, 4)]);
        let mut t = NelderMeadTuner::new(domain.clone(), vec![15, 3], 5.0);
        let traj = drive(&mut t, 60, |x| (x[0] * x[1]) as f64);
        for p in &traj {
            assert!(domain.contains(p), "out-of-domain vertex {p:?}");
        }
    }

    #[test]
    fn search_terminates_within_budget() {
        // A noisy objective that never looks flat: the evaluation budget must
        // still force the search to finish (monitor phase reached).
        let mut t = NelderMeadTuner::new(Domain::paper_nc(), vec![2], 5.0);
        let mut x = t.initial();
        let mut k = 0u64;
        for _ in 0..200 {
            // Deterministic pseudo-noise.
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = (k >> 33) as f64 / 2e9;
            x = t.observe(&x.clone(), 1000.0 + noise * 2000.0);
        }
        // If the search were still running the phase would keep proposing new
        // points; after budget exhaustion + monitor, re-triggers restart
        // searches but each one is bounded. Just assert we are alive and in
        // domain — the real check is that this test terminates.
        assert!(t.domain().contains(&x));
    }

    #[test]
    fn starting_at_bound_builds_inward_simplex() {
        let domain = Domain::new(&[(1, 64)]);
        let mut t = NelderMeadTuner::new(domain, vec![64], 5.0);
        let traj = drive(&mut t, 10, concave_1d(64));
        // The second vertex must have gone inward (64-8=56), not clipped onto 64.
        assert!(
            traj.iter().any(|p| p[0] == 56),
            "inward initial vertex expected: {traj:?}"
        );
    }

    #[test]
    fn with_init_edge_changes_spread() {
        let mut t = NelderMeadTuner::new(Domain::paper_nc(), vec![2], 5.0).with_init_edge(32);
        let traj = drive(&mut t, 3, |x| x[0] as f64);
        assert!(
            traj.iter().any(|p| p[0] == 34),
            "edge-32 initial vertex expected: {traj:?}"
        );
        assert_eq!(t.searches_started(), 1);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn rejects_bad_start() {
        NelderMeadTuner::new(Domain::paper_nc(), vec![600], 5.0);
    }
}
