//! Baseline strategies from the paper's evaluation.
//!
//! * [`StaticTuner`] — the Globus transfer service `default`: fixed
//!   parameters for the whole transfer (`nc=2, np=8` for large files).
//! * [`Heur1Tuner`] — Balman & Kosar's dynamic adaptation: compare the last
//!   two throughputs and **additively increase** the stream count while the
//!   gain is significant. Extended to several parameters the same way
//!   cd-tuner is (the paper does exactly this for Fig. 10). No decrease rule.
//! * [`Heur2Tuner`] — Yildirim et al.'s expert heuristic: **exponentially
//!   increase** parallelism/concurrency until throughput stops improving.
//!   Aggressive and fast, but with no decrement mechanism: started above the
//!   critical point it stays there (the failure mode the paper calls out).

use crate::domain::{Domain, Point};
use crate::tuner::OnlineTuner;

/// The static `default` baseline: never changes its parameters.
#[derive(Debug, Clone)]
pub struct StaticTuner {
    domain: Domain,
    x: Point,
}

impl StaticTuner {
    /// A static tuner pinned at `x`.
    ///
    /// # Panics
    /// Panics if `x` is outside `domain`.
    pub fn new(domain: Domain, x: Point) -> Self {
        assert!(domain.contains(&x), "x {x:?} outside domain");
        StaticTuner { domain, x }
    }
}

impl OnlineTuner for StaticTuner {
    fn name(&self) -> &'static str {
        "default"
    }
    fn domain(&self) -> &Domain {
        &self.domain
    }
    fn initial(&self) -> Point {
        self.x.clone()
    }
    fn observe(&mut self, _x: &Point, _throughput: f64) -> Point {
        self.x.clone()
    }
}

/// Balman's additive heuristic (`heur1`).
#[derive(Debug, Clone)]
pub struct Heur1Tuner {
    domain: Domain,
    x0: Point,
    eps_pct: f64,
    axis: usize,
    /// Throughput of the previous epoch.
    last_f: Option<f64>,
    /// Whether the previous epoch's point was an upward probe on `axis`.
    probing: bool,
    /// Axes that have stopped improving (all done = settled).
    exhausted: Vec<bool>,
}

impl Heur1Tuner {
    /// A heur1 tuner starting at `x0` with significance tolerance `eps_pct`.
    ///
    /// # Panics
    /// Panics if `x0` is outside `domain`.
    pub fn new(domain: Domain, x0: Point, eps_pct: f64) -> Self {
        assert!(domain.contains(&x0), "x0 {x0:?} outside domain");
        assert!(eps_pct >= 0.0, "tolerance must be non-negative");
        let dim = domain.dim();
        Heur1Tuner {
            domain,
            x0,
            eps_pct,
            axis: 0,
            last_f: None,
            probing: false,
            exhausted: vec![false; dim],
        }
    }

    fn step_axis(&self, x: &Point, delta: i64) -> Point {
        let mut next = x.clone();
        next[self.axis] += delta;
        self.domain.clamp(&next)
    }

    fn advance_axis(&mut self) {
        self.exhausted[self.axis] = true;
        if let Some(next) = (0..self.domain.dim()).find(|&a| !self.exhausted[a]) {
            self.axis = next;
            self.last_f = None;
            self.probing = false;
        }
    }

    fn settled(&self) -> bool {
        self.exhausted.iter().all(|&e| e)
    }
}

impl OnlineTuner for Heur1Tuner {
    fn name(&self) -> &'static str {
        "heur1"
    }
    fn domain(&self) -> &Domain {
        &self.domain
    }
    fn initial(&self) -> Point {
        self.x0.clone()
    }

    fn observe(&mut self, x: &Point, throughput: f64) -> Point {
        if self.settled() {
            return x.clone();
        }
        let Some(prev) = self.last_f.replace(throughput) else {
            // First observation on this axis: probe one step up.
            self.probing = true;
            let probe = self.step_axis(x, 1);
            if probe == *x {
                // Already at the bound: nothing to gain on this axis.
                self.advance_axis();
            }
            return probe;
        };
        let gain_pct = if prev.abs() < f64::EPSILON {
            if throughput > f64::EPSILON {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            100.0 * (throughput - prev) / prev.abs()
        };
        if self.probing && gain_pct > self.eps_pct {
            // Keep climbing additively.
            let next = self.step_axis(x, 1);
            if next == *x {
                self.advance_axis();
            }
            next
        } else {
            // No significant gain: this axis is done. heur1 has no decrement
            // rule, so the current value stands.
            self.advance_axis();
            if self.settled() {
                x.clone()
            } else {
                // Probe the next axis immediately.
                self.probing = true;
                self.last_f = Some(throughput);
                let probe = self.step_axis(x, 1);
                if probe == *x {
                    self.advance_axis();
                }
                probe
            }
        }
    }
}

/// Yildirim's exponential heuristic (`heur2`).
#[derive(Debug, Clone)]
pub struct Heur2Tuner {
    domain: Domain,
    x0: Point,
    eps_pct: f64,
    axis: usize,
    last_f: Option<f64>,
    probing: bool,
    exhausted: Vec<bool>,
}

impl Heur2Tuner {
    /// A heur2 tuner starting at `x0` with significance tolerance `eps_pct`.
    ///
    /// # Panics
    /// Panics if `x0` is outside `domain`.
    pub fn new(domain: Domain, x0: Point, eps_pct: f64) -> Self {
        assert!(domain.contains(&x0), "x0 {x0:?} outside domain");
        assert!(eps_pct >= 0.0, "tolerance must be non-negative");
        let dim = domain.dim();
        Heur2Tuner {
            domain,
            x0,
            eps_pct,
            axis: 0,
            last_f: None,
            probing: false,
            exhausted: vec![false; dim],
        }
    }

    /// Double the current axis value (clamped).
    fn double_axis(&self, x: &Point) -> Point {
        let mut next = x.clone();
        next[self.axis] = next[self.axis].saturating_mul(2).max(1);
        self.domain.clamp(&next)
    }

    fn advance_axis(&mut self) {
        self.exhausted[self.axis] = true;
        if let Some(next) = (0..self.domain.dim()).find(|&a| !self.exhausted[a]) {
            self.axis = next;
            self.last_f = None;
            self.probing = false;
        }
    }

    fn settled(&self) -> bool {
        self.exhausted.iter().all(|&e| e)
    }
}

impl OnlineTuner for Heur2Tuner {
    fn name(&self) -> &'static str {
        "heur2"
    }
    fn domain(&self) -> &Domain {
        &self.domain
    }
    fn initial(&self) -> Point {
        self.x0.clone()
    }

    fn observe(&mut self, x: &Point, throughput: f64) -> Point {
        if self.settled() {
            return x.clone();
        }
        let Some(prev) = self.last_f.replace(throughput) else {
            self.probing = true;
            let probe = self.double_axis(x);
            if probe == *x {
                self.advance_axis();
            }
            return probe;
        };
        let gain_pct = if prev.abs() < f64::EPSILON {
            if throughput > f64::EPSILON {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            100.0 * (throughput - prev) / prev.abs()
        };
        if self.probing && gain_pct > self.eps_pct {
            let next = self.double_axis(x);
            if next == *x {
                self.advance_axis();
            }
            next
        } else {
            // Improvement stopped. heur2 has no decrement mechanism — it
            // terminates with whatever value it reached (the paper's
            // criticism when started above the critical point).
            self.advance_axis();
            if self.settled() {
                x.clone()
            } else {
                self.probing = true;
                self.last_f = Some(throughput);
                let probe = self.double_axis(x);
                if probe == *x {
                    self.advance_axis();
                }
                probe
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<F: FnMut(&Point) -> f64>(
        tuner: &mut dyn OnlineTuner,
        epochs: usize,
        mut f: F,
    ) -> Vec<Point> {
        let mut x = tuner.initial();
        let mut traj = vec![x.clone()];
        for _ in 0..epochs {
            let fx = f(&x);
            x = tuner.observe(&x.clone(), fx);
            traj.push(x.clone());
        }
        traj
    }

    fn concave_1d(peak: i64) -> impl FnMut(&Point) -> f64 {
        move |x: &Point| 4000.0 - ((x[0] - peak) as f64).powi(2) * 2.0
    }

    #[test]
    fn static_never_moves() {
        let mut t = StaticTuner::new(Domain::paper_nc_np(), vec![2, 8]);
        let traj = drive(&mut t, 20, |_| 1000.0);
        assert!(traj.iter().all(|p| p == &vec![2, 8]));
    }

    #[test]
    fn heur1_climbs_additively() {
        let mut t = Heur1Tuner::new(Domain::paper_nc(), vec![2], 1.0);
        let traj = drive(&mut t, 40, concave_1d(30));
        for w in traj.windows(2) {
            assert!(
                (w[1][0] - w[0][0]).abs() <= 1,
                "heur1 moves +1 at a time: {w:?}"
            );
        }
        let last = traj.last().unwrap()[0];
        assert!(last >= 20, "heur1 should have climbed: {last}");
    }

    #[test]
    fn heur1_requires_more_epochs_than_exponential() {
        // The paper: heur1's additive increment needs many more control
        // epochs to reach comparable throughput.
        let reach = |tuner: &mut dyn OnlineTuner| {
            let mut x = tuner.initial();
            for epoch in 0..100 {
                let fx = concave_1d(64)(&x);
                x = tuner.observe(&x.clone(), fx);
                if x[0] >= 48 {
                    return epoch;
                }
            }
            100
        };
        let mut h1 = Heur1Tuner::new(Domain::paper_nc(), vec![2], 1.0);
        let mut h2 = Heur2Tuner::new(Domain::paper_nc(), vec![2], 1.0);
        let e1 = reach(&mut h1);
        let e2 = reach(&mut h2);
        assert!(
            e2 * 4 < e1,
            "exponential should be far faster: heur1={e1} heur2={e2}"
        );
    }

    #[test]
    fn heur1_never_decreases() {
        let mut t = Heur1Tuner::new(Domain::paper_nc(), vec![50], 1.0);
        let traj = drive(&mut t, 30, concave_1d(10));
        for w in traj.windows(2) {
            assert!(w[1][0] >= w[0][0], "heur1 has no decrement: {traj:?}");
        }
    }

    #[test]
    fn heur2_doubles_while_improving() {
        let mut t = Heur2Tuner::new(Domain::paper_nc(), vec![2], 1.0);
        let traj = drive(&mut t, 12, concave_1d(100));
        // Expect 2 -> 4 -> 8 -> 16 -> 32 -> 64 then stop (128 overshoots).
        assert!(traj.contains(&vec![4]));
        assert!(traj.contains(&vec![8]));
        assert!(traj.contains(&vec![16]));
        assert!(traj.contains(&vec![32]));
        assert!(traj.contains(&vec![64]));
    }

    #[test]
    fn heur2_stuck_above_critical_point() {
        // The paper's criticism: started above the critical value, heur2 has
        // no way down and terminates with poor settings.
        let mut t = Heur2Tuner::new(Domain::paper_nc(), vec![128], 1.0);
        let traj = drive(&mut t, 20, concave_1d(8));
        let last = traj.last().unwrap()[0];
        assert!(
            last >= 128,
            "heur2 must not decrease below its start: {last}"
        );
    }

    #[test]
    fn heur2_two_dim_tunes_both_axes() {
        let f = |x: &Point| (x[0].min(32) * 10 + x[1].min(16) * 10) as f64;
        let mut t = Heur2Tuner::new(Domain::paper_nc_np(), vec![2, 2], 1.0);
        let traj = drive(&mut t, 30, f);
        let last = traj.last().unwrap();
        assert!(last[0] >= 32, "nc should have grown: {last:?}");
        assert!(last[1] >= 16, "np should have grown: {last:?}");
    }

    #[test]
    fn heur1_settles_flat_objective() {
        let mut t = Heur1Tuner::new(Domain::paper_nc_np(), vec![2, 8], 5.0);
        let traj = drive(&mut t, 20, |_| 1000.0);
        let tail = &traj[6..];
        assert!(
            tail.windows(2).all(|w| w[0] == w[1]),
            "flat objective must settle heur1: {traj:?}"
        );
    }

    #[test]
    fn bounds_respected_at_extremes() {
        let d = Domain::new(&[(1, 8)]);
        let mut t = Heur2Tuner::new(d.clone(), vec![8], 1.0);
        let traj = drive(&mut t, 10, |x| x[0] as f64);
        assert!(traj.iter().all(|p| d.contains(p)));
        let mut t = Heur1Tuner::new(d.clone(), vec![8], 1.0);
        let traj = drive(&mut t, 10, |x| x[0] as f64);
        assert!(traj.iter().all(|p| d.contains(p)));
    }
}
