//! History-surrogate tuner (`history`): offline knowledge, online refinement.
//!
//! Following the two-phase design of Nine et al. (arXiv:1707.09455), the
//! [`HistoryTuner`] first mines previously *stored* observations — `(point,
//! throughput)` pairs harvested from earlier transfers in the same context —
//! into a cheap surrogate model, jumps straight to the surrogate's predicted
//! optimum, and then refines that prediction with **adaptive sampling**: a
//! shrinking compass pattern around the incumbent, exactly the real-time
//! half of the paper's offline-analysis + online-probing loop.
//!
//! The surrogate is deliberately simple and fully deterministic:
//!
//! 1. **Cluster**: samples at the same integer point are averaged (one
//!    centroid per distinct point), and the centroids are sorted
//!    lexicographically so iteration order never depends on insertion order.
//! 2. **Interpolate**: inverse-squared-distance weighting in `ln(1+x)`
//!    space — throughput curves are near-linear in the log of the stream
//!    counts, so log-space distances weight neighbours sensibly across the
//!    decades of a `[1, 512]` domain.
//! 3. **Predict**: the surrogate is evaluated over a power-of-two ladder per
//!    dimension plus every centroid; the argmax (lexicographically smallest
//!    on ties) is the jump target.
//!
//! With no stored samples the tuner degrades gracefully into plain adaptive
//! sampling from the start point, so the cold variant is still a working
//! (if unremarkable) direct-search tuner.

use crate::audit::{AuditLog, DecisionAction, DecisionEvent, RetriggerCause};
use crate::domain::{Domain, Point};
use crate::trigger::SignificanceMonitor;
use crate::tuner::OnlineTuner;

/// Divisor of the largest domain span for the cold-start sampling step.
const COLD_STEP_DIV: i64 = 8;
/// Divisor of the largest domain span for the post-retrigger sampling step.
const RETRIGGER_STEP_DIV: i64 = 16;

/// Lifecycle of the surrogate-then-refine loop.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Waiting for the first observation (at the caller's start point).
    Init,
    /// Waiting for the measurement at the surrogate's predicted optimum.
    Jump,
    /// Adaptive compass sampling around the incumbent.
    Sampling,
    /// Converged: holding the incumbent under the ε% monitor.
    Hold,
}

/// The history-surrogate tuner.
///
/// # Examples
///
/// ```
/// use xferopt_tuners::{Domain, HistoryTuner, OnlineTuner};
///
/// // Three stored runs say nc≈32 was best on this context.
/// let samples = vec![
///     (vec![2], 400.0),
///     (vec![32], 2500.0),
///     (vec![256], 900.0),
/// ];
/// let mut tuner =
///     HistoryTuner::new(Domain::paper_nc(), vec![2], 5.0).with_samples(&samples);
/// let x = tuner.initial();
/// assert_eq!(x, vec![2], "initial() is always the caller's start point");
/// let jump = tuner.observe(&x, 400.0);
/// assert_eq!(jump, vec![32], "first decision jumps to the predicted optimum");
/// ```
#[derive(Debug, Clone)]
pub struct HistoryTuner {
    domain: Domain,
    x0: Point,
    /// Clustered `(point, mean throughput)` centroids, lexicographic order.
    samples: Vec<(Point, f64)>,
    phase: Phase,
    /// Incumbent point and its measured throughput.
    center: Point,
    f_center: f64,
    /// Surrogate argmax (None when no samples were stored).
    predicted: Option<Point>,
    /// Current compass step and position within the probe round.
    step: f64,
    dir_idx: usize,
    /// Probe awaiting its measurement.
    pending: Option<Point>,
    monitor: SignificanceMonitor,
    audit: AuditLog,
}

impl HistoryTuner {
    /// A cold history tuner over `domain` starting at `x0` with monitor
    /// tolerance `eps_pct` (the paper uses 5). Attach stored observations
    /// with [`with_samples`](Self::with_samples).
    ///
    /// # Panics
    /// Panics if `x0` is outside `domain` or `eps_pct` is negative.
    pub fn new(domain: Domain, x0: Point, eps_pct: f64) -> Self {
        assert!(domain.contains(&x0), "x0 {x0:?} outside domain");
        HistoryTuner {
            center: x0.clone(),
            x0,
            samples: Vec::new(),
            phase: Phase::Init,
            f_center: f64::NEG_INFINITY,
            predicted: None,
            step: Self::initial_step(&domain, COLD_STEP_DIV),
            dir_idx: 0,
            pending: None,
            monitor: SignificanceMonitor::new(eps_pct),
            domain,
            audit: AuditLog::new(),
        }
    }

    /// Attach stored `(point, throughput)` observations. Points are clamped
    /// into the domain, clustered (same point → mean throughput), sorted,
    /// and the surrogate's predicted optimum is computed eagerly. Negative
    /// and non-finite throughputs are dropped.
    #[must_use]
    pub fn with_samples(mut self, samples: &[(Point, f64)]) -> Self {
        let mut cleaned: Vec<(Point, f64)> = samples
            .iter()
            .filter(|(p, v)| p.len() == self.domain.dim() && v.is_finite() && *v >= 0.0)
            .map(|(p, v)| (self.domain.clamp(p), *v))
            .collect();
        cleaned.sort_by(|a, b| a.0.cmp(&b.0));
        // Cluster: one centroid per distinct point, mean throughput.
        let mut clustered: Vec<(Point, f64)> = Vec::new();
        let mut i = 0;
        while i < cleaned.len() {
            let p = cleaned[i].0.clone();
            let mut sum = 0.0;
            let mut n = 0usize;
            while i < cleaned.len() && cleaned[i].0 == p {
                sum += cleaned[i].1;
                n += 1;
                i += 1;
            }
            clustered.push((p, sum / n as f64));
        }
        self.samples = clustered;
        self.predicted = self.predict_optimum();
        self
    }

    /// Number of clustered history centroids backing the surrogate.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// The surrogate's predicted optimum, if any history was attached.
    pub fn predicted_optimum(&self) -> Option<&Point> {
        self.predicted.as_ref()
    }

    fn initial_step(domain: &Domain, div: i64) -> f64 {
        let span = domain
            .lo()
            .iter()
            .zip(domain.hi())
            .map(|(&lo, &hi)| hi - lo)
            .max()
            .unwrap_or(1);
        ((span / div).max(1)) as f64
    }

    /// Log-space inverse-squared-distance interpolation of the surrogate.
    fn surrogate(&self, p: &Point) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for (q, v) in &self.samples {
            let d2: f64 = p
                .iter()
                .zip(q)
                .map(|(&a, &b)| {
                    let la = ((1 + a.max(0)) as f64).ln();
                    let lb = ((1 + b.max(0)) as f64).ln();
                    (la - lb) * (la - lb)
                })
                .sum();
            if d2 == 0.0 {
                return *v;
            }
            let w = 1.0 / d2;
            num += w * v;
            den += w;
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// Candidate grid: per-dimension power-of-two ladder (plus both bounds),
    /// crossed, plus every centroid; lexicographically sorted and deduped.
    fn candidates(&self) -> Vec<Point> {
        let mut per_dim: Vec<Vec<i64>> = Vec::with_capacity(self.domain.dim());
        for (&lo, &hi) in self.domain.lo().iter().zip(self.domain.hi()) {
            let mut vals = vec![lo, hi];
            let mut v: i64 = 1;
            while v <= hi {
                if v > lo {
                    vals.push(v);
                }
                v *= 2;
            }
            vals.sort_unstable();
            vals.dedup();
            per_dim.push(vals);
        }
        let mut grid: Vec<Point> = vec![Vec::new()];
        for vals in &per_dim {
            let mut next = Vec::with_capacity(grid.len() * vals.len());
            for stem in &grid {
                for &v in vals {
                    let mut p = stem.clone();
                    p.push(v);
                    next.push(p);
                }
            }
            grid = next;
        }
        grid.extend(self.samples.iter().map(|(p, _)| p.clone()));
        grid.sort();
        grid.dedup();
        grid
    }

    /// Argmax of the surrogate over the candidate grid; lexicographically
    /// smallest candidate wins ties, so prediction is fully deterministic.
    fn predict_optimum(&self) -> Option<Point> {
        if self.samples.is_empty() {
            return None;
        }
        let mut best: Option<(Point, f64)> = None;
        for cand in self.candidates() {
            let v = self.surrogate(&cand);
            match &best {
                Some((_, bv)) if v <= *bv => {}
                _ => best = Some((cand, v)),
            }
        }
        best.map(|(p, _)| p)
    }

    /// The next compass probe around the incumbent, halving the step after
    /// each full round without improvement. `None` once the step shrinks
    /// below one (converged).
    fn next_probe(&mut self) -> Option<Point> {
        let dim = self.domain.dim();
        loop {
            if self.dir_idx >= 2 * dim {
                self.dir_idx = 0;
                self.step /= 2.0;
            }
            if self.step < 1.0 {
                return None;
            }
            let axis = self.dir_idx / 2;
            let sign = if self.dir_idx.is_multiple_of(2) {
                1.0
            } else {
                -1.0
            };
            self.dir_idx += 1;
            let mut raw: Vec<f64> = self.center.iter().map(|&c| c as f64).collect();
            raw[axis] += sign * self.step;
            let cand = self.domain.fbnd(&raw);
            if cand != self.center {
                return Some(cand);
            }
        }
    }

    /// Enter the hold state at the incumbent, priming the ε% monitor.
    fn converge(&mut self, x: &Point, observed: f64) -> Point {
        self.phase = Phase::Hold;
        self.pending = None;
        self.monitor.reset();
        self.monitor.observe(self.f_center.max(0.0));
        let next = self.center.clone();
        self.record(
            x,
            observed,
            DecisionAction::Converged,
            None,
            &next,
            None,
            None,
        );
        next
    }

    /// Propose the next probe or converge if the pattern is exhausted.
    fn advance(&mut self, x: &Point, observed: f64, accepted: Option<bool>) -> Point {
        match self.next_probe() {
            Some(probe) => {
                self.pending = Some(probe.clone());
                self.record(
                    x,
                    observed,
                    DecisionAction::CompassProbe,
                    accepted,
                    &probe,
                    None,
                    None,
                );
                probe
            }
            None => self.converge(x, observed),
        }
    }

    /// Record one audited decision (no-op while the log is disabled).
    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        x: &Point,
        observed: f64,
        action: DecisionAction,
        accepted: Option<bool>,
        next: &Point,
        delta_pct: Option<f64>,
        retrigger: Option<RetriggerCause>,
    ) {
        self.audit.record(DecisionEvent {
            seq: 0,
            tuner: "history",
            x: x.clone(),
            observed,
            action,
            accepted,
            next: next.clone(),
            lambda: Some(self.step),
            delta_pct,
            projected: false,
            retrigger,
        });
    }
}

impl OnlineTuner for HistoryTuner {
    fn name(&self) -> &'static str {
        "history"
    }

    fn domain(&self) -> &Domain {
        &self.domain
    }

    fn initial(&self) -> Point {
        self.x0.clone()
    }

    fn observe(&mut self, x: &Point, throughput: f64) -> Point {
        match self.phase {
            Phase::Init => {
                self.center = x.clone();
                self.f_center = throughput;
                match self.predicted.clone() {
                    Some(p) if p != *x => {
                        self.phase = Phase::Jump;
                        self.record(
                            x,
                            throughput,
                            DecisionAction::EvalStart,
                            None,
                            &p,
                            None,
                            None,
                        );
                        p
                    }
                    _ => {
                        self.phase = Phase::Sampling;
                        self.advance(x, throughput, None)
                    }
                }
            }
            Phase::Jump => {
                // Keep the jump target unless it measured strictly worse.
                let accepted = throughput >= self.f_center;
                if accepted {
                    self.center = x.clone();
                    self.f_center = throughput;
                }
                self.phase = Phase::Sampling;
                self.advance(x, throughput, Some(accepted))
            }
            Phase::Sampling => {
                let accepted = throughput > self.f_center;
                if accepted {
                    self.center = x.clone();
                    self.f_center = throughput;
                    // Improvement: restart the probe round at the new center.
                    self.dir_idx = 0;
                }
                self.advance(x, throughput, Some(accepted))
            }
            Phase::Hold => {
                let delta = self.monitor.peek_delta_pct(throughput);
                if self.monitor.observe(throughput) {
                    let cause = match delta {
                        Some(d) if d.is_finite() => RetriggerCause::SignificantDelta {
                            delta_pct: d,
                            eps_pct: self.monitor.eps_pct(),
                        },
                        _ => RetriggerCause::ZeroRecovery,
                    };
                    // Re-sample around the incumbent with a fresh (smaller)
                    // step; conditions changed, so its value is re-anchored.
                    self.f_center = throughput;
                    self.step = Self::initial_step(&self.domain, RETRIGGER_STEP_DIV);
                    self.dir_idx = 0;
                    self.phase = Phase::Sampling;
                    let next = match self.next_probe() {
                        Some(p) => p,
                        None => {
                            // Degenerate domain: nowhere to probe.
                            self.phase = Phase::Hold;
                            self.center.clone()
                        }
                    };
                    self.pending = Some(next.clone());
                    self.record(
                        x,
                        throughput,
                        DecisionAction::Retrigger,
                        None,
                        &next,
                        delta,
                        Some(cause),
                    );
                    return next;
                }
                let next = self.center.clone();
                self.record(
                    x,
                    throughput,
                    DecisionAction::Monitor,
                    None,
                    &next,
                    delta,
                    None,
                );
                next
            }
        }
    }

    fn enable_audit(&mut self) {
        self.audit.enable();
    }

    fn audit_log(&self) -> Option<&AuditLog> {
        Some(&self.audit)
    }

    fn audit_log_mut(&mut self) -> Option<&mut AuditLog> {
        Some(&mut self.audit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn concave(x: &Point, peak: f64) -> f64 {
        let v = x[0] as f64;
        (3000.0 - (v - peak) * (v - peak) * 3.0).max(0.0)
    }

    #[test]
    fn surrogate_jumps_to_the_historical_optimum() {
        let samples = vec![
            (vec![1], 200.0),
            (vec![8], 1400.0),
            (vec![64], 2900.0),
            (vec![512], 700.0),
        ];
        let t = HistoryTuner::new(Domain::paper_nc(), vec![2], 5.0).with_samples(&samples);
        assert_eq!(t.predicted_optimum(), Some(&vec![64]));
    }

    #[test]
    fn clustering_averages_duplicate_points() {
        let samples = vec![(vec![16], 1000.0), (vec![16], 3000.0), (vec![4], 1500.0)];
        let t = HistoryTuner::new(Domain::paper_nc(), vec![2], 5.0).with_samples(&samples);
        assert_eq!(t.sample_count(), 2, "duplicates collapse to one centroid");
        // Mean of (1000, 3000) = 2000 beats 1500 at nc=4.
        assert_eq!(t.predicted_optimum(), Some(&vec![16]));
    }

    #[test]
    fn warm_run_converges_near_the_true_peak() {
        let peak = 48.0;
        let samples = vec![
            (vec![2], concave(&vec![2], peak)),
            (vec![32], concave(&vec![32], peak)),
            (vec![128], concave(&vec![128], peak)),
        ];
        let mut t = HistoryTuner::new(Domain::paper_nc(), vec![2], 5.0).with_samples(&samples);
        let mut x = t.initial();
        let mut best = (x.clone(), concave(&x, peak));
        for _ in 0..80 {
            let f = concave(&x, peak);
            if f > best.1 {
                best = (x.clone(), f);
            }
            x = t.observe(&x.clone(), f);
            assert!(t.domain().contains(&x));
        }
        assert!(
            (best.0[0] - peak as i64).abs() <= 2,
            "best {:?} should be near the peak {peak}",
            best.0
        );
    }

    #[test]
    fn cold_run_still_searches_and_stays_in_domain() {
        let d = Domain::new(&[(1, 64), (1, 8)]);
        let mut t = HistoryTuner::new(d.clone(), vec![2, 1], 5.0);
        assert_eq!(t.predicted_optimum(), None);
        let mut x = t.initial();
        let start = x.clone();
        let f = |p: &Point| 5000.0 - ((p[0] - 20).abs() + (p[1] - 4).abs()) as f64 * 100.0;
        let mut best = f(&start);
        for _ in 0..60 {
            let v = f(&x);
            best = best.max(v);
            x = t.observe(&x.clone(), v);
            assert!(d.contains(&x), "{x:?} escaped {d:?}");
        }
        assert!(best > f(&start), "cold sampling must improve on the start");
    }

    #[test]
    fn converges_then_holds_then_retriggers() {
        let mut t = HistoryTuner::new(Domain::new(&[(1, 16)]), vec![4], 5.0);
        t.enable_audit();
        let mut x = t.initial();
        // Flat objective: every probe fails, step halves to extinction.
        for _ in 0..20 {
            x = t.observe(&x.clone(), 1000.0);
        }
        assert_eq!(x, vec![4], "flat feedback converges on the start");
        let held = x.clone();
        x = t.observe(&x.clone(), 1000.0);
        assert_eq!(x, held, "quiet monitor holds");
        x = t.observe(&x.clone(), 3000.0);
        assert_ne!(x, held, "significant shift must re-trigger sampling");
        let log = t.audit_log().unwrap().to_jsonl();
        assert!(log.contains("\"action\":\"converged\""));
        assert!(log.contains("\"action\":\"monitor\""));
        assert!(log.contains("\"action\":\"retrigger\""));
        assert!(log.contains("\"tuner\":\"history\""));
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let samples = vec![(vec![8, 2], 900.0), (vec![32, 4], 2100.0)];
        let run = || {
            let mut t =
                HistoryTuner::new(Domain::paper_nc_np(), vec![2, 8], 5.0).with_samples(&samples);
            t.enable_audit();
            let mut x = t.initial();
            for i in 0..50 {
                x = t.observe(&x.clone(), ((i * 37) % 11) as f64 * 250.0);
            }
            t.audit_log().unwrap().to_jsonl()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn samples_outside_the_domain_are_clamped_not_dropped() {
        let t = HistoryTuner::new(Domain::new(&[(1, 32)]), vec![2], 5.0)
            .with_samples(&[(vec![4096], 9000.0), (vec![2], 100.0)]);
        assert_eq!(t.sample_count(), 2);
        assert_eq!(
            t.predicted_optimum(),
            Some(&vec![32]),
            "out-of-domain history lands on the boundary"
        );
    }

    #[test]
    fn garbage_samples_are_dropped() {
        let t = HistoryTuner::new(Domain::paper_nc(), vec![2], 5.0).with_samples(&[
            (vec![4, 4], 1000.0), // wrong dimension
            (vec![8], f64::NAN),  // non-finite
            (vec![8], -5.0),      // negative
        ]);
        assert_eq!(t.sample_count(), 0);
        assert_eq!(t.predicted_optimum(), None);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn rejects_bad_start() {
        HistoryTuner::new(Domain::paper_nc(), vec![600], 5.0);
    }
}
