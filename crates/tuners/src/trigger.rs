//! The ε%-significance monitor shared by the compass and Nelder–Mead tuners.
//!
//! Algorithm 2, lines 16–25: after a search converges, the tuner keeps the
//! best point and watches the throughput of consecutive control epochs.
//! Whenever the relative change `Δc = 100·(f_{c-1} − f_{c-2})/f_{c-2}`
//! exceeds the tolerance `ε%` in magnitude, the external conditions are
//! presumed to have changed and the search is re-invoked.

use serde::{Deserialize, Serialize};

/// Tracks consecutive observations and flags significant change.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SignificanceMonitor {
    eps_pct: f64,
    prev: Option<f64>,
}

impl SignificanceMonitor {
    /// A monitor with tolerance `eps_pct` (the paper uses 5).
    ///
    /// # Panics
    /// Panics if `eps_pct` is negative.
    pub fn new(eps_pct: f64) -> Self {
        assert!(eps_pct >= 0.0, "tolerance must be non-negative");
        SignificanceMonitor {
            eps_pct,
            prev: None,
        }
    }

    /// The configured tolerance in percent.
    pub fn eps_pct(&self) -> f64 {
        self.eps_pct
    }

    /// Feed the next observation; returns `true` when the relative change
    /// from the previous one exceeds `ε%` in magnitude. The first observation
    /// after construction or [`SignificanceMonitor::reset`] never triggers.
    pub fn observe(&mut self, f: f64) -> bool {
        let triggered = match self.prev {
            None => false,
            Some(prev) => {
                if prev.abs() < f64::EPSILON {
                    // From zero, any positive throughput is significant.
                    f.abs() > f64::EPSILON
                } else {
                    let delta_pct = 100.0 * (f - prev) / prev.abs();
                    delta_pct.abs() > self.eps_pct
                }
            }
        };
        self.prev = Some(f);
        triggered
    }

    /// The relative change in percent that the next observation `f` would
    /// report, without consuming it.
    pub fn peek_delta_pct(&self, f: f64) -> Option<f64> {
        self.prev.map(|prev| {
            if prev.abs() < f64::EPSILON {
                if f.abs() > f64::EPSILON {
                    f64::INFINITY
                } else {
                    0.0
                }
            } else {
                100.0 * (f - prev) / prev.abs()
            }
        })
    }

    /// Forget history (used when a fresh search begins).
    pub fn reset(&mut self) {
        self.prev = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_never_triggers() {
        let mut m = SignificanceMonitor::new(5.0);
        assert!(!m.observe(1000.0));
    }

    #[test]
    fn small_changes_do_not_trigger() {
        let mut m = SignificanceMonitor::new(5.0);
        m.observe(1000.0);
        assert!(!m.observe(1049.0)); // +4.9%
        assert!(!m.observe(1000.0)); // -4.7%
    }

    #[test]
    fn large_changes_trigger_both_directions() {
        let mut m = SignificanceMonitor::new(5.0);
        m.observe(1000.0);
        assert!(m.observe(1100.0)); // +10%
        m.reset();
        m.observe(1000.0);
        assert!(m.observe(900.0)); // -10%
    }

    #[test]
    fn change_from_zero_is_significant() {
        let mut m = SignificanceMonitor::new(5.0);
        m.observe(0.0);
        assert!(m.observe(10.0));
        m.reset();
        m.observe(0.0);
        assert!(!m.observe(0.0));
    }

    #[test]
    fn reset_forgets() {
        let mut m = SignificanceMonitor::new(5.0);
        m.observe(1000.0);
        m.reset();
        assert!(!m.observe(5000.0));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut m = SignificanceMonitor::new(5.0);
        assert_eq!(m.peek_delta_pct(10.0), None);
        m.observe(1000.0);
        let d = m.peek_delta_pct(1100.0).unwrap();
        assert!((d - 10.0).abs() < 1e-9, "d={d}");
        // Peeking twice gives the same answer.
        let a = m.peek_delta_pct(1200.0);
        let b = m.peek_delta_pct(1200.0);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_tolerance_triggers_on_any_change() {
        let mut m = SignificanceMonitor::new(0.0);
        m.observe(1000.0);
        assert!(m.observe(1000.0001));
        assert!(!m.observe(1000.0001));
    }

    #[test]
    #[should_panic(expected = "tolerance must be non-negative")]
    fn negative_tolerance_rejected() {
        SignificanceMonitor::new(-1.0);
    }
}
