//! The online tuner interface and a name-based factory.

use crate::audit::AuditLog;
use crate::bandit::BanditTuner;
use crate::baselines::{Heur1Tuner, Heur2Tuner, StaticTuner};
use crate::cd::CdTuner;
use crate::compass::CompassTuner;
use crate::domain::{Domain, Point};
use crate::heuristic::HeuristicTuner;
use crate::neldermead::NelderMeadTuner;
use crate::surrogate::HistoryTuner;
use serde::{Deserialize, Serialize};

/// An online tuner: a pull-style state machine that proposes the parameter
/// point for each control epoch based on the throughput observed so far.
///
/// Protocol: the driver transfers one control epoch with
/// [`OnlineTuner::initial`]'s point, reports the achieved throughput via
/// [`OnlineTuner::observe`], transfers the next epoch with the returned
/// point, and so on until the data runs out (`while s' > 0` in the paper's
/// pseudocode).
pub trait OnlineTuner {
    /// Short identifier used in reports (`cd-tuner`, `cs-tuner`, …).
    fn name(&self) -> &'static str;

    /// The point to use for the first control epoch.
    fn initial(&self) -> Point;

    /// Observe that running with `x` achieved `throughput` (MB/s) over the
    /// last control epoch; return the point for the next epoch.
    fn observe(&mut self, x: &Point, throughput: f64) -> Point;

    /// The search domain.
    fn domain(&self) -> &Domain;

    /// Turn on the decision audit log ([`AuditLog`]), if this tuner supports
    /// auditing. Auditing is strictly observational: an audited tuner
    /// proposes exactly the same trajectory as an unaudited one. The default
    /// implementation is a no-op (the static/heuristic baselines make no
    /// direct-search decisions worth auditing).
    fn enable_audit(&mut self) {}

    /// The decision audit log, when this tuner supports auditing. Returns
    /// `None` for tuners without one; an enabled log may still be empty if
    /// no epoch has been observed yet.
    fn audit_log(&self) -> Option<&AuditLog> {
        None
    }

    /// Mutable access to the audit log, when this tuner has one. Fleet
    /// drivers use it to namespace per-job logs
    /// ([`AuditLog::set_namespace`]); mutating the log never feeds back into
    /// tuning decisions.
    fn audit_log_mut(&mut self) -> Option<&mut AuditLog> {
        None
    }
}

/// A seed for a tuner's starting point, recording where it came from.
///
/// The paper's tuners always start from the Globus default and pay the full
/// online search. A fleet orchestrator with a history store can instead seed
/// new jobs from the best parameters of the nearest historical match (cf.
/// Arslan & Kosar's historical-analysis warm start), cutting the search
/// phase. `WarmStart` carries both the point and its provenance so reports
/// can attribute the speedup.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStart {
    /// The starting point handed to the tuner.
    pub x0: Point,
    /// Where the point came from.
    pub source: WarmStartSource,
}

/// Provenance of a [`WarmStart`] point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WarmStartSource {
    /// No usable history: the static default (cold start).
    ColdDefault,
    /// Seeded from a history-store record at the given match distance
    /// (0 = exact context match).
    History {
        /// Distance between the new job's context and the matched record
        /// under the store's metric.
        distance: f64,
    },
}

impl WarmStart {
    /// A cold start from `x0` (the Globus default in the paper's setup).
    pub fn cold(x0: Point) -> Self {
        WarmStart {
            x0,
            source: WarmStartSource::ColdDefault,
        }
    }

    /// A history-seeded start from `x0` matched at `distance`.
    pub fn from_history(x0: Point, distance: f64) -> Self {
        WarmStart {
            x0,
            source: WarmStartSource::History { distance },
        }
    }

    /// True when the seed came from the history store.
    pub fn is_warm(&self) -> bool {
        matches!(self.source, WarmStartSource::History { .. })
    }

    /// The match distance, when warm.
    pub fn distance(&self) -> Option<f64> {
        match self.source {
            WarmStartSource::History { distance } => Some(distance),
            WarmStartSource::ColdDefault => None,
        }
    }
}

/// The tuners evaluated in the paper, constructible by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TunerKind {
    /// Static Globus defaults (the paper's `default` baseline).
    Default,
    /// Coordinate-descent tuner (Algorithm 1).
    Cd,
    /// Compass-search tuner (Algorithm 2).
    Cs,
    /// Nelder–Mead tuner (Algorithm 3).
    Nm,
    /// Balman's additive heuristic (`heur1`).
    Heur1,
    /// Yildirim's exponential heuristic (`heur2`).
    Heur2,
    /// History-surrogate tuner: offline knowledge + adaptive sampling
    /// (arXiv:1707.09455).
    History,
    /// Closed-form geometric-midpoint baseline.
    Heuristic,
    /// Tabular UCB1 bandit over a power-of-two arm ladder (arXiv:2211.11949).
    Bandit,
}

impl TunerKind {
    /// All kinds: the paper's six first (in the order its figures list
    /// them), then the tournament additions.
    pub const ALL: [TunerKind; 9] = [
        TunerKind::Default,
        TunerKind::Cd,
        TunerKind::Cs,
        TunerKind::Nm,
        TunerKind::Heur1,
        TunerKind::Heur2,
        TunerKind::History,
        TunerKind::Heuristic,
        TunerKind::Bandit,
    ];

    /// Report name (`default`, `cd-tuner`, `cs-tuner`, `nm-tuner`, `heur1`,
    /// `heur2`, `history`, `heuristic`, `bandit`).
    pub fn name(self) -> &'static str {
        match self {
            TunerKind::Default => "default",
            TunerKind::Cd => "cd-tuner",
            TunerKind::Cs => "cs-tuner",
            TunerKind::Nm => "nm-tuner",
            TunerKind::Heur1 => "heur1",
            TunerKind::Heur2 => "heur2",
            TunerKind::History => "history",
            TunerKind::Heuristic => "heuristic",
            TunerKind::Bandit => "bandit",
        }
    }

    /// Build a tuner with the paper's hyper-parameters: tolerance `ε = 5 %`,
    /// compass step `λ = 8`, Nelder–Mead `(R, E, C, S) = (1, 2, 0.5, 0.5)`.
    ///
    /// `x0` is the starting point (the Globus default, in the figures).
    pub fn build(self, domain: Domain, x0: Point) -> Box<dyn OnlineTuner + Send> {
        const EPS: f64 = 5.0;
        const LAMBDA: f64 = 8.0;
        match self {
            TunerKind::Default => Box::new(StaticTuner::new(domain, x0)),
            TunerKind::Cd => Box::new(CdTuner::new(domain, x0, EPS)),
            TunerKind::Cs => Box::new(CompassTuner::new(domain, x0, LAMBDA, EPS)),
            TunerKind::Nm => Box::new(NelderMeadTuner::new(domain, x0, EPS)),
            TunerKind::Heur1 => Box::new(Heur1Tuner::new(domain, x0, EPS)),
            TunerKind::Heur2 => Box::new(Heur2Tuner::new(domain, x0, EPS)),
            TunerKind::History => Box::new(HistoryTuner::new(domain, x0, EPS)),
            TunerKind::Heuristic => Box::new(HeuristicTuner::new(domain, x0, EPS)),
            TunerKind::Bandit => Box::new(BanditTuner::new(domain, x0, EPS)),
        }
    }

    /// [`TunerKind::build`] from a [`WarmStart`] seed: the point is clamped
    /// into `domain` (a historical optimum may lie outside a narrower
    /// per-job domain) before construction.
    pub fn build_seeded(self, domain: Domain, seed: &WarmStart) -> Box<dyn OnlineTuner + Send> {
        let x0 = domain.clamp(&seed.x0);
        self.build(domain, x0)
    }
}

impl std::str::FromStr for TunerKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "default" => Ok(TunerKind::Default),
            "cd" | "cd-tuner" => Ok(TunerKind::Cd),
            "cs" | "cs-tuner" | "compass" => Ok(TunerKind::Cs),
            "nm" | "nm-tuner" | "nelder-mead" => Ok(TunerKind::Nm),
            "heur1" => Ok(TunerKind::Heur1),
            "heur2" => Ok(TunerKind::Heur2),
            "history" | "history-tuner" | "surrogate" => Ok(TunerKind::History),
            "heuristic" => Ok(TunerKind::Heuristic),
            "bandit" | "ucb" => Ok(TunerKind::Bandit),
            other => Err(format!("unknown tuner kind: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_kind() {
        for kind in TunerKind::ALL {
            let t = kind.build(Domain::paper_nc(), vec![2]);
            assert_eq!(t.name(), kind.name());
            assert_eq!(t.initial(), vec![2]);
            assert_eq!(t.domain().dim(), 1);
        }
    }

    #[test]
    fn warm_start_seed_round_trip() {
        let cold = WarmStart::cold(vec![2, 8]);
        assert!(!cold.is_warm());
        assert_eq!(cold.distance(), None);
        let warm = WarmStart::from_history(vec![48, 8], 0.25);
        assert!(warm.is_warm());
        assert_eq!(warm.distance(), Some(0.25));
    }

    #[test]
    fn build_seeded_clamps_history_point_into_domain() {
        // A historical optimum of nc=200 must be clamped into a narrower
        // per-job domain before the tuner sees it.
        let domain = Domain::new(&[(1, 16)]);
        for kind in TunerKind::ALL {
            let t = kind.build_seeded(domain.clone(), &WarmStart::from_history(vec![200], 0.1));
            assert_eq!(t.initial(), vec![16], "{}", kind.name());
            assert!(domain.contains(&t.initial()));
        }
        // An in-domain seed passes through unchanged.
        let t = TunerKind::Cs.build_seeded(domain.clone(), &WarmStart::cold(vec![5]));
        assert_eq!(t.initial(), vec![5]);
    }

    #[test]
    fn audited_tuners_expose_mutable_logs_for_namespacing() {
        for kind in [
            TunerKind::Cd,
            TunerKind::Cs,
            TunerKind::Nm,
            TunerKind::History,
            TunerKind::Heuristic,
            TunerKind::Bandit,
        ] {
            let mut t = kind.build(Domain::paper_nc(), vec![2]);
            t.enable_audit();
            t.audit_log_mut()
                .expect("audited tuner must expose a mutable log")
                .set_namespace("job1");
            let x = t.initial();
            t.observe(&x, 1000.0);
            let jsonl = t.audit_log().unwrap().to_jsonl();
            assert!(
                jsonl.contains("\"ns\":\"job1\""),
                "{}: {jsonl}",
                kind.name()
            );
        }
        // Baselines have no log to namespace.
        let mut t = TunerKind::Default.build(Domain::paper_nc(), vec![2]);
        assert!(t.audit_log_mut().is_none());
    }

    #[test]
    fn parse_round_trips() {
        for kind in TunerKind::ALL {
            let parsed: TunerKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("bogus".parse::<TunerKind>().is_err());
    }

    #[test]
    fn every_tuner_stays_in_domain_under_fixed_adversarial_feedback() {
        // Feed adversarial throughput sequences and check domain safety.
        let feedbacks = [
            vec![0.0; 40],
            (0..40).map(|i| i as f64 * 100.0).collect::<Vec<_>>(),
            (0..40).map(|i| 4000.0 - i as f64 * 100.0).collect(),
            (0..40)
                .map(|i| if i % 2 == 0 { 100.0 } else { 3000.0 })
                .collect(),
        ];
        for kind in TunerKind::ALL {
            for fb in &feedbacks {
                let domain = Domain::paper_nc_np();
                let mut t = kind.build(domain.clone(), vec![2, 8]);
                let mut x = t.initial();
                assert!(
                    domain.contains(&x),
                    "{}: initial out of domain",
                    kind.name()
                );
                for &f in fb {
                    x = t.observe(&x.clone(), f);
                    assert!(
                        domain.contains(&x),
                        "{}: proposed {:?} outside domain",
                        kind.name(),
                        x
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_domain_and_start() -> impl Strategy<Value = (Domain, Point)> {
        (1usize..=3).prop_flat_map(|dim| {
            let bounds = prop::collection::vec((1i64..8, 8i64..300), dim..=dim);
            bounds.prop_flat_map(|b| {
                let domain = Domain::new(&b.iter().map(|&(lo, hi)| (lo, hi)).collect::<Vec<_>>());
                let start: Vec<BoxedStrategy<i64>> =
                    b.iter().map(|&(lo, hi)| (lo..=hi).boxed()).collect();
                (Just(domain), start)
            })
        })
    }

    proptest! {
        /// Whatever throughput sequence the world produces — including
        /// negatives, zeros, NaN-free extremes — every tuner's proposals
        /// stay inside the domain and never panic.
        #[test]
        fn fuzz_every_tuner_domain_safety(
            (domain, x0) in arb_domain_and_start(),
            feedback in prop::collection::vec(-1e6f64..1e7, 1..60),
            kind_idx in 0usize..TunerKind::ALL.len(),
        ) {
            let kind = TunerKind::ALL[kind_idx];
            let mut tuner = kind.build(domain.clone(), x0);
            let mut x = tuner.initial();
            prop_assert!(domain.contains(&x), "{}: initial {:?}", kind.name(), x);
            for &f in &feedback {
                x = tuner.observe(&x.clone(), f);
                prop_assert!(
                    domain.contains(&x),
                    "{}: proposed {:?} outside {:?}..{:?}",
                    kind.name(), x, domain.lo(), domain.hi()
                );
            }
        }

        /// On a deterministic concave objective every adaptive tuner ends at
        /// least as good as its starting point (no self-sabotage).
        #[test]
        fn fuzz_no_tuner_ends_worse_than_start(
            peak in 5i64..250,
            start in 1i64..250,
            kind_idx in 0usize..TunerKind::ALL.len(),
        ) {
            let kind = TunerKind::ALL[kind_idx];
            let domain = Domain::new(&[(1, 256)]);
            let f = |x: &Point| 4000.0 - ((x[0] - peak) as f64).powi(2) * 0.5;
            let mut tuner = kind.build(domain, vec![start]);
            let mut x = tuner.initial();
            let mut best_seen = f64::NEG_INFINITY;
            for _ in 0..80 {
                let fx = f(&x);
                best_seen = best_seen.max(fx);
                x = tuner.observe(&x.clone(), fx);
            }
            // The best point visited must not be worse than the start value
            // (any sane strategy at least keeps what it began with).
            prop_assert!(best_seen >= f(&vec![start]) - 1e-9,
                "{}: best {} < start {}", kind.name(), best_seen, f(&vec![start]));
        }

        /// Seeded stochastic feedback — a noisy concave objective with
        /// occasional fault-style throughput holes (zeros), the exact signal
        /// shape a tuner sees when the world runs under a fault plan. The
        /// direct-search tuners (compass, Nelder–Mead) must keep every
        /// proposal inside the domain for any root seed.
        #[test]
        fn fuzz_direct_search_in_domain_under_seeded_noise(
            seed in 0u64..u64::MAX,
            peak in 5i64..250,
            (domain, x0) in arb_domain_and_start(),
        ) {
            use rand::rngs::SmallRng;
            use rand::{Rng, SeedableRng};
            let mut rng = SmallRng::seed_from_u64(seed);
            for kind in [TunerKind::Cs, TunerKind::Nm] {
                let mut tuner = kind.build(domain.clone(), x0.clone());
                let mut x = tuner.initial();
                prop_assert!(domain.contains(&x), "{}: initial {:?}", kind.name(), x);
                for _ in 0..60 {
                    // Concave base signal + multiplicative noise; ~10% of
                    // epochs are a zero-throughput hole (abort/backoff).
                    let base = (4000.0 - ((x[0] - peak) as f64).powi(2) * 0.5).max(0.0);
                    let f = if rng.gen_bool(0.1) {
                        0.0
                    } else {
                        base * rng.gen_range(0.5..1.5)
                    };
                    x = tuner.observe(&x.clone(), f);
                    prop_assert!(
                        domain.contains(&x),
                        "{} (seed {seed}): proposed {:?} outside {:?}..{:?}",
                        kind.name(), x, domain.lo(), domain.hi()
                    );
                }
            }
        }

        /// The tournament additions (history, heuristic, bandit) under the
        /// same regime the fleet imposes: a *reservation-restricted* domain
        /// (the admission controller narrows `nc_hi` to the granted stream
        /// budget) and a seeded fault tape of zero-throughput holes. Every
        /// proposal must stay inside the restricted domain; the history
        /// tuner must additionally survive arbitrary stored samples, which
        /// may lie far outside the narrowed bounds.
        #[test]
        fn fuzz_new_tuner_kinds_respect_restricted_domains(
            seed in 0u64..u64::MAX,
            peak in 5i64..250,
            (domain, x0) in arb_domain_and_start(),
            samples in prop::collection::vec(
                (prop::collection::vec(1i64..2000, 1..4), -10.0f64..5000.0),
                0..12,
            ),
        ) {
            use rand::rngs::SmallRng;
            use rand::{Rng, SeedableRng};
            for kind in [TunerKind::History, TunerKind::Heuristic, TunerKind::Bandit] {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut tuner: Box<dyn OnlineTuner + Send> =
                    if kind == TunerKind::History {
                        // Exercise the surrogate path: random stored samples
                        // of random dimension (wrong-dim ones are dropped,
                        // out-of-domain ones clamped).
                        Box::new(
                            HistoryTuner::new(domain.clone(), x0.clone(), 5.0)
                                .with_samples(&samples),
                        )
                    } else {
                        kind.build(domain.clone(), x0.clone())
                    };
                let mut x = tuner.initial();
                prop_assert!(domain.contains(&x), "{}: initial {:?}", kind.name(), x);
                for _ in 0..60 {
                    let base = (4000.0 - ((x[0] - peak) as f64).powi(2) * 0.5).max(0.0);
                    let f = if rng.gen_bool(0.15) {
                        0.0
                    } else {
                        base * rng.gen_range(0.5..1.5)
                    };
                    x = tuner.observe(&x.clone(), f);
                    prop_assert!(
                        domain.contains(&x),
                        "{} (seed {seed}): proposed {:?} outside {:?}..{:?}",
                        kind.name(), x, domain.lo(), domain.hi()
                    );
                }
            }
        }
    }
}
