//! Additional optimizers beyond the paper's three, for comparison studies:
//!
//! * [`RandomSearchTuner`] — uniform random probing with a
//!   keep-the-incumbent rule; the standard "is your optimizer better than
//!   random?" control.
//! * [`GoldenSectionTuner`] — classic golden-section line search for 1-D
//!   unimodal objectives; near-optimal evaluation counts when the Fig. 1
//!   unimodality assumption holds, brittle when it does not.
//!
//! Both implement [`OnlineTuner`] and re-trigger through the same ε% monitor
//! as the paper's tuners, so they drop into every experiment and benchmark.

use crate::domain::{Domain, Point};
use crate::trigger::SignificanceMonitor;
use crate::tuner::OnlineTuner;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Uniform random search with an incumbent.
#[derive(Debug, Clone)]
pub struct RandomSearchTuner {
    domain: Domain,
    x0: Point,
    /// Probes per search invocation.
    budget: u32,
    remaining: u32,
    incumbent: Point,
    f_incumbent: f64,
    probe: Option<Point>,
    monitor: SignificanceMonitor,
    rng: SmallRng,
}

impl RandomSearchTuner {
    /// A random-search tuner starting at `x0`, probing `budget` random
    /// points per search round, with tolerance `eps_pct`.
    ///
    /// # Panics
    /// Panics if `x0` is outside `domain` or `budget` is zero.
    pub fn new(domain: Domain, x0: Point, budget: u32, eps_pct: f64) -> Self {
        assert!(domain.contains(&x0), "x0 {x0:?} outside domain");
        assert!(budget > 0, "budget must be positive");
        RandomSearchTuner {
            incumbent: x0.clone(),
            x0,
            budget,
            remaining: budget,
            f_incumbent: f64::NEG_INFINITY,
            probe: None,
            monitor: SignificanceMonitor::new(eps_pct),
            domain,
            rng: SmallRng::seed_from_u64(0xBAD5EED),
        }
    }

    /// Reseed the probe RNG.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = SmallRng::seed_from_u64(seed);
        self
    }

    fn random_point(&mut self) -> Point {
        (0..self.domain.dim())
            .map(|i| {
                self.rng
                    .gen_range(self.domain.lo()[i]..=self.domain.hi()[i])
            })
            .collect()
    }
}

impl OnlineTuner for RandomSearchTuner {
    fn name(&self) -> &'static str {
        "random"
    }
    fn domain(&self) -> &Domain {
        &self.domain
    }
    fn initial(&self) -> Point {
        self.x0.clone()
    }

    fn observe(&mut self, x: &Point, throughput: f64) -> Point {
        match self.probe.take() {
            Some(p) => {
                debug_assert_eq!(x, &p);
                if throughput > self.f_incumbent {
                    self.f_incumbent = throughput;
                    self.incumbent = p;
                }
            }
            None => {
                // Incumbent evaluation (first epoch or monitor epoch).
                if self.remaining == 0 {
                    // Monitoring: re-trigger on significant change.
                    if self.monitor.observe(throughput) {
                        self.remaining = self.budget;
                        self.f_incumbent = throughput;
                    } else {
                        return self.incumbent.clone();
                    }
                } else {
                    self.f_incumbent = self.f_incumbent.max(throughput);
                }
            }
        }
        if self.remaining > 0 {
            self.remaining -= 1;
            let p = self.random_point();
            self.probe = Some(p.clone());
            p
        } else {
            self.monitor.reset();
            self.monitor.observe(self.f_incumbent);
            self.incumbent.clone()
        }
    }
}

/// Golden-section line search over a 1-D integer domain.
#[derive(Debug, Clone)]
pub struct GoldenSectionTuner {
    domain: Domain,
    x0: Point,
    /// Current bracket `[lo, hi]`.
    lo: i64,
    hi: i64,
    /// Interior probe points and their values.
    a: i64,
    b: i64,
    fa: Option<f64>,
    fb: Option<f64>,
    /// Which interior point the last proposal was.
    waiting_on: Probe,
    monitor: SignificanceMonitor,
    settled: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Probe {
    A,
    B,
    None,
}

const INV_PHI: f64 = 0.618_033_988_749_894_9;

impl GoldenSectionTuner {
    /// A golden-section tuner over a 1-D `domain` with tolerance `eps_pct`.
    ///
    /// # Panics
    /// Panics unless the domain is 1-D and contains `x0`.
    pub fn new(domain: Domain, x0: Point, eps_pct: f64) -> Self {
        assert_eq!(domain.dim(), 1, "golden section is 1-D only");
        assert!(domain.contains(&x0), "x0 {x0:?} outside domain");
        let lo = domain.lo()[0];
        let hi = domain.hi()[0];
        let (a, b) = Self::interior(lo, hi);
        GoldenSectionTuner {
            domain,
            x0,
            lo,
            hi,
            a,
            b,
            fa: None,
            fb: None,
            waiting_on: Probe::None,
            monitor: SignificanceMonitor::new(eps_pct),
            settled: false,
        }
    }

    fn interior(lo: i64, hi: i64) -> (i64, i64) {
        let span = (hi - lo) as f64;
        let a = lo + (span * (1.0 - INV_PHI)).round() as i64;
        let b = lo + (span * INV_PHI).round() as i64;
        (a.clamp(lo, hi), b.clamp(lo, hi).max(a))
    }

    fn restart(&mut self) {
        self.lo = self.domain.lo()[0];
        self.hi = self.domain.hi()[0];
        let (a, b) = Self::interior(self.lo, self.hi);
        self.a = a;
        self.b = b;
        self.fa = None;
        self.fb = None;
        self.waiting_on = Probe::None;
        self.settled = false;
        self.monitor.reset();
    }

    fn next_probe(&mut self) -> Point {
        if self.hi - self.lo <= 2 || self.a >= self.b {
            // Bracket collapsed: settle on the better interior point.
            self.settled = true;
            let best = match (self.fa, self.fb) {
                (Some(fa), Some(fb)) if fb > fa => self.b,
                _ => self.a,
            };
            self.monitor.reset();
            return vec![best.clamp(self.domain.lo()[0], self.domain.hi()[0])];
        }
        if self.fa.is_none() {
            self.waiting_on = Probe::A;
            return vec![self.a];
        }
        if self.fb.is_none() {
            self.waiting_on = Probe::B;
            return vec![self.b];
        }
        unreachable!("both interior values known but bracket not narrowed")
    }
}

impl OnlineTuner for GoldenSectionTuner {
    fn name(&self) -> &'static str {
        "golden"
    }
    fn domain(&self) -> &Domain {
        &self.domain
    }
    fn initial(&self) -> Point {
        self.x0.clone()
    }

    fn observe(&mut self, _x: &Point, throughput: f64) -> Point {
        if self.settled {
            if self.monitor.observe(throughput) {
                self.restart();
            } else {
                return self.next_probe();
            }
        }
        match self.waiting_on {
            Probe::A => self.fa = Some(throughput),
            Probe::B => self.fb = Some(throughput),
            Probe::None => {} // initial epoch at x0: no bracket info
        }
        self.waiting_on = Probe::None;
        // Narrow the bracket when both interior values are known (maximize).
        if let (Some(fa), Some(fb)) = (self.fa, self.fb) {
            if fa >= fb {
                self.hi = self.b;
                self.b = self.a;
                self.fb = Some(fa);
                let (a, _) = Self::interior(self.lo, self.hi);
                self.a = a;
                self.fa = None;
            } else {
                self.lo = self.a;
                self.a = self.b;
                self.fa = Some(fb);
                let (_, b) = Self::interior(self.lo, self.hi);
                self.b = b;
                self.fb = None;
            }
            if self.a >= self.b {
                self.settled = true;
            }
        }
        self.next_probe()
    }
}

/// A transparent wrapper recording every `(x, f)` pair a tuner sees —
/// trajectory analysis without touching the tuner.
pub struct RecordingTuner<T> {
    inner: T,
    history: Vec<(Point, f64)>,
}

impl<T: OnlineTuner> RecordingTuner<T> {
    /// Wrap `inner`.
    pub fn new(inner: T) -> Self {
        RecordingTuner {
            inner,
            history: Vec::new(),
        }
    }

    /// Every observation so far, in order.
    pub fn history(&self) -> &[(Point, f64)] {
        &self.history
    }

    /// The observation with the highest throughput, if any.
    pub fn best(&self) -> Option<&(Point, f64)> {
        self.history
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Unwrap the inner tuner.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: OnlineTuner> OnlineTuner for RecordingTuner<T> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn domain(&self) -> &Domain {
        self.inner.domain()
    }
    fn initial(&self) -> Point {
        self.inner.initial()
    }
    fn observe(&mut self, x: &Point, throughput: f64) -> Point {
        self.history.push((x.clone(), throughput));
        self.inner.observe(x, throughput)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::maximize;

    fn concave(peak: i64) -> impl FnMut(&Point) -> f64 {
        move |x: &Point| 4000.0 - ((x[0] - peak) as f64).powi(2)
    }

    #[test]
    fn random_search_improves_over_start() {
        let mut t = RandomSearchTuner::new(Domain::new(&[(1, 200)]), vec![1], 30, 5.0).with_seed(1);
        let r = maximize(&mut t, 200, concave(120));
        assert!(
            (r.best[0] - 120).abs() < 40,
            "30 random probes on [1,200] should land near 120: {:?}",
            r.best
        );
    }

    #[test]
    fn random_search_stays_in_domain() {
        let d = Domain::new(&[(5, 9), (2, 3)]);
        let mut t = RandomSearchTuner::new(d.clone(), vec![5, 2], 20, 5.0);
        let mut x = t.initial();
        for i in 0..60 {
            x = t.observe(&x.clone(), (i % 7) as f64 * 100.0);
            assert!(d.contains(&x), "out of domain: {x:?}");
        }
    }

    #[test]
    fn random_search_settles_then_retriggers() {
        let mut t = RandomSearchTuner::new(Domain::new(&[(1, 50)]), vec![1], 10, 5.0).with_seed(2);
        let mut x = t.initial();
        for _ in 0..30 {
            x = t.observe(&x.clone(), 1000.0);
        }
        let settled = x.clone();
        // Quiet: must hold.
        for _ in 0..5 {
            x = t.observe(&x.clone(), 1000.0);
            assert_eq!(x, settled);
        }
        // Shock: must move again eventually.
        let mut moved = false;
        for _ in 0..15 {
            x = t.observe(&x.clone(), 5000.0);
            if x != settled {
                moved = true;
                break;
            }
        }
        assert!(moved, "shock must re-trigger random search");
    }

    #[test]
    fn golden_section_nails_unimodal_peak() {
        let mut t = GoldenSectionTuner::new(Domain::new(&[(1, 512)]), vec![2], 5.0);
        let r = maximize(&mut t, 100, concave(300));
        assert!(
            (r.best[0] - 300).abs() <= 8,
            "golden section on unimodal f: {:?}",
            r.best
        );
        // Evaluation count ~ log_phi(512) ≈ 13-ish, far below compass.
        assert!(
            r.evaluations.len() <= 40,
            "too many evaluations: {}",
            r.evaluations.len()
        );
    }

    #[test]
    fn golden_section_is_1d_only() {
        let result = std::panic::catch_unwind(|| {
            GoldenSectionTuner::new(Domain::paper_nc_np(), vec![2, 8], 5.0)
        });
        assert!(result.is_err());
    }

    #[test]
    fn recording_tuner_captures_history() {
        let inner = crate::cd::CdTuner::new(Domain::new(&[(1, 50)]), vec![2], 1.0);
        let mut t = RecordingTuner::new(inner);
        let mut x = t.initial();
        for _ in 0..10 {
            let f = concave(10)(&x);
            x = t.observe(&x.clone(), f);
        }
        assert_eq!(t.history().len(), 10);
        let best = t.best().unwrap();
        assert!(best.1 <= 4000.0);
        // History points climb toward the peak.
        assert!(t.history().last().unwrap().0[0] > 2);
    }
}
