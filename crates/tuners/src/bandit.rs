//! Tabular UCB bandit tuner (`bandit`).
//!
//! Jamil et al. (arXiv:2211.11949) frame stream-count selection as a
//! multi-armed bandit: discretize the parameter space into a small set of
//! arms, pull the arm with the highest upper confidence bound, and credit
//! the observed throughput as the arm's reward. [`BanditTuner`] implements
//! the tabular UCB1 variant over a log-spaced arm ladder (powers of two per
//! dimension, plus the domain corners and the starting point), because
//! throughput-vs-streams curves saturate logarithmically — linear arm
//! spacing wastes pulls on indistinguishable high-`nc` arms.
//!
//! Selection is the classic UCB1 rule with rewards normalized by the best
//! throughput seen so far:
//!
//! ```text
//! pull  argmax_i  mean_i / f_max  +  c · sqrt(ln t / n_i)
//! ```
//!
//! with unpulled arms tried first (in ladder order) and exact ties broken by
//! the lowest arm index, so a run is fully deterministic — the tuner holds
//! no RNG at all.
//!
//! Non-stationarity is handled the same way as the paper's direct-search
//! tuners: once one arm has won `CONVERGE_PULLS` consecutive pulls the
//! search declares convergence, holds that arm, and watches the ε%
//! [`SignificanceMonitor`]; a significant throughput shift resets the table
//! and restarts the bandit from scratch.

use crate::audit::{AuditLog, DecisionAction, DecisionEvent, RetriggerCause};
use crate::domain::{Domain, Point};
use crate::trigger::SignificanceMonitor;
use crate::tuner::OnlineTuner;

/// Consecutive pulls of the same arm that declare convergence.
const CONVERGE_PULLS: u32 = 4;

/// Exploration budget: after this many pulls per arm the bandit commits to
/// its best arm even if UCB would keep cycling (arm means too close for a
/// streak to ever form). Keeps convergence bounded on near-flat objectives.
const PULL_BUDGET_PER_ARM: u64 = 4;

/// UCB exploration coefficient (on rewards normalized to `[0, 1]`).
const EXPLORE_C: f64 = 0.6;

/// One arm's running statistics.
#[derive(Debug, Clone)]
struct Arm {
    x: Point,
    pulls: u32,
    mean: f64,
}

/// The tabular UCB tuner over a log-spaced discretization of the domain.
///
/// # Examples
///
/// ```
/// use xferopt_tuners::{BanditTuner, Domain, OnlineTuner};
///
/// let mut tuner = BanditTuner::new(Domain::new(&[(1, 64)]), vec![2], 5.0);
/// let mut x = tuner.initial();
/// for _ in 0..40 {
///     let throughput = 4000.0 - ((x[0] - 16) as f64).powi(2) * 4.0;
///     x = tuner.observe(&x.clone(), throughput);
/// }
/// assert!((x[0] - 16).abs() <= 8, "settled near the peak: {x:?}");
/// ```
#[derive(Debug, Clone)]
pub struct BanditTuner {
    domain: Domain,
    x0: Point,
    arms: Vec<Arm>,
    /// Total pulls since the last reset (the `t` in the UCB bonus).
    total_pulls: u64,
    /// Best raw throughput seen since the last reset (reward normalizer).
    f_max: f64,
    /// Index of the arm whose reward the next observation credits.
    pending: Option<usize>,
    /// Consecutive pulls of the same arm (convergence detector).
    streak_arm: Option<usize>,
    streak: u32,
    /// `Some(arm)` once converged: hold it and monitor for ε% shifts.
    held: Option<usize>,
    monitor: SignificanceMonitor,
    audit: AuditLog,
}

impl BanditTuner {
    /// A UCB bandit over `domain` starting at `x0` with monitor tolerance
    /// `eps_pct` (the paper uses 5).
    ///
    /// # Panics
    /// Panics if `x0` is outside `domain` or `eps_pct` is negative.
    pub fn new(domain: Domain, x0: Point, eps_pct: f64) -> Self {
        assert!(domain.contains(&x0), "x0 {x0:?} outside domain");
        let arms = Self::build_arms(&domain, &x0);
        BanditTuner {
            x0,
            arms,
            total_pulls: 0,
            f_max: 1.0,
            pending: None,
            streak_arm: None,
            streak: 0,
            held: None,
            monitor: SignificanceMonitor::new(eps_pct),
            domain,
            audit: AuditLog::new(),
        }
    }

    /// The log-spaced arm ladder: per dimension the powers of two inside the
    /// bounds plus both bounds; arms are the cross product, with `x0`
    /// prepended. Duplicates are removed preserving first occurrence, so the
    /// ladder order (and therefore tie-breaking) is deterministic.
    fn build_arms(domain: &Domain, x0: &Point) -> Vec<Arm> {
        let mut ladders: Vec<Vec<i64>> = Vec::with_capacity(domain.dim());
        for d in 0..domain.dim() {
            let (lo, hi) = (domain.lo()[d], domain.hi()[d]);
            let mut rungs = vec![lo];
            let mut v: i64 = 1;
            while v <= hi {
                if v > lo {
                    rungs.push(v);
                }
                v = v.saturating_mul(2);
            }
            if *rungs.last().expect("non-empty ladder") != hi {
                rungs.push(hi);
            }
            ladders.push(rungs);
        }
        let mut points: Vec<Point> = vec![x0.clone()];
        let mut cross: Vec<Point> = vec![Vec::new()];
        for ladder in &ladders {
            let mut next = Vec::with_capacity(cross.len() * ladder.len());
            for prefix in &cross {
                for &r in ladder {
                    let mut p = prefix.clone();
                    p.push(r);
                    next.push(p);
                }
            }
            cross = next;
        }
        points.extend(cross);
        let mut arms: Vec<Arm> = Vec::with_capacity(points.len());
        for p in points {
            if !arms.iter().any(|a| a.x == p) {
                arms.push(Arm {
                    x: p,
                    pulls: 0,
                    mean: 0.0,
                });
            }
        }
        arms
    }

    /// UCB1 selection: unpulled arms first (ladder order), then the highest
    /// normalized mean + exploration bonus, ties to the lowest index.
    fn select_arm(&self) -> usize {
        if let Some(i) = self.arms.iter().position(|a| a.pulls == 0) {
            return i;
        }
        let ln_t = (self.total_pulls.max(1) as f64).ln();
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (i, a) in self.arms.iter().enumerate() {
            let bonus = EXPLORE_C * (ln_t / a.pulls as f64).sqrt();
            let score = a.mean / self.f_max + bonus;
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    /// The arm with the best mean reward (ties to the lowest index).
    fn best_arm(&self) -> usize {
        let mut best = 0usize;
        let mut best_mean = f64::NEG_INFINITY;
        for (i, a) in self.arms.iter().enumerate() {
            if a.pulls > 0 && a.mean > best_mean {
                best_mean = a.mean;
                best = i;
            }
        }
        best
    }

    /// Forget everything (conditions changed): zero the table and restart.
    fn reset(&mut self) {
        for a in &mut self.arms {
            a.pulls = 0;
            a.mean = 0.0;
        }
        self.total_pulls = 0;
        self.f_max = 1.0;
        self.streak_arm = None;
        self.streak = 0;
        self.held = None;
        self.monitor.reset();
    }

    /// Record one audited decision (no-op while the log is disabled).
    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        x: &Point,
        observed: f64,
        action: DecisionAction,
        accepted: Option<bool>,
        next: &Point,
        delta_pct: Option<f64>,
        retrigger: Option<RetriggerCause>,
    ) {
        self.audit.record(DecisionEvent {
            seq: 0,
            tuner: "bandit",
            x: x.clone(),
            observed,
            action,
            accepted,
            next: next.clone(),
            lambda: None,
            delta_pct,
            projected: false,
            retrigger,
        });
    }

    /// Commit to the best arm: hold it and arm the ε% monitor.
    fn hold_best(&mut self) -> Point {
        let best = self.best_arm();
        self.held = Some(best);
        self.pending = None;
        self.monitor.reset();
        self.arms[best].x.clone()
    }

    /// Pull the next arm, maintaining the convergence streak; returns the
    /// proposed point and whether the pull converged the search. Converges
    /// either on a [`CONVERGE_PULLS`]-long streak of one arm or when the
    /// total exploration budget is spent.
    fn pull_next(&mut self) -> (Point, bool) {
        if self.total_pulls >= PULL_BUDGET_PER_ARM * self.arms.len() as u64 {
            return (self.hold_best(), true);
        }
        let i = self.select_arm();
        if self.streak_arm == Some(i) {
            self.streak += 1;
        } else {
            self.streak_arm = Some(i);
            self.streak = 1;
        }
        if self.streak >= CONVERGE_PULLS {
            return (self.hold_best(), true);
        }
        self.pending = Some(i);
        (self.arms[i].x.clone(), false)
    }
}

impl OnlineTuner for BanditTuner {
    fn name(&self) -> &'static str {
        "bandit"
    }

    fn domain(&self) -> &Domain {
        &self.domain
    }

    fn initial(&self) -> Point {
        self.x0.clone()
    }

    fn observe(&mut self, x: &Point, throughput: f64) -> Point {
        // Held phase: watch the ε% monitor at the winning arm.
        if let Some(held) = self.held {
            let delta = self.monitor.peek_delta_pct(throughput);
            if self.monitor.observe(throughput) {
                let cause = match delta {
                    Some(d) if d.is_finite() => RetriggerCause::SignificantDelta {
                        delta_pct: d,
                        eps_pct: self.monitor.eps_pct(),
                    },
                    _ => RetriggerCause::ZeroRecovery,
                };
                self.reset();
                let (next, _) = self.pull_next();
                self.record(
                    x,
                    throughput,
                    DecisionAction::Retrigger,
                    None,
                    &next,
                    delta,
                    Some(cause),
                );
                return next;
            }
            let next = self.arms[held].x.clone();
            self.record(
                x,
                throughput,
                DecisionAction::Monitor,
                None,
                &next,
                delta,
                None,
            );
            return next;
        }

        // Credit the pending arm with the observed reward.
        let accepted = match self.pending.take() {
            Some(i) => {
                let a = &mut self.arms[i];
                a.pulls += 1;
                a.mean += (throughput - a.mean) / a.pulls as f64;
                self.total_pulls += 1;
                self.f_max = self.f_max.max(throughput.abs()).max(1.0);
                Some(throughput >= self.arms[i].mean)
            }
            // First observation (x0's epoch before any pull was proposed):
            // seed the normalizer and start pulling.
            None => {
                self.f_max = self.f_max.max(throughput.abs()).max(1.0);
                None
            }
        };

        let (next, converged) = self.pull_next();
        let action = if converged {
            DecisionAction::Converged
        } else if accepted.is_none() {
            DecisionAction::EvalStart
        } else {
            DecisionAction::Probe
        };
        self.record(x, throughput, action, accepted, &next, None, None);
        next
    }

    fn enable_audit(&mut self) {
        self.audit.enable();
    }

    fn audit_log(&self) -> Option<&AuditLog> {
        Some(&self.audit)
    }

    fn audit_log_mut(&mut self) -> Option<&mut AuditLog> {
        Some(&mut self.audit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<F: FnMut(&Point) -> f64>(t: &mut BanditTuner, epochs: usize, mut f: F) -> Vec<Point> {
        let mut x = t.initial();
        let mut traj = vec![x.clone()];
        for _ in 0..epochs {
            let fx = f(&x);
            x = t.observe(&x.clone(), fx);
            traj.push(x.clone());
        }
        traj
    }

    #[test]
    fn arms_are_log_spaced_and_deduplicated() {
        let t = BanditTuner::new(Domain::new(&[(1, 64)]), vec![2], 5.0);
        let xs: Vec<i64> = t.arms.iter().map(|a| a.x[0]).collect();
        // x0 first, then the ladder 1, 2, 4, ... 64 without duplicates.
        assert_eq!(xs, vec![2, 1, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn finds_the_best_arm_on_a_concave_objective() {
        let mut t = BanditTuner::new(Domain::new(&[(1, 256)]), vec![2], 5.0);
        let traj = drive(&mut t, 60, |x| {
            4000.0 - ((x[0] - 30) as f64).powi(2).min(4000.0)
        });
        // The closest arms to 30 are 32 (score 3996) and 16 (3804): UCB must
        // settle on 32.
        let last = traj.last().unwrap();
        assert_eq!(last, &vec![32], "trajectory {traj:?}");
    }

    #[test]
    fn converges_then_holds_then_retriggers() {
        let mut t = BanditTuner::new(Domain::new(&[(1, 32)]), vec![2], 5.0);
        let mut x = t.initial();
        for _ in 0..60 {
            x = t.observe(&x.clone(), 1000.0 + x[0] as f64);
        }
        let held = x.clone();
        // Flat feedback: holds.
        for _ in 0..5 {
            x = t.observe(&x.clone(), 1000.0 + held[0] as f64);
            assert_eq!(x, held, "must hold the winning arm");
        }
        // A big shift must reset and re-explore.
        let mut moved = false;
        for _ in 0..20 {
            x = t.observe(&x.clone(), 5000.0);
            if x != held {
                moved = true;
                break;
            }
        }
        assert!(moved, "significant shift must re-trigger the bandit");
    }

    #[test]
    fn is_deterministic() {
        let run = || {
            let mut t = BanditTuner::new(Domain::paper_nc(), vec![2], 5.0);
            drive(&mut t, 50, |x| 3000.0 - (x[0] as f64 - 48.0).abs() * 10.0)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stays_in_domain_under_adversarial_feedback() {
        let d = Domain::new(&[(3, 11), (2, 5)]);
        let mut t = BanditTuner::new(d.clone(), vec![3, 2], 5.0);
        let mut x = t.initial();
        for i in 0..80 {
            x = t.observe(&x.clone(), if i % 3 == 0 { 0.0 } else { i as f64 * 50.0 });
            assert!(d.contains(&x), "proposed {x:?} outside {d:?}");
        }
    }

    #[test]
    fn audit_stream_records_pulls_and_convergence() {
        let mut t = BanditTuner::new(Domain::new(&[(1, 16)]), vec![2], 5.0);
        t.enable_audit();
        drive(&mut t, 40, |x| 100.0 * x[0] as f64);
        let names = t.audit_log().unwrap().action_names();
        assert!(names.contains(&"probe"), "{names:?}");
        assert!(names.contains(&"converged"), "{names:?}");
        assert!(names.contains(&"monitor"), "{names:?}");
        // JSONL renders with the bandit's name.
        assert!(t
            .audit_log()
            .unwrap()
            .to_jsonl()
            .contains("\"tuner\":\"bandit\""));
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn rejects_bad_start() {
        BanditTuner::new(Domain::paper_nc(), vec![0], 5.0);
    }
}
