//! The tuner decision audit log: a typed record of every direct-search move.
//!
//! The paper's trajectories (Figs. 6, 8, 10) are sequences of *decisions* —
//! probe this point, accept/reject it, halve λ, re-trigger the search because
//! `|Δc| > ε%`. [`AuditLog`] captures each of those as a [`DecisionEvent`]
//! so a run can be audited move-by-move against Algorithms 1–3, instead of
//! reverse-engineering the decisions from the parameter time series.
//!
//! Auditing is opt-in per tuner (`enable_audit`) and strictly observational:
//! the log never feeds back into the tuner's state, so an audited run
//! proposes exactly the same trajectory as an unaudited one.

use crate::domain::Point;
use xferopt_simcore::metrics::json_f64;

/// What move a tuner made upon observing one control epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionAction {
    /// cd: probe the current axis (first observation, or wake-up probe).
    Probe,
    /// cd: ±1 step following the sign of the difference quotient δc.
    Step,
    /// Hold the current point (no significant signal).
    Hold,
    /// cd: axis settled; rotate to the next coordinate and probe it.
    RotateAxis,
    /// cs/nm: evaluate the search's starting point itself.
    EvalStart,
    /// cs: coordinate-direction probe at the current step size λ.
    CompassProbe,
    /// nm: evaluate an initial simplex vertex.
    InitVertex,
    /// nm: reflection point proposed.
    Reflect,
    /// nm: expansion point proposed.
    Expand,
    /// nm: contraction point proposed.
    Contract,
    /// nm: shrink-phase vertex re-evaluation.
    Shrink,
    /// cs/nm: search converged (λ < 0.5 / simplex degenerate); hold best.
    Converged,
    /// ε-monitor fired; a fresh search starts from `next`.
    Retrigger,
    /// Monitoring the held point; no significant change.
    Monitor,
}

impl DecisionAction {
    /// Stable snake_case name used in JSONL and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            DecisionAction::Probe => "probe",
            DecisionAction::Step => "step",
            DecisionAction::Hold => "hold",
            DecisionAction::RotateAxis => "rotate_axis",
            DecisionAction::EvalStart => "eval_start",
            DecisionAction::CompassProbe => "compass_probe",
            DecisionAction::InitVertex => "init_vertex",
            DecisionAction::Reflect => "reflect",
            DecisionAction::Expand => "expand",
            DecisionAction::Contract => "contract",
            DecisionAction::Shrink => "shrink",
            DecisionAction::Converged => "converged",
            DecisionAction::Retrigger => "retrigger",
            DecisionAction::Monitor => "monitor",
        }
    }
}

/// Why a converged tuner re-invoked its search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetriggerCause {
    /// `|Δc| > ε%` between consecutive epochs at the held point.
    SignificantDelta {
        /// The observed relative change, percent (may be ±∞).
        delta_pct: f64,
        /// The tolerance it exceeded, percent.
        eps_pct: f64,
    },
    /// Throughput recovered from zero (any positive value is significant).
    ZeroRecovery,
}

impl RetriggerCause {
    /// Stable snake_case name used in JSONL and metric labels.
    pub fn name(&self) -> &'static str {
        match self {
            RetriggerCause::SignificantDelta { .. } => "significant_delta",
            RetriggerCause::ZeroRecovery => "zero_recovery",
        }
    }
}

/// One audited tuner decision: the point evaluated, what was observed, the
/// move made, and the point proposed for the next control epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionEvent {
    /// Zero-based decision sequence number within the tuner's lifetime.
    pub seq: u64,
    /// Tuner identifier (`cd-tuner`, `cs-tuner`, `nm-tuner`).
    pub tuner: &'static str,
    /// The point whose throughput was just observed.
    pub x: Point,
    /// The observed throughput, MB/s.
    pub observed: f64,
    /// The move the tuner made.
    pub action: DecisionAction,
    /// For probe-style moves: whether the probed point was accepted (became
    /// the incumbent / replaced a vertex). `None` when not applicable.
    pub accepted: Option<bool>,
    /// The point proposed for the next control epoch.
    pub next: Point,
    /// The compass step size λ in force, when the tuner has one.
    pub lambda: Option<f64>,
    /// The relative throughput change Δc in percent, when computed.
    pub delta_pct: Option<f64>,
    /// True when `next` was projected by `fBnd` (round/clamp changed the
    /// nominal target).
    pub projected: bool,
    /// Present on [`DecisionAction::Retrigger`] events: why the search
    /// restarted.
    pub retrigger: Option<RetriggerCause>,
}

impl DecisionEvent {
    /// Render as one flat JSON object with a fixed key order (the JSONL
    /// `"kind":"decision"` record of the telemetry schema).
    pub fn to_json(&self) -> String {
        self.to_json_ns(None)
    }

    /// [`DecisionEvent::to_json`] with an optional namespace label injected
    /// as a `"ns"` field right after `"kind"`. Fleet orchestrators namespace
    /// each job's audit log (`"job3"`) so the merged fleet-wide decision
    /// stream stays attributable. `None` renders the exact single-transfer
    /// schema (no `"ns"` key), keeping existing golden snapshots stable.
    pub fn to_json_ns(&self, ns: Option<&str>) -> String {
        let point = |p: &Point| {
            let inner: Vec<String> = p.iter().map(|v| v.to_string()).collect();
            format!("[{}]", inner.join(","))
        };
        let opt_bool = |b: Option<bool>| match b {
            Some(true) => "true".to_string(),
            Some(false) => "false".to_string(),
            None => "null".to_string(),
        };
        let opt_f64 = |v: Option<f64>| match v {
            Some(v) if v.is_finite() => json_f64(v),
            Some(v) if v == f64::INFINITY => "\"inf\"".to_string(),
            Some(v) if v == f64::NEG_INFINITY => "\"-inf\"".to_string(),
            Some(_) => "null".to_string(),
            None => "null".to_string(),
        };
        let retrigger = match &self.retrigger {
            Some(c) => format!("\"{}\"", c.name()),
            None => "null".to_string(),
        };
        let ns = match ns {
            Some(ns) => format!("\"ns\":\"{ns}\","),
            None => String::new(),
        };
        format!(
            concat!(
                "{{\"kind\":\"decision\",{}\"seq\":{},\"tuner\":\"{}\",",
                "\"x\":{},\"observed\":{},\"action\":\"{}\",\"accepted\":{},",
                "\"next\":{},\"lambda\":{},\"delta_pct\":{},",
                "\"projected\":{},\"retrigger\":{}}}"
            ),
            ns,
            self.seq,
            self.tuner,
            point(&self.x),
            json_f64(self.observed),
            self.action.name(),
            opt_bool(self.accepted),
            point(&self.next),
            opt_f64(self.lambda),
            opt_f64(self.delta_pct),
            self.projected,
            retrigger,
        )
    }
}

/// An append-only log of [`DecisionEvent`]s. Disabled by default so the
/// unaudited hot path pays one branch per epoch and allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct AuditLog {
    events: Vec<DecisionEvent>,
    enabled: bool,
    /// Optional namespace label rendered into every JSONL record (fleet
    /// orchestrators set the job id, e.g. `"job3"`). `None` renders the
    /// single-transfer schema unchanged.
    namespace: Option<String>,
}

impl AuditLog {
    /// A disabled log (records nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Turn recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Label every rendered record with `ns` (see
    /// [`DecisionEvent::to_json_ns`]). Observational: affects only JSONL
    /// rendering, never what is recorded.
    pub fn set_namespace(&mut self, ns: impl Into<String>) {
        self.namespace = Some(ns.into());
    }

    /// The namespace label, if set.
    pub fn namespace(&self) -> Option<&str> {
        self.namespace.as_deref()
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append `event` (assigning its sequence number) when enabled.
    pub fn record(&mut self, mut event: DecisionEvent) {
        if !self.enabled {
            return;
        }
        event.seq = self.events.len() as u64;
        self.events.push(event);
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[DecisionEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of recorded re-trigger events.
    pub fn retrigger_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.action == DecisionAction::Retrigger)
            .count()
    }

    /// The recorded action names, in order (convenient for asserting exact
    /// move sequences against Algorithms 1–3).
    pub fn action_names(&self) -> Vec<&'static str> {
        self.events.iter().map(|e| e.action.name()).collect()
    }

    /// Render every event as JSONL (one object per line, trailing newline
    /// when non-empty).
    pub fn to_jsonl(&self) -> String {
        let ns = self.namespace.as_deref();
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json_ns(ns));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(action: DecisionAction) -> DecisionEvent {
        DecisionEvent {
            seq: 0,
            tuner: "cd-tuner",
            x: vec![2],
            observed: 1234.5,
            action,
            accepted: Some(true),
            next: vec![3],
            lambda: Some(8.0),
            delta_pct: Some(12.5),
            projected: false,
            retrigger: None,
        }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = AuditLog::new();
        log.record(sample(DecisionAction::Probe));
        assert!(log.is_empty());
        log.enable();
        log.record(sample(DecisionAction::Probe));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn sequence_numbers_are_assigned_in_order() {
        let mut log = AuditLog::new();
        log.enable();
        for _ in 0..3 {
            log.record(sample(DecisionAction::Step));
        }
        let seqs: Vec<u64> = log.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn json_has_fixed_key_order() {
        let mut e = sample(DecisionAction::Retrigger);
        e.retrigger = Some(RetriggerCause::SignificantDelta {
            delta_pct: 25.0,
            eps_pct: 5.0,
        });
        let j = e.to_json();
        assert!(j.starts_with("{\"kind\":\"decision\",\"seq\":0,\"tuner\":\"cd-tuner\","));
        assert!(j.contains("\"action\":\"retrigger\""));
        assert!(j.contains("\"retrigger\":\"significant_delta\""));
        assert!(j.ends_with("}"));
    }

    #[test]
    fn infinite_delta_serializes_as_string() {
        let mut e = sample(DecisionAction::Probe);
        e.delta_pct = Some(f64::INFINITY);
        assert!(e.to_json().contains("\"delta_pct\":\"inf\""));
    }

    #[test]
    fn namespaced_jsonl_labels_every_record() {
        let mut log = AuditLog::new();
        log.enable();
        log.record(sample(DecisionAction::Probe));
        log.record(sample(DecisionAction::Step));
        // Without a namespace: the exact single-transfer schema.
        assert!(log.namespace().is_none());
        for line in log.to_jsonl().lines() {
            assert!(line.starts_with("{\"kind\":\"decision\",\"seq\":"));
            assert!(!line.contains("\"ns\":"));
        }
        // With a namespace: "ns" right after "kind", on every line.
        log.set_namespace("job3");
        assert_eq!(log.namespace(), Some("job3"));
        let jsonl = log.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            assert!(
                line.starts_with("{\"kind\":\"decision\",\"ns\":\"job3\",\"seq\":"),
                "{line}"
            );
        }
        // The namespace affects rendering only, not the recorded events.
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn retrigger_count_counts_only_retriggers() {
        let mut log = AuditLog::new();
        log.enable();
        log.record(sample(DecisionAction::Hold));
        log.record(sample(DecisionAction::Retrigger));
        log.record(sample(DecisionAction::Monitor));
        log.record(sample(DecisionAction::Retrigger));
        assert_eq!(log.retrigger_count(), 2);
        assert_eq!(
            log.action_names(),
            vec!["hold", "retrigger", "monitor", "retrigger"]
        );
    }
}
