//! Closed-form heuristic baseline (`heuristic`).
//!
//! The throughput-vs-streams curves of Fig. 1 saturate logarithmically: the
//! knee sits near the geometric middle of the feasible range, not the
//! arithmetic one. [`HeuristicTuner`] exploits that with a single closed-form
//! jump — no search at all: evaluate the start, jump straight to the
//! per-dimension geometric mean of the bounds (`fBnd(√(lo·hi))`), keep
//! whichever of the two points measured better, and hold it under the same
//! ε% [`SignificanceMonitor`] as the paper's tuners. On a re-trigger the
//! two-point comparison is repeated from scratch.
//!
//! This is the "what if we just guess from the domain?" control for the
//! tournament: one decision, two evaluations, zero adaptation. It brackets
//! how much of the adaptive tuners' advantage comes from actually searching
//! versus merely not standing still at the Globus default.

use crate::audit::{AuditLog, DecisionAction, DecisionEvent, RetriggerCause};
use crate::domain::{Domain, Point};
use crate::trigger::SignificanceMonitor;
use crate::tuner::OnlineTuner;

/// Phase of the two-point comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Waiting for the first observation (at the start point).
    Start,
    /// Waiting for the observation at the closed-form guess.
    Guess,
    /// Comparison done: holding the winner under the monitor.
    Hold,
}

/// The closed-form geometric-midpoint tuner.
///
/// # Examples
///
/// ```
/// use xferopt_tuners::{Domain, HeuristicTuner, OnlineTuner};
///
/// let mut tuner = HeuristicTuner::new(Domain::new(&[(1, 256)]), vec![2], 5.0);
/// let mut x = tuner.initial();
/// x = tuner.observe(&x.clone(), 500.0); // start measured
/// assert_eq!(x, vec![16], "jumps to fBnd(sqrt(1*256))");
/// x = tuner.observe(&x.clone(), 2000.0); // guess measured better
/// assert_eq!(x, vec![16], "keeps the winner");
/// ```
#[derive(Debug, Clone)]
pub struct HeuristicTuner {
    domain: Domain,
    x0: Point,
    guess: Point,
    phase: Phase,
    f_start: f64,
    held: Point,
    monitor: SignificanceMonitor,
    audit: AuditLog,
}

impl HeuristicTuner {
    /// A heuristic tuner over `domain` starting at `x0` with monitor
    /// tolerance `eps_pct` (the paper uses 5).
    ///
    /// # Panics
    /// Panics if `x0` is outside `domain` or `eps_pct` is negative.
    pub fn new(domain: Domain, x0: Point, eps_pct: f64) -> Self {
        assert!(domain.contains(&x0), "x0 {x0:?} outside domain");
        let guess = Self::closed_form(&domain);
        HeuristicTuner {
            held: x0.clone(),
            x0,
            guess,
            phase: Phase::Start,
            f_start: f64::NEG_INFINITY,
            monitor: SignificanceMonitor::new(eps_pct),
            domain,
            audit: AuditLog::new(),
        }
    }

    /// The closed-form guess: per dimension the geometric mean of the
    /// bounds, rounded and projected by `fBnd`.
    fn closed_form(domain: &Domain) -> Point {
        let raw: Vec<f64> = domain
            .lo()
            .iter()
            .zip(domain.hi())
            .map(|(&lo, &hi)| ((lo.max(1) as f64) * (hi.max(1) as f64)).sqrt())
            .collect();
        domain.fbnd(&raw)
    }

    /// The closed-form point this tuner jumps to.
    pub fn guess(&self) -> &Point {
        &self.guess
    }

    /// Record one audited decision (no-op while the log is disabled).
    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        x: &Point,
        observed: f64,
        action: DecisionAction,
        accepted: Option<bool>,
        next: &Point,
        delta_pct: Option<f64>,
        retrigger: Option<RetriggerCause>,
    ) {
        self.audit.record(DecisionEvent {
            seq: 0,
            tuner: "heuristic",
            x: x.clone(),
            observed,
            action,
            accepted,
            next: next.clone(),
            lambda: None,
            delta_pct,
            projected: false,
            retrigger,
        });
    }
}

impl OnlineTuner for HeuristicTuner {
    fn name(&self) -> &'static str {
        "heuristic"
    }

    fn domain(&self) -> &Domain {
        &self.domain
    }

    fn initial(&self) -> Point {
        self.x0.clone()
    }

    fn observe(&mut self, x: &Point, throughput: f64) -> Point {
        match self.phase {
            Phase::Start => {
                self.f_start = throughput;
                if self.guess == *x {
                    // Degenerate domain: the guess is the start; hold it.
                    self.phase = Phase::Hold;
                    self.held = x.clone();
                    self.monitor.reset();
                    self.monitor.observe(throughput);
                    let next = self.held.clone();
                    self.record(
                        x,
                        throughput,
                        DecisionAction::Converged,
                        None,
                        &next,
                        None,
                        None,
                    );
                    return next;
                }
                self.phase = Phase::Guess;
                let next = self.guess.clone();
                self.record(
                    x,
                    throughput,
                    DecisionAction::EvalStart,
                    None,
                    &next,
                    None,
                    None,
                );
                next
            }
            Phase::Guess => {
                let accepted = throughput >= self.f_start;
                self.held = if accepted {
                    self.guess.clone()
                } else {
                    self.x0.clone()
                };
                self.phase = Phase::Hold;
                self.monitor.reset();
                if accepted {
                    // Holding the point just measured: its value primes the
                    // monitor directly.
                    self.monitor.observe(throughput);
                } else {
                    self.monitor.observe(self.f_start);
                }
                let next = self.held.clone();
                self.record(
                    x,
                    throughput,
                    DecisionAction::Converged,
                    Some(accepted),
                    &next,
                    None,
                    None,
                );
                next
            }
            Phase::Hold => {
                let delta = self.monitor.peek_delta_pct(throughput);
                if self.monitor.observe(throughput) {
                    let cause = match delta {
                        Some(d) if d.is_finite() => RetriggerCause::SignificantDelta {
                            delta_pct: d,
                            eps_pct: self.monitor.eps_pct(),
                        },
                        _ => RetriggerCause::ZeroRecovery,
                    };
                    // Restart the two-point comparison from the held point.
                    self.x0 = self.held.clone();
                    self.f_start = throughput;
                    let next = if self.guess == self.held {
                        // Already at the guess: re-measure the old start side
                        // by jumping to the domain's cold corner.
                        self.domain.lo().to_vec()
                    } else {
                        self.guess.clone()
                    };
                    self.phase = Phase::Guess;
                    self.record(
                        x,
                        throughput,
                        DecisionAction::Retrigger,
                        None,
                        &next,
                        delta,
                        Some(cause),
                    );
                    return next;
                }
                let next = self.held.clone();
                self.record(
                    x,
                    throughput,
                    DecisionAction::Monitor,
                    None,
                    &next,
                    delta,
                    None,
                );
                next
            }
        }
    }

    fn enable_audit(&mut self) {
        self.audit.enable();
    }

    fn audit_log(&self) -> Option<&AuditLog> {
        Some(&self.audit)
    }

    fn audit_log_mut(&mut self) -> Option<&mut AuditLog> {
        Some(&mut self.audit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_is_the_geometric_midpoint() {
        let t = HeuristicTuner::new(Domain::new(&[(1, 256), (1, 32)]), vec![2, 8], 5.0);
        // sqrt(1*256) = 16, sqrt(1*32) ≈ 5.66 → 6.
        assert_eq!(t.guess(), &vec![16, 6]);
    }

    #[test]
    fn keeps_the_start_when_the_guess_is_worse() {
        let mut t = HeuristicTuner::new(Domain::new(&[(1, 100)]), vec![3], 5.0);
        let mut x = t.initial();
        x = t.observe(&x.clone(), 3000.0); // start is great
        assert_eq!(x, vec![10]);
        x = t.observe(&x.clone(), 100.0); // guess is terrible
        assert_eq!(x, vec![3], "falls back to the start point");
        // Holds thereafter on quiet feedback.
        for _ in 0..5 {
            x = t.observe(&x.clone(), 3000.0);
        }
        assert_eq!(x, vec![3]);
    }

    #[test]
    fn retriggers_on_significant_shift() {
        let mut t = HeuristicTuner::new(Domain::new(&[(1, 100)]), vec![3], 5.0);
        t.enable_audit();
        let mut x = t.initial();
        x = t.observe(&x.clone(), 500.0);
        x = t.observe(&x.clone(), 2000.0); // guess wins
        let held = x.clone();
        assert_eq!(held, vec![10]);
        for _ in 0..3 {
            x = t.observe(&x.clone(), 2000.0);
            assert_eq!(x, held);
        }
        x = t.observe(&x.clone(), 4000.0); // +100 %: conditions changed
        assert_ne!(x, held, "shift must re-trigger the comparison");
        assert!(t.audit_log().unwrap().retrigger_count() >= 1);
    }

    #[test]
    fn stays_in_domain_and_is_deterministic() {
        let d = Domain::new(&[(2, 7), (1, 3)]);
        let run = || {
            let mut t = HeuristicTuner::new(d.clone(), vec![2, 1], 5.0);
            let mut x = t.initial();
            let mut traj = vec![x.clone()];
            for i in 0..30 {
                x = t.observe(&x.clone(), (i % 5) as f64 * 700.0);
                assert!(d.contains(&x), "proposed {x:?} outside {d:?}");
                traj.push(x.clone());
            }
            traj
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn degenerate_domain_converges_immediately() {
        let d = Domain::new(&[(4, 4)]);
        let mut t = HeuristicTuner::new(d, vec![4], 5.0);
        let mut x = t.initial();
        for _ in 0..5 {
            x = t.observe(&x.clone(), 1000.0);
            assert_eq!(x, vec![4]);
        }
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn rejects_bad_start() {
        HeuristicTuner::new(Domain::paper_nc(), vec![0], 5.0);
    }
}
